"""Throughput benchmarks of the live stack's hot paths.

Not a paper figure -- these measure the reproduction itself: how fast
the pure-Python stack executes the operations that sit on the
emulation's critical path.
"""

import math

import pytest

from repro.core import SpaceCoreSatellite, SpaceCoreHome
from repro.orbits import IdealPropagator, serving_satellite, starlink
from repro.sim import NeighborhoodEmulation
from repro.topology import GeospatialRouter, GridTopology


@pytest.fixture(scope="module")
def deployment():
    home = SpaceCoreHome()
    creds = home.enroll_satellite("sat-bench")
    satellite = SpaceCoreSatellite("sat-bench", creds)
    ue = home.provision_subscriber(1)
    home.register(ue, (1, 1), (1, 1))
    return home, satellite, ue


def test_localized_establishment_throughput(benchmark, deployment):
    """Full Fig. 16a + Algorithm 2: ABE decrypt, signature verify,
    STS key agreement, rule install."""
    home, satellite, ue = deployment

    def establish():
        served = satellite.establish_session_locally(
            ue, 0.0, home.verify_key)
        satellite.release_session(served.supi)
        return served

    served = benchmark(establish)
    assert served.session_key
    # The whole local exchange's crypto stays in the tens of ms --
    # far below one ground round trip.
    assert benchmark.stats.stats.mean < 0.2


def test_registration_throughput(benchmark):
    """C1 with real AKA + delegation (home side)."""
    home = SpaceCoreHome()
    counter = {"msin": 0}

    def register():
        counter["msin"] += 1
        ue = home.provision_subscriber(counter["msin"])
        return home.register(ue, (1, 1), (1, 1))

    session = benchmark(register)
    assert session.session_id > 0


def test_routing_throughput(benchmark):
    """Algorithm 1 end-to-end route computation (17-hop class)."""
    topology = GridTopology(IdealPropagator(starlink()), [])
    router = GeospatialRouter(topology)
    src = serving_satellite(topology.propagator, 0.0,
                            math.radians(39.9), math.radians(116.4))
    dst = (math.radians(40.7), math.radians(-74.0))
    result = benchmark(router.route, src, dst[0], dst[1], 0.0)
    assert result.delivered


def test_packet_forwarding_throughput(benchmark):
    """Packet-level DES: inject and drain a 100-packet burst."""
    from repro.sim.packets import PacketSimulation
    topology = GridTopology(IdealPropagator(starlink()), [])
    src = serving_satellite(topology.propagator, 0.0,
                            math.radians(39.9), math.radians(116.4))
    dst = (math.radians(40.7), math.radians(-74.0))

    def burst():
        sim = PacketSimulation(topology)
        for i in range(100):
            sim.send(src, dst[0], dst[1], at_s=i * 0.001)
        sim.run()
        return sim

    sim = benchmark.pedantic(burst, rounds=3, iterations=1)
    assert len(sim.delivered()) == 100


def test_emulation_throughput(benchmark):
    """Simulated-seconds-per-wall-second of the live emulation."""
    def run():
        emulation = NeighborhoodEmulation(starlink(), num_ues=6,
                                          seed=3,
                                          session_interval_s=30.0)
        return emulation.run(120.0)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.sessions_established > 0
    assert stats.success_ratio == 1.0
