"""Shared fixtures for the table/figure benchmarks.

Each benchmark regenerates one paper artifact and prints the rows or
series the paper reports (run with ``-s`` to see them), while
pytest-benchmark times the underlying computation.
"""

import pytest

from repro.experiments.signaling import mean_hops_to_ground
from repro.orbits import TABLE1, default_ground_stations


def gateway_set(constellation):
    """Gateways scaled to the constellation's size.

    Small shells (Iridium) historically fly far fewer gateways than
    mega-constellations; the signaling asymmetry depends on this.
    """
    count = max(6, constellation.total_satellites // 60)
    return default_ground_stations(min(count, 26))


@pytest.fixture(scope="session")
def hops_by_constellation():
    """Mean ISL hops to a gateway, computed once per constellation."""
    hops = {}
    for name, factory in TABLE1.items():
        constellation = factory()
        hops[name] = mean_hops_to_ground(constellation,
                                         gateway_set(constellation))
    return hops
