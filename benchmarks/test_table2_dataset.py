"""Table 2: overview of the signaling datasets (synthesised replay)."""

from repro.workload import (
    layer_mix,
    synthesize,
    table2_summary,
    total_messages,
)

PAPER_TOTALS = {
    "inmarsat-explorer-710": 971_120,
    "tiantong-sc310": 2_106_916,
    "tiantong-t900": 4_279_736,
    "china-telecom": 3_857_732,
    "china-unicom": 1_491_534,
    "china-mobile": 8_480_488,
}


def test_table2_overview(benchmark):
    summary = benchmark(table2_summary)
    print("\nTable 2 -- dataset overview (messages per layer):")
    header = ["L1/L2", "RRC", "MM", "SM", "Others"]
    for source, counts, total in summary:
        cells = " ".join(f"{counts.get(h, 0):>9d}" for h in header)
        print(f"  {source:22s} {cells}  total={total:>9d}")
    for source, expected in PAPER_TOTALS.items():
        assert total_messages(source) == expected


def test_trace_synthesis(benchmark):
    """Synthesize a replayable trace with the Tiantong SC310 mix."""
    trace = benchmark(synthesize, "tiantong-sc310", 5000, 3600.0, 1)
    assert len(trace) == 5000
    mm_fraction = sum(1 for m in trace if m.layer == "MM") / len(trace)
    expected = layer_mix("tiantong-sc310")["MM"]
    assert abs(mm_fraction - expected) < 0.02
    print(f"\nSynthesized 5000-message SC310 trace; MM fraction "
          f"{mm_fraction:.3f} (dataset: {expected:.3f})")
