"""Table 4: SpaceCore's satellite signaling cost reduction."""


from repro.experiments.signaling import reduction_factors
from repro.orbits import TABLE1

from conftest import gateway_set

#: Paper's Table 4 for side-by-side printing.
PAPER = {
    "Starlink": {"5G NTN": 122.2, "SkyCore": 17.5, "DPCM": 40.3,
                 "Baoyun": 49.3},
    "Kuiper": {"5G NTN": 87.7, "SkyCore": 19.3, "DPCM": 33.8,
               "Baoyun": 42.8},
    "OneWeb": {"5G NTN": 49.8, "SkyCore": 20.1, "DPCM": 6.8,
               "Baoyun": 25.8},
    "Iridium": {"5G NTN": 34.5, "SkyCore": 25.8, "DPCM": 7.7,
                "Baoyun": 16.7},
}


def compute_table4():
    rows = {}
    for name, factory in TABLE1.items():
        constellation = factory()
        rows[name] = reduction_factors(
            constellation, capacity=30_000,
            stations=gateway_set(constellation))
    return rows


def test_table4_reductions(benchmark):
    rows = benchmark.pedantic(compute_table4, rounds=1, iterations=1)
    print("\nTable 4 -- SpaceCore satellite signaling reduction "
          "(measured | paper):")
    for name, factors in rows.items():
        cells = "  ".join(
            f"{base}: {factor:5.1f}x|{PAPER[name][base]:5.1f}x"
            for base, factor in sorted(factors.items()))
        print(f"  {name:9s} {cells}")

    # Shape assertions per the paper's claims:
    for name, factors in rows.items():
        # SpaceCore wins against every baseline, everywhere.
        for base, factor in factors.items():
            assert factor > 3.0, f"{name}/{base}: only {factor:.1f}x"
    # Starlink's headline: an order-of-magnitude-plus win vs 5G NTN.
    assert rows["Starlink"]["5G NTN"] > 30.0
    # Mega-constellations: NTN is the worst baseline, SkyCore the
    # least-bad (its sync is the only overhead left).
    for name in ("Starlink", "Kuiper", "OneWeb"):
        assert rows[name]["5G NTN"] == max(rows[name].values())
        assert rows[name]["SkyCore"] == min(rows[name].values())
    # Reduction shrinks as constellations shrink (fewer hops, fewer
    # satellites per gateway) -- the Starlink > Iridium trend.
    assert rows["Starlink"]["5G NTN"] > rows["Iridium"]["5G NTN"]
