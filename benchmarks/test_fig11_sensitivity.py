"""Fig. 11 (moving service areas) and the sensitivity/scaling sweeps."""

from repro.experiments import (
    constellation_scaling,
    sensitivity_sweep,
    worst_case_reduction,
)
from repro.experiments.moving_areas import fig11_comparison
from repro.orbits import starlink


def test_fig11_moving_service_areas(benchmark):
    rows = benchmark.pedantic(fig11_comparison, args=(starlink(),),
                              rounds=1, iterations=1)
    print("\nFig. 11 -- service areas seen by one static UE per hour:")
    for row in rows:
        print(f"  {row.definition:28s} distinct={row.distinct_areas:3d} "
              f"changes/h={row.changes_per_hour:6.1f}")
    logical = next(r for r in rows if "logical" in r.definition)
    geospatial = next(r for r in rows if "geospatial" in r.definition)
    # S3.2: ~every 165.8 s the serving satellite changes -> ~22
    # logical-area changes per hour; geospatial areas never change.
    assert logical.changes_per_hour > 10
    assert geospatial.area_changes == 0
    assert geospatial.distinct_areas == 1


def test_sensitivity(benchmark):
    points = benchmark.pedantic(sensitivity_sweep, args=(starlink(),),
                                rounds=1, iterations=1)
    print("\nSensitivity -- SpaceCore reduction vs 5G NTN under "
          "perturbation:")
    for p in points:
        print(f"  {p.parameter:10s}={p.value:8.0f} -> "
              f"{p.reduction_vs_ntn:6.1f}x")
    worst = worst_case_reduction(points)
    print(f"  worst case: {worst:.1f}x")
    assert worst > 5.0


def test_constellation_scaling(benchmark):
    points = benchmark.pedantic(constellation_scaling, rounds=1,
                                iterations=1)
    print("\nScaling -- reduction vs shell size:")
    for p in points:
        print(f"  {p.total_satellites:5d} satellites -> "
              f"{p.reduction_vs_ntn:6.1f}x")
    assert points[-1].reduction_vs_ntn > points[0].reduction_vs_ntn
