"""Fig. 12: temporal dynamics of a fast-moving satellite's load."""

from repro.experiments import load_variation, satellite_ground_track_load
from repro.orbits import starlink


def test_fig12_temporal_dynamics(benchmark):
    samples = benchmark(satellite_ground_track_load, starlink(), 30_000,
                        6000.0, 120.0)
    print("\nFig. 12 -- one Starlink satellite's signaling over time "
          "(Option 3):")
    for s in samples[::5]:
        bar = "#" * int(s.signaling_per_s / 400)
        print(f"  t={s.t_s / 60.0:5.1f}min ({s.lat_deg:+6.1f}, "
              f"{s.lon_deg:+7.1f}) {s.region:14s} "
              f"{s.signaling_per_s:8.0f}/s {bar}")

    peak, trough = load_variation(samples)
    print(f"  peak {peak:.0f}/s, trough {trough:.0f}/s")
    # The paper's burstiness: load collapses over oceans and spikes
    # over populated continents within a single orbit.
    assert peak > 0
    assert trough < peak / 5
    # The satellite crosses multiple World Bank regions in ~100 min.
    regions = {s.region for s in samples}
    assert len(regions) >= 2
    # State transmissions track signaling (Fig. 12's right panel).
    assert any(s.state_tx_per_s > 0 for s in samples)
