"""Extension benchmarks beyond the paper's figures.

Quantitative support for claims the paper makes in prose:

* S3.1's data-plane funnel: gateway-routed traffic concentrates on a
  few ISLs; SpaceCore's peer-to-peer relaying spreads it;
* S3.3/S4.2's resiliency: session availability under space-segment
  failures, SpaceCore vs 5G NTN;
* S4.3's paging: geospatial-cell paging vs tracking-area paging.
"""

from repro.core.paging import (
    geospatial_cell_cost,
    legacy_tracking_area_cost,
)
from repro.experiments import availability_gap, availability_sweep
from repro.geo import GeospatialCellGrid
from repro.orbits import IdealPropagator, default_ground_stations, starlink
from repro.topology import GridTopology, compare_concentration


def test_extension_traffic_concentration(benchmark):
    topology = GridTopology(IdealPropagator(starlink()),
                            default_ground_stations())
    comparison = benchmark.pedantic(
        compare_concentration, args=(topology,),
        kwargs={"top_satellites": 12}, rounds=1, iterations=1)
    print(f"\nExtension -- ISL load concentration: gateway-routed "
          f"peak/mean {comparison.gateway_peak_to_mean:.2f} "
          f"(gini {comparison.gateway_gini:.2f}) vs peer-to-peer "
          f"{comparison.peer_peak_to_mean:.2f} "
          f"(gini {comparison.peer_gini:.2f})")
    assert comparison.asymmetry_removed


def test_extension_availability_under_failures(benchmark):
    points = benchmark.pedantic(
        availability_sweep, args=(starlink(),),
        kwargs={"failure_fractions": (0.0, 0.05, 0.1, 0.2)},
        rounds=1, iterations=1)
    print("\nExtension -- session availability under failures:")
    for p in points:
        print(f"  fail={p.failure_fraction * 100:4.1f}% "
              f"{p.solution:10s} avail={p.availability * 100:5.1f}% "
              f"(reach {p.reachability * 100:5.1f}%, survive "
              f"{p.procedure_survival * 100:5.1f}%)")
    gaps = availability_gap(points)
    assert all(gap > 0.2 for gap in gaps.values())


def test_extension_paging_cost(benchmark):
    grid = GeospatialCellGrid(starlink())

    def run():
        return (legacy_tracking_area_cost(starlink()),
                geospatial_cell_cost(grid))

    legacy, spacecore = benchmark(run)
    print(f"\nExtension -- paging: legacy tracking area pages "
          f"{legacy.transmitting_satellites:.0f} satellites over "
          f"{legacy.paged_area_km2 / 1e6:.1f}M km^2; geospatial cell "
          f"pages {spacecore.transmitting_satellites:.0f} over "
          f"{spacecore.paged_area_km2 / 1e6:.1f}M km^2")
    assert (spacecore.transmitting_satellites
            < legacy.transmitting_satellites / 4)
