"""Fig. 21: user-level performance in satellite mobility."""

from repro.experiments import fig21_comparison, tcp_recovery_time_s


def test_fig21_stalling(benchmark):
    results = benchmark(fig21_comparison, 100)
    print("\nFig. 21 -- user-level stalls across one satellite pass:")
    for r in sorted(results, key=lambda r: r.tcp_stall_s):
        fate = "CONNECTION RESET" if r.connection_reset else "survives"
        print(f"  {r.solution:10s} outage={r.outage_s * 1000:7.1f} ms  "
              f"tcp stall={r.tcp_stall_s:5.2f}s  "
              f"ping stall={r.ping_stall_s:5.2f}s  {fate}")

    by_name = {r.solution: r for r in results}
    # SkyCore/Baoyun/DPCM re-allocate the IP -> TCP terminations.
    for name in ("SkyCore", "Baoyun", "DPCM"):
        assert by_name[name].connection_reset
    # 5G NTN and SpaceCore keep the address.
    assert not by_name["5G NTN"].connection_reset
    assert not by_name["SpaceCore"].connection_reset
    # SpaceCore stalls least; NTN stalls more (slow home signaling).
    assert by_name["SpaceCore"].tcp_stall_s == min(
        r.tcp_stall_s for r in results)
    assert by_name["5G NTN"].ping_stall_s > \
        by_name["SpaceCore"].ping_stall_s
    # Stalls outlast the raw outage (higher-layer recovery, S6.2).
    for r in results:
        assert r.tcp_stall_s >= r.outage_s


def test_tcp_rto_model(benchmark):
    import pytest

    stall = benchmark(tcp_recovery_time_s, 0.9)
    # 0.2 + 0.4 + 0.8 fires at 1.4 s, the first instant past 0.9 s.
    assert stall == pytest.approx(1.4)
