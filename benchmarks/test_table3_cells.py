"""Table 3: SpaceCore's geospatial cell sizes in real constellations."""

from repro.geo import GeospatialCellGrid
from repro.orbits import kuiper, oneweb, starlink

#: Paper's Table 3 (km^2), for shape reference in the printout.
PAPER_ROWS = {
    "Starlink": (93_382, 1_616_366, 471_476),
    "Kuiper": (116_716, 1_685_950, 526_697),
    "OneWeb": (336_294, 4_508_080, 1_573_215),
}


def compute_table3(samples=25_000):
    rows = {}
    for factory in (starlink, kuiper, oneweb):
        constellation = factory()
        grid = GeospatialCellGrid(constellation)
        rows[constellation.name] = grid.cell_size_statistics(samples)
    return rows


def test_table3_cell_sizes(benchmark):
    rows = benchmark.pedantic(compute_table3, rounds=1, iterations=1)
    print("\nTable 3 -- geospatial cell sizes (measured vs paper):")
    for name, stats in rows.items():
        p_min, p_max, p_avg = PAPER_ROWS[name]
        print(f"  {name:9s} min {stats.min_km2:>10.0f} "
              f"max {stats.max_km2:>10.0f} avg {stats.avg_km2:>10.0f} "
              f"| paper: {p_min} / {p_max} / {p_avg}")
        # Shape assertions: the 1e5-1e6 km^2 class with a wide spread.
        assert 1e5 < stats.avg_km2 < 3e6
        assert stats.max_km2 / stats.min_km2 > 5.0
    # Ordering: fewer satellites -> bigger average cells.
    assert (rows["OneWeb"].avg_km2 > rows["Starlink"].avg_km2)


def test_cell_lookup_throughput(benchmark):
    """Point-in-cell lookup is on every packet's fast path."""
    import math
    grid = GeospatialCellGrid(starlink())
    cell = benchmark(grid.cell_of, math.radians(39.9),
                     math.radians(116.4))
    assert 0 <= cell[0] < grid.num_columns
