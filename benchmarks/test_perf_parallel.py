"""Scaling benchmark: planned sharded runtime + vectorized cohort engine.

Three workloads, emitted to ``BENCH_scaling.json`` at the repo root:

* ``chaos_monte_carlo`` -- the seeded churn experiment, serial vs
  sharded across 4 workers (the artifacts are asserted bit-identical
  before any timing is trusted);
* ``signaling_sweep`` -- the Fig. 10/20 cartesian grid over every
  solution and Table 1 constellation, cold shard caches, serial vs
  sharded;
* ``cohort_engine`` -- population-scale load points at 10K/100K/1M
  UEs with UEs/s and events/s throughputs.  Each population is timed
  construction + run with freshly cleared shard caches and its own
  seed, after one warm-up run has paid the lazy ``numpy.random``
  import -- earlier revisions timed a cache hit here, not the engine.

The serial legs run first on purpose: they seed the planner's
per-label cost priors, so the sharded legs dispatch every item to the
pool immediately instead of probing one in-process (a probe of one
~1 s chaos trial would cap the 8-trial speedup below 3x on 4 workers).

The planner's decision log, calibration, and counters ride along in
the ``planner`` section and the full log lands in
``BENCH_planner_log.json`` for the CI artifact.

Floors: the 1M-UE cohort load point must finish in < 10 s anywhere.
On hosts with >= 4 usable cores the Monte Carlo speedup must be
>= 3x and the 80-point sweep must not regress below 0.95x (the
planner may legitimately fold it back to serial; it must never make
it slower).  A single-core container records the honest serial
numbers instead of faking a parallel win.
"""

import json
import os
import time
from pathlib import Path

from repro.baselines.solutions import ALL_SOLUTIONS
from repro.experiments.chaos_availability import (
    ChaosScenario,
    run_chaos_trials,
)
from repro.experiments.signaling import sweep
from repro.orbits import TABLE1, starlink
from repro.runtime import (
    UECohortEngine,
    clear_shard_caches,
    planner_calibration,
    planner_decisions,
    planner_metrics_snapshot,
    pools_created,
    reset_planner,
    shutdown_worker_pools,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_scaling.json"
PLANNER_LOG_PATH = REPO_ROOT / "BENCH_planner_log.json"

WORKERS = 4
#: Two trials per worker at 4 workers: an even shard split, so the
#: ideal speedup is 4x and the 3x floor leaves headroom for pool
#: startup and worker-side imports.
CHAOS_TRIALS = 8
CHAOS_SCENARIO = ChaosScenario(horizon_s=1800.0, n_ues=16,
                               jam_start_s=300.0, jam_stop_s=900.0)
COHORT_POPULATIONS = (10_000, 100_000, 1_000_000)
COHORT_DURATION_S = 3600.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_scaling_benchmark():
    cores = _usable_cores()
    reset_planner()
    results = {"cores": cores, "workers": WORKERS}
    try:
        _run_benchmark(cores, results)
    finally:
        shutdown_worker_pools()


def _run_benchmark(cores, results):
    # -- chaos Monte Carlo: serial vs sharded --------------------------------
    serial_s, serial_mc = _timed(lambda: run_chaos_trials(
        n_trials=CHAOS_TRIALS, base_seed=0, scenario=CHAOS_SCENARIO,
        workers=1))
    sharded_s, sharded_mc = _timed(lambda: run_chaos_trials(
        n_trials=CHAOS_TRIALS, base_seed=0, scenario=CHAOS_SCENARIO,
        workers=WORKERS))
    # Never report a speedup for a run that changed the answer.
    assert sharded_mc.to_json() == serial_mc.to_json()
    faults = serial_mc.summary()["faults_injected"]
    results["chaos_monte_carlo"] = {
        "trials": CHAOS_TRIALS,
        "faults_injected": faults,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s,
        "serial_trials_per_s": CHAOS_TRIALS / serial_s,
        "sharded_trials_per_s": CHAOS_TRIALS / sharded_s,
    }

    # -- signaling sweep: cold caches, serial vs sharded ---------------------
    constellations = [factory() for factory in TABLE1.values()]

    def serial_sweep():
        clear_shard_caches()
        return sweep(ALL_SOLUTIONS, constellations, workers=1)

    def sharded_sweep():
        clear_shard_caches()
        return sweep(ALL_SOLUTIONS, constellations, workers=WORKERS)

    serial_s, serial_points = _timed(serial_sweep)
    sharded_s, sharded_points = _timed(sharded_sweep)
    assert sharded_points == serial_points
    results["signaling_sweep"] = {
        "design_points": len(serial_points),
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s,
        "serial_points_per_s": len(serial_points) / serial_s,
        "sharded_points_per_s": len(serial_points) / sharded_s,
    }

    # -- cohort engine: population-scale load points -------------------------
    constellation = starlink()
    # Warm-up pays one-time costs the engine merely triggers (the lazy
    # numpy.random import is ~8 ms, comparable to the 10K run itself).
    UECohortEngine(constellation, n_ues=10, seed=999).run(1.0)
    cohort_rows = {}
    for population_index, n_ues in enumerate(COHORT_POPULATIONS):
        # Cold shard caches and a per-population seed: every row pays
        # the dwell-time memo and draws fresh cohorts, so the numbers
        # measure the engine, not a cache hit from the previous row.
        clear_shard_caches()
        seed = population_index

        def build_and_run(n=n_ues, s=seed):
            engine = UECohortEngine(constellation, n_ues=n, seed=s)
            return engine.run(COHORT_DURATION_S)

        wall_s, stats = _timed(build_and_run)
        cohort_rows[str(n_ues)] = {
            "seed": seed,
            "wall_s": wall_s,
            "events": stats.events_total,
            "signaling_messages": stats.signaling_messages,
            "ues_per_s": n_ues / wall_s,
            "events_per_s": stats.events_total / wall_s,
        }
    results["cohort_engine"] = {
        "duration_s": COHORT_DURATION_S,
        "populations": cohort_rows,
    }

    # -- planner evidence ----------------------------------------------------
    decisions = planner_decisions()
    results["planner"] = {
        "calibration": planner_calibration(),
        "pools_created": pools_created(),
        "decisions": len(decisions),
        "sharded_runs": sum(1 for d in decisions
                            if d["mode"] == "sharded"),
        "serial_runs": sum(1 for d in decisions
                           if d["mode"] == "serial"),
        "by_label": _decisions_by_label(decisions),
    }
    PLANNER_LOG_PATH.write_text(json.dumps({
        "calibration": planner_calibration(),
        "decisions": decisions,
        "metrics": planner_metrics_snapshot(),
    }, indent=2) + "\n")

    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))

    # Acceptance floors for this PR's perf trajectory.
    assert cohort_rows["1000000"]["wall_s"] < 10.0
    if cores >= WORKERS:
        assert results["chaos_monte_carlo"]["speedup"] >= 3.0
        assert results["signaling_sweep"]["speedup"] >= 0.95


def _decisions_by_label(decisions):
    by_label = {}
    for d in decisions:
        row = by_label.setdefault(d["label"], {})
        key = f"{d['mode']}:{d['reason']}"
        row[key] = row.get(key, 0) + 1
    return by_label
