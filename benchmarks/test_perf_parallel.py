"""Scaling benchmark: sharded runtime + vectorized cohort engine.

Three workloads, emitted to ``BENCH_scaling.json`` at the repo root:

* ``chaos_monte_carlo`` -- the seeded churn experiment, serial vs
  sharded across 4 workers (the artifacts are asserted bit-identical
  before any timing is trusted);
* ``signaling_sweep`` -- the Fig. 10/20 cartesian grid over every
  solution and Table 1 constellation, cold shard caches, serial vs
  sharded;
* ``cohort_engine`` -- population-scale load points at 10K/100K/1M
  UEs with UEs/s and events/s throughputs.

Floors: the 1M-UE cohort load point must finish in < 10 s anywhere;
the >= 3x Monte Carlo speedup at 4 workers is asserted only when the
machine actually has >= 4 usable cores (a single-core container
records the honest numbers instead of faking a parallel win).
"""

import json
import os
import time
from pathlib import Path

from repro.baselines.solutions import ALL_SOLUTIONS
from repro.experiments.chaos_availability import (
    ChaosScenario,
    run_chaos_trials,
)
from repro.experiments.signaling import sweep
from repro.orbits import TABLE1, starlink
from repro.runtime import UECohortEngine, clear_shard_caches

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_scaling.json"

WORKERS = 4
#: Two trials per worker at 4 workers: an even shard split, so the
#: ideal speedup is 4x and the 3x floor leaves headroom for pool
#: startup and worker-side imports.
CHAOS_TRIALS = 8
CHAOS_SCENARIO = ChaosScenario(horizon_s=1800.0, n_ues=16,
                               jam_start_s=300.0, jam_stop_s=900.0)
COHORT_POPULATIONS = (10_000, 100_000, 1_000_000)
COHORT_DURATION_S = 3600.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_scaling_benchmark():
    cores = _usable_cores()
    results = {"cores": cores, "workers": WORKERS}

    # -- chaos Monte Carlo: serial vs sharded --------------------------------
    serial_s, serial_mc = _timed(lambda: run_chaos_trials(
        n_trials=CHAOS_TRIALS, base_seed=0, scenario=CHAOS_SCENARIO,
        workers=1))
    sharded_s, sharded_mc = _timed(lambda: run_chaos_trials(
        n_trials=CHAOS_TRIALS, base_seed=0, scenario=CHAOS_SCENARIO,
        workers=WORKERS))
    # Never report a speedup for a run that changed the answer.
    assert sharded_mc.to_json() == serial_mc.to_json()
    faults = serial_mc.summary()["faults_injected"]
    results["chaos_monte_carlo"] = {
        "trials": CHAOS_TRIALS,
        "faults_injected": faults,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s,
        "serial_trials_per_s": CHAOS_TRIALS / serial_s,
        "sharded_trials_per_s": CHAOS_TRIALS / sharded_s,
    }

    # -- signaling sweep: cold caches, serial vs sharded ---------------------
    constellations = [factory() for factory in TABLE1.values()]

    def serial_sweep():
        clear_shard_caches()
        return sweep(ALL_SOLUTIONS, constellations, workers=1)

    def sharded_sweep():
        clear_shard_caches()
        return sweep(ALL_SOLUTIONS, constellations, workers=WORKERS)

    serial_s, serial_points = _timed(serial_sweep)
    sharded_s, sharded_points = _timed(sharded_sweep)
    assert sharded_points == serial_points
    results["signaling_sweep"] = {
        "design_points": len(serial_points),
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s,
        "serial_points_per_s": len(serial_points) / serial_s,
        "sharded_points_per_s": len(serial_points) / sharded_s,
    }

    # -- cohort engine: population-scale load points -------------------------
    constellation = starlink()
    cohort_rows = {}
    for n_ues in COHORT_POPULATIONS:
        engine = UECohortEngine(constellation, n_ues=n_ues, seed=0)
        wall_s, stats = _timed(lambda e=engine: e.run(COHORT_DURATION_S))
        cohort_rows[str(n_ues)] = {
            "wall_s": wall_s,
            "events": stats.events_total,
            "signaling_messages": stats.signaling_messages,
            "ues_per_s": n_ues / wall_s,
            "events_per_s": stats.events_total / wall_s,
        }
    results["cohort_engine"] = {
        "duration_s": COHORT_DURATION_S,
        "populations": cohort_rows,
    }

    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))

    # Acceptance floors for this PR's perf trajectory.
    assert cohort_rows["1000000"]["wall_s"] < 10.0
    if cores >= WORKERS:
        assert results["chaos_monte_carlo"]["speedup"] >= 3.0
