"""Fig. 5: bottlenecks from space-terrestrial asymmetry."""

import pytest

from repro.experiments import (
    deadline_violation_factor,
    gateway_concentration,
    registration_delay_cdf,
)
from repro.orbits import starlink


def test_fig5a_gateway_concentration(benchmark):
    conc = benchmark(gateway_concentration, starlink())
    print(f"\nFig. 5a -- gateway concentration: busiest gateway serves "
          f"{conc.max_satellites} satellites vs {conc.mean_satellites:.1f}"
          f" mean ({conc.concentration_factor:.1f}x)")
    assert conc.concentration_factor > 2.0


def test_fig5b_registration_latency_cdf(benchmark):
    cdfs = benchmark.pedantic(
        lambda: {src: registration_delay_cdf(src, 2000)
                 for src in ("inmarsat-explorer-710", "tiantong-sc310")},
        rounds=1, iterations=1)
    print("\nFig. 5b -- registration signaling latency CDF:")
    for source, cdf in cdfs.items():
        quartiles = [cdf[int(len(cdf) * q)][0] for q in (0.25, 0.5,
                                                         0.75)]
        mean = sum(d for d, _ in cdf) / len(cdf)
        print(f"  {source:22s} p25={quartiles[0]:5.1f}s "
              f"p50={quartiles[1]:5.1f}s p75={quartiles[2]:5.1f}s "
              f"mean={mean:5.1f}s")
    inmarsat_mean = sum(d for d, _ in cdfs["inmarsat-explorer-710"]) / 2000
    tiantong_mean = sum(d for d, _ in cdfs["tiantong-sc310"]) / 2000
    # Paper: 9.5 s and 13.5 s average registration delays.
    assert inmarsat_mean == pytest.approx(9.5, rel=0.1)
    assert tiantong_mean == pytest.approx(13.5, rel=0.1)
    # Tiantong is consistently slower, matching Fig. 5b's CDFs.
    assert tiantong_mean > inmarsat_mean


def test_deadline_gap(benchmark):
    """S2.2: such latency cannot meet 5G's <10 ms deadlines."""
    factor = benchmark(deadline_violation_factor, "inmarsat-explorer-710")
    print(f"\nRegistration median sits {factor:.0f}x over the 10 ms "
          "baseband deadline")
    assert factor > 100
