"""Fig. 13: intermittent failures in mobile satellites."""

import pytest

from repro.faults import (
    GilbertElliottChannel,
    procedure_success_probability,
    satellite_decay_series,
)


def test_fig13a_satellite_decay(benchmark):
    series = benchmark(satellite_decay_series, 1584, 24)
    print("\nFig. 13a -- Starlink satellite decay (monthly additions, "
          "cumulative):")
    for s in series[::4]:
        print(f"  month {s.month:2d}: +{s.additions:3d} "
              f"accumulated={s.accumulated:3d}")
    final = series[-1].accumulated
    print(f"  -> {final}/1584 failed "
          f"({final / 1584 * 100:.1f}%; paper: ~1 in 40)")
    assert final / 1584 == pytest.approx(1 / 40, rel=0.5)
    accumulated = [s.accumulated for s in series]
    assert accumulated == sorted(accumulated)


def test_fig13b_radio_link_failures(benchmark):
    channel = GilbertElliottChannel(seed=11)
    series = benchmark.pedantic(channel.series, args=(1200,),
                                rounds=1, iterations=1)
    print("\nFig. 13b -- frame error rate over 1200 s (Tiantong-style "
          "bursts):")
    for i in range(0, 1200, 120):
        window = series[i:i + 120]
        peak = max(window)
        print(f"  t={i:4d}s window peak FER {peak * 100:5.1f}%")
    # Bursts reach tens of percent; quiescent FER is near zero.
    assert max(series) > 0.3
    assert min(series) < 0.01


def test_procedure_fragility(benchmark):
    """S3.3: any signaling loss can block the whole procedure."""
    result = benchmark(procedure_success_probability, 18, 0.05)
    short = procedure_success_probability(4, 0.05)
    print(f"\nSurvival at 5% loss: 18-msg flow {result * 100:.1f}% vs "
          f"4-msg flow {short * 100:.1f}%")
    assert result < short
