"""Fig. 19: leaked sensitive states under satellite attacks."""

from repro.experiments import fig19_study, final_hijack_leaks
from repro.orbits import starlink


def test_fig19_leakage(benchmark):
    study = benchmark.pedantic(fig19_study, args=(starlink(),),
                               kwargs={"capacity": 30_000,
                                       "duration_s": 6000.0},
                               rounds=1, iterations=1)

    print("\nFig. 19a -- cumulative leaked states under hijacking "
          "(100 min):")
    finals = final_hijack_leaks(study)
    for name, total in sorted(finals.items(), key=lambda kv: kv[1]):
        print(f"  {name:10s} {total:12.2e}")
    print("\nFig. 19b -- man-in-the-middle leak rate (no IPsec):")
    for name, rate in sorted(study.mitm_rates.items(),
                             key=lambda kv: kv[1]):
        print(f"  {name:10s} {rate:10.1f} states/s")

    # Hijacking: SkyCore's pre-provisioned vectors are catastrophic
    # (the 1e8 axis); SpaceCore leaks only serving-session keys.
    assert finals["SkyCore"] > 1e7
    assert finals["SpaceCore"] == min(finals.values())
    assert finals["SkyCore"] / finals["SpaceCore"] > 1e3

    # SpaceCore's curve flattens after revocation; Baoyun's keeps
    # growing as the satellite sweeps new users.
    sc = study.hijack_series["SpaceCore"]
    by = study.hijack_series["Baoyun"]
    assert sc[-1][1] == sc[len(sc) // 2][1]
    assert by[-1][1] > by[len(by) // 2][1]

    # MITM: SpaceCore's replicas are end-to-end encrypted.
    assert study.mitm_rates["SpaceCore"] == min(
        study.mitm_rates.values())
    assert study.mitm_rates["SkyCore"] == max(
        study.mitm_rates.values())
