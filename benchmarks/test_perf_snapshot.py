"""Geometry hot-path micro-benchmark: scalar baseline vs snapshot layer.

Seeds the perf trajectory for the routing/coverage hot path.  Three
workloads, each timed against a faithful replica of the pre-snapshot
scalar code:

* ``pass_schedule`` over a Starlink UE (one serving-satellite query
  per 5 s timestep vs one vectorised time-grid kernel);
* ``coverage_statistics`` at one latitude (per-step visibility scan vs
  the time-grid kernel);
* a 1k-packet ``GeospatialRouter`` sweep at fixed t (per-hop
  ``propagator.state()`` trigonometry vs indexed snapshot reads).

Emits ``BENCH_geometry.json`` at the repo root with queries/sec and
speedups, and asserts the acceptance floors (>= 10x geometry sweeps,
>= 3x routing).
"""

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.orbits import make_propagator, starlink
from repro.orbits.coordinates import central_angle, distance3, wrap_signed
from repro.orbits.coverage import (
    coverage_half_angle,
    pass_schedule,
)
from repro.orbits.snapshot import clear_snapshot_cache
from repro.orbits.visibility import coverage_statistics
from repro.topology.grid import GridTopology
from repro.topology.links import propagation_delay_s
from repro.topology.routing import GeospatialRouter, RouteResult

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_geometry.json"

BEIJING = (math.radians(39.9), math.radians(116.4))

PASS_WINDOW_S = 5700.0
PASS_STEP_S = 5.0
COVERAGE_DURATION_S = 5700.0
COVERAGE_STEP_S = 30.0
ROUTING_PACKETS = 1000
ROUTING_T = 300.0


# ---------------------------------------------------------------------------
# Pre-snapshot scalar baselines (faithful replicas of the seed code)
# ---------------------------------------------------------------------------

def _scalar_serving(propagator, t, ue_lat, ue_lon, min_elevation_deg=None):
    c = propagator.constellation
    if min_elevation_deg is None:
        min_elevation_deg = c.min_elevation_deg
    theta = coverage_half_angle(c.altitude_km, min_elevation_deg)
    subs = propagator.subpoints(t)
    dlat = subs[:, 0] - ue_lat
    dlon = subs[:, 1] - ue_lon
    h = (np.sin(dlat / 2.0) ** 2
         + np.cos(subs[:, 0]) * math.cos(ue_lat) * np.sin(dlon / 2.0) ** 2)
    ang = 2.0 * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))
    best = int(np.argmin(ang))
    if ang[best] > theta:
        return -1
    return best


def _scalar_visible_count(propagator, t, ue_lat, ue_lon):
    c = propagator.constellation
    theta = coverage_half_angle(c.altitude_km, c.min_elevation_deg)
    subs = propagator.subpoints(t)
    dlat = subs[:, 0] - ue_lat
    dlon = subs[:, 1] - ue_lon
    h = (np.sin(dlat / 2.0) ** 2
         + np.cos(subs[:, 0]) * math.cos(ue_lat) * np.sin(dlon / 2.0) ** 2)
    ang = 2.0 * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))
    return int((ang <= theta).sum())


def _scalar_pass_schedule(propagator, ue_lat, ue_lon, t_start, t_end,
                          step_s):
    passes = []
    current_sat = -2
    run_start = t_start
    t = t_start
    while t <= t_end:
        sat = _scalar_serving(propagator, t, ue_lat, ue_lon)
        if sat != current_sat:
            if current_sat >= 0:
                passes.append((run_start, t, current_sat))
            current_sat = sat
            run_start = t
        t += step_s
    if current_sat >= 0:
        passes.append((run_start, min(t, t_end), current_sat))
    return passes


def _scalar_coverage_statistics(constellation, lat_deg, duration_s, step_s):
    from repro.orbits.propagator import IdealPropagator
    propagator = IdealPropagator(constellation)
    lat = math.radians(lat_deg)
    lon = 0.0
    covered = 0
    visible_total = 0
    samples = 0
    gap = 0.0
    max_gap = 0.0
    t = 0.0
    while t <= duration_s:
        count = _scalar_visible_count(propagator, t, lat, lon)
        samples += 1
        visible_total += count
        if count > 0:
            covered += 1
            gap = 0.0
        else:
            gap += step_s
            max_gap = max(max_gap, gap)
        t += step_s
    return covered / samples, visible_total / samples, max_gap


class _ScalarRouter(GeospatialRouter):
    """Pre-snapshot Algorithm 1: per-hop propagator.state() trig."""

    def _sat_position(self, sat, t):
        plane, slot = self.topology.constellation.plane_slot(sat)
        return self.topology.propagator.state(plane, slot,
                                              t).position_ecef()

    def covers(self, sat, dest_lat, dest_lon, t):
        plane, slot = self.topology.constellation.plane_slot(sat)
        sat_lat, sat_lon = self.topology.propagator.state(
            plane, slot, t).subpoint()
        return (central_angle(sat_lat, sat_lon, dest_lat, dest_lon)
                <= self.coverage_angle)

    def _hop_offsets(self, sat, dest_lat, dest_lon, t):
        c = self.topology.constellation
        plane, slot = c.plane_slot(sat)
        state = self.topology.propagator.state(plane, slot, t)
        alpha_s = state.raan_ecef
        gamma_s = state.arg_latitude
        best = None
        best_metric = math.inf
        for alpha_d, gamma_d in self.system.both_representations(
                dest_lat, dest_lon):
            da = wrap_signed(alpha_d - alpha_s) / c.delta_raan
            dg = wrap_signed(gamma_d - gamma_s) / c.delta_phase
            metric = abs(da) + abs(dg)
            if metric < best_metric:
                best_metric = metric
                best = (da, dg)
        return best

    def next_hop(self, sat, dest_lat, dest_lon, t):
        da, dg = self._hop_offsets(sat, dest_lat, dest_lon, t)
        if abs(da) < 0.5 and abs(dg) < 0.5:
            return None
        neighbors = self.topology.directional_neighbors(sat)
        if abs(da) > abs(dg):
            direction = "right" if da > 0 else "left"
        else:
            direction = "up" if dg > 0 else "down"
        return neighbors[direction]

    def _nearly_covers(self, sat, dest_lat, dest_lon, t):
        plane, slot = self.topology.constellation.plane_slot(sat)
        sat_lat, sat_lon = self.topology.propagator.state(
            plane, slot, t).subpoint()
        return (central_angle(sat_lat, sat_lon, dest_lat, dest_lon)
                <= self.coverage_angle * self.degraded_slack)

    def _best_live_neighbor(self, sat, dest_lat, dest_lon, t, visited):
        best = None
        best_metric = math.inf
        for nbr in self.topology.isl_neighbors(sat):
            if nbr in visited:
                continue
            da, dg = self._hop_offsets(nbr, dest_lat, dest_lon, t)
            metric = abs(da) + abs(dg)
            if metric < best_metric:
                best_metric = metric
                best = nbr
        return best

    def route(self, src_sat, dest_lat, dest_lon, t):
        topo = self.topology
        path = [src_sat]
        visited = {src_sat}
        delay = 0.0
        distance = 0.0
        current = src_sat
        for _ in range(self.max_hops):
            if self.covers(current, dest_lat, dest_lon, t):
                return RouteResult(True, path, delay, distance)
            preferred = self.next_hop(current, dest_lat, dest_lon, t)
            if preferred is None:
                if self._nearly_covers(current, dest_lat, dest_lon, t):
                    return RouteResult(True, path, delay, distance,
                                       degraded=True)
                preferred = self._best_live_neighbor(current, dest_lat,
                                                     dest_lon, t, visited)
            if (preferred is None or preferred in visited
                    or not topo.isl_up(current, preferred)):
                preferred = self._best_live_neighbor(current, dest_lat,
                                                     dest_lon, t, visited)
            if preferred is None:
                return RouteResult(False, path, delay, distance)
            hop_km = distance3(self._sat_position(current, t),
                               self._sat_position(preferred, t))
            delay += propagation_delay_s(hop_km)
            distance += hop_km
            current = preferred
            path.append(current)
            visited.add(current)
        return RouteResult(False, path, delay, distance)


# ---------------------------------------------------------------------------
# Timing harness
# ---------------------------------------------------------------------------

def _best_of(fn, repeats=3):
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _routing_destinations(count, seed=11):
    rng = np.random.default_rng(seed)
    lats = np.radians(rng.uniform(-52.0, 52.0, count))
    lons = np.radians(rng.uniform(-180.0, 180.0, count))
    return list(zip(map(float, lats), map(float, lons)))


def test_geometry_hot_path_speedups():
    constellation = starlink()
    propagator = make_propagator(constellation, "ideal")
    results = {}

    # -- pass_schedule -------------------------------------------------------
    timesteps = len(np.arange(0.0, PASS_WINDOW_S + PASS_STEP_S, PASS_STEP_S))
    scalar_s, scalar_passes = _best_of(
        lambda: _scalar_pass_schedule(propagator, *BEIJING, 0.0,
                                      PASS_WINDOW_S, PASS_STEP_S),
        repeats=2)
    clear_snapshot_cache()
    snap_s, snap_passes = _best_of(
        lambda: pass_schedule(propagator, *BEIJING, 0.0, PASS_WINDOW_S,
                              step_s=PASS_STEP_S))
    assert snap_passes == scalar_passes
    results["pass_schedule"] = {
        "timesteps": timesteps,
        "scalar_s": scalar_s,
        "snapshot_s": snap_s,
        "speedup": scalar_s / snap_s,
        "scalar_queries_per_s": timesteps / scalar_s,
        "snapshot_queries_per_s": timesteps / snap_s,
    }

    # -- coverage_statistics -------------------------------------------------
    samples = len(np.arange(0.0, COVERAGE_DURATION_S + COVERAGE_STEP_S,
                            COVERAGE_STEP_S))
    scalar_s, scalar_stats = _best_of(
        lambda: _scalar_coverage_statistics(constellation, 45.0,
                                            COVERAGE_DURATION_S,
                                            COVERAGE_STEP_S),
        repeats=2)
    clear_snapshot_cache()
    snap_s, snap_stats = _best_of(
        lambda: coverage_statistics(constellation, 45.0,
                                    duration_s=COVERAGE_DURATION_S,
                                    step_s=COVERAGE_STEP_S))
    assert snap_stats.coverage_fraction == scalar_stats[0]
    assert snap_stats.mean_visible == scalar_stats[1]
    assert snap_stats.max_gap_s == scalar_stats[2]
    results["coverage_statistics"] = {
        "timesteps": samples,
        "scalar_s": scalar_s,
        "snapshot_s": snap_s,
        "speedup": scalar_s / snap_s,
        "scalar_queries_per_s": samples / scalar_s,
        "snapshot_queries_per_s": samples / snap_s,
    }

    # -- 1k-packet routing sweep at fixed t ---------------------------------
    topology = GridTopology(propagator, [])
    destinations = _routing_destinations(ROUTING_PACKETS)
    src = _scalar_serving(propagator, ROUTING_T, *BEIJING)
    assert src >= 0

    def scalar_sweep():
        router = _ScalarRouter(topology, max_hops=512)
        return [router.route(src, lat, lon, ROUTING_T)
                for lat, lon in destinations]

    def snapshot_sweep():
        clear_snapshot_cache()
        router = GeospatialRouter(topology, max_hops=512)
        return [router.route(src, lat, lon, ROUTING_T)
                for lat, lon in destinations]

    scalar_s, scalar_routes = _best_of(scalar_sweep, repeats=2)
    snap_s, snap_routes = _best_of(snapshot_sweep)
    assert ([r.path for r in snap_routes]
            == [r.path for r in scalar_routes])
    delivered = sum(1 for r in snap_routes if r.delivered)
    results["routing_sweep"] = {
        "packets": ROUTING_PACKETS,
        "delivered": delivered,
        "scalar_s": scalar_s,
        "snapshot_s": snap_s,
        "speedup": scalar_s / snap_s,
        "scalar_packets_per_s": ROUTING_PACKETS / scalar_s,
        "snapshot_packets_per_s": ROUTING_PACKETS / snap_s,
    }

    results["constellation"] = constellation.name
    results["total_satellites"] = constellation.total_satellites
    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))

    # Acceptance floors for this PR's perf trajectory.
    assert results["pass_schedule"]["speedup"] >= 10.0
    assert results["coverage_statistics"]["speedup"] >= 10.0
    assert results["routing_sweep"]["speedup"] >= 3.0
