"""Table 1: LEO mega-constellation parameters and derived dynamics."""

import pytest

from repro.orbits import TABLE1, IdealPropagator, mean_dwell_time_s


def build_table1():
    rows = []
    for name, factory in TABLE1.items():
        c = factory()
        rows.append({
            "constellation": name,
            "sats_per_orbit": c.sats_per_plane,
            "orbits": c.num_planes,
            "total": c.total_satellites,
            "altitude_km": c.altitude_km,
            "inclination_deg": c.inclination_deg,
            "speed_km_s": round(c.speed_km_s, 2),
            "dwell_s": round(mean_dwell_time_s(c), 1),
        })
    return rows


def test_table1(benchmark):
    rows = benchmark(build_table1)
    print("\nTable 1 -- LEO satellite mega-constellations:")
    for row in rows:
        print("  {constellation:9s} n={sats_per_orbit:3d} m={orbits:3d} "
              "total={total:5d} H={altitude_km:6.0f} km "
              "i={inclination_deg:5.1f} v={speed_km_s} km/s "
              "dwell={dwell_s}s".format(**row))
    by_name = {r["constellation"]: r for r in rows}
    # Paper values, verbatim.
    assert by_name["Starlink"]["total"] == 1584
    assert by_name["OneWeb"]["total"] == 720
    assert by_name["Kuiper"]["total"] == 1156
    assert by_name["Iridium"]["total"] == 66
    assert by_name["Starlink"]["speed_km_s"] == pytest.approx(7.6,
                                                              abs=0.05)
    # The S3.2 dwell transient for Starlink.
    assert by_name["Starlink"]["dwell_s"] == pytest.approx(165.8, rel=0.05)


def test_propagation_throughput(benchmark):
    """Substrate speed: full-constellation position computation."""
    propagator = IdealPropagator(TABLE1["Starlink"]())
    result = benchmark(propagator.positions_ecef, 1234.5)
    assert result.shape == (1584, 3)
