"""Fig. 10: signaling overhead of the four placement options, per
satellite and per ground station, across four constellations."""

from repro.baselines import ALL_OPTIONS
from repro.constants import SATELLITE_CAPACITIES
from repro.experiments.signaling import signaling_load
from repro.orbits import TABLE1

from conftest import gateway_set


def compute_fig10(hops_by_constellation):
    loads = []
    for name, factory in TABLE1.items():
        constellation = factory()
        stations = gateway_set(constellation)
        hops = hops_by_constellation[name]
        for option_factory in ALL_OPTIONS:
            option = option_factory()
            for capacity in SATELLITE_CAPACITIES:
                loads.append(signaling_load(option, constellation,
                                            capacity, stations, hops))
    return loads


def test_fig10(benchmark, hops_by_constellation):
    loads = benchmark.pedantic(compute_fig10,
                               args=(hops_by_constellation,),
                               rounds=1, iterations=1)
    assert len(loads) == 4 * 4 * 4

    print("\nFig. 10 -- per-satellite / per-GS signaling (cap 30K):")
    for load in loads:
        if load.capacity != 30_000:
            continue
        sess_sat, mob_sat = load.satellite_rows()
        sess_gs, mob_gs = load.ground_rows()
        print(f"  {load.constellation:9s} {load.solution:28s} "
              f"SAT sess={sess_sat:9.0f}/s mob={mob_sat:9.0f}/s | "
              f"GS sess={sess_gs:9.0f}/s mob={mob_gs:9.0f}/s")

    by_key = {(l.constellation, l.solution, l.capacity): l
              for l in loads}
    starlink_opt1 = by_key[("Starlink", "Option 1 (radio only)", 30_000)]
    starlink_opt3 = by_key[("Starlink",
                            "Option 3 (session & mobility)", 30_000)]
    starlink_opt4 = by_key[("Starlink", "Option 4 (all functions)",
                            30_000)]

    # S3.1: session storms of 1e3-1e5 per satellite for remote cores.
    sess_sat, _ = starlink_opt1.satellite_rows()
    assert 1e3 < sess_sat < 3e5
    # GS aggregates an order of magnitude more (except Option 4).
    assert (starlink_opt1.ground_station_per_s
            > starlink_opt1.satellite_mean_per_s)
    assert starlink_opt4.ground_station_per_s == 0.0
    # Option 3 adds mobility registrations on top of handovers.
    _, mob1 = starlink_opt1.satellite_rows()
    _, mob3 = starlink_opt3.satellite_rows()
    assert mob3 > mob1 > 0
    # Load scales with satellite capacity.
    for option_factory in ALL_OPTIONS:
        name = option_factory().name
        series = [by_key[("Starlink", name, cap)].satellite_mean_per_s
                  for cap in SATELLITE_CAPACITIES]
        assert series == sorted(series)
