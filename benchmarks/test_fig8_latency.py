"""Fig. 8: signaling latency by satellite hardware under load."""

from repro.experiments import fig8_latency_sweep


def test_fig8_latency(benchmark):
    points = benchmark(fig8_latency_sweep)
    print("\nFig. 8 -- signaling latency vs rate (registration / "
          "session):")
    for p in points:
        flag = " SATURATED" if p.registration.saturated else ""
        print(f"  {p.platform:18s} {p.rate_per_s:4d}/s  "
              f"reg={p.registration.total_s:7.3f}s  "
              f"sess={p.session.total_s:7.3f}s{flag}")

    rpi = [p for p in points if "rpi" in p.platform]
    xeon = [p for p in points if "xeon" in p.platform]
    # Latency is monotone in rate on the slow platform.
    rpi_reg = [p.registration.total_s for p in rpi]
    assert rpi_reg == sorted(rpi_reg)
    # Fig. 8a: hardware 1 reaches multi-second latency at high rates,
    # hardware 2 stays flat (the paper's bar-height contrast).
    assert rpi[-1].registration.total_s > 1.0
    assert xeon[-1].registration.total_s < rpi[-1].registration.total_s
    # Sessions cost less than registrations at the same rate
    # (fewer satellite-side messages per procedure).
    assert rpi[0].session.total_s <= rpi[0].registration.total_s * 2
