"""Fig. 17: prototype latency and satellite CPU, five solutions x
three procedures."""

from repro.experiments import fig17_sweep, session_latency_comparison
from repro.fiveg.messages import ProcedureKind


def test_fig17_full_grid(benchmark):
    points = benchmark(fig17_sweep, (100, 200, 300, 400, 500))
    assert len(points) == 5 * 3 * 5

    print("\nFig. 17 -- prototype latency / satellite CPU "
          "(hardware 1):")
    for kind in (ProcedureKind.INITIAL_REGISTRATION,
                 ProcedureKind.SESSION_ESTABLISHMENT,
                 ProcedureKind.MOBILITY_REGISTRATION):
        print(f"  -- {kind.value} --")
        for p in points:
            if p.procedure is kind and p.rate_per_s in (100, 500):
                flag = " SAT" if p.saturated else ""
                print(f"    {p.solution:10s} @{p.rate_per_s:3d}/s  "
                      f"lat={p.latency_s:7.3f}s  "
                      f"cpu={p.satellite_cpu_percent:5.1f}%{flag}")

    by = {(p.solution, p.procedure, p.rate_per_s): p for p in points}
    reg, sess, mob = (ProcedureKind.INITIAL_REGISTRATION,
                      ProcedureKind.SESSION_ESTABLISHMENT,
                      ProcedureKind.MOBILITY_REGISTRATION)

    # (a) Registration: SkyCore fastest (pre-stored state); SpaceCore
    # follows legacy 5G with reasonable delay and negligible CPU;
    # Baoyun/DPCM worst (home interplay + slow on-board functions).
    assert by[("SkyCore", reg, 300)].latency_s == min(
        by[(s, reg, 300)].latency_s
        for s in ("SpaceCore", "5G NTN", "SkyCore", "DPCM", "Baoyun"))
    assert by[("Baoyun", reg, 500)].latency_s > \
        by[("SpaceCore", reg, 500)].latency_s
    assert by[("SpaceCore", reg, 300)].satellite_cpu_percent < 10.0

    # (b) Session establishment: SpaceCore beats every home-routed
    # design; its overhead is just the local crypto.
    assert by[("SpaceCore", sess, 300)].latency_s < \
        by[("5G NTN", sess, 300)].latency_s
    assert by[("SpaceCore", sess, 300)].latency_s < \
        by[("Baoyun", sess, 300)].latency_s

    # (c) Mobility registration by LEO mobility: SpaceCore avoids the
    # procedure entirely -- zero delay, zero CPU.
    assert by[("SpaceCore", mob, 500)].latency_s == 0.0
    assert by[("SpaceCore", mob, 500)].satellite_cpu_percent == 0.0
    for other in ("5G NTN", "SkyCore", "DPCM", "Baoyun"):
        assert by[(other, mob, 500)].latency_s > 0.0


def test_fig17_session_headline(benchmark):
    """The S6.2 quote: SpaceCore's session latency reductions."""
    latencies = benchmark(session_latency_comparison, 300)
    print("\nSession-establishment latency @300/s:")
    for name, latency in sorted(latencies.items(),
                                key=lambda kv: kv[1]):
        ratio = latency / latencies["SpaceCore"]
        print(f"  {name:10s} {latency * 1000:9.1f} ms ({ratio:6.2f}x "
              "SpaceCore)")
    assert latencies["SpaceCore"] <= min(
        latencies[n] for n in ("5G NTN", "Baoyun"))
