"""Batch routing plane benchmark: Algorithm 1 at array speed.

Times four workloads on the 1584-satellite Starlink shell and emits
``BENCH_routing.json`` at the repo root:

* a 2k-packet scalar :class:`~repro.topology.routing.GeospatialRouter`
  sweep (the pre-batch baseline, one Python walk per packet);
* the same wave through
  :meth:`~repro.topology.batch_routing.BatchGeoRouter.route_batch`;
* a 1M-packet bulk wave through the batch plane (the Monte Carlo
  workload the plane exists for);
* an epoch sweep -- the Fig. 18b relay shape, per-packet epochs over
  an orbital period at the relay hop budget -- through
  :meth:`~repro.topology.batch_routing.BatchGeoRouter.route_sweep`
  against the scalar per-epoch relay loop it replaces.

Every batch result is asserted bit-identical to the scalar walk on a
sampled subset before any timing is trusted, so the speedup being
measured is the speedup of *the same answer*.

Acceptance floors (with the compiled kernel): >= 20x over the scalar
sweep, >= 1M routed packets/s on the bulk wave, and >= 10x on the
epoch sweep.  Without a C compiler the numpy fallback must still
clear 5x on the single-epoch sweep and 2x on the epoch sweep (the
per-epoch waves are two orders of magnitude smaller, so the numpy
walk amortises less per hop level).
"""

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.orbits import make_propagator, starlink
from repro.topology._walk_kernel import load_kernel
from repro.topology.batch_routing import BatchGeoRouter
from repro.topology.grid import GridTopology
from repro.topology.routing import RELAY_MAX_HOPS, GeospatialRouter

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_routing.json"

#: Smoke mode (CI shared runners): a 10x smaller bulk wave and no
#: absolute packets/s floor -- shared-runner clocks are not a perf
#: contract; the relative speedup floors still apply.
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

SWEEP_PACKETS = 2000
BULK_PACKETS = 100_000 if SMOKE else 1_000_000
ROUTING_T = 300.0
SEED = 11
EQUIVALENCE_SAMPLE = 500

#: Epoch-sweep row: the Fig. 18b relay shape scaled up -- packets
#: spread over an orbital period, routed per-epoch.
EPOCH_SWEEP_EPOCHS = 12
EPOCH_SWEEP_PER_EPOCH = 25 if SMOKE else 100
EPOCH_HORIZON_S = 5700.0


def _best_of(fn, repeats=3):
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _wave(constellation, packets, seed=SEED):
    rng = np.random.default_rng(seed)
    band = math.radians(min(constellation.inclination_deg,
                            180.0 - constellation.inclination_deg)) - 0.02
    src = rng.integers(0, constellation.total_satellites, packets)
    lats = rng.uniform(-band, band, packets)
    lons = rng.uniform(-math.pi, math.pi, packets)
    return src, lats, lons


def test_batch_routing_throughput():
    constellation = starlink()
    topology = GridTopology(make_propagator(constellation, "ideal"), [])
    scalar = GeospatialRouter(topology)
    batch = BatchGeoRouter(topology)
    kernel = load_kernel() is not None
    results = {
        "constellation": constellation.name,
        "total_satellites": constellation.total_satellites,
        "kernel": kernel,
        "smoke": SMOKE,
    }

    # -- bit-exactness gate before any timing --------------------------------
    src, lats, lons = _wave(constellation, SWEEP_PACKETS)
    wave = batch.route_batch(src, lats, lons, ROUTING_T)
    stride = max(1, SWEEP_PACKETS // EQUIVALENCE_SAMPLE)
    for i in range(0, SWEEP_PACKETS, stride):
        expected = scalar.route(int(src[i]), float(lats[i]),
                                float(lons[i]), ROUTING_T)
        assert bool(wave.delivered[i]) == expected.delivered
        assert float(wave.delay_s[i]) == expected.delay_s
        assert wave.path(i) == expected.path

    # -- scalar sweep baseline ----------------------------------------------
    def scalar_sweep():
        return [scalar.route(int(s), float(la), float(lo), ROUTING_T)
                for s, la, lo in zip(src, lats, lons)]

    scalar_s, scalar_routes = _best_of(scalar_sweep, repeats=2)
    results["scalar_sweep"] = {
        "packets": SWEEP_PACKETS,
        "seconds": scalar_s,
        "packets_per_s": SWEEP_PACKETS / scalar_s,
        "delivered": sum(1 for r in scalar_routes if r.delivered),
    }

    # -- same wave through the batch plane -----------------------------------
    batch_s, sweep_result = _best_of(
        lambda: batch.route_batch(src, lats, lons, ROUTING_T))
    speedup = scalar_s / batch_s
    results["batch_sweep"] = {
        "packets": SWEEP_PACKETS,
        "seconds": batch_s,
        "packets_per_s": SWEEP_PACKETS / batch_s,
        "delivered": int(sweep_result.delivered.sum()),
        "speedup_vs_scalar": speedup,
    }

    # -- 1M-packet bulk wave --------------------------------------------------
    bulk_src, bulk_lats, bulk_lons = _wave(constellation, BULK_PACKETS)
    bulk_s, bulk_result = _best_of(
        lambda: batch.route_batch(bulk_src, bulk_lats, bulk_lons,
                                  ROUTING_T))
    bulk_rate = BULK_PACKETS / bulk_s
    results["bulk_wave"] = {
        "packets": BULK_PACKETS,
        "seconds": bulk_s,
        "packets_per_s": bulk_rate,
        "delivered": int(bulk_result.delivered.sum()),
        "degraded": int(bulk_result.degraded.sum()),
        "scalar_fallbacks": int(bulk_result.fallback.sum()),
        "mean_hops": float(bulk_result.hops.mean()),
    }

    # -- epoch sweep (the relay pipeline's shape) -----------------------------
    n_sweep = EPOCH_SWEEP_EPOCHS * EPOCH_SWEEP_PER_EPOCH
    sw_src, sw_lats, sw_lons = _wave(constellation, n_sweep, seed=SEED + 1)
    grid = np.array([EPOCH_HORIZON_S * i / EPOCH_SWEEP_EPOCHS
                     for i in range(EPOCH_SWEEP_EPOCHS)])
    # Interleaved epochs (packet i departs at grid[i % epochs]): the
    # sweep must group them itself, like real mixed-epoch workloads.
    sw_ts = grid[np.arange(n_sweep) % EPOCH_SWEEP_EPOCHS]
    relay_scalar = GeospatialRouter(topology, max_hops=RELAY_MAX_HOPS)
    sweep_metrics = MetricsRegistry()
    sweeper = BatchGeoRouter(topology, max_hops=RELAY_MAX_HOPS,
                             metrics=sweep_metrics)

    swept = sweeper.route_sweep(sw_src, sw_lats, sw_lons, sw_ts)
    stride = max(1, n_sweep // EQUIVALENCE_SAMPLE)
    for i in range(0, n_sweep, stride):
        expected = relay_scalar.route(int(sw_src[i]), float(sw_lats[i]),
                                      float(sw_lons[i]), float(sw_ts[i]))
        assert bool(swept.delivered[i]) == expected.delivered
        assert float(swept.delay_s[i]) == expected.delay_s
        assert swept.path(i) == expected.path

    def scalar_epoch_loop():
        return [relay_scalar.route(int(s), float(la), float(lo), float(t))
                for s, la, lo, t in zip(sw_src, sw_lats, sw_lons, sw_ts)]

    scalar_sweep_s, _ = _best_of(scalar_epoch_loop, repeats=2)
    sweep_s, _ = _best_of(
        lambda: sweeper.route_sweep(sw_src, sw_lats, sw_lons, sw_ts))
    sweep_speedup = scalar_sweep_s / sweep_s
    # Sweep-sized table LRU: the timing repeats above re-ran the whole
    # sweep, yet every epoch's table was built exactly once.
    table_builds = int(sweep_metrics.counter_value("routing.table_builds"))
    results["epoch_sweep"] = {
        "epochs": EPOCH_SWEEP_EPOCHS,
        "packets": n_sweep,
        "max_hops": RELAY_MAX_HOPS,
        "scalar_seconds": scalar_sweep_s,
        "seconds": sweep_s,
        "packets_per_s": n_sweep / sweep_s,
        "speedup_vs_scalar": sweep_speedup,
        "table_builds": table_builds,
    }

    BENCH_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))

    assert table_builds == EPOCH_SWEEP_EPOCHS

    # Acceptance floors for this PR's perf trajectory.
    if kernel:
        assert speedup >= 20.0
        assert sweep_speedup >= 10.0
        if not SMOKE:
            assert bulk_rate >= 1_000_000.0
    else:
        assert speedup >= 5.0
        assert sweep_speedup >= 2.0
