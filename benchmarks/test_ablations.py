"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Stateless geospatial routing vs stateful Dijkstra (path stretch);
2. cell granularity vs detour probability (the S6.2 remark that finer
   cells -- more address bits -- remove Iridium's detours);
3. piggybacked state replica vs separate signaling round trips;
4. ABE policy size vs session-establishment overhead.
"""


import pytest

from repro.baselines import SPACECORE_CRYPTO_OVERHEAD_S
from repro.crypto import and_, attr, decrypt, encrypt, keygen, setup
from repro.experiments.relay import BEIJING, NEW_YORK
from repro.fiveg.messages import (
    SESSION_ESTABLISHMENT_FLOW,
    SPACECORE_SESSION_ESTABLISHMENT_FLOW,
)
from repro.orbits import (
    Constellation,
    IdealPropagator,
    serving_satellite,
    starlink,
)
from repro.topology import DijkstraRouter, GeospatialRouter, GridTopology


def test_ablation_routing_stretch(benchmark):
    """Algorithm 1 pays a small stretch for carrying zero state."""
    topology = GridTopology(IdealPropagator(starlink()), [])
    geo = GeospatialRouter(topology)
    dijkstra = DijkstraRouter(topology)

    def run():
        stretches = []
        for t in (0.0, 600.0, 1200.0):
            src = serving_satellite(topology.propagator, t, *BEIJING)
            dst = serving_satellite(topology.propagator, t, *NEW_YORK)
            g = geo.route(src, *NEW_YORK, t)
            d = dijkstra.route(src, dst, t)
            if g.delivered and d.delivered and d.delay_s > 0:
                stretches.append(g.delay_s / d.delay_s)
        return stretches

    stretches = benchmark.pedantic(run, rounds=1, iterations=1)
    mean = sum(stretches) / len(stretches)
    print(f"\nAblation 1 -- stateless routing stretch over Dijkstra: "
          f"mean {mean:.3f} over {len(stretches)} epochs")
    assert mean < 1.7


def test_ablation_cell_granularity(benchmark):
    """Finer grids (more satellites -> more address bits) shrink cells
    and with them the worst-case detour to the covering satellite."""
    def run():
        sizes = {}
        for planes, slots in ((6, 11), (24, 22), (72, 22)):
            shell = Constellation("ablation", slots, planes, 550.0, 53.0)
            from repro.geo import GeospatialCellGrid
            grid = GeospatialCellGrid(shell)
            stats = grid.cell_size_statistics(samples=6000)
            sizes[(planes, slots)] = stats.avg_km2
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    ordered = [sizes[k] for k in sorted(sizes, key=lambda k: k[0] * k[1])]
    print(f"\nAblation 2 -- avg cell size vs grid density: "
          f"{[round(s / 1e3) for s in ordered]}k km2")
    assert ordered[0] > ordered[-1]  # denser grid -> smaller cells


def test_ablation_piggyback_vs_roundtrips(benchmark):
    """Piggybacking the replica removes whole round trips: compare the
    localized 4-message flow against the legacy 18-message flow in
    both message count and bytes."""
    def run():
        legacy_msgs = len(SESSION_ESTABLISHMENT_FLOW)
        local_msgs = len(SPACECORE_SESSION_ESTABLISHMENT_FLOW)
        legacy_bytes = sum(m.size_bytes
                           for m in SESSION_ESTABLISHMENT_FLOW)
        local_bytes = sum(m.size_bytes
                          for m in SPACECORE_SESSION_ESTABLISHMENT_FLOW)
        return legacy_msgs, local_msgs, legacy_bytes, local_bytes

    legacy_msgs, local_msgs, legacy_bytes, local_bytes = benchmark(run)
    print(f"\nAblation 3 -- piggyback: {legacy_msgs} msgs -> "
          f"{local_msgs} msgs; {legacy_bytes} B -> {local_bytes} B")
    assert local_msgs <= legacy_msgs / 3
    # The replica makes individual messages bigger but the *exchange*
    # much smaller in round trips; total bytes stay comparable.
    assert local_bytes < legacy_bytes


def test_ablation_udsf_vs_device_repository(benchmark):
    """Footnote 3: the infrastructure-side UDSF alternative is slow.

    Fetching one session state from a ground-hosted UDSF pays the
    multi-hop space-ground RTT plus store access; the device replica
    pays only local crypto.
    """
    from repro.fiveg.nf.udsf import Udsf, compare_state_retrieval

    store = Udsf("ground-udsf", location_rtt_s=0.120)
    store.put("ue-1", b"state blob")

    def fetch():
        record = store.get("ue-1")
        return store.read_latency_s(), record

    (latency, record) = benchmark(fetch)
    udsf_latency, device_latency = compare_state_retrieval(
        udsf_rtt_s=0.120, local_crypto_s=SPACECORE_CRYPTO_OVERHEAD_S)
    print(f"\nAblation 5 -- state retrieval: UDSF "
          f"{udsf_latency * 1000:.1f} ms vs device replica "
          f"{device_latency * 1000:.1f} ms")
    assert record is not None
    assert device_latency < udsf_latency / 10


@pytest.mark.parametrize("attributes", [2, 6, 12])
def test_ablation_abe_policy_size(benchmark, attributes):
    """Richer access policies cost more crypto per establishment but
    stay far below one saved ground round trip (~60 ms)."""
    _, msk = setup(b"ablation-secret")
    policy = and_(*[attr(f"a{i}") for i in range(attributes)])
    key = keygen(msk, [f"a{i}" for i in range(attributes)])
    blob = b"s" * 600

    def establish():
        ciphertext = encrypt(msk, blob, policy)
        return decrypt(key, ciphertext)

    result = benchmark(establish)
    assert result == blob
    assert benchmark.stats.stats.mean < SPACECORE_CRYPTO_OVERHEAD_S * 10
