"""Fig. 18a: local state processing cost vs number of attributes."""

import pytest

from repro.crypto import and_, attr, decrypt, encrypt, keygen, setup

STATE_BLOB = b"x" * 600  # a serialized S1-S5 bundle's size class


@pytest.fixture(scope="module")
def authority():
    return setup(b"benchmark-master-secret")


def _policy(n):
    return and_(*[attr(f"a{i}") for i in range(n)])


@pytest.mark.parametrize("attributes", [2, 4, 6, 8, 10])
def test_fig18a_encryption(benchmark, authority, attributes):
    _, msk = authority
    policy = _policy(attributes)
    ciphertext = benchmark(encrypt, msk, STATE_BLOB, policy)
    assert ciphertext.size_bytes() > len(STATE_BLOB)


@pytest.mark.parametrize("attributes", [2, 4, 6, 8, 10])
def test_fig18a_decryption(benchmark, authority, attributes):
    _, msk = authority
    policy = _policy(attributes)
    key = keygen(msk, [f"a{i}" for i in range(attributes)])
    ciphertext = encrypt(msk, STATE_BLOB, policy)
    plaintext = benchmark(decrypt, key, ciphertext)
    assert plaintext == STATE_BLOB


def test_fig18a_cost_grows_with_attributes(benchmark, authority):
    """The figure's shape: cost increases with the attribute count,
    staying in the sub-millisecond-to-millisecond range that makes it
    'marginal compared to the latency reductions' (S6.2)."""
    import time
    _, msk = authority

    def measure():
        timings = {}
        for n in (2, 10):
            policy = _policy(n)
            key = keygen(msk, [f"a{i}" for i in range(n)])
            start = time.perf_counter()
            for _ in range(30):
                ct = encrypt(msk, STATE_BLOB, policy)
                decrypt(key, ct)
            timings[n] = (time.perf_counter() - start) / 30
        return timings

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nFig. 18a -- enc+dec: 2 attrs {timings[2] * 1e6:.0f} us, "
          f"10 attrs {timings[10] * 1e6:.0f} us")
    assert timings[10] > timings[2]
    assert timings[10] < 0.050  # well under the saved round trips
