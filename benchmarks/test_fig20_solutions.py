"""Fig. 20: signaling overhead per satellite / ground station for the
five solutions across four constellations."""

from repro.baselines import ALL_SOLUTIONS
from repro.constants import SATELLITE_CAPACITIES
from repro.experiments.signaling import signaling_load
from repro.orbits import TABLE1

from conftest import gateway_set


def compute_fig20(hops_by_constellation):
    loads = []
    for name, factory in TABLE1.items():
        constellation = factory()
        stations = gateway_set(constellation)
        hops = hops_by_constellation[name]
        for solution_factory in ALL_SOLUTIONS:
            for capacity in SATELLITE_CAPACITIES:
                loads.append(signaling_load(
                    solution_factory(), constellation, capacity,
                    stations, hops))
    return loads


def test_fig20(benchmark, hops_by_constellation):
    loads = benchmark.pedantic(compute_fig20,
                               args=(hops_by_constellation,),
                               rounds=1, iterations=1)
    assert len(loads) == 4 * 5 * 4

    print("\nFig. 20 -- per-satellite / per-GS signaling (cap 30K):")
    for load in loads:
        if load.capacity != 30_000:
            continue
        print(f"  {load.constellation:9s} {load.solution:10s} "
              f"SAT {load.satellite_hotspot_per_s:10.0f}/s  "
              f"GS {load.ground_station_per_s:10.0f}/s")

    by_key = {(l.constellation, l.solution, l.capacity): l
              for l in loads}
    for constellation in TABLE1:
        sc = by_key[(constellation, "SpaceCore", 30_000)]
        # SpaceCore is the cheapest satellite load everywhere.
        for solution in ("5G NTN", "SkyCore", "DPCM", "Baoyun"):
            other = by_key[(constellation, solution, 30_000)]
            assert (other.satellite_hotspot_per_s
                    > sc.satellite_hotspot_per_s), (constellation,
                                                    solution)
        # SpaceCore and SkyCore leave ground stations nearly idle
        # (the figure's "None" panels); home-interacting designs
        # hammer them.
        ntn = by_key[(constellation, "5G NTN", 30_000)]
        sky = by_key[(constellation, "SkyCore", 30_000)]
        assert sky.ground_station_per_s == 0.0
        assert sc.ground_station_per_s < ntn.ground_station_per_s / 50
