"""Fig. 7: breakdown of satellite CPU usage by core functions."""

from repro.experiments import fig7_cpu_breakdown
from repro.hardware import RASPBERRY_PI_4, XEON_WORKSTATION


def test_fig7a_hardware1(benchmark):
    breakdowns = benchmark(fig7_cpu_breakdown, RASPBERRY_PI_4)
    print("\nFig. 7a -- satellite CPU by function (hardware 1, RPi 4):")
    for b in breakdowns:
        top = sorted(b.by_function.items(), key=lambda kv: -kv[1])[:4]
        parts = " ".join(f"{k}={v:.1f}%" for k, v in top)
        print(f"  {b.rate_per_s * 2:6.0f} reg/s total="
              f"{b.total_percent:5.1f}%  {parts}")
    # Utilisation grows monotonically with the registration rate.
    totals = [b.total_percent for b in breakdowns]
    assert totals == sorted(totals)
    # Hardware 1 approaches exhaustion at the top of the sweep (S3).
    assert totals[-1] > 60.0
    # AMF and AUSF are major consumers during registrations.
    final = breakdowns[-1].by_function
    assert final["AMF"] > 0 and final["AUSF"] > 0


def test_fig7b_hardware2(benchmark):
    breakdowns = benchmark(fig7_cpu_breakdown, XEON_WORKSTATION)
    print("\nFig. 7b -- satellite CPU by function (hardware 2, Xeon):")
    for b in breakdowns[-3:]:
        print(f"  {b.rate_per_s * 2:6.0f} reg/s total="
              f"{b.total_percent:5.1f}%")
    rpi = fig7_cpu_breakdown(RASPBERRY_PI_4)
    # The workstation runs the same load far cooler.
    assert breakdowns[-1].total_percent < rpi[-1].total_percent / 3
