"""Fig. 18b: geospatial relaying Beijing -> New York, ideal vs J4."""

from repro.experiments import compare_ideal_vs_j4
from repro.orbits import TABLE1


def compute_fig18b():
    return {name: compare_ideal_vs_j4(factory(), samples=16)
            for name, factory in TABLE1.items()}


def test_fig18b_geospatial_relay(benchmark):
    rows = benchmark.pedantic(compute_fig18b, rounds=1, iterations=1)
    print("\nFig. 18b -- Beijing->New York relay delay (one-way):")
    for name, row in rows.items():
        print(f"  {name:9s} ideal {row.mean_delay_ideal_ms:6.1f} ms | "
              f"J4 {row.mean_delay_j4_ms:6.1f} ms | delivery "
              f"{row.delivery_rate_ideal * 100:.0f}%/"
              f"{row.delivery_rate_j4 * 100:.0f}% | max J4 extra "
              f"{row.max_extra_delay_ms:6.1f} ms")

    for name, row in rows.items():
        # "Under both ideal and realistic orbits, Algorithm 1
        # guarantees traffic delivery."
        assert row.delivery_rate_ideal == 1.0, name
        assert row.delivery_rate_j4 == 1.0, name
        # "The path delays are similar in both scenarios."
        assert row.delays_similar, name
        # One-way delay in the tens-of-ms class the figure plots.
        assert 20.0 < row.mean_delay_ideal_ms < 200.0, name
