"""Legacy setup shim.

The offline environment ships setuptools 65 without the ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot
build.  ``python setup.py develop`` provides the same editable install
through the classic code path; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
