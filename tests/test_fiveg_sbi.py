"""Tests for the service-based interface layer."""

import pytest

from repro.fiveg import CoreNetwork
from repro.fiveg.sbi import SbiError, SbiResponse, ServiceMesh, build_core_mesh


class TestServiceMesh:
    def test_register_and_invoke(self):
        mesh = ServiceMesh()
        mesh.register("Test_Service", "producer-x",
                      lambda req: SbiResponse(200, {"echo":
                                                    req.payload["v"]}))
        response = mesh.invoke("Test_Service", "consumer-y", v=42)
        assert response.ok
        assert response.body["echo"] == 42

    def test_double_registration_rejected(self):
        mesh = ServiceMesh()
        mesh.register("S", "a", lambda req: SbiResponse(200))
        with pytest.raises(SbiError):
            mesh.register("S", "b", lambda req: SbiResponse(200))

    def test_unknown_service_rejected(self):
        with pytest.raises(SbiError):
            ServiceMesh().invoke("Nope_Service", "c")

    def test_producer_exception_becomes_500(self):
        mesh = ServiceMesh()

        def broken(request):
            raise RuntimeError("kaboom")

        mesh.register("S", "p", broken)
        response = mesh.invoke("S", "c")
        assert response.status == 500
        assert mesh.failure_counts() == {"S": 1}

    def test_invocation_counting(self):
        mesh = ServiceMesh()
        mesh.register("S", "p", lambda req: SbiResponse(200))
        for _ in range(3):
            mesh.invoke("S", "c")
        assert mesh.invocation_counts()["S"] == 3
        assert mesh.total_invocations() == 3

    def test_transport_latency_charged(self):
        charges = {"ground": 0.03}
        mesh = ServiceMesh(
            transport_latency=lambda consumer, producer:
            charges["ground"])
        mesh.register("S", "p", lambda req: SbiResponse(200))
        mesh.invoke("S", "c")
        mesh.invoke("S", "c")
        assert mesh.simulated_latency_s == pytest.approx(0.06)

    def test_deregister(self):
        mesh = ServiceMesh()
        mesh.register("S", "p", lambda req: SbiResponse(200))
        mesh.deregister("S")
        assert not mesh.is_registered("S")


class TestDeterministicObservability:
    """ISSUE 5 regression: the mesh never reads the wall clock."""

    def test_no_wallclock_in_module(self):
        """The old implementation stamped handler latency with
        ``time.perf_counter()`` -- non-reproducible wall-clock data
        inside the deterministic bus."""
        import inspect

        import repro.fiveg.sbi as sbi_module
        source = inspect.getsource(sbi_module)
        assert "perf_counter" not in source
        assert "import time" not in source

    def test_injected_clock_measures_handler_latency(self):
        ticks = {"t": 0.0}

        def clock():
            # Each read advances the fake simulated clock, so one
            # invocation spans exactly 1.0 simulated seconds.
            ticks["t"] += 1.0
            return ticks["t"]

        mesh = ServiceMesh(clock=clock)
        mesh.register("S", "p", lambda req: SbiResponse(200))
        mesh.invoke("S", "c")
        snapshot = mesh.metrics.snapshot()
        series = snapshot["histograms"]["sbi.latency_s{service=S}"]
        assert series["count"] == 1
        assert series["sum"] == pytest.approx(1.0)

    def test_no_clock_means_no_latency_series(self):
        mesh = ServiceMesh()
        mesh.register("S", "p", lambda req: SbiResponse(200))
        mesh.invoke("S", "c")
        assert mesh.metrics.snapshot()["histograms"] == {}
        assert mesh.invocation_counts()["S"] == 1

    def test_identical_runs_produce_identical_snapshots(self):
        import json

        def run():
            mesh = ServiceMesh(clock=lambda: 0.0)
            mesh.register("S", "p", lambda req: SbiResponse(200))
            mesh.register("F", "p", lambda req: SbiResponse(503))
            for _ in range(3):
                mesh.invoke("S", "c")
            mesh.invoke("F", "c")
            return json.dumps(mesh.metrics.snapshot(), sort_keys=True)

        assert run() == run()

    def test_shared_registry_accumulates_across_meshes(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        for _ in range(2):
            mesh = ServiceMesh(metrics=registry)
            mesh.register("S", "p", lambda req: SbiResponse(200))
            mesh.invoke("S", "c")
        assert registry.counter_value("sbi.invocations",
                                      service="S") == 2


class TestCoreMesh:
    @pytest.fixture()
    def wired(self):
        core = CoreNetwork()
        ue = core.provision_subscriber(1)
        mesh = build_core_mesh(core)
        return core, ue, mesh

    def test_authentication_via_sbi(self, wired):
        core, ue, mesh = wired
        response = mesh.invoke(
            "Nausf_UEAuthentication_Authenticate", "amf",
            supi=ue.supi, serving_network=core.serving_network_name)
        assert response.ok
        rand, autn = response.body["rand"], response.body["autn"]
        # The UE accepts the vector: it really came from its home.
        res_star = ue.authenticate(core.serving_network_name, rand,
                                   autn)
        assert core.ausf.confirm(ue.supi, res_star) is not None

    def test_session_lifecycle_via_sbi(self, wired):
        core, ue, mesh = wired
        created = mesh.invoke("Nsmf_PDUSession_CreateSMContext", "amf",
                              supi=ue.supi, home_cell=(1, 1),
                              ue_cell=(2, 2))
        assert created.status == 201
        session = created.body["session"]
        assert core.smf.session(session.session_id) is not None
        released = mesh.invoke("Nsmf_PDUSession_ReleaseSMContext",
                               "amf", session_id=session.session_id)
        assert released.status == 204
        assert core.smf.session(session.session_id) is None

    def test_policy_via_sbi(self, wired):
        core, ue, mesh = wired
        response = mesh.invoke("Npcf_SMPolicyControl_Create", "smf",
                               supi=ue.supi)
        assert response.status == 201
        assert response.body["qos"].forwarding_rules

    def test_unknown_subscriber_becomes_500(self, wired):
        core, _, mesh = wired
        from repro.fiveg.identifiers import Supi
        stranger = Supi(core.plmn, 999999)
        response = mesh.invoke("Nudm_SDM_Get", "smf", supi=stranger)
        assert response.status == 500

    def test_producers_assigned_correctly(self, wired):
        _, _, mesh = wired
        assert mesh.producer_of("Nudm_SDM_Get") == "udm"
        assert mesh.producer_of(
            "Nsmf_PDUSession_CreateSMContext") == "smf"

    def test_boundary_latency_model(self):
        """Producer placement drives the per-call latency charge --
        the SBI view of the space-ground asymmetry."""
        core = CoreNetwork()
        ue = core.provision_subscriber(2)

        def latency(consumer, producer):
            # The consumer (satellite AMF) is in orbit; every call to
            # a ground NF pays half an RTT each way.
            return 0.060 if producer in ("udm", "ausf", "pcf") else 0.0

        mesh = build_core_mesh(core, transport_latency=latency)
        mesh.invoke("Nudm_SDM_Get", "sat-amf", supi=ue.supi)
        mesh.invoke("Nsmf_PDUSession_CreateSMContext", "sat-amf",
                    supi=ue.supi, home_cell=(0, 0), ue_cell=(0, 0))
        assert mesh.simulated_latency_s == pytest.approx(0.060)
