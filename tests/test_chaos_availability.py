"""Acceptance tests for the chaos availability experiment.

Pins the two headline properties of ISSUE's tentpole: a seeded chaos
run is bit-reproducible (identical fault log and procedure outcome
records), and SpaceCore's session survival strictly dominates the
stateful baseline under the default churn scenario.
"""

import json
import os

import pytest

from repro.experiments import (
    ChaosScenario,
    run_chaos_availability,
    write_chaos_report,
)

SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: Compressed scenario for the per-test runs (~0.5 s each); the
#: default-scenario dominance check runs once on the real thing.
SMALL = ChaosScenario(horizon_s=1200.0, sample_interval_s=300.0,
                      n_ues=8, seed=SEED)


@pytest.fixture(scope="module")
def small_result():
    return run_chaos_availability(scenario=SMALL)


class TestBitReproducibility:
    def test_same_seed_same_fault_log_and_outcomes(self, small_result):
        again = run_chaos_availability(scenario=SMALL)
        assert small_result.fault_log == again.fault_log
        assert small_result.spacecore_outcomes == again.spacecore_outcomes
        assert ([(s.t, s.spacecore, s.baseline)
                 for s in small_result.samples]
                == [(s.t, s.spacecore, s.baseline)
                    for s in again.samples])
        assert (small_result.baseline_recovery_latencies
                == again.baseline_recovery_latencies)

    def test_different_seed_different_faults(self, small_result):
        other = run_chaos_availability(
            scenario=ChaosScenario(horizon_s=1200.0,
                                   sample_interval_s=300.0,
                                   n_ues=8, seed=SEED + 1))
        assert small_result.fault_log != other.fault_log


class TestSurvivalCurves:
    def test_faults_actually_fire(self, small_result):
        assert len(small_result.fault_log) > 0

    def test_sessions_all_start_alive(self, small_result):
        first = small_result.samples[0]
        assert first.spacecore == 1.0
        assert first.baseline == 1.0
        assert small_result.n_sessions == SMALL.n_ues

    def test_default_scenario_spacecore_strictly_dominates(self):
        result = run_chaos_availability(scenario=ChaosScenario(seed=SEED))
        assert (result.final_spacecore_survival
                > result.final_baseline_survival)
        assert all(s.spacecore >= s.baseline for s in result.samples)
        assert result.spacecore_lost <= result.baseline_lost

    def test_survival_fractions_bounded(self, small_result):
        for sample in small_result.samples:
            assert 0.0 <= sample.spacecore <= 1.0
            assert 0.0 <= sample.baseline <= 1.0

    def test_spacecore_recoveries_are_fast(self, small_result):
        # Local re-attach: RLF detection plus a four-message exchange,
        # far below any home-routed retry (seconds).
        for latency in small_result.spacecore_recovery_latencies:
            assert latency < 2.0


class TestReportArtifact:
    def test_json_payload_structure(self, small_result):
        payload = small_result.to_json()
        assert sorted(payload.keys()) == [
            "curves", "fault_log", "lost_sessions", "n_sessions",
            "recovery_latency_s", "scenario", "spacecore_outcomes"]
        curves = payload["curves"]
        assert (len(curves["t_s"]) == len(curves["spacecore_survival"])
                == len(curves["baseline_survival"]))
        assert payload["scenario"]["seed"] == SEED

    def test_write_report_round_trips(self, small_result, tmp_path):
        path = tmp_path / "chaos.json"
        write_chaos_report(str(path), small_result)
        payload = json.loads(path.read_text())
        assert payload["n_sessions"] == SMALL.n_ues
        # JSON turns the key tuples into nested lists; compare after
        # pushing the in-memory log through the same normalisation.
        normalised = json.loads(json.dumps(
            small_result.to_json()["fault_log"]))
        assert payload["fault_log"] == normalised


class TestCli:
    def test_chaos_subcommand_runs(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "cli_chaos.json"
        code = main(["chaos", "--ues", "6", "--horizon", "900",
                     "--seed", str(SEED), "--output", str(out)])
        assert code == 0
        assert "survival" in capsys.readouterr().out
        assert out.exists()


class TestPacketProbe:
    def test_probe_absent_by_default(self, small_result):
        assert small_result.packet_probe is None
        assert "packet_probe" not in small_result.to_json()

    def test_probe_routes_the_post_churn_topology(self):
        from repro.experiments.chaos_availability import PacketProbeSpec
        probe = PacketProbeSpec(packets=96)
        result = run_chaos_availability(
            scenario=SMALL, packet_probe=probe)
        payload = result.packet_probe
        assert payload is not None
        assert payload["packets"] == 96
        assert payload["t_s"] == SMALL.horizon_s
        assert 0 <= payload["delivered"] <= 96
        assert result.to_json()["packet_probe"] == payload
        # Same seed, same probe -> byte-stable payload (the golden
        # contract the scenario engine relies on).
        again = run_chaos_availability(scenario=SMALL,
                                       packet_probe=probe)
        assert again.packet_probe == payload

    def test_probe_rejects_empty_wave(self):
        from repro.experiments.chaos_availability import PacketProbeSpec
        with pytest.raises(ValueError):
            PacketProbeSpec(packets=0)
