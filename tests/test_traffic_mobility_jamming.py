"""Tests for traffic concentration, mobility traces, and jamming."""

import math

import pytest

from repro.faults import JammingAttack
from repro.geo import (
    GeospatialCellGrid,
    commuter_trace,
    count_cell_crossings,
    crossing_rate,
    random_waypoint_trace,
    transoceanic_trace,
)
from repro.orbits import (
    IdealPropagator,
    default_ground_stations,
    serving_satellite,
    starlink,
)
from repro.topology import (
    GeospatialRouter,
    GridTopology,
    compare_concentration,
    gravity_demand,
    load_peer_to_peer,
    load_to_gateways,
)

BEIJING = (math.radians(39.9), math.radians(116.4))
NEW_YORK = (math.radians(40.7), math.radians(-74.0))


@pytest.fixture(scope="module")
def topology():
    return GridTopology(IdealPropagator(starlink()),
                        default_ground_stations())


class TestGravityDemand:
    def test_demand_positive_and_normalised(self, topology):
        demands = gravity_demand(topology, 0.0, top_satellites=10,
                                 total_demand=500.0)
        assert demands
        assert all(d > 0 for _, _, d in demands)
        assert sum(d for _, _, d in demands) == pytest.approx(500.0)

    def test_endpoints_are_distinct_satellites(self, topology):
        demands = gravity_demand(topology, 0.0, top_satellites=8)
        for a, b, _ in demands:
            assert a != b


class TestTrafficConcentration:
    def test_gateway_routing_concentrates(self, topology):
        demands = gravity_demand(topology, 0.0, top_satellites=10)
        load = load_to_gateways(topology, 0.0, demands)
        assert load.link_load
        assert load.peak_to_mean_link_ratio() > 1.2

    def test_peer_routing_delivers_everything(self, topology):
        demands = gravity_demand(topology, 0.0, top_satellites=10)
        load = load_peer_to_peer(topology, 0.0, demands)
        assert load.undelivered == 0.0

    def test_spacecore_removes_asymmetry(self, topology):
        """S3.1/S4.2: pushing the data plane to the edge de-funnels."""
        comparison = compare_concentration(topology,
                                           top_satellites=12)
        assert comparison.asymmetry_removed
        assert comparison.peer_gini < comparison.gateway_gini

    def test_busiest_links_sorted(self, topology):
        demands = gravity_demand(topology, 0.0, top_satellites=8)
        load = load_to_gateways(topology, 0.0, demands)
        busiest = load.busiest_links(3)
        values = [v for _, v in busiest]
        assert values == sorted(values, reverse=True)

    def test_gini_bounds(self, topology):
        demands = gravity_demand(topology, 0.0, top_satellites=8)
        load = load_peer_to_peer(topology, 0.0, demands)
        assert 0.0 <= load.gini_coefficient() <= 1.0


class TestMobilityTraces:
    GRID = GeospatialCellGrid(starlink())

    def test_random_waypoint_stays_near_start(self):
        trace = random_waypoint_trace(*BEIJING, speed_km_s=0.014,
                                      duration_s=3600.0)
        assert len(trace) > 10
        for point in trace:
            from repro.orbits.coordinates import central_angle
            drift = central_angle(BEIJING[0], BEIJING[1], point.lat,
                                  point.lon) * 6371.0
            assert drift < 60.0  # a walker stays within tens of km

    def test_pedestrian_never_crosses_cells(self):
        """Table 3: cells are so large that walking never leaves one."""
        trace = random_waypoint_trace(*BEIJING, speed_km_s=0.0015,
                                      duration_s=4 * 3600.0)
        assert count_cell_crossings(self.GRID, trace) == 0

    def test_commuter_rarely_crosses(self):
        home = BEIJING
        work = (math.radians(40.0), math.radians(116.6))
        trace = commuter_trace(*home, *work, speed_km_s=0.014,
                               duration_s=8 * 3600.0)
        assert count_cell_crossings(self.GRID, trace) <= 2

    def test_transoceanic_flight_crosses_cells(self):
        """Only continental-scale motion triggers registrations."""
        trace = transoceanic_trace(*BEIJING, *NEW_YORK,
                                   speed_km_s=0.25)  # ~900 km/h
        crossings = count_cell_crossings(self.GRID, trace)
        assert crossings >= 5
        # Even a jet registers less than once per ten minutes (the
        # polar-arc route clips the pinched high-latitude cells).
        assert crossing_rate(self.GRID, trace) < 1.0 / 600.0

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            random_waypoint_trace(0.0, 0.0, -1.0, 100.0)

    def test_transoceanic_endpoints(self):
        trace = transoceanic_trace(*BEIJING, *NEW_YORK,
                                   speed_km_s=0.25)
        assert trace[0].lat == pytest.approx(BEIJING[0])
        assert trace[-1].lat == pytest.approx(NEW_YORK[0])


class TestJamming:
    def test_jammer_affects_overflying_satellites(self):
        topo = GridTopology(IdealPropagator(starlink()), [])
        jammer = JammingAttack(*BEIJING, radius_km=1500.0)
        affected = jammer.affected_satellites(topo, 0.0)
        assert 1 <= len(affected) < 100

    def test_jamming_blocks_then_recovers(self):
        topo = GridTopology(IdealPropagator(starlink()), [])
        jammer = JammingAttack(*BEIJING, radius_km=1200.0)
        victim = serving_satellite(topo.propagator, 0.0, *BEIJING)
        assert len(topo.isl_neighbors(victim)) == 4
        count = jammer.apply(topo, 0.0)
        assert count >= 1
        assert topo.isl_neighbors(victim) == []
        jammer.lift(topo, 0.0)
        assert len(topo.isl_neighbors(victim)) == 4

    def test_traffic_routes_around_jammed_region(self):
        """Stateless relaying deflects around the jammed hole."""
        topo = GridTopology(IdealPropagator(starlink()), [])
        router = GeospatialRouter(topo)
        src = serving_satellite(topo.propagator, 0.0, *BEIJING)
        before = router.route(src, *NEW_YORK, 0.0)
        assert before.delivered
        # Jam a region in the middle of the path (mid-Pacific arc).
        mid = before.path[len(before.path) // 2]
        mid_lat, mid_lon = topo.propagator.subpoints(0.0)[mid]
        jammer = JammingAttack(float(mid_lat), float(mid_lon),
                               radius_km=900.0)
        jammer.apply(topo, 0.0)
        # The source itself must not be jammed for this test.
        if src in jammer.affected_satellites(topo, 0.0):
            pytest.skip("jammer reached the source; geometry too tight")
        after = router.route(src, *NEW_YORK, 0.0)
        assert after.delivered
        assert after.hops >= before.hops  # detour, not collapse