"""Batch routing plane: bit-exact equivalence with the scalar walk.

The contract under test is absolute, not approximate: for every
packet, :meth:`~repro.topology.batch_routing.BatchGeoRouter.route_batch`
must reproduce the scalar :class:`~repro.topology.routing.GeospatialRouter`
walk *bit for bit* -- same delivered/degraded verdicts, same hop
sequence, and floating-point-identical delay and distance sums --
across healthy grids, coverage-edge destinations, and fault cocktails,
with and without the compiled C kernel.  Any `==` here is deliberate.
"""

import math

import numpy as np
import pytest

from repro.orbits.constellation import Constellation, iridium, starlink
from repro.orbits.propagator import make_propagator
from repro.orbits.snapshot import snapshot_for
from repro.topology._walk_kernel import load_kernel
from repro.topology.batch_routing import BatchGeoRouter, batch_route_pairs
from repro.topology.grid import GridTopology
from repro.topology.routing import (
    RELAY_MAX_HOPS,
    DijkstraRouter,
    GeospatialRouter,
    load_scipy_csgraph,
    path_stretch,
)

#: Constellation zoo: a Table-1 shell plus synthetic grids chosen to
#: stress the seam cases (full torus vs pi-spread, small planes).
CONSTELLATIONS = {
    "starlink": starlink,
    "iridium": iridium,
    "square": lambda: Constellation(
        name="square", num_planes=12, sats_per_plane=12,
        altitude_km=550.0, inclination_deg=53.0),
    "tall": lambda: Constellation(
        name="tall", num_planes=6, sats_per_plane=18,
        altitude_km=780.0, inclination_deg=86.4,
        raan_spread=np.pi),
    "wide": lambda: Constellation(
        name="wide", num_planes=18, sats_per_plane=6,
        altitude_km=1200.0, inclination_deg=87.9,
        raan_spread=np.pi),
}

_KERNEL_AVAILABLE = load_kernel() is not None

#: Both execution paths of the batch plane must match the scalar
#: reference; the kernel variant only runs where a C compiler exists.
KERNEL_MODES = ([False, True] if _KERNEL_AVAILABLE else [False])


def _topology(name):
    constellation = CONSTELLATIONS[name]()
    return GridTopology(make_propagator(constellation, "ideal"), [])


def _wave(constellation, packets, seed, lat_slack=0.02):
    rng = np.random.default_rng(seed)
    band = math.radians(min(constellation.inclination_deg,
                            180.0 - constellation.inclination_deg))
    band = band - lat_slack
    src = rng.integers(0, constellation.total_satellites, packets)
    lats = rng.uniform(-band, band, packets)
    lons = rng.uniform(-math.pi, math.pi, packets)
    return src, lats, lons


def assert_bit_equal(batch, scalar_router, src, lats, lons, t,
                     avoid_links=None):
    """Every packet of the batch must equal the scalar walk exactly."""
    for i in range(len(src)):
        expected = scalar_router.route(int(src[i]), float(lats[i]),
                                       float(lons[i]), t,
                                       avoid_links=avoid_links)
        assert bool(batch.delivered[i]) == expected.delivered, i
        assert bool(batch.degraded[i]) == expected.degraded, i
        assert float(batch.delay_s[i]) == expected.delay_s, i
        assert float(batch.distance_km[i]) == expected.distance_km, i
        assert batch.path(i) == expected.path, i


def assert_sweep_bit_equal(swept, scalar_router, src, lats, lons, ts):
    """Every sweep packet must equal the scalar walk *at its epoch*."""
    for i in range(len(src)):
        expected = scalar_router.route(int(src[i]), float(lats[i]),
                                       float(lons[i]), float(ts[i]))
        assert bool(swept.delivered[i]) == expected.delivered, i
        assert bool(swept.degraded[i]) == expected.degraded, i
        assert float(swept.delay_s[i]) == expected.delay_s, i
        assert float(swept.distance_km[i]) == expected.distance_km, i
        assert swept.path(i) == expected.path, i


def _sweep_wave(constellation, packets, epochs, seed, spacing_s=240.0):
    """A mixed-epoch wave: interleaved (unsorted, repeated) epochs."""
    src, lats, lons = _wave(constellation, packets, seed)
    grid = np.array([spacing_s * k for k in range(epochs)])
    ts = grid[np.arange(packets) % epochs]
    return src, lats, lons, ts


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    @pytest.mark.parametrize("name", sorted(CONSTELLATIONS))
    def test_random_waves_healthy(self, name, use_kernel):
        topo = _topology(name)
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        src, lats, lons = _wave(topo.constellation, 160, seed=7)
        batch = router.route_batch(src, lats, lons, 120.0)
        assert_bit_equal(batch, router.scalar, src, lats, lons, 120.0)

    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    def test_coverage_edge_destinations(self, use_kernel):
        """Destinations nudged across the coverage boundary.

        The batch plane screens coverage with a dot product inside a
        guard band and re-tests exactly near the edge; these
        destinations sit fractions of a microradian on either side of
        delivery, where any screening sloppiness would flip verdicts.
        """
        topo = _topology("starlink")
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        theta = router.scalar.coverage_angle
        snap = snapshot_for(topo.propagator, 60.0)
        rng = np.random.default_rng(13)
        sats = rng.integers(0, topo.constellation.total_satellites, 64)
        lats, lons, srcs = [], [], []
        for k, sat in enumerate(sats):
            slat, slon = snap.subpoints[sat]
            for eps in (-1e-7, -1e-10, 0.0, 1e-10, 1e-7):
                lat = slat + (theta + eps) * (1 if k % 2 else -1)
                if abs(lat) > math.radians(88.0):
                    continue
                lats.append(lat)
                lons.append(slon)
                srcs.append(int(sats[(k + 7) % len(sats)]))
        src = np.asarray(srcs, dtype=np.int64)
        lats = np.asarray(lats)
        lons = np.asarray(lons)
        batch = router.route_batch(src, lats, lons, 60.0)
        assert_bit_equal(batch, router.scalar, src, lats, lons, 60.0)

    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_fault_cocktail(self, seed, use_kernel):
        """Dead satellites + torn ISLs: the deflection path must match."""
        topo = _topology("starlink")
        rng = np.random.default_rng(seed)
        for sat in rng.choice(topo.constellation.total_satellites, 40,
                              replace=False):
            topo.fail_satellite(int(sat))
        for _ in range(25):
            a = int(rng.integers(0, topo.constellation.total_satellites))
            for b in topo.isl_neighbors(a)[:2]:
                topo.fail_isl(a, b)
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        src, lats, lons = _wave(topo.constellation, 120, seed=seed + 50)
        batch = router.route_batch(src, lats, lons, 90.0)
        assert_bit_equal(batch, router.scalar, src, lats, lons, 90.0)

    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    def test_avoid_links_matches_scalar(self, use_kernel):
        topo = _topology("square")
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        src, lats, lons = _wave(topo.constellation, 40, seed=3)
        avoid = set()
        for sat in (0, 5, 17):
            for nbr in topo.isl_neighbors(sat)[:2]:
                avoid.add(frozenset((sat, nbr)))
        batch = router.route_batch(src, lats, lons, 30.0,
                                   avoid_links=avoid)
        assert_bit_equal(batch, router.scalar, src, lats, lons, 30.0,
                         avoid_links=avoid)

    def test_kernel_and_numpy_paths_agree(self):
        """The two batch implementations are themselves bit-identical."""
        if not _KERNEL_AVAILABLE:
            pytest.skip("no C compiler on this host")
        topo = _topology("starlink")
        with_k = BatchGeoRouter(topo, use_kernel=True)
        without = BatchGeoRouter(topo, use_kernel=False)
        src, lats, lons = _wave(topo.constellation, 300, seed=21)
        a = with_k.route_batch(src, lats, lons, 300.0)
        b = without.route_batch(src, lats, lons, 300.0)
        assert np.array_equal(a.delivered, b.delivered)
        assert np.array_equal(a.degraded, b.degraded)
        assert np.array_equal(a.delay_s, b.delay_s)
        assert np.array_equal(a.distance_km, b.distance_km)
        assert [a.path(i) for i in range(len(a))] \
            == [b.path(i) for i in range(len(b))]

    def test_path_stretch_identical_through_batch_plane(self):
        """path_stretch computed from batch results == from scalar."""
        topo = _topology("starlink")
        router = BatchGeoRouter(topo)
        base = DijkstraRouter(topo)
        snap = snapshot_for(topo.propagator, 0.0)
        src, lats, lons = _wave(topo.constellation, 24, seed=5,
                                lat_slack=0.05)
        dsts = [snap.serving_satellite(float(la), float(lo))
                for la, lo in zip(lats, lons)]
        keep = [k for k, d in enumerate(dsts) if d >= 0]
        batch = router.route_batch(src[keep], lats[keep], lons[keep],
                                   0.0)
        checked = 0
        for i, k in enumerate(keep):
            scalar = router.scalar.route(int(src[k]), float(lats[k]),
                                         float(lons[k]), 0.0)
            baseline = base.route(int(src[k]), dsts[k], 0.0)
            if not (scalar.delivered and baseline.delivered
                    and baseline.delay_s > 0):
                continue
            assert (path_stretch(batch.result(i), baseline)
                    == path_stretch(scalar, baseline))
            checked += 1
        assert checked > 0


class TestBatchRouterMechanics:
    def test_chunked_equals_single_batch(self):
        topo = _topology("square")
        small = BatchGeoRouter(topo, chunk_size=32)
        big = BatchGeoRouter(topo)
        src, lats, lons = _wave(topo.constellation, 101, seed=9)
        a = small.route_batch(src, lats, lons, 10.0)
        b = big.route_batch(src, lats, lons, 10.0)
        assert np.array_equal(a.delay_s, b.delay_s)
        assert [a.path(i) for i in range(len(a))] \
            == [b.path(i) for i in range(len(b))]

    def test_path_buffer_is_minus_one_padded(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        src, lats, lons = _wave(topo.constellation, 32, seed=2)
        batch = router.route_batch(src, lats, lons, 0.0)
        buffer = batch.path_buffer
        for i in range(len(batch)):
            n = int(batch.path_len[i])
            assert np.all(buffer[i, n:] == -1)
            assert list(buffer[i, :n]) == batch.path(i)

    def test_table_cache_invalidated_by_fault_events(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        src, lats, lons = _wave(topo.constellation, 8, seed=4)
        before = router.route_batch(src, lats, lons, 0.0)
        victim = max((p for i in range(len(before))
                      for p in before.path(i)[:-1]),
                     key=lambda s: sum(s in before.path(i)
                                       for i in range(len(before))))
        # No manual invalidate: the fault listener must drop the
        # epoch-keyed table so the next batch sees the dead satellite.
        topo.fail_satellite(victim)
        after = router.route_batch(src, lats, lons, 0.0)
        assert_bit_equal(after, router.scalar, src, lats, lons, 0.0)
        for i in range(len(after)):
            assert victim not in after.path(i)[1:]

    def test_routing_metrics_counters(self):
        from repro.obs.metrics import MetricsRegistry, merge_snapshots
        topo = _topology("square")

        def run():
            metrics = MetricsRegistry()
            router = BatchGeoRouter(topo, metrics=metrics)
            src, lats, lons = _wave(topo.constellation, 48, seed=6)
            router.route_batch(src, lats, lons, 0.0)
            router.route_batch(src, lats, lons, 0.0)
            return metrics.snapshot()

        snap = run()
        counters = snap["counters"]
        assert counters["routing.batches"] == 2
        assert counters["routing.packets{plane=batch}"] == 96
        # The table is built once; the second batch hits the cache.
        assert counters["routing.table_builds"] == 1
        # Deterministic merge: two identical runs fold to doubled counts.
        merged = merge_snapshots([snap, run()])
        assert merged["counters"]["routing.batches"] == 4

    def test_batch_route_pairs_convenience(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        src, lats, lons = _wave(topo.constellation, 5, seed=8)
        pairs = [(int(s), float(la), float(lo))
                 for s, la, lo in zip(src, lats, lons)]
        results = batch_route_pairs(router, pairs, 0.0)
        for result, (s, la, lo) in zip(results, pairs):
            expected = router.scalar.route(s, la, lo, 0.0)
            assert result.delivered == expected.delivered
            assert result.delay_s == expected.delay_s
            assert result.path == expected.path
        assert batch_route_pairs(router, [], 0.0) == []

    def test_scalar_route_delegates(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        reference = GeospatialRouter(topo)
        result = router.route(3, 0.1, 0.2, 0.0)
        expected = reference.route(3, 0.1, 0.2, 0.0)
        assert result.path == expected.path
        assert result.delay_s == expected.delay_s

    def test_rejects_mismatched_lengths(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        with pytest.raises(ValueError):
            router.route_batch([0, 1], [0.0], [0.0, 0.0], 0.0)

    def test_rejects_out_of_range_source(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        with pytest.raises(ValueError):
            router.route_batch([10_000], [0.0], [0.0], 0.0)


class TestDijkstraBatchAndInvalidation:
    def test_route_cache_invalidated_by_fault_events(self):
        """Regression: cached graphs must not survive fault injection.

        Before the fault-listener wiring, DijkstraRouter cached its
        per-epoch graph and kept routing through satellites that had
        since died unless callers remembered to invalidate() manually.
        """
        topo = _topology("square")
        router = DijkstraRouter(topo)
        first = router.route(0, 30, 0.0)
        assert first.delivered and len(first.path) > 2
        victim = first.path[1]
        topo.fail_satellite(victim)
        rerouted = router.route(0, 30, 0.0)
        assert rerouted.delivered
        assert victim not in rerouted.path

    @pytest.mark.parametrize("no_scipy", [False, True])
    def test_route_many_matches_scalar(self, no_scipy, monkeypatch):
        if no_scipy:
            monkeypatch.setenv("REPRO_NO_SCIPY", "1")
        elif load_scipy_csgraph() is None:
            pytest.skip("scipy not installed")
        topo = _topology("square")
        topo.fail_satellite(7)
        topo.fail_isl(20, topo.isl_neighbors(20)[0])
        router = DijkstraRouter(topo)
        rng = np.random.default_rng(17)
        total = topo.constellation.total_satellites
        srcs = [int(s) for s in rng.integers(0, total, 30)]
        dsts = [int(d) for d in rng.integers(0, total, 30)]
        many = router.route_many(srcs, dsts, 45.0)
        for result, s, d in zip(many, srcs, dsts):
            single = router.route(s, d, 45.0)
            assert result.delivered == single.delivered
            if result.delivered:
                assert abs(result.delay_s - single.delay_s) < 1e-12
                assert len(result.path) == len(single.path)


class TestEpochSweepEquivalence:
    """route_sweep vs the per-epoch scalar walk, bit for bit."""

    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    @pytest.mark.parametrize("name", ["starlink", "iridium", "tall"])
    def test_sweep_matches_per_epoch_scalar(self, name, use_kernel):
        topo = _topology(name)
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        src, lats, lons, ts = _sweep_wave(topo.constellation, 96,
                                          epochs=6, seed=31)
        swept = router.route_sweep(src, lats, lons, ts)
        assert_sweep_bit_equal(swept, router.scalar, src, lats, lons, ts)

    def test_sweep_under_no_ckernel_env(self, monkeypatch):
        """REPRO_NO_CKERNEL=1 forces the numpy walk; same answer."""
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        assert router._kernel_handle() is None
        src, lats, lons, ts = _sweep_wave(topo.constellation, 64,
                                          epochs=5, seed=32)
        swept = router.route_sweep(src, lats, lons, ts)
        assert_sweep_bit_equal(swept, router.scalar, src, lats, lons, ts)

    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    def test_sweep_shuffled_epochs(self, use_kernel):
        """Arbitrary (unsorted, repeated) epoch order scatters back."""
        topo = _topology("wide")
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        src, lats, lons = _wave(topo.constellation, 80, seed=33)
        rng = np.random.default_rng(33)
        ts = rng.choice([0.0, 75.0, 150.0, 900.0], size=80)
        swept = router.route_sweep(src, lats, lons, ts)
        assert_sweep_bit_equal(swept, router.scalar, src, lats, lons, ts)

    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    def test_sweep_with_faults(self, use_kernel):
        """Deflection fallbacks route at the right epoch too."""
        topo = _topology("starlink")
        rng = np.random.default_rng(34)
        for sat in rng.choice(topo.constellation.total_satellites, 30,
                              replace=False):
            topo.fail_satellite(int(sat))
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        src, lats, lons, ts = _sweep_wave(topo.constellation, 60,
                                          epochs=4, seed=35)
        swept = router.route_sweep(src, lats, lons, ts)
        assert_sweep_bit_equal(swept, router.scalar, src, lats, lons, ts)

    def test_sweep_single_epoch_equals_route_batch(self):
        """A constant-ts sweep is exactly one route_batch call."""
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        src, lats, lons = _wave(topo.constellation, 40, seed=36)
        swept = router.route_sweep(src, lats, lons,
                                   np.full(40, 120.0))
        batch = router.route_batch(src, lats, lons, 120.0)
        assert np.array_equal(swept.delivered, batch.delivered)
        assert np.array_equal(swept.delay_s, batch.delay_s)
        assert [swept.path(i) for i in range(len(swept))] \
            == [batch.path(i) for i in range(len(batch))]

    def test_empty_sweep(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        swept = router.route_sweep([], [], [], [])
        assert len(swept) == 0
        assert swept.results() == []

    def test_sweep_rejects_mismatched_ts(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        with pytest.raises(ValueError):
            router.route_sweep([0, 1], [0.0, 0.0], [0.0, 0.0], [0.0])

    def test_sweep_sizes_table_cache_to_epochs(self):
        """A 24-epoch sweep must not thrash the default 8-entry LRU.

        Regression for the second-pass rebuild bug: with the default
        cache the sweep evicted every table it built, so repeating the
        sweep (the second propagator leg of Fig. 18b, a timing repeat)
        rebuilt all 24.  Sized to the sweep, the repeat is all hits.
        """
        from repro.obs.metrics import MetricsRegistry
        topo = _topology("square")
        metrics = MetricsRegistry()
        router = BatchGeoRouter(topo, metrics=metrics)
        src, lats, lons, ts = _sweep_wave(topo.constellation, 96,
                                          epochs=24, seed=37,
                                          spacing_s=120.0)
        router.route_sweep(src, lats, lons, ts)
        counters = metrics.snapshot()["counters"]
        assert counters["routing.table_builds"] == 24
        assert counters["routing.sweeps"] == 1
        assert counters["routing.sweep_epochs"] == 24
        assert router.table_cache_size() == 24
        # Second pass: every epoch's table is still resident.
        router.route_sweep(src, lats, lons, ts)
        counters = metrics.snapshot()["counters"]
        assert counters["routing.table_builds"] == 24
        assert counters["routing.table_cache_hits"] >= 24

    def test_sweep_trials_matches_scalar_relay_loop(self):
        """sweep_trials == the retired snapshot+route per-epoch loop,
        including epochs whose ground source is uncovered."""
        topo = _topology("square")
        router = BatchGeoRouter(topo, max_hops=RELAY_MAX_HOPS)
        scalar = GeospatialRouter(topo, max_hops=RELAY_MAX_HOPS)
        # 53 deg shell: a 60 deg source sits on the coverage fringe
        # (served ~9 of these 24 epochs), so the sweep mixes covered
        # and uncovered epochs; the destination stays in-band.
        src = (math.radians(60.0), math.radians(116.4))
        dst = (math.radians(40.7), math.radians(-74.0))
        ts = [5700.0 * i / 24 for i in range(24)]
        src_sats, wave = router.sweep_trials(src, dst, ts)
        seen_uncovered = False
        for i, t in enumerate(ts):
            snap = snapshot_for(topo.propagator, t)
            expected_sat = snap.serving_satellite(*src)
            assert int(src_sats[i]) == expected_sat
            if expected_sat < 0:
                seen_uncovered = True
                assert not bool(wave.delivered[i])
                assert float(wave.delay_s[i]) == 0.0
                assert wave.path(i) == []
                continue
            expected = scalar.route(expected_sat, dst[0], dst[1], t)
            assert bool(wave.delivered[i]) == expected.delivered
            assert float(wave.delay_s[i]) == expected.delay_s
            assert int(wave.hops[i]) == expected.hops
            assert wave.path(i) == expected.path
        assert seen_uncovered, "pick a source that is sometimes uncovered"


class TestRelayHopBudgetParity:
    """The 256-vs-512 hop-budget parity bug (shared RELAY_MAX_HOPS).

    The scalar relay pipeline always routed with ``max_hops=512``
    while ``BatchGeoRouter`` defaults to 256; porting the pipeline to
    the batch plane without threading the budget through would
    silently fail every walk longer than 256 hops.  A real Iridium
    shell cannot produce one (the visited-set walk is bounded by its
    66 satellites), so the regression rig is an Iridium-style star
    shell (two pi-spread planes, 86.4 deg) scaled up in-plane until a
    near-antipodal slot pair needs a >256-hop walk.
    """

    @staticmethod
    def _long_walk_case():
        shell = Constellation(
            name="iridium-stretched", num_planes=2, sats_per_plane=600,
            altitude_km=780.0, inclination_deg=86.4,
            raan_spread=np.pi)
        topo = GridTopology(make_propagator(shell, "ideal"), [])
        snap = snapshot_for(topo.propagator, 0.0)
        wide = GeospatialRouter(topo, max_hops=RELAY_MAX_HOPS)
        # Scan in-plane slots around the ring antipode for a walk that
        # needs more than 256 hops (seam deflections make the exact
        # hop count slot-dependent, so probe a window; slot 275 walks
        # ~400 hops at the relay budget on this shell).
        for dest in range(275, 330, 5):
            lat, lon = snap.subpoints[dest]
            result = wide.route(0, float(lat), float(lon), 0.0)
            if result.delivered and result.hops > 256:
                return topo, float(lat), float(lon), result
        raise AssertionError("no >256-hop pair found in the window")

    def test_default_budget_drops_long_walks(self):
        topo, lat, lon, wide_result = self._long_walk_case()
        narrow = GeospatialRouter(topo, max_hops=256)
        assert not narrow.route(0, lat, lon, 0.0).delivered

    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    def test_batch_plane_honors_relay_budget(self, use_kernel):
        topo, lat, lon, expected = self._long_walk_case()
        router = BatchGeoRouter(topo, max_hops=RELAY_MAX_HOPS,
                                use_kernel=use_kernel)
        batch = router.route_batch([0], [lat], [lon], 0.0)
        assert bool(batch.delivered[0])
        assert int(batch.hops[0]) == expected.hops > 256
        assert float(batch.delay_s[0]) == expected.delay_s
        assert batch.path(0) == expected.path


class TestFig18bPanelParity:
    """The batched Fig. 18b pipeline == the retired scalar pipeline."""

    @staticmethod
    def _scalar_trials(constellation, kind, samples):
        from repro.experiments.relay import BEIJING, NEW_YORK
        propagator = make_propagator(constellation, kind)
        topology = GridTopology(propagator, [])
        router = GeospatialRouter(topology, max_hops=512)
        trials = []
        for i in range(samples):
            t = 5700.0 * i / samples
            snap = snapshot_for(propagator, t)
            src_sat = snap.serving_satellite(*BEIJING)
            if src_sat < 0:
                trials.append((t, False, 0.0, 0))
                continue
            r = router.route(src_sat, NEW_YORK[0], NEW_YORK[1], t)
            trials.append((t, r.delivered, r.delay_s * 1000.0, r.hops))
        return trials

    @pytest.mark.parametrize("factory", [starlink, iridium])
    def test_panel_equals_scalar_pipeline(self, factory):
        from repro.experiments.relay import (compare_ideal_vs_j4,
                                             relay_trials)
        constellation = factory()
        samples = 8
        for kind in ("ideal", "j4"):
            expected = self._scalar_trials(constellation, kind, samples)
            got = [(tr.t_s, tr.delivered, tr.delay_ms, tr.hops)
                   for tr in relay_trials(constellation, kind,
                                          samples=samples)]
            assert got == expected, (constellation.name, kind)
        # Panel values derive from the trials with the exact formulas
        # of the retired pipeline; equality is therefore exact too.
        panel = compare_ideal_vs_j4(constellation, samples=samples)
        ideal = self._scalar_trials(constellation, "ideal", samples)
        j4 = self._scalar_trials(constellation, "j4", samples)
        ideal_ok = [t for t in ideal if t[1]]
        j4_ok = [t for t in j4 if t[1]]
        assert panel.delivery_rate_ideal == len(ideal_ok) / samples
        assert panel.delivery_rate_j4 == len(j4_ok) / samples
        assert panel.mean_delay_ideal_ms == \
            sum(t[2] for t in ideal_ok) / len(ideal_ok)
        assert panel.mean_delay_j4_ms == \
            sum(t[2] for t in j4_ok) / len(j4_ok)
