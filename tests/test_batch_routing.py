"""Batch routing plane: bit-exact equivalence with the scalar walk.

The contract under test is absolute, not approximate: for every
packet, :meth:`~repro.topology.batch_routing.BatchGeoRouter.route_batch`
must reproduce the scalar :class:`~repro.topology.routing.GeospatialRouter`
walk *bit for bit* -- same delivered/degraded verdicts, same hop
sequence, and floating-point-identical delay and distance sums --
across healthy grids, coverage-edge destinations, and fault cocktails,
with and without the compiled C kernel.  Any `==` here is deliberate.
"""

import math

import numpy as np
import pytest

from repro.orbits.constellation import Constellation, starlink
from repro.orbits.propagator import make_propagator
from repro.orbits.snapshot import snapshot_for
from repro.topology._walk_kernel import load_kernel
from repro.topology.batch_routing import BatchGeoRouter, batch_route_pairs
from repro.topology.grid import GridTopology
from repro.topology.routing import (
    DijkstraRouter,
    GeospatialRouter,
    load_scipy_csgraph,
    path_stretch,
)

#: Constellation zoo: a Table-1 shell plus synthetic grids chosen to
#: stress the seam cases (full torus vs pi-spread, small planes).
CONSTELLATIONS = {
    "starlink": starlink,
    "square": lambda: Constellation(
        name="square", num_planes=12, sats_per_plane=12,
        altitude_km=550.0, inclination_deg=53.0),
    "tall": lambda: Constellation(
        name="tall", num_planes=6, sats_per_plane=18,
        altitude_km=780.0, inclination_deg=86.4,
        raan_spread=np.pi),
    "wide": lambda: Constellation(
        name="wide", num_planes=18, sats_per_plane=6,
        altitude_km=1200.0, inclination_deg=87.9,
        raan_spread=np.pi),
}

_KERNEL_AVAILABLE = load_kernel() is not None

#: Both execution paths of the batch plane must match the scalar
#: reference; the kernel variant only runs where a C compiler exists.
KERNEL_MODES = ([False, True] if _KERNEL_AVAILABLE else [False])


def _topology(name):
    constellation = CONSTELLATIONS[name]()
    return GridTopology(make_propagator(constellation, "ideal"), [])


def _wave(constellation, packets, seed, lat_slack=0.02):
    rng = np.random.default_rng(seed)
    band = math.radians(min(constellation.inclination_deg,
                            180.0 - constellation.inclination_deg))
    band = band - lat_slack
    src = rng.integers(0, constellation.total_satellites, packets)
    lats = rng.uniform(-band, band, packets)
    lons = rng.uniform(-math.pi, math.pi, packets)
    return src, lats, lons


def assert_bit_equal(batch, scalar_router, src, lats, lons, t,
                     avoid_links=None):
    """Every packet of the batch must equal the scalar walk exactly."""
    for i in range(len(src)):
        expected = scalar_router.route(int(src[i]), float(lats[i]),
                                       float(lons[i]), t,
                                       avoid_links=avoid_links)
        assert bool(batch.delivered[i]) == expected.delivered, i
        assert bool(batch.degraded[i]) == expected.degraded, i
        assert float(batch.delay_s[i]) == expected.delay_s, i
        assert float(batch.distance_km[i]) == expected.distance_km, i
        assert batch.path(i) == expected.path, i


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    @pytest.mark.parametrize("name", sorted(CONSTELLATIONS))
    def test_random_waves_healthy(self, name, use_kernel):
        topo = _topology(name)
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        src, lats, lons = _wave(topo.constellation, 160, seed=7)
        batch = router.route_batch(src, lats, lons, 120.0)
        assert_bit_equal(batch, router.scalar, src, lats, lons, 120.0)

    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    def test_coverage_edge_destinations(self, use_kernel):
        """Destinations nudged across the coverage boundary.

        The batch plane screens coverage with a dot product inside a
        guard band and re-tests exactly near the edge; these
        destinations sit fractions of a microradian on either side of
        delivery, where any screening sloppiness would flip verdicts.
        """
        topo = _topology("starlink")
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        theta = router.scalar.coverage_angle
        snap = snapshot_for(topo.propagator, 60.0)
        rng = np.random.default_rng(13)
        sats = rng.integers(0, topo.constellation.total_satellites, 64)
        lats, lons, srcs = [], [], []
        for k, sat in enumerate(sats):
            slat, slon = snap.subpoints[sat]
            for eps in (-1e-7, -1e-10, 0.0, 1e-10, 1e-7):
                lat = slat + (theta + eps) * (1 if k % 2 else -1)
                if abs(lat) > math.radians(88.0):
                    continue
                lats.append(lat)
                lons.append(slon)
                srcs.append(int(sats[(k + 7) % len(sats)]))
        src = np.asarray(srcs, dtype=np.int64)
        lats = np.asarray(lats)
        lons = np.asarray(lons)
        batch = router.route_batch(src, lats, lons, 60.0)
        assert_bit_equal(batch, router.scalar, src, lats, lons, 60.0)

    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_fault_cocktail(self, seed, use_kernel):
        """Dead satellites + torn ISLs: the deflection path must match."""
        topo = _topology("starlink")
        rng = np.random.default_rng(seed)
        for sat in rng.choice(topo.constellation.total_satellites, 40,
                              replace=False):
            topo.fail_satellite(int(sat))
        for _ in range(25):
            a = int(rng.integers(0, topo.constellation.total_satellites))
            for b in topo.isl_neighbors(a)[:2]:
                topo.fail_isl(a, b)
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        src, lats, lons = _wave(topo.constellation, 120, seed=seed + 50)
        batch = router.route_batch(src, lats, lons, 90.0)
        assert_bit_equal(batch, router.scalar, src, lats, lons, 90.0)

    @pytest.mark.parametrize("use_kernel", KERNEL_MODES)
    def test_avoid_links_matches_scalar(self, use_kernel):
        topo = _topology("square")
        router = BatchGeoRouter(topo, use_kernel=use_kernel)
        src, lats, lons = _wave(topo.constellation, 40, seed=3)
        avoid = set()
        for sat in (0, 5, 17):
            for nbr in topo.isl_neighbors(sat)[:2]:
                avoid.add(frozenset((sat, nbr)))
        batch = router.route_batch(src, lats, lons, 30.0,
                                   avoid_links=avoid)
        assert_bit_equal(batch, router.scalar, src, lats, lons, 30.0,
                         avoid_links=avoid)

    def test_kernel_and_numpy_paths_agree(self):
        """The two batch implementations are themselves bit-identical."""
        if not _KERNEL_AVAILABLE:
            pytest.skip("no C compiler on this host")
        topo = _topology("starlink")
        with_k = BatchGeoRouter(topo, use_kernel=True)
        without = BatchGeoRouter(topo, use_kernel=False)
        src, lats, lons = _wave(topo.constellation, 300, seed=21)
        a = with_k.route_batch(src, lats, lons, 300.0)
        b = without.route_batch(src, lats, lons, 300.0)
        assert np.array_equal(a.delivered, b.delivered)
        assert np.array_equal(a.degraded, b.degraded)
        assert np.array_equal(a.delay_s, b.delay_s)
        assert np.array_equal(a.distance_km, b.distance_km)
        assert [a.path(i) for i in range(len(a))] \
            == [b.path(i) for i in range(len(b))]

    def test_path_stretch_identical_through_batch_plane(self):
        """path_stretch computed from batch results == from scalar."""
        topo = _topology("starlink")
        router = BatchGeoRouter(topo)
        base = DijkstraRouter(topo)
        snap = snapshot_for(topo.propagator, 0.0)
        src, lats, lons = _wave(topo.constellation, 24, seed=5,
                                lat_slack=0.05)
        dsts = [snap.serving_satellite(float(la), float(lo))
                for la, lo in zip(lats, lons)]
        keep = [k for k, d in enumerate(dsts) if d >= 0]
        batch = router.route_batch(src[keep], lats[keep], lons[keep],
                                   0.0)
        checked = 0
        for i, k in enumerate(keep):
            scalar = router.scalar.route(int(src[k]), float(lats[k]),
                                         float(lons[k]), 0.0)
            baseline = base.route(int(src[k]), dsts[k], 0.0)
            if not (scalar.delivered and baseline.delivered
                    and baseline.delay_s > 0):
                continue
            assert (path_stretch(batch.result(i), baseline)
                    == path_stretch(scalar, baseline))
            checked += 1
        assert checked > 0


class TestBatchRouterMechanics:
    def test_chunked_equals_single_batch(self):
        topo = _topology("square")
        small = BatchGeoRouter(topo, chunk_size=32)
        big = BatchGeoRouter(topo)
        src, lats, lons = _wave(topo.constellation, 101, seed=9)
        a = small.route_batch(src, lats, lons, 10.0)
        b = big.route_batch(src, lats, lons, 10.0)
        assert np.array_equal(a.delay_s, b.delay_s)
        assert [a.path(i) for i in range(len(a))] \
            == [b.path(i) for i in range(len(b))]

    def test_path_buffer_is_minus_one_padded(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        src, lats, lons = _wave(topo.constellation, 32, seed=2)
        batch = router.route_batch(src, lats, lons, 0.0)
        buffer = batch.path_buffer
        for i in range(len(batch)):
            n = int(batch.path_len[i])
            assert np.all(buffer[i, n:] == -1)
            assert list(buffer[i, :n]) == batch.path(i)

    def test_table_cache_invalidated_by_fault_events(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        src, lats, lons = _wave(topo.constellation, 8, seed=4)
        before = router.route_batch(src, lats, lons, 0.0)
        victim = max((p for i in range(len(before))
                      for p in before.path(i)[:-1]),
                     key=lambda s: sum(s in before.path(i)
                                       for i in range(len(before))))
        # No manual invalidate: the fault listener must drop the
        # epoch-keyed table so the next batch sees the dead satellite.
        topo.fail_satellite(victim)
        after = router.route_batch(src, lats, lons, 0.0)
        assert_bit_equal(after, router.scalar, src, lats, lons, 0.0)
        for i in range(len(after)):
            assert victim not in after.path(i)[1:]

    def test_routing_metrics_counters(self):
        from repro.obs.metrics import MetricsRegistry, merge_snapshots
        topo = _topology("square")

        def run():
            metrics = MetricsRegistry()
            router = BatchGeoRouter(topo, metrics=metrics)
            src, lats, lons = _wave(topo.constellation, 48, seed=6)
            router.route_batch(src, lats, lons, 0.0)
            router.route_batch(src, lats, lons, 0.0)
            return metrics.snapshot()

        snap = run()
        counters = snap["counters"]
        assert counters["routing.batches"] == 2
        assert counters["routing.packets{plane=batch}"] == 96
        # The table is built once; the second batch hits the cache.
        assert counters["routing.table_builds"] == 1
        # Deterministic merge: two identical runs fold to doubled counts.
        merged = merge_snapshots([snap, run()])
        assert merged["counters"]["routing.batches"] == 4

    def test_batch_route_pairs_convenience(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        src, lats, lons = _wave(topo.constellation, 5, seed=8)
        pairs = [(int(s), float(la), float(lo))
                 for s, la, lo in zip(src, lats, lons)]
        results = batch_route_pairs(router, pairs, 0.0)
        for result, (s, la, lo) in zip(results, pairs):
            expected = router.scalar.route(s, la, lo, 0.0)
            assert result.delivered == expected.delivered
            assert result.delay_s == expected.delay_s
            assert result.path == expected.path
        assert batch_route_pairs(router, [], 0.0) == []

    def test_scalar_route_delegates(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        reference = GeospatialRouter(topo)
        result = router.route(3, 0.1, 0.2, 0.0)
        expected = reference.route(3, 0.1, 0.2, 0.0)
        assert result.path == expected.path
        assert result.delay_s == expected.delay_s

    def test_rejects_mismatched_lengths(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        with pytest.raises(ValueError):
            router.route_batch([0, 1], [0.0], [0.0, 0.0], 0.0)

    def test_rejects_out_of_range_source(self):
        topo = _topology("square")
        router = BatchGeoRouter(topo)
        with pytest.raises(ValueError):
            router.route_batch([10_000], [0.0], [0.0], 0.0)


class TestDijkstraBatchAndInvalidation:
    def test_route_cache_invalidated_by_fault_events(self):
        """Regression: cached graphs must not survive fault injection.

        Before the fault-listener wiring, DijkstraRouter cached its
        per-epoch graph and kept routing through satellites that had
        since died unless callers remembered to invalidate() manually.
        """
        topo = _topology("square")
        router = DijkstraRouter(topo)
        first = router.route(0, 30, 0.0)
        assert first.delivered and len(first.path) > 2
        victim = first.path[1]
        topo.fail_satellite(victim)
        rerouted = router.route(0, 30, 0.0)
        assert rerouted.delivered
        assert victim not in rerouted.path

    @pytest.mark.parametrize("no_scipy", [False, True])
    def test_route_many_matches_scalar(self, no_scipy, monkeypatch):
        if no_scipy:
            monkeypatch.setenv("REPRO_NO_SCIPY", "1")
        elif load_scipy_csgraph() is None:
            pytest.skip("scipy not installed")
        topo = _topology("square")
        topo.fail_satellite(7)
        topo.fail_isl(20, topo.isl_neighbors(20)[0])
        router = DijkstraRouter(topo)
        rng = np.random.default_rng(17)
        total = topo.constellation.total_satellites
        srcs = [int(s) for s in rng.integers(0, total, 30)]
        dsts = [int(d) for d in rng.integers(0, total, 30)]
        many = router.route_many(srcs, dsts, 45.0)
        for result, s, d in zip(many, srcs, dsts):
            single = router.route(s, d, 45.0)
            assert result.delivered == single.delivered
            if result.delivered:
                assert abs(result.delay_s - single.delay_s) < 1e-12
                assert len(result.path) == len(single.path)
