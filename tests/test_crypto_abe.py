"""Tests for access trees and attribute-based encryption (S4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    AbeDecryptionError,
    and_,
    attr,
    can_decrypt,
    decrypt,
    encrypt,
    k_of,
    keygen,
    or_,
    policy_attributes,
    satisfies,
    serving_satellite_policy,
    setup,
)
from repro.crypto.access_tree import Gate


@pytest.fixture(scope="module")
def authority():
    return setup(b"test-master-secret")


class TestAccessTree:
    def test_leaf_satisfaction(self):
        assert satisfies(attr("a"), {"a"})
        assert not satisfies(attr("a"), {"b"})

    def test_and_gate(self):
        policy = and_(attr("a"), attr("b"))
        assert satisfies(policy, {"a", "b"})
        assert not satisfies(policy, {"a"})

    def test_or_gate(self):
        policy = or_(attr("a"), attr("b"))
        assert satisfies(policy, {"a"})
        assert satisfies(policy, {"b"})
        assert not satisfies(policy, {"c"})

    def test_threshold_gate(self):
        policy = k_of(2, attr("a"), attr("b"), attr("c"))
        assert satisfies(policy, {"a", "c"})
        assert not satisfies(policy, {"a"})

    def test_nested_policy(self):
        policy = or_(and_(attr("a"), attr("b")), attr("c"))
        assert satisfies(policy, {"c"})
        assert satisfies(policy, {"a", "b"})
        assert not satisfies(policy, {"a"})

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            Gate(0, (attr("a"),))
        with pytest.raises(ValueError):
            Gate(3, (attr("a"), attr("b")))
        with pytest.raises(ValueError):
            Gate(1, ())

    def test_policy_attributes(self):
        policy = or_(and_(attr("a"), attr("b")), attr("c"))
        assert policy_attributes(policy) == {"a", "b", "c"}

    def test_describe(self):
        policy = or_(and_(attr("a"), attr("b")),
                     k_of(2, attr("c"), attr("d"), attr("e")))
        text = policy.describe()
        assert "OR" in text and "AND" in text and "2-of-3" in text

    def test_paper_example_policy(self):
        """S4.4's example: the UE itself, or a capable satellite."""
        policy = serving_satellite_policy()
        assert satisfies(policy, {"role:ue", "supi:self"})
        assert satisfies(policy, {"role:satellite", "cap:qos",
                                  "bandwidth>=10gbps"})
        assert not satisfies(policy, {"role:satellite"})
        assert not satisfies(policy, {"role:ue"})


class TestAbeRoundtrip:
    def test_authorized_decrypts(self, authority):
        _, msk = authority
        policy = and_(attr("a"), attr("b"))
        ct = encrypt(msk, b"hello states", policy)
        key = keygen(msk, ["a", "b"])
        assert decrypt(key, ct) == b"hello states"

    def test_unauthorized_fails(self, authority):
        _, msk = authority
        policy = and_(attr("a"), attr("b"))
        ct = encrypt(msk, b"secret", policy)
        key = keygen(msk, ["a"])
        with pytest.raises(AbeDecryptionError):
            decrypt(key, ct)

    def test_extra_attributes_still_decrypt(self, authority):
        _, msk = authority
        ct = encrypt(msk, b"x", attr("a"))
        key = keygen(msk, ["a", "b", "c"])
        assert decrypt(key, ct) == b"x"

    def test_or_policy_either_branch(self, authority):
        _, msk = authority
        ct = encrypt(msk, b"y", or_(attr("a"), attr("b")))
        assert decrypt(keygen(msk, ["a"]), ct) == b"y"
        assert decrypt(keygen(msk, ["b"]), ct) == b"y"

    def test_threshold_policy(self, authority):
        _, msk = authority
        ct = encrypt(msk, b"z", k_of(2, attr("a"), attr("b"), attr("c")))
        assert decrypt(keygen(msk, ["b", "c"]), ct) == b"z"
        with pytest.raises(AbeDecryptionError):
            decrypt(keygen(msk, ["c"]), ct)

    def test_different_authority_cannot_decrypt(self, authority):
        _, msk = authority
        _, foreign_msk = setup(b"another-authority")
        ct = encrypt(msk, b"w", attr("a"))
        foreign_key = keygen(foreign_msk, ["a"])
        with pytest.raises(AbeDecryptionError):
            decrypt(foreign_key, ct)

    def test_tampered_payload_detected(self, authority):
        _, msk = authority
        ct = encrypt(msk, b"untouched", attr("a"))
        import dataclasses
        tampered = dataclasses.replace(
            ct, payload=bytes([ct.payload[0] ^ 1]) + ct.payload[1:])
        with pytest.raises(AbeDecryptionError):
            decrypt(keygen(msk, ["a"]), tampered)

    def test_empty_plaintext(self, authority):
        _, msk = authority
        ct = encrypt(msk, b"", attr("a"))
        assert decrypt(keygen(msk, ["a"]), ct) == b""

    def test_large_plaintext(self, authority):
        _, msk = authority
        blob = bytes(range(256)) * 64
        ct = encrypt(msk, blob, attr("a"))
        assert decrypt(keygen(msk, ["a"]), ct) == blob

    def test_ciphertexts_are_randomised(self, authority):
        _, msk = authority
        a = encrypt(msk, b"same", attr("a"))
        b = encrypt(msk, b"same", attr("a"))
        assert a.payload != b.payload or a.nonce != b.nonce

    def test_can_decrypt_predicate(self, authority):
        _, msk = authority
        ct = encrypt(msk, b"m", and_(attr("a"), attr("b")))
        assert can_decrypt(keygen(msk, ["a", "b"]), ct)
        assert not can_decrypt(keygen(msk, ["a"]), ct)

    def test_keygen_requires_attributes(self, authority):
        _, msk = authority
        with pytest.raises(ValueError):
            keygen(msk, [])

    def test_ciphertext_size_grows_with_policy(self, authority):
        _, msk = authority
        small = encrypt(msk, b"m", attr("a"))
        big = encrypt(msk, b"m", and_(*[attr(f"x{i}") for i in range(8)]))
        assert big.size_bytes() > small.size_bytes()

    @given(st.sets(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1))
    @settings(max_examples=30, deadline=None)
    def test_decryption_iff_satisfaction(self, holder_attrs):
        """The functional contract: decrypt succeeds iff A(S) = true."""
        _, msk = setup(b"property-test-secret")
        policy = or_(and_(attr("a"), attr("b")),
                     k_of(2, attr("c"), attr("d"), attr("e")))
        ct = encrypt(msk, b"payload", policy)
        key = keygen(msk, holder_attrs)
        if satisfies(policy, holder_attrs):
            assert decrypt(key, ct) == b"payload"
        else:
            with pytest.raises(AbeDecryptionError):
                decrypt(key, ct)
