"""Tests for the experiment harness: shapes of every table/figure."""

import pytest

from repro.baselines import ALL_OPTIONS, ALL_SOLUTIONS, fiveg_ntn, spacecore
from repro.experiments import (
    compare_ideal_vs_j4,
    deadline_violation_factor,
    fig7_cpu_breakdown,
    fig8_latency_sweep,
    fig17_sweep,
    fig19_study,
    fig21_comparison,
    final_hijack_leaks,
    gateway_concentration,
    load_variation,
    mean_hops_to_ground,
    path_stretch_vs_optimal,
    reduction_factors,
    registration_delay_cdf,
    satellite_ground_track_load,
    session_latency_comparison,
    signaling_load,
    solution_latency_s,
    sweep,
    tcp_recovery_time_s,
)
from repro.fiveg.messages import ProcedureKind
from repro.hardware import RASPBERRY_PI_4, XEON_WORKSTATION
from repro.orbits import default_ground_stations, iridium, starlink


@pytest.fixture(scope="module")
def starlink_hops():
    return mean_hops_to_ground(starlink())


class TestSignalingStorms:
    def test_hops_reasonable(self, starlink_hops):
        assert 2.0 < starlink_hops < 25.0

    def test_fig10_session_storm_scale(self, starlink_hops):
        """S3.1: 1,035-41,559 session signalings/s per satellite."""
        ntn = fiveg_ntn()
        low = signaling_load(ntn, starlink(), 2_000, hops=starlink_hops)
        high = signaling_load(ntn, starlink(), 30_000,
                              hops=starlink_hops)
        assert 1e3 < low.satellite_hotspot_per_s < 1e5
        assert 1e4 < high.satellite_hotspot_per_s < 3e5

    def test_ground_station_order_of_magnitude_worse(self, starlink_hops):
        """S3: GS load ~10x the satellite load for remote-core options."""
        ntn = fiveg_ntn()
        load = signaling_load(ntn, starlink(), 30_000,
                              hops=starlink_hops)
        assert load.ground_station_per_s > load.satellite_mean_per_s * 3

    def test_spacecore_ground_load_negligible(self, starlink_hops):
        sc = signaling_load(spacecore(), starlink(), 30_000,
                            hops=starlink_hops)
        ntn = signaling_load(fiveg_ntn(), starlink(), 30_000,
                             hops=starlink_hops)
        assert sc.ground_station_per_s < ntn.ground_station_per_s / 100

    def test_load_scales_with_capacity(self, starlink_hops):
        loads = [signaling_load(fiveg_ntn(), starlink(), cap,
                                hops=starlink_hops).satellite_mean_per_s
                 for cap in (2_000, 10_000, 30_000)]
        assert loads == sorted(loads)
        assert loads[-1] == pytest.approx(15 * loads[0], rel=0.01)

    def test_table4_spacecore_wins_everywhere(self, starlink_hops):
        factors = reduction_factors(starlink())
        assert set(factors) == {"5G NTN", "SkyCore", "DPCM", "Baoyun"}
        for name, factor in factors.items():
            assert factor > 5.0, f"{name} should cost >5x SpaceCore"

    def test_table4_ordering_matches_paper(self):
        """Starlink row: NTN worst, SkyCore least-bad (Table 4)."""
        factors = reduction_factors(starlink())
        assert factors["5G NTN"] == max(factors.values())
        assert factors["SkyCore"] == min(factors.values())

    def test_fig10_mobility_rows(self, starlink_hops):
        """Options 1-2 show handovers only; 3-4 add registrations."""
        opt1 = ALL_OPTIONS[0]()
        opt3 = ALL_OPTIONS[2]()
        l1 = signaling_load(opt1, starlink(), 30_000, hops=starlink_hops)
        l3 = signaling_load(opt3, starlink(), 30_000, hops=starlink_hops)
        _, mobility1 = l1.satellite_rows()
        _, mobility3 = l3.satellite_rows()
        assert mobility1 > 0
        assert (l3.by_procedure_satellite[
            ProcedureKind.MOBILITY_REGISTRATION] > 0)
        assert (l1.by_procedure_satellite[
            ProcedureKind.MOBILITY_REGISTRATION] == 0)
        assert mobility3 > mobility1

    def test_sweep_covers_grid(self):
        loads = sweep([spacecore, fiveg_ntn], [iridium()],
                      capacities=(2_000, 10_000),
                      stations=default_ground_stations(6))
        assert len(loads) == 4


class TestCpuAndLatency:
    def test_fig7_rpi_saturates_before_xeon(self):
        rpi = fig7_cpu_breakdown(RASPBERRY_PI_4)
        xeon = fig7_cpu_breakdown(XEON_WORKSTATION)
        assert rpi[-1].total_percent > xeon[-1].total_percent

    def test_fig7_rpi_near_saturation_at_250(self):
        """Fig. 7a: hardware 1 exhausts around 250 registrations/s."""
        rpi = fig7_cpu_breakdown(RASPBERRY_PI_4)
        assert rpi[-1].total_percent > 60.0

    def test_fig8_latency_monotone_in_rate(self):
        points = fig8_latency_sweep()
        rpi_points = [p for p in points if "rpi" in p.platform]
        delays = [p.registration.total_s for p in rpi_points]
        assert delays == sorted(delays)

    def test_fig8_hardware1_slower(self):
        points = fig8_latency_sweep()
        by_platform = {}
        for p in points:
            if p.rate_per_s == 300:
                by_platform[p.platform] = p.registration.total_s
        assert by_platform["hardware-1-rpi4"] >= \
            by_platform["hardware-2-xeon"]


class TestPrototype:
    def test_fig17_grid_size(self):
        points = fig17_sweep(rates=(100, 300))
        assert len(points) == 5 * 3 * 2

    def test_spacecore_mobility_latency_zero(self):
        latency, _ = solution_latency_s(
            spacecore(), ProcedureKind.MOBILITY_REGISTRATION, 300)
        assert latency == 0.0

    def test_session_latency_ordering(self):
        """Fig. 17b: SpaceCore lowest among home-interacting designs."""
        latencies = session_latency_comparison(300)
        assert latencies["SpaceCore"] < latencies["5G NTN"]
        assert latencies["SpaceCore"] < latencies["Baoyun"]

    def test_baoyun_dpcm_saturate_at_high_rate(self):
        """Fig. 17a: on-board open5gs melts near 500 registrations/s."""
        _, baoyun_sat = solution_latency_s(
            ALL_SOLUTIONS[4](), ProcedureKind.INITIAL_REGISTRATION, 500)
        assert baoyun_sat

    def test_skycore_registration_fastest(self):
        """Fig. 17a: SkyCore pre-stores state, so C1 is local/fast."""
        rows = {f().name: solution_latency_s(
            f(), ProcedureKind.INITIAL_REGISTRATION, 300)[0]
            for f in ALL_SOLUTIONS}
        assert rows["SkyCore"] == min(rows.values())


class TestRelay:
    def test_fig18b_starlink(self):
        comparison = compare_ideal_vs_j4(starlink(), samples=8)
        assert comparison.delivery_rate_ideal == 1.0
        assert comparison.delivery_rate_j4 == 1.0
        assert comparison.delays_similar
        # Beijing-New York one-way over LEO: tens of ms.
        assert 25.0 < comparison.mean_delay_ideal_ms < 150.0

    def test_stretch_ablation_small(self):
        assert path_stretch_vs_optimal(starlink()) < 1.6

    def test_zero_samples_serializes_clean(self):
        """samples=0 edge: no ZeroDivisionError, no JSON Infinity.

        The retired pipeline returned ``float("inf")`` mean delays
        (``json.dumps`` emits the non-standard ``Infinity`` token) and
        divided by ``len(trials) == 0`` for the delivery rates.
        """
        import dataclasses
        import json
        comparison = compare_ideal_vs_j4(starlink(), samples=0)
        assert comparison.delivery_rate_ideal == 0.0
        assert comparison.delivery_rate_j4 == 0.0
        assert comparison.mean_delay_ideal_ms is None
        assert comparison.mean_delay_j4_ms is None
        assert not comparison.delays_similar
        text = json.dumps(dataclasses.asdict(comparison))
        assert "Infinity" not in text
        assert json.loads(text)["mean_delay_ideal_ms"] is None

    def test_undelivered_panel_mean_is_none(self):
        """A panel whose trials all miss must carry None, not inf."""
        import math
        from repro.experiments.relay import relay_trials
        # Route to a destination far above the inclination band: the
        # walk centers without covering, deflects, and never delivers.
        trials = relay_trials(starlink(), "ideal", samples=4,
                              dst=(math.radians(89.0), 0.0))
        assert trials and not any(t.delivered for t in trials)

    def test_sweep_stats_counts_one_build_per_epoch(self):
        from repro.experiments import relay_sweep_stats
        stats = relay_sweep_stats(starlink(), samples=6)
        assert stats.epochs == 6
        assert stats.table_builds == 6
        assert stats.delivered == stats.routed == 6
        assert stats.mean_delay_ms is not None


class TestLeakage:
    def test_fig19_shapes(self):
        study = fig19_study(starlink(), duration_s=3000.0)
        finals = final_hijack_leaks(study)
        assert finals["SkyCore"] == max(finals.values())
        assert finals["SpaceCore"] == min(finals.values())
        assert finals["SkyCore"] > 1e7  # the paper's 1e8-scale axis
        assert study.mitm_rates["SpaceCore"] == min(
            study.mitm_rates.values())


class TestTemporalAndUserLevel:
    def test_fig12_load_tracks_population(self):
        samples = satellite_ground_track_load(starlink(), 30_000,
                                              duration_s=5700.0,
                                              step_s=120.0)
        peak, trough = load_variation(samples)
        assert peak > 0
        assert trough < peak / 5  # bursty: oceans nearly silent

    def test_fig12_regions_change(self):
        samples = satellite_ground_track_load(starlink(), 30_000,
                                              duration_s=5700.0,
                                              step_s=120.0)
        regions = {s.region for s in samples}
        assert len(regions) >= 2

    def test_tcp_recovery_exceeds_outage(self):
        """Fig. 21: stalls outlast the signaling outage (RTO)."""
        for outage in (0.05, 0.5, 2.0):
            assert tcp_recovery_time_s(outage) >= outage

    def test_fig21_resets(self):
        results = {r.solution: r for r in fig21_comparison()}
        assert not results["SpaceCore"].connection_reset
        assert not results["5G NTN"].connection_reset
        assert results["Baoyun"].connection_reset
        assert results["SkyCore"].connection_reset

    def test_fig21_spacecore_stalls_least(self):
        results = {r.solution: r for r in fig21_comparison()}
        spacecore_stall = results["SpaceCore"].tcp_stall_s
        for name, result in results.items():
            if name != "SpaceCore":
                assert result.tcp_stall_s >= spacecore_stall


class TestBottleneck:
    def test_fig5a_concentration(self):
        conc = gateway_concentration(starlink())
        assert conc.concentration_factor > 2.0

    def test_fig5b_cdf_monotone(self):
        cdf = registration_delay_cdf("inmarsat-explorer-710", 200)
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_deadline_violation_enormous(self):
        """S2.2: seconds-scale registration vs <10 ms deadlines."""
        assert deadline_violation_factor("tiantong-sc310") > 100
