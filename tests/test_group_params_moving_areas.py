"""Tests for the group parameters and the Fig. 11 churn experiment."""


from repro.crypto.group import SCHNORR_GROUP, SHARE_PRIME, is_probable_prime
from repro.experiments import (
    fig11_comparison,
    geospatial_area_churn,
    logical_area_churn,
)
from repro.orbits import iridium, starlink


class TestGroupParameters:
    def test_p_is_prime(self):
        assert is_probable_prime(SCHNORR_GROUP.p)

    def test_q_is_prime(self):
        assert is_probable_prime(SCHNORR_GROUP.q)

    def test_safe_prime_structure(self):
        assert SCHNORR_GROUP.p == 2 * SCHNORR_GROUP.q + 1

    def test_share_prime_is_mersenne_127(self):
        assert SHARE_PRIME == (1 << 127) - 1
        assert is_probable_prime(SHARE_PRIME)

    def test_miller_rabin_rejects_composites(self):
        assert not is_probable_prime(SCHNORR_GROUP.p + 2)  # even
        assert not is_probable_prime(561)   # Carmichael number
        assert not is_probable_prime(1)
        assert is_probable_prime(2)
        assert is_probable_prime(97)


class TestMovingAreas:
    def test_logical_areas_churn_fast(self):
        """Fig. 11: satellite-bound areas sweep past static users."""
        churn = logical_area_churn(starlink(), 39.9, 116.4,
                                   duration_s=1200.0)
        assert churn.distinct_areas >= 3
        assert churn.changes_per_hour > 10

    def test_geospatial_areas_never_move(self):
        churn = geospatial_area_churn(starlink(), 39.9, 116.4,
                                      duration_s=1200.0)
        assert churn.distinct_areas == 1
        assert churn.area_changes == 0
        assert churn.changes_per_hour == 0.0

    def test_comparison_pairs_both_definitions(self):
        rows = fig11_comparison(starlink(), duration_s=900.0)
        definitions = {r.definition for r in rows}
        assert len(definitions) == 2

    def test_sparser_shell_churns_slower(self):
        dense = logical_area_churn(starlink(), 39.9, 116.4,
                                   duration_s=1200.0)
        sparse = logical_area_churn(iridium(), 39.9, 116.4,
                                    duration_s=1200.0)
        assert sparse.changes_per_hour <= dense.changes_per_hour
