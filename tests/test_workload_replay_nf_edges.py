"""Tests for Trace 1 replay, CPU replay series, and NF edge cases."""


import pytest

from repro.core import SpaceCoreSatellite, SpaceCoreHome
from repro.fiveg import CoreNetwork, ProcedureRunner
from repro.fiveg.nf import Upf
from repro.workload import (
    CpuSample,
    replay_cpu_series,
    timeline_duration_s,
    trace1_timeline,
)


class TestTrace1:
    def test_event_order_is_the_protocol(self):
        timeline = trace1_timeline(seed=1)
        texts = [e.text for e in timeline]
        assert texts[0] == "Initiating service request"
        assert texts[-1] == "pdp new state Active"
        assert any("RAU" in t for t in texts)
        assert any("Authentication" in t for t in texts)

    def test_timestamps_monotone(self):
        timeline = trace1_timeline(seed=2)
        times = [e.t_s for e in timeline]
        assert times == sorted(times)

    def test_duration_matches_measured_distribution(self):
        """Ensembles reproduce the ~9.5 s Inmarsat mean (Fig. 5b)."""
        durations = [timeline_duration_s(trace1_timeline(seed=s))
                     for s in range(300)]
        mean = sum(durations) / len(durations)
        assert mean == pytest.approx(9.5, rel=0.15)

    def test_layers_follow_trace1(self):
        timeline = trace1_timeline()
        layers = {e.layer for e in timeline}
        assert {"GMM", "MM", "SM"}.issubset(layers)

    def test_unknown_terminal_rejected(self):
        with pytest.raises(KeyError):
            trace1_timeline("china-mobile")


class TestReplayCpuSeries:
    def test_series_covers_duration(self):
        series = replay_cpu_series("tiantong-sc310", 3000,
                                   duration_s=300.0, window_s=30.0)
        assert len(series) == 10
        assert all(isinstance(s, CpuSample) for s in series)

    def test_messages_accounted(self):
        series = replay_cpu_series("tiantong-sc310", 2000,
                                   duration_s=200.0, window_s=20.0)
        assert sum(s.messages for s in series) == pytest.approx(
            2000, abs=50)

    def test_cpu_capped(self):
        series = replay_cpu_series("china-mobile", 200_000,
                                   duration_s=60.0, window_s=10.0)
        assert all(0.0 <= s.cpu_percent <= 100.0 for s in series)

    def test_heavier_replay_costs_more(self):
        light = replay_cpu_series("tiantong-sc310", 1000,
                                  duration_s=300.0)
        heavy = replay_cpu_series("tiantong-sc310", 20000,
                                  duration_s=300.0)
        assert (sum(s.cpu_percent for s in heavy)
                > sum(s.cpu_percent for s in light))

    def test_validation(self):
        with pytest.raises(ValueError):
            replay_cpu_series("tiantong-sc310", 10, window_s=0.0)


class TestNfEdgeCases:
    def test_amf_context_by_tmsi(self):
        core = CoreNetwork()
        ue = core.provision_subscriber(1)
        runner = ProcedureRunner(core)
        context = runner.initial_registration(ue, (0, 0))
        found = core.amf.context_by_tmsi(context.guti.tmsi)
        assert found is not None
        assert str(found.supi) == str(ue.supi)
        assert core.amf.context_by_tmsi(0xDEADBEEF) is None or True

    def test_amf_deregister_clears_everything(self):
        core = CoreNetwork()
        ue = core.provision_subscriber(2)
        runner = ProcedureRunner(core)
        context = runner.initial_registration(ue, (0, 0))
        core.amf.deregister(ue.supi)
        assert core.amf.context(ue.supi) is None
        assert core.amf.context_by_tmsi(context.guti.tmsi) is None
        assert core.amf.registered_count == 0

    def test_amf_paging_counts(self):
        core = CoreNetwork()
        ue = core.provision_subscriber(3)
        ProcedureRunner(core).initial_registration(ue, (0, 0))
        assert core.amf.page(ue.supi)
        stranger = core.provision_subscriber(4)
        assert not core.amf.page(stranger.supi)
        assert core.amf.paging_requests == 2

    def test_amf_transfer_from_unknown_raises(self):
        core = CoreNetwork()
        from repro.fiveg.identifiers import Plmn
        from repro.fiveg.nf import Amf
        from repro.crypto import generate_keypair
        sk, _ = generate_keypair()
        other = Amf("other", Plmn(460, 0), core.ausf)
        ue = core.provision_subscriber(5)
        with pytest.raises(KeyError):
            core.amf.transfer_context_from(other, ue.supi)

    def test_smf_release_unknown_session_is_noop(self):
        core = CoreNetwork()
        core.smf.release_session(999)  # must not raise

    def test_smf_switch_path_unknown_session(self):
        core = CoreNetwork()
        with pytest.raises(KeyError):
            core.smf.switch_path(999, "nowhere")

    def test_smf_switch_path_unknown_upf(self):
        core = CoreNetwork()
        ue = core.provision_subscriber(6)
        runner = ProcedureRunner(core)
        runner.initial_registration(ue, (0, 0))
        session = runner.establish_session(ue, (0, 0), (0, 0))
        with pytest.raises(KeyError):
            core.smf.switch_path(session.session_id, "ghost-upf")

    def test_smf_requires_upf(self):
        from repro.fiveg.nf import Smf
        from repro.geo import AddressAllocator
        smf = Smf("lonely", AddressAllocator(46000))
        with pytest.raises(RuntimeError):
            smf.select_upf()

    def test_upf_remove_unknown_rule_is_noop(self):
        upf = Upf("u")
        upf.remove_rule(42)  # must not raise

    def test_upf_usage_report_unknown_tunnel(self):
        assert Upf("u").usage_report(7) == (0, 0)


class TestSatelliteQosEnforcement:
    def test_satellite_upf_enforces_replica_qos(self):
        """A home-set 8 kbps subscription is enforced in orbit."""
        home = SpaceCoreHome()
        creds = home.enroll_satellite("sat-q")
        satellite = SpaceCoreSatellite("sat-q", creds)
        ue = home.provision_subscriber(9, max_bitrate_up_kbps=8)
        home.register(ue, (1, 1), (1, 1))
        satellite.establish_session_locally(ue, 0.0, home.verify_key)
        supi = str(ue.supi)
        assert satellite.forward_uplink(supi, 1000, now_s=0.0)
        # The 8 kbps bucket (1 kB/s, 1.5 kB burst floor) runs dry.
        assert not satellite.forward_uplink(supi, 1500, now_s=0.05)
        # ... and refills with time.
        assert satellite.forward_uplink(supi, 1000, now_s=5.0)

    def test_unshaped_when_no_clock(self):
        home = SpaceCoreHome()
        creds = home.enroll_satellite("sat-r")
        satellite = SpaceCoreSatellite("sat-r", creds)
        ue = home.provision_subscriber(10, max_bitrate_up_kbps=8)
        home.register(ue, (1, 1), (1, 1))
        satellite.establish_session_locally(ue, 0.0, home.verify_key)
        for _ in range(5):
            assert satellite.forward_uplink(str(ue.supi), 1500)
