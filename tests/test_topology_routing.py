"""Tests for the +Grid topology and Algorithm 1 geospatial routing."""

import math
import random

import pytest

from repro.orbits import (
    IdealPropagator,
    J4Propagator,
    default_ground_stations,
    iridium,
    oneweb,
    serving_satellite,
    starlink,
)
from repro.topology import (
    DijkstraRouter,
    GeospatialRouter,
    GridTopology,
    Link,
    path_stretch,
    propagation_delay_s,
)

BEIJING = (math.radians(39.9), math.radians(116.4))
NEW_YORK = (math.radians(40.7), math.radians(-74.0))


@pytest.fixture(scope="module")
def topo():
    return GridTopology(IdealPropagator(starlink()),
                        default_ground_stations())


@pytest.fixture(scope="module")
def router(topo):
    return GeospatialRouter(topo)


class TestLinks:
    def test_propagation_delay(self):
        # 2998 km at light speed is about 10 ms.
        assert propagation_delay_s(2997.92458) == pytest.approx(0.01)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay_s(-1.0)

    def test_link_other_endpoint(self):
        link = Link("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(ValueError):
            link.other("c")

    def test_link_failure_cycle(self):
        link = Link("a", "b")
        assert link.delivers()
        link.fail()
        assert not link.delivers()
        link.recover()
        assert link.delivers()

    def test_frame_error_rate(self):
        link = Link("a", "b", frame_error_rate=1.0)
        assert not link.delivers(random.Random(0))

    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link("a", "b", kind="fiber")
        with pytest.raises(ValueError):
            Link("a", "b", frame_error_rate=1.5)
        with pytest.raises(ValueError):
            Link("a", "b", bandwidth_mbps=0)

    def test_transmission_delay(self):
        link = Link("a", "b", bandwidth_mbps=8.0)
        assert link.transmission_delay_s(1000) == pytest.approx(1e-3)


class TestGridTopology:
    def test_four_isl_neighbors(self, topo):
        assert len(topo.isl_neighbors(100)) == 4

    def test_neighbors_are_grid_adjacent(self, topo):
        c = topo.constellation
        plane, slot = c.plane_slot(500)
        nbrs = set(topo.isl_neighbors(500))
        assert c.sat_index(plane, slot + 1) in nbrs
        assert c.sat_index(plane + 1, slot) in nbrs

    def test_isl_distance_symmetric(self, topo):
        a, b = 100, topo.isl_neighbors(100)[0]
        assert topo.isl_distance_km(a, b, 0.0) == pytest.approx(
            topo.isl_distance_km(b, a, 0.0))

    def test_intra_plane_spacing_constant(self, topo):
        c = topo.constellation
        plane, slot = c.plane_slot(300)
        up, _ = c.intra_plane_neighbors(plane, slot)
        d0 = topo.isl_distance_km(300, up, 0.0)
        d1 = topo.isl_distance_km(300, up, 500.0)
        assert d0 == pytest.approx(d1, rel=1e-6)

    def test_failed_satellite_removed(self):
        topo = GridTopology(IdealPropagator(starlink()), [])
        topo.fail_satellite(100)
        assert not topo.is_up(100)
        for nbr_list_owner in topo.isl_neighbors(101), topo.isl_neighbors(99):
            assert 100 not in nbr_list_owner
        topo.recover_satellite(100)
        assert topo.is_up(100)

    def test_failed_isl_removed(self):
        topo = GridTopology(IdealPropagator(starlink()), [])
        nbr = topo.isl_neighbors(50)[0]
        topo.fail_isl(50, nbr)
        assert nbr not in topo.isl_neighbors(50)
        assert 50 not in topo.isl_neighbors(nbr)
        topo.recover_isl(50, nbr)
        assert nbr in topo.isl_neighbors(50)

    def test_station_access_satellite(self, topo):
        gs = topo.ground_stations[0]
        sat = topo.station_access_satellite(gs, 0.0)
        assert sat >= 0

    def test_snapshot_graph_connected(self, topo):
        import networkx as nx
        graph = topo.snapshot_graph(0.0, include_ground=False)
        assert graph.number_of_nodes() == 1584
        assert graph.number_of_edges() == 2 * 1584  # 4 ISLs each, halved
        assert nx.is_connected(graph)

    def test_snapshot_graph_includes_ground(self, topo):
        graph = topo.snapshot_graph(0.0, include_ground=True)
        names = {gs.name for gs in topo.ground_stations}
        present = names.intersection(graph.nodes)
        assert len(present) > len(names) * 0.6

    def test_gsl_and_uplink_delay_positive(self, topo):
        gs = topo.ground_stations[0]
        sat = topo.station_access_satellite(gs, 0.0)
        assert topo.gsl_delay_s(sat, gs, 0.0) > 0
        assert topo.uplink_delay_s(sat, *BEIJING, 0.0) > 0


class TestAlgorithm1:
    def test_beijing_to_new_york_delivers(self, router, topo):
        src = serving_satellite(topo.propagator, 0.0, *BEIJING)
        result = router.route(src, *NEW_YORK, 0.0)
        assert result.delivered
        # One-way delay between Beijing and New York over LEO ISLs is
        # a few tens of milliseconds (Fig. 18b plots 40-110 ms).
        assert 0.025 < result.delay_s < 0.150
        assert result.hops >= 10

    def test_delivery_to_local_destination_is_zero_hop(self, router, topo):
        src = serving_satellite(topo.propagator, 0.0, *BEIJING)
        near = (BEIJING[0] + 0.001, BEIJING[1] + 0.001)
        result = router.route(src, *near, 0.0)
        assert result.delivered
        assert result.hops == 0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_pairs_always_deliver(self, router, topo, seed):
        """Fig. 18b: 'Algorithm 1 guarantees traffic delivery'."""
        rng = random.Random(seed)
        for _ in range(25):
            lat1 = math.radians(rng.uniform(-50, 50))
            lon1 = math.radians(rng.uniform(-180, 180))
            lat2 = math.radians(rng.uniform(-50, 50))
            lon2 = math.radians(rng.uniform(-180, 180))
            src = serving_satellite(topo.propagator, 0.0, lat1, lon1)
            if src < 0:
                continue
            assert router.route(src, lat2, lon2, 0.0).delivered

    def test_delivery_at_later_times(self, router, topo):
        for t in (0.0, 900.0, 3600.0, 7200.0):
            src = serving_satellite(topo.propagator, t, *BEIJING)
            assert router.route(src, *NEW_YORK, t).delivered

    def test_stretch_vs_dijkstra_small(self, router, topo):
        """Stateless routing pays only a small detour over optimal."""
        src = serving_satellite(topo.propagator, 0.0, *BEIJING)
        dst = serving_satellite(topo.propagator, 0.0, *NEW_YORK)
        geo = router.route(src, *NEW_YORK, 0.0)
        base = DijkstraRouter(topo).route(src, dst, 0.0)
        assert base.delivered
        assert path_stretch(geo, base) < 1.6

    def test_j4_orbits_still_deliver(self):
        """Fig. 18b: runtime coordinates self-calibrate perturbations."""
        topo = GridTopology(J4Propagator(starlink()), [])
        router = GeospatialRouter(topo)
        for t in (0.0, 3 * 3600.0, 12 * 3600.0):
            src = serving_satellite(topo.propagator, t, *BEIJING)
            result = router.route(src, *NEW_YORK, t)
            assert result.delivered
            assert result.delay_s < 0.2

    def test_ideal_vs_j4_delay_similar(self):
        """Fig. 18b: path delays similar under ideal and J4 orbits."""
        t = 4 * 3600.0
        delays = {}
        for kind, prop in (("ideal", IdealPropagator(starlink())),
                           ("j4", J4Propagator(starlink()))):
            topo = GridTopology(prop, [])
            router = GeospatialRouter(topo)
            src = serving_satellite(prop, t, *BEIJING)
            delays[kind] = router.route(src, *NEW_YORK, t).delay_s
        assert delays["j4"] == pytest.approx(delays["ideal"], abs=0.030)

    def test_routes_around_failed_satellite(self, topo):
        """Deflection keeps delivering when a transit satellite dies."""
        local = GridTopology(IdealPropagator(starlink()), [])
        router = GeospatialRouter(local)
        src = serving_satellite(local.propagator, 0.0, *BEIJING)
        healthy = router.route(src, *NEW_YORK, 0.0)
        assert healthy.delivered and healthy.hops > 2
        # Kill a mid-path satellite.
        victim = healthy.path[len(healthy.path) // 2]
        local.fail_satellite(victim)
        rerouted = router.route(src, *NEW_YORK, 0.0)
        assert rerouted.delivered
        assert victim not in rerouted.path

    def test_hops_property(self, router, topo):
        src = serving_satellite(topo.propagator, 0.0, *BEIJING)
        result = router.route(src, *NEW_YORK, 0.0)
        assert result.hops == len(result.path) - 1

    def test_path_stretch_requires_delivery(self):
        from repro.topology.routing import RouteResult
        with pytest.raises(ValueError):
            path_stretch(RouteResult(False), RouteResult(True))


class TestStarConstellations:
    @pytest.mark.parametrize("factory", [oneweb, iridium])
    def test_polar_shells_deliver(self, factory):
        c = factory()
        topo = GridTopology(IdealPropagator(c), [])
        router = GeospatialRouter(topo, max_hops=512)
        rng = random.Random(9)
        delivered = 0
        attempts = 0
        for _ in range(20):
            lat1 = math.radians(rng.uniform(-60, 60))
            lon1 = math.radians(rng.uniform(-180, 180))
            lat2 = math.radians(rng.uniform(-60, 60))
            lon2 = math.radians(rng.uniform(-180, 180))
            src = serving_satellite(topo.propagator, 0.0, lat1, lon1)
            if src < 0:
                continue
            attempts += 1
            delivered += router.route(src, lat2, lon2, 0.0).delivered
        assert attempts > 0
        # Star constellations have the counter-rotating seam; the paper
        # itself reports occasional Iridium detours.  Require a high
        # delivery rate rather than perfection.
        assert delivered / attempts >= 0.9
