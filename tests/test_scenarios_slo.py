"""SLO evaluation edge cases (ISSUE 7 satellite coverage).

The verdict logic must behave at the boundaries: empty snapshots,
every-trial-failed runs, observations exactly at their threshold, and
the degraded band around each budget line.
"""

import pytest

from repro.scenarios import (
    DEGRADED,
    FAIL,
    PASS,
    SLOBudget,
    evaluate_slos,
)
from repro.scenarios.slo import SLOReport, percentile


def _check(report, name):
    match = [c for c in report.checks if c.name == name]
    assert len(match) == 1, f"missing check {name}"
    return match[0]


class TestEmptySummary:
    def test_empty_summary_fails_availability_not_crashes(self):
        report = evaluate_slos(SLOBudget(), {})
        assert report.verdict == FAIL
        assert _check(report, "availability").verdict == FAIL
        # Zero-observation ceilings pass: nothing happened, nothing
        # exceeded a budget.
        assert _check(report, "p99_recovery_latency_s").verdict == PASS

    def test_empty_report_passes_vacuously(self):
        assert SLOReport([]).verdict == PASS

    def test_all_checks_disabled_yields_no_checks(self):
        budget = SLOBudget(availability_floor=None,
                           p99_latency_ceiling_s=None,
                           retry_budget_attempts=None,
                           max_lost_sessions=None,
                           survival_margin_floor=None)
        report = evaluate_slos(budget, {})
        assert report.checks == []
        assert report.verdict == PASS


class TestAllTrialsFailed:
    def test_total_loss_fails_floors_and_lost_budget(self):
        summary = {
            "spacecore_mean_survival": 0.0,
            "baseline_mean_survival": 0.0,
            "survival_margin": 0.0,
            "spacecore_p99_recovery_s": 0.0,
            "spacecore_mean_attempts": 0.0,
            "spacecore_lost": 24,
        }
        report = evaluate_slos(SLOBudget(max_lost_sessions=2), summary)
        assert report.verdict == FAIL
        assert _check(report, "availability").verdict == FAIL
        assert _check(report, "lost_sessions").verdict == FAIL
        # Margin floor of 0.0 with margin exactly 0.0: met without
        # headroom -- degraded, not failed.
        assert _check(report, "survival_margin").verdict == DEGRADED


class TestExactThreshold:
    """Budget exactly at threshold: met, but with zero headroom."""

    def test_floor_exactly_at_threshold_is_degraded(self):
        budget = SLOBudget(availability_floor=0.9)
        report = evaluate_slos(budget, {"spacecore_mean_survival": 0.9})
        assert _check(report, "availability").verdict == DEGRADED

    def test_ceiling_exactly_at_threshold_is_degraded(self):
        budget = SLOBudget(p99_latency_ceiling_s=30.0,
                           availability_floor=None)
        report = evaluate_slos(budget,
                               {"spacecore_p99_recovery_s": 30.0})
        assert _check(report, "p99_recovery_latency_s").verdict == DEGRADED

    def test_just_over_floor_band_passes(self):
        budget = SLOBudget(availability_floor=0.9, degraded_margin=0.05)
        report = evaluate_slos(budget,
                               {"spacecore_mean_survival": 0.95})
        assert _check(report, "availability").verdict == PASS

    def test_just_under_floor_fails(self):
        budget = SLOBudget(availability_floor=0.9)
        report = evaluate_slos(
            budget, {"spacecore_mean_survival": 0.8999999})
        assert _check(report, "availability").verdict == FAIL

    def test_zero_threshold_uses_absolute_band(self):
        budget = SLOBudget(survival_margin_floor=0.0,
                           degraded_margin=0.05)
        degraded = evaluate_slos(budget, {"survival_margin": 0.04,
                                          "spacecore_mean_survival": 1.0})
        passing = evaluate_slos(budget, {"survival_margin": 0.06,
                                         "spacecore_mean_survival": 1.0})
        assert _check(degraded, "survival_margin").verdict == DEGRADED
        assert _check(passing, "survival_margin").verdict == PASS


class TestVerdictAggregation:
    def test_worst_check_wins(self):
        budget = SLOBudget(availability_floor=0.9,
                           p99_latency_ceiling_s=30.0)
        summary = {"spacecore_mean_survival": 1.0,
                   "spacecore_p99_recovery_s": 31.0,
                   "survival_margin": 0.5}
        report = evaluate_slos(budget, summary)
        assert report.verdict == FAIL
        assert len(report.failed) == 1
        assert report.failed[0].name == "p99_recovery_latency_s"

    def test_degraded_beats_pass(self):
        budget = SLOBudget(availability_floor=0.9)
        report = evaluate_slos(budget, {"spacecore_mean_survival": 0.91,
                                        "survival_margin": 0.5})
        assert report.verdict == DEGRADED

    def test_report_json_round_trips_names_and_verdicts(self):
        report = evaluate_slos(SLOBudget(),
                               {"spacecore_mean_survival": 1.0,
                                "survival_margin": 0.5})
        payload = report.to_json()
        assert payload["verdict"] == report.verdict
        assert {c["name"] for c in payload["checks"]} == {
            c.name for c in report.checks}


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_single_value(self):
        assert percentile([4.2], 99.0) == 4.2

    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile([float(v) for v in values], 99.0) == 99.0
        assert percentile([float(v) for v in values], 50.0) == 50.0
        assert percentile([float(v) for v in values], 100.0) == 100.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestBudgetValidation:
    def test_degraded_margin_bounds(self):
        with pytest.raises(ValueError):
            SLOBudget(degraded_margin=1.0)
        with pytest.raises(ValueError):
            SLOBudget(degraded_margin=-0.01)

    def test_describe_is_json_ready(self):
        import json
        json.dumps(SLOBudget().describe(), sort_keys=True)
