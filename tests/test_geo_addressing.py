"""Tests for geospatial addressing (Fig. 15c)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import AddressAllocator, GeospatialAddress

cells = st.tuples(st.integers(0, 65535), st.integers(0, 65535))
words = st.integers(0, 2**32 - 1)


def make_address(**overrides):
    defaults = dict(plmn_id=46000, home_cell=(10, 3), ue_cell=(49, 7),
                    ue_suffix=1234)
    defaults.update(overrides)
    return GeospatialAddress(**defaults)


class TestEncoding:
    def test_int_roundtrip(self):
        addr = make_address()
        assert GeospatialAddress.from_int(addr.to_int()) == addr

    def test_bytes_roundtrip(self):
        addr = make_address()
        packed = addr.to_bytes()
        assert len(packed) == 16
        assert GeospatialAddress.from_bytes(packed) == addr

    def test_ipv6_roundtrip(self):
        addr = make_address()
        literal = addr.to_ipv6()
        assert ":" in literal
        assert GeospatialAddress.from_ipv6(literal) == addr

    @given(words, cells, cells, words)
    def test_roundtrip_property(self, plmn, home, ue, suffix):
        addr = GeospatialAddress(plmn, home, ue, suffix)
        assert GeospatialAddress.from_int(addr.to_int()) == addr

    def test_field_positions(self):
        """Fig. 15c: PLMN | home cell | UE cell | suffix, 32 bits each."""
        addr = GeospatialAddress(1, (0, 2), (0, 3), 4)
        value = addr.to_int()
        assert (value >> 96) == 1
        assert (value >> 64) & 0xFFFFFFFF == 2
        assert (value >> 32) & 0xFFFFFFFF == 3
        assert value & 0xFFFFFFFF == 4

    def test_rejects_oversize_fields(self):
        with pytest.raises(ValueError):
            make_address(plmn_id=2**32)
        with pytest.raises(ValueError):
            make_address(ue_suffix=-1)
        with pytest.raises(ValueError):
            make_address(ue_cell=(70000, 0))

    def test_from_bytes_wrong_length(self):
        with pytest.raises(ValueError):
            GeospatialAddress.from_bytes(b"short")

    def test_from_int_range_check(self):
        with pytest.raises(ValueError):
            GeospatialAddress.from_int(1 << 128)


class TestSemantics:
    def test_with_ue_cell_changes_only_cell(self):
        addr = make_address()
        moved = addr.with_ue_cell((5, 5))
        assert moved.ue_cell == (5, 5)
        assert moved.ue_suffix == addr.ue_suffix
        assert moved.home_cell == addr.home_cell
        assert moved.plmn_id == addr.plmn_id

    def test_same_cell(self):
        a = make_address(ue_cell=(3, 3))
        b = make_address(ue_cell=(3, 3), ue_suffix=9)
        c = make_address(ue_cell=(4, 3))
        assert a.same_cell(b)
        assert not a.same_cell(c)

    def test_is_roaming(self):
        home = make_address(home_cell=(1, 1), ue_cell=(1, 1))
        away = make_address(home_cell=(1, 1), ue_cell=(2, 1))
        assert not home.is_roaming()
        assert away.is_roaming()


class TestAllocator:
    def test_unique_addresses_within_cell(self):
        alloc = AddressAllocator(46000)
        addrs = {alloc.allocate((0, 0), (5, 5)).to_int() for _ in range(100)}
        assert len(addrs) == 100

    def test_suffixes_are_per_cell(self):
        alloc = AddressAllocator(46000)
        a = alloc.allocate((0, 0), (5, 5))
        b = alloc.allocate((0, 0), (6, 6))
        assert a.ue_suffix == 0
        assert b.ue_suffix == 0  # independent counters

    def test_allocated_in_counts(self):
        alloc = AddressAllocator(46000)
        for _ in range(7):
            alloc.allocate((0, 0), (5, 5))
        assert alloc.allocated_in((5, 5)) == 7
        assert alloc.allocated_in((9, 9)) == 0

    def test_reallocate_moves_cell_keeps_home(self):
        alloc = AddressAllocator(46000)
        addr = alloc.allocate((2, 2), (5, 5))
        moved = alloc.reallocate(addr, (8, 8))
        assert moved.ue_cell == (8, 8)
        assert moved.home_cell == (2, 2)
        assert moved.plmn_id == addr.plmn_id

    def test_rejects_bad_plmn(self):
        with pytest.raises(ValueError):
            AddressAllocator(-1)
