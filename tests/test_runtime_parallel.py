"""Tests for the sharded parallel runner and shard-local memoization."""

import os

import pytest

from repro.runtime import (
    PLANNER_ENV_VAR,
    WORKERS_ENV_VAR,
    clear_shard_caches,
    resolve_workers,
    run_sharded,
    seed_for,
    shard_memoized,
    shutdown_worker_pools,
)
from repro.runtime.parallel import shard_seeds


def _square(x):
    return x * x


def _worker_env(_):
    return os.environ.get(WORKERS_ENV_VAR)


class TestSeedDerivation:
    def test_deterministic(self):
        assert seed_for(0, 0) == seed_for(0, 0)
        assert seed_for(7, "chaos-trial:3") == seed_for(7, "chaos-trial:3")

    def test_distinct_across_shards_and_bases(self):
        seeds = {seed_for(base, shard)
                 for base in range(8) for shard in range(64)}
        assert len(seeds) == 8 * 64

    def test_no_additive_collision(self):
        """trial k of seed s must differ from trial k+1 of seed s-1."""
        assert seed_for(1, 0) != seed_for(0, 1)

    def test_nonnegative_63_bit(self):
        for shard in range(100):
            seed = seed_for(0, shard)
            assert 0 <= seed < 2 ** 63

    def test_shard_seeds_enumerates(self):
        assert shard_seeds(3, 4) == [seed_for(3, k) for k in range(4)]
        assert shard_seeds(3, 0) == []


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert resolve_workers(None) == 5

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestRunSharded:
    def test_serial_fallback_plain_loop(self):
        assert run_sharded(_square, range(10), workers=1) == \
            [x * x for x in range(10)]

    def test_results_in_item_order(self):
        expected = [x * x for x in range(20)]
        assert run_sharded(_square, range(20), workers=2) == expected
        assert run_sharded(_square, range(20), workers=3) == expected

    def test_empty_items(self):
        assert run_sharded(_square, [], workers=4) == []

    def test_single_item_stays_in_process(self):
        assert run_sharded(_square, [6], workers=4) == [36]

    def test_workers_never_nest(self, monkeypatch):
        """Pool children see REPRO_WORKERS=1, so shards cannot fan out.

        ``REPRO_PLANNER=sharded`` pins the pool path: the auto planner
        would (correctly) judge this trivial workload below break-even
        and run it in-process, where the env var is the parent's.
        """
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        try:
            values = run_sharded(_worker_env, range(4), workers=2)
        finally:
            shutdown_worker_pools()
        assert values == ["1"] * 4


class TestShardMemoized:
    def test_caches_by_key(self):
        calls = []

        @shard_memoized(lambda x: x)
        def expensive(x):
            calls.append(x)
            return x * 10

        assert expensive(3) == 30
        assert expensive(3) == 30
        assert expensive(4) == 40
        assert calls == [3, 4]

    def test_clear_shard_caches_resets(self):
        calls = []

        @shard_memoized(lambda x: x)
        def expensive(x):
            calls.append(x)
            return x

        expensive(1)
        clear_shard_caches()
        expensive(1)
        assert calls == [1, 1]

    def test_hops_cache_hit(self):
        """The signaling Dijkstra memo returns identical objects."""
        from repro.experiments.signaling import (
            _cached_mean_hops,
            mean_hops_to_ground,
        )
        from repro.orbits import default_ground_stations, iridium
        clear_shard_caches()
        constellation = iridium()
        stations = default_ground_stations(6)
        first = mean_hops_to_ground(constellation, stations)
        size_after_first = len(_cached_mean_hops.shard_cache)
        second = mean_hops_to_ground(constellation, stations)
        assert first == second
        assert len(_cached_mean_hops.shard_cache) == size_after_first


class TestBrokenPoolRecycle:
    """A worker death must be visible: a RuntimeWarning plus a planner
    counter, not a silent restart (ISSUE 7 satellite).
    """

    def test_recycle_warns_counts_and_still_completes(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro.runtime import parallel
        from repro.runtime.planner import planner_metrics_snapshot

        real_dispatch = parallel._dispatch_batches
        crashes = {"remaining": 1}

        def flaky_dispatch(*args, **kwargs):
            if crashes["remaining"]:
                crashes["remaining"] -= 1
                raise BrokenProcessPool("worker died")
            return real_dispatch(*args, **kwargs)

        monkeypatch.setattr(parallel, "_dispatch_batches", flaky_dispatch)
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")

        def recycle_count():
            counters = planner_metrics_snapshot()["counters"]
            return sum(v for k, v in counters.items()
                       if k.startswith("planner.pool_recycles"))

        before = recycle_count()
        try:
            with pytest.warns(RuntimeWarning, match="recycling"):
                values = run_sharded(_square, range(6), workers=2,
                                     label="recycle-test")
        finally:
            shutdown_worker_pools()
        assert values == [x * x for x in range(6)]
        assert crashes["remaining"] == 0
        assert recycle_count() == before + 1

    def test_recycle_counter_carries_fan_label(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro.runtime import parallel
        from repro.runtime.planner import planner_metrics_snapshot

        real_dispatch = parallel._dispatch_batches
        crashes = {"remaining": 1}

        def flaky_dispatch(*args, **kwargs):
            if crashes["remaining"]:
                crashes["remaining"] -= 1
                raise BrokenProcessPool("worker died")
            return real_dispatch(*args, **kwargs)

        monkeypatch.setattr(parallel, "_dispatch_batches", flaky_dispatch)
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        try:
            with pytest.warns(RuntimeWarning):
                run_sharded(_square, range(4), workers=2,
                            label="labelled-recycle")
        finally:
            shutdown_worker_pools()
        counters = planner_metrics_snapshot()["counters"]
        assert counters.get(
            "planner.pool_recycles{label=labelled-recycle}", 0) >= 1
