"""Tests for coordinate transforms and the (alpha, gamma) system."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import EARTH_RADIUS_KM, TWO_PI
from repro.orbits.coordinates import (
    InclinedCoordinateSystem,
    central_angle,
    ecef_to_eci,
    ecef_to_geodetic,
    eci_to_ecef,
    geodetic_to_ecef,
    great_circle_distance,
    orbital_to_eci,
    wrap_angle,
    wrap_signed,
)

LAT_BAND = math.radians(52.0)


class TestAngleWrapping:
    def test_wrap_angle_range(self):
        assert wrap_angle(TWO_PI + 0.5) == pytest.approx(0.5)
        assert wrap_angle(-0.5) == pytest.approx(TWO_PI - 0.5)

    def test_wrap_signed_range(self):
        assert wrap_signed(math.pi + 0.1) == pytest.approx(-math.pi + 0.1)
        assert wrap_signed(-math.pi + 0.1) == pytest.approx(-math.pi + 0.1)
        assert wrap_signed(0.3) == pytest.approx(0.3)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_wrap_signed_is_shortest(self, angle):
        w = wrap_signed(angle)
        assert -math.pi < w <= math.pi + 1e-12
        # Same direction modulo 2*pi.
        assert math.isclose(math.cos(w), math.cos(angle), abs_tol=1e-9)
        assert math.isclose(math.sin(w), math.sin(angle), abs_tol=1e-9)


class TestFrames:
    def test_eci_ecef_roundtrip(self):
        p = (1234.5, -2345.6, 3456.7)
        t = 5678.0
        assert ecef_to_eci(eci_to_ecef(p, t), t) == pytest.approx(p)

    def test_frames_aligned_at_epoch(self):
        p = (1000.0, 2000.0, 3000.0)
        assert eci_to_ecef(p, 0.0) == pytest.approx(p)

    def test_orbital_to_eci_equator_start(self):
        # u=0, raan=0 puts the satellite on the +x axis.
        p = orbital_to_eci(0.0, math.radians(53), 0.0, 7000.0)
        assert p == pytest.approx((7000.0, 0.0, 0.0))

    def test_orbital_to_eci_peak_latitude(self):
        # u=pi/2 puts the satellite at its highest latitude.
        i = math.radians(53)
        p = orbital_to_eci(0.0, i, math.pi / 2, 7000.0)
        lat, _ = ecef_to_geodetic(p)
        assert lat == pytest.approx(i)

    def test_geodetic_roundtrip(self):
        lat, lon = math.radians(35.7), math.radians(139.7)
        p = geodetic_to_ecef(lat, lon, EARTH_RADIUS_KM)
        lat2, lon2 = ecef_to_geodetic(p)
        assert lat2 == pytest.approx(lat)
        assert lon2 == pytest.approx(lon)

    def test_great_circle_known_distance(self):
        # Pole to equator is a quarter circumference.
        d = great_circle_distance(math.pi / 2, 0.0, 0.0, 0.0,
                                  EARTH_RADIUS_KM)
        assert d == pytest.approx(math.pi / 2 * EARTH_RADIUS_KM)

    def test_central_angle_symmetry(self):
        a = central_angle(0.3, 0.4, -0.2, 2.0)
        b = central_angle(-0.2, 2.0, 0.3, 0.4)
        assert a == pytest.approx(b)


class TestInclinedSystem:
    def setup_method(self):
        self.system = InclinedCoordinateSystem(math.radians(53.0))

    def test_rejects_bad_inclination(self):
        with pytest.raises(ValueError):
            InclinedCoordinateSystem(0.0)

    def test_equator_point_maps_to_zero_gamma(self):
        alpha, gamma = self.system.from_geodetic(0.0, 0.5)
        assert gamma == pytest.approx(0.0)
        assert alpha == pytest.approx(0.5)

    def test_roundtrip_inside_band(self):
        for lat_deg in (-50, -30, 0, 20, 45, 52):
            for lon_deg in (-170, -60, 0, 90, 179):
                lat, lon = math.radians(lat_deg), math.radians(lon_deg)
                alpha, gamma = self.system.from_geodetic(lat, lon)
                lat2, lon2 = self.system.to_geodetic(alpha, gamma)
                assert lat2 == pytest.approx(lat, abs=1e-9)
                assert wrap_signed(lon2 - lon) == pytest.approx(0.0, abs=1e-9)

    @given(
        st.floats(min_value=-LAT_BAND, max_value=LAT_BAND),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    @settings(max_examples=200)
    def test_roundtrip_property(self, lat, lon):
        alpha, gamma = self.system.from_geodetic(lat, lon)
        assert 0.0 <= alpha < TWO_PI
        assert -math.pi / 2 <= gamma <= math.pi / 2
        lat2, lon2 = self.system.to_geodetic(alpha, gamma)
        assert math.isclose(lat2, lat, abs_tol=1e-9)
        assert math.isclose(wrap_signed(lon2 - lon), 0.0, abs_tol=1e-9)

    @given(
        st.floats(min_value=-LAT_BAND, max_value=LAT_BAND),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    @settings(max_examples=200)
    def test_descending_branch_also_roundtrips(self, lat, lon):
        alpha, gamma = self.system.descending_representation(lat, lon)
        assert math.pi / 2 <= gamma <= 3 * math.pi / 2 + 1e-12
        lat2, lon2 = self.system.to_geodetic(alpha, gamma)
        assert math.isclose(lat2, lat, abs_tol=1e-9)
        assert math.isclose(wrap_signed(lon2 - lon), 0.0, abs_tol=1e-9)

    def test_latitude_beyond_band_clamps(self):
        alpha, gamma = self.system.from_geodetic(math.radians(80), 0.3)
        assert gamma == pytest.approx(math.pi / 2)

    def test_both_representations_distinct(self):
        reps = self.system.both_representations(math.radians(30),
                                                math.radians(10))
        assert len(reps) == 2
        (a1, g1), (a2, g2) = reps
        assert g1 != pytest.approx(g2)

    def test_turn_point_has_gamma_pi_over_2(self):
        # A point at exactly the inclination latitude is a turn point.
        alpha, gamma = self.system.from_geodetic(math.radians(53.0), 1.0)
        assert gamma == pytest.approx(math.pi / 2)

    def test_cell_area_scales_with_cos_gamma(self):
        a_eq = self.system.angular_cell_area(0.1, 0.1, 0.0, EARTH_RADIUS_KM)
        a_mid = self.system.angular_cell_area(0.1, 0.1, 1.0, EARTH_RADIUS_KM)
        assert a_eq > a_mid
        assert a_mid / a_eq == pytest.approx(math.cos(1.0))

    def test_total_band_area(self):
        """Integrating the area element recovers the inclination band."""
        system = self.system
        steps = 2000
        dg = math.pi / steps
        total = sum(
            system.angular_cell_area(TWO_PI, dg, -math.pi / 2 + (k + 0.5) * dg,
                                     EARTH_RADIUS_KM)
            for k in range(steps)
        )
        band = (4.0 * math.pi * EARTH_RADIUS_KM**2
                * math.sin(math.radians(53.0)))
        assert total == pytest.approx(band, rel=1e-4)

    def test_near_polar_system_covers_almost_everything(self):
        polar = InclinedCoordinateSystem(math.radians(87.9))
        alpha, gamma = polar.from_geodetic(math.radians(85.0), 0.0)
        lat, _ = polar.to_geodetic(alpha, gamma)
        assert lat == pytest.approx(math.radians(85.0), abs=1e-9)
