"""Scenario catalog + SLO-gated resilience harness (ISSUE 7 tentpole).

Contracts under test:

* the shipped catalog has >= 5 scenarios, each declaratively complete
  and JSON-describable;
* scenario runs are bit-reproducible: identical artifact bytes across
  repeated runs and across ``REPRO_WORKERS=1`` vs ``2``;
* every committed golden artifact matches a fresh run byte-for-byte
  and passes its SLO budget (the regression gate itself);
* the paper's availability gap holds: SpaceCore survival >= stateful
  baseline survival in *every trial of every scenario*;
* the ``repro scenario`` CLI fronts list/run/check/diff correctly,
  including drift detection.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.chaos_availability import ChaosScenario
from repro.orbits import starlink
from repro.scenarios import (
    CATALOG,
    ChaosSpec,
    PopulationSpec,
    ScenarioSpec,
    SLOBudget,
    build_schedule,
    check_scenario,
    get_scenario,
    golden_path,
    run_scenario,
    scenario_names,
)
from repro.scenarios.golden import GOLDEN_DIR_ENV

#: A deliberately tiny spec for determinism tests (sub-second runs).
TINY = ScenarioSpec(
    name="tiny-test",
    title="Tiny determinism probe",
    description="storm + compute derating over a small population",
    horizon_s=600.0,
    population=PopulationSpec(n_ues=4),
    chaos=ChaosSpec(storm_start_s=60.0, storm_stop_s=300.0,
                    storm_repair_delay_s=90.0,
                    compute_start_s=50.0, compute_stop_s=500.0,
                    compute_factor=0.5),
    slo=SLOBudget(availability_floor=0.5, p99_latency_ceiling_s=60.0),
    n_trials=2,
)


class TestCatalogIntegrity:
    def test_catalog_ships_at_least_five_scenarios(self):
        assert len(CATALOG) >= 5

    def test_names_are_keys_and_sorted_listing(self):
        assert all(CATALOG[name].name == name for name in CATALOG)
        assert scenario_names() == sorted(CATALOG)

    def test_required_failure_modes_covered(self):
        """The ISSUE's five stories each exercise a distinct fault mix."""
        chaos = {name: CATALOG[name].chaos for name in CATALOG}
        assert chaos["handover-storm"].storms
        assert chaos["ground-outage"].downs_ground_stations
        assert chaos["compute-degradation"].degrades_compute
        assert chaos["link-weather"].link_bursts
        assert chaos["urban-hotspot"].jams
        assert chaos["urban-hotspot"].storms

    def test_describe_is_canonical_json(self):
        for spec in CATALOG.values():
            payload = json.dumps(spec.describe(), sort_keys=True)
            assert spec.name in payload

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad name", title="t", description="d")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", title="t", description="d",
                         n_trials=0)
        with pytest.raises(ValueError):
            ChaosSpec(compute_factor=0.0)
        with pytest.raises(ValueError):
            PopulationSpec(n_ues=0)


class TestScheduleComposition:
    def _system_and_ues(self, spec, seed=0):
        from repro.core import SpaceCoreSystem
        from repro.experiments.chaos_availability import _place_ues
        system = SpaceCoreSystem(starlink())
        scenario = spec.chaos_scenario(seed)
        return system, _place_ues(system, scenario), scenario

    def test_empty_chaos_spec_builds_empty_schedule(self):
        spec = ScenarioSpec(name="calm", title="t", description="d")
        system, ues, scenario = self._system_and_ues(spec)
        assert len(build_schedule(spec, system, ues, scenario)) == 0

    def test_build_is_deterministic(self):
        spec = CATALOG["ground-outage"]
        system, ues, scenario = self._system_and_ues(spec, seed=3)
        keys_a = [e.key() for e in
                  build_schedule(spec, system, ues, scenario).events()]
        keys_b = [e.key() for e in
                  build_schedule(spec, system, ues, scenario).events()]
        assert keys_a == keys_b

    def test_storm_targets_every_serving_satellite(self):
        from repro.experiments.chaos_availability import (
            serving_blast_radius,
        )
        from repro.faults import FaultKind
        spec = CATALOG["handover-storm"]
        system, ues, scenario = self._system_and_ues(spec)
        serving, _ = serving_blast_radius(system, ues)
        schedule = build_schedule(spec, system, ues, scenario)
        stormed = {e.target[0] for e in schedule.events()
                   if e.kind is FaultKind.SAT_FAIL}
        assert stormed == serving


class TestRunDeterminism:
    def test_same_spec_same_artifact_bytes(self):
        a = run_scenario(TINY, workers=1).artifact_json()
        b = run_scenario(TINY, workers=1).artifact_json()
        assert a == b

    def test_workers_env_1_vs_2_byte_identical(self, monkeypatch):
        """Seed stability across REPRO_WORKERS=1 vs 2 (satellite task)."""
        monkeypatch.setenv("REPRO_WORKERS", "1")
        serial = run_scenario(TINY).artifact_json()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        sharded = run_scenario(TINY).artifact_json()
        assert serial == sharded

    def test_artifact_is_canonical_sorted_json(self):
        text = run_scenario(TINY, workers=1).artifact_json()
        assert text.endswith("\n")
        payload = json.loads(text)
        assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert set(payload) == {"scenario", "summary", "slo_report",
                                "merged_snapshot", "trials"}

    def test_compute_degradation_stretches_recovery_latency(self):
        """The same storm with the derating removed recovers faster."""
        from dataclasses import replace
        calm = replace(TINY, chaos=replace(TINY.chaos,
                                           compute_factor=1.0))
        degraded_lat = [
            v for t in run_scenario(TINY, workers=1).trials
            for v in t["recovery_latency_s"]["spacecore"]]
        calm_lat = [
            v for t in run_scenario(calm, workers=1).trials
            for v in t["recovery_latency_s"]["spacecore"]]
        assert degraded_lat, "storm must force recoveries"
        assert len(degraded_lat) == len(calm_lat)
        assert sum(degraded_lat) > sum(calm_lat)


class TestGoldenGate:
    """The committed catalog must replay byte-for-byte and pass SLOs."""

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_committed_golden_replays_and_passes(self, name):
        outcome = check_scenario(CATALOG[name], workers=1)
        assert not outcome.missing_golden, (
            f"no committed golden for {name}; run "
            f"`repro scenario run {name} --update`")
        assert not outcome.drift, "\n".join(outcome.diff)
        assert outcome.slo_verdict == "pass"
        assert outcome.ok

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_stateless_beats_stateful_in_every_trial(self, name):
        """The paper's availability gap, per trial, from the goldens."""
        payload = json.loads(golden_path(name).read_text())
        for trial in payload["trials"]:
            assert (trial["final_survival"]["spacecore"]
                    >= trial["final_survival"]["baseline"]), (
                f"{name} trial {trial['trial']}: stateful baseline "
                "outlived SpaceCore")
        assert payload["summary"]["survival_margin"] >= 0.0
        assert payload["slo_report"]["verdict"] == "pass"

    def test_goldens_carry_merged_snapshot_and_fault_digests(self):
        for name in sorted(CATALOG):
            payload = json.loads(golden_path(name).read_text())
            assert payload["merged_snapshot"]["counters"]
            for trial in payload["trials"]:
                assert len(trial["faults"]["digest"]) == 64
                assert trial["faults"]["total"] == sum(
                    trial["faults"]["by_kind"].values())

    def test_drift_detection(self, tmp_path, monkeypatch):
        monkeypatch.setenv(GOLDEN_DIR_ENV, str(tmp_path))
        missing = check_scenario(TINY, workers=1)
        assert missing.missing_golden and not missing.ok
        # Commit, then tamper: the diff must surface.
        outcome = check_scenario(TINY, workers=1, update=True)
        assert outcome.ok
        assert check_scenario(TINY, workers=1).ok
        path = golden_path(TINY.name)
        path.write_text(path.read_text().replace(
            '"spacecore"', '"spacecore_tampered"', 1))
        drifted = check_scenario(TINY, workers=1)
        assert drifted.drift and not drifted.ok
        assert any("tampered" in line for line in drifted.diff)


class TestScenarioCli:
    def test_list_names_whole_catalog(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in CATALOG:
            assert name in out

    def test_check_single_scenario_passes(self, capsys):
        assert main(["scenario", "check", "ground-outage",
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "ground-outage: ok" in out

    def test_check_missing_golden_fails(self, tmp_path, monkeypatch,
                                        capsys):
        monkeypatch.setenv(GOLDEN_DIR_ENV, str(tmp_path))
        assert main(["scenario", "check", "ground-outage",
                     "--workers", "1"]) == 1
        assert "missing golden" in capsys.readouterr().out

    def test_run_writes_artifact_and_golden(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.setenv(GOLDEN_DIR_ENV, str(tmp_path))
        out_file = tmp_path / "artifact.json"
        assert main(["scenario", "run", "ground-outage", "--workers",
                     "1", "--update", "--output", str(out_file)]) == 0
        assert (tmp_path / "ground-outage.json").exists()
        assert json.loads(out_file.read_text())["summary"]
        out = capsys.readouterr().out
        assert "verdict=pass" in out
        # diff against the fresh golden must now be clean
        assert main(["scenario", "diff", "ground-outage",
                     "--workers", "1"]) == 0

    def test_unknown_scenario_name_raises(self):
        with pytest.raises(KeyError):
            main(["scenario", "run", "no-such-scenario"])
