"""Tests for the Schnorr group, signatures, and station-to-station DH."""

import dataclasses
import random

import pytest

from repro.crypto import (
    Initiator,
    KeyAgreementError,
    Responder,
    SCHNORR_GROUP,
    ShareField,
    agree,
    generate_keypair,
    issue_certificate,
)
from repro.crypto.sts import ResponderReply


class TestSchnorrGroup:
    def test_generator_has_order_q(self):
        g = SCHNORR_GROUP
        assert pow(g.g, g.q, g.p) == 1
        assert g.g != 1

    def test_safe_prime_relation(self):
        g = SCHNORR_GROUP
        assert g.p == 2 * g.q + 1

    def test_is_element(self):
        g = SCHNORR_GROUP
        assert g.is_element(g.generate(12345))
        assert not g.is_element(0)
        assert not g.is_element(g.p)

    def test_hash_to_scalar_in_range(self):
        g = SCHNORR_GROUP
        s = g.hash_to_scalar(b"abc", b"def")
        assert 0 <= s < g.q

    def test_hash_to_scalar_injective_framing(self):
        """Length framing: ("ab","c") and ("a","bc") must differ."""
        g = SCHNORR_GROUP
        assert g.hash_to_scalar(b"ab", b"c") != g.hash_to_scalar(b"a", b"bc")

    def test_random_scalar_deterministic_with_rng(self):
        g = SCHNORR_GROUP
        assert (g.random_scalar(random.Random(1))
                == g.random_scalar(random.Random(1)))


class TestShareField:
    def test_inverse(self):
        a = 123456789
        assert ShareField.mul(a, ShareField.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            ShareField.inv(0)

    def test_poly_eval(self):
        # 3 + 2x + x^2 at x=2 -> 11
        assert ShareField.eval_poly([3, 2, 1], 2) == 11

    def test_lagrange_recovers_constant(self):
        coeffs = [42, 7, 13]  # degree-2 polynomial, secret 42
        points = [(x, ShareField.eval_poly(coeffs, x)) for x in (1, 2, 3)]
        assert ShareField.lagrange_at_zero(points) == 42

    def test_lagrange_insufficient_points_wrong(self):
        coeffs = [42, 7, 13]
        points = [(x, ShareField.eval_poly(coeffs, x)) for x in (1, 2)]
        assert ShareField.lagrange_at_zero(points) != 42


class TestSignatures:
    def test_sign_verify(self):
        sk, vk = generate_keypair(random.Random(5))
        sig = sk.sign(b"message")
        assert vk.verify(b"message", sig)

    def test_wrong_message_fails(self):
        sk, vk = generate_keypair(random.Random(5))
        sig = sk.sign(b"message")
        assert not vk.verify(b"other", sig)

    def test_wrong_key_fails(self):
        sk, _ = generate_keypair(random.Random(5))
        _, other_vk = generate_keypair(random.Random(6))
        assert not other_vk.verify(b"m", sk.sign(b"m"))

    def test_out_of_range_signature_rejected(self):
        _, vk = generate_keypair(random.Random(5))
        assert not vk.verify(b"m", (SCHNORR_GROUP.q, 1))
        assert not vk.verify(b"m", (1, SCHNORR_GROUP.q))

    def test_certificate_chain(self):
        home_sk, home_vk = generate_keypair(random.Random(1))
        sat_sk, sat_vk = generate_keypair(random.Random(2))
        cert = issue_certificate("home", home_sk, "sat-1", sat_vk)
        assert cert.verify(home_vk)
        assert cert.subject == "sat-1"

    def test_forged_certificate_fails(self):
        home_sk, home_vk = generate_keypair(random.Random(1))
        mallory_sk, mallory_vk = generate_keypair(random.Random(3))
        fake = issue_certificate("home", mallory_sk, "sat-1", mallory_vk)
        assert not fake.verify(home_vk)

    def test_certificate_subject_tamper_detected(self):
        home_sk, home_vk = generate_keypair(random.Random(1))
        sat_sk, sat_vk = generate_keypair(random.Random(2))
        cert = issue_certificate("home", home_sk, "sat-1", sat_vk)
        tampered = dataclasses.replace(cert, subject="sat-666")
        assert not tampered.verify(home_vk)


@pytest.fixture()
def pki():
    home_sk, home_vk = generate_keypair(random.Random(10))
    sat_sk, sat_vk = generate_keypair(random.Random(11))
    cert = issue_certificate("home", home_sk, "sat-7", sat_vk)
    return home_sk, home_vk, sat_sk, cert


class TestStationToStation:
    def test_both_sides_agree(self, pki):
        _, home_vk, sat_sk, cert = pki
        ue_session, sat_session = agree(home_vk, cert, sat_sk,
                                        rng=random.Random(0))
        assert ue_session.key == sat_session.key
        assert len(ue_session.key) == 32

    def test_fresh_key_every_session(self, pki):
        """Appendix B: K is refreshed per session establishment."""
        _, home_vk, sat_sk, cert = pki
        k1, _ = agree(home_vk, cert, sat_sk)
        k2, _ = agree(home_vk, cert, sat_sk)
        assert k1.key != k2.key

    def test_uncertified_satellite_rejected(self, pki):
        home_sk, home_vk, _, _ = pki
        rogue_sk, rogue_vk = generate_keypair(random.Random(13))
        rogue_cert = issue_certificate("rogue-home", rogue_sk, "sat-evil",
                                       rogue_vk)
        with pytest.raises(KeyAgreementError):
            agree(home_vk, rogue_cert, rogue_sk)

    def test_mitm_substituted_exponential_rejected(self, pki):
        """Appendix B: STS resists man-in-the-middle relays."""
        _, home_vk, sat_sk, cert = pki
        ue = Initiator(home_vk)
        sat = Responder(cert, sat_sk)
        reply, _ = sat.respond(ue.hello)
        # Mallory swaps the satellite's exponential for her own.
        mallory = SCHNORR_GROUP.generate(31337)
        forged = ResponderReply(mallory, reply.certificate, reply.signature)
        with pytest.raises(KeyAgreementError):
            ue.finish(forged)

    def test_invalid_initiator_element_rejected(self, pki):
        _, _, sat_sk, cert = pki
        sat = Responder(cert, sat_sk)
        from repro.crypto.sts import InitiatorHello
        with pytest.raises(KeyAgreementError):
            sat.respond(InitiatorHello(0))

    def test_replayed_hello_gets_different_key(self, pki):
        """Replaying X cannot reproduce K: the satellite picks a new y."""
        _, home_vk, sat_sk, cert = pki
        ue = Initiator(home_vk)
        sat = Responder(cert, sat_sk)
        _, s1 = sat.respond(ue.hello)
        _, s2 = sat.respond(ue.hello)
        assert s1.key != s2.key
