"""Tests for the GTP-U tunnel codec and the AT-command proxy (S5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fiveg import gtpu
from repro.fiveg.atcmd import (
    AtCommand,
    AtCommandError,
    SatelliteAtAgent,
    UeModemProxy,
    build_session_request,
    extract_session_request,
    parse,
)


class TestGtpEncodeDecode:
    def test_plain_packet_roundtrip(self):
        packet = gtpu.GtpPacket(teid=0x1234, payload=b"user data")
        assert gtpu.decode(gtpu.encode(packet)) == packet

    def test_sequence_number_roundtrip(self):
        packet = gtpu.GtpPacket(teid=7, payload=b"x", sequence=4242)
        decoded = gtpu.decode(gtpu.encode(packet))
        assert decoded.sequence == 4242

    def test_extension_roundtrip(self):
        ext = gtpu.ExtensionHeader(gtpu.SPACECORE_FEF_TYPE, b"replica!")
        packet = gtpu.GtpPacket(teid=9, payload=b"p", extensions=(ext,))
        decoded = gtpu.decode(gtpu.encode(packet))
        assert decoded.extensions == (ext,)

    def test_binary_content_with_trailing_zeros_survives(self):
        """Padding must never eat real zero bytes."""
        ext = gtpu.ExtensionHeader(gtpu.SPACECORE_FEF_TYPE,
                                   b"\x00\x01\x00\x00")
        packet = gtpu.GtpPacket(teid=9, payload=b"", extensions=(ext,))
        decoded = gtpu.decode(gtpu.encode(packet))
        assert decoded.extensions[0].content == b"\x00\x01\x00\x00"

    @given(st.integers(0, 2**32 - 1), st.binary(max_size=512),
           st.binary(max_size=900))
    @settings(max_examples=60)
    def test_roundtrip_property(self, teid, payload, replica):
        wire = gtpu.encapsulate_with_replica(teid, payload, replica)
        decoded = gtpu.decode(wire)
        assert decoded.teid == teid
        assert decoded.payload == payload
        assert decoded.spacecore_replica() == replica

    def test_large_replica_fragments(self):
        """ABE replicas (~1.1 kB) span multiple extension headers."""
        replica = bytes(range(256)) * 6  # 1536 bytes
        wire = gtpu.encapsulate_with_replica(1, b"data", replica)
        decoded = gtpu.decode(wire)
        assert len(decoded.extensions) >= 2
        assert decoded.spacecore_replica() == replica

    def test_teid_out_of_range(self):
        with pytest.raises(ValueError):
            gtpu.encode(gtpu.GtpPacket(teid=2**32, payload=b""))

    def test_truncated_header_rejected(self):
        with pytest.raises(gtpu.GtpError):
            gtpu.decode(b"\x30\xff")

    def test_bad_version_rejected(self):
        wire = bytearray(gtpu.encode(gtpu.GtpPacket(1, b"x")))
        wire[0] = (2 << 5) | (1 << 4)
        with pytest.raises(gtpu.GtpError):
            gtpu.decode(bytes(wire))

    def test_length_mismatch_rejected(self):
        wire = bytearray(gtpu.encode(gtpu.GtpPacket(1, b"abcd")))
        wire[2:4] = (99).to_bytes(2, "big")
        with pytest.raises(gtpu.GtpError):
            gtpu.decode(bytes(wire))

    def test_no_replica_returns_none(self):
        packet = gtpu.GtpPacket(teid=5, payload=b"hi")
        assert gtpu.decode(gtpu.encode(packet)).spacecore_replica() is None


class TestTunnelChain:
    def test_replica_visible_at_every_hop(self):
        chain = gtpu.TunnelChain(["upf-a", "upf-b", "upf-c"])
        wire = gtpu.encapsulate_with_replica(77, b"payload", b"states")
        egress = chain.forward(wire)
        assert chain.hops_with_replica() == ["upf-a", "upf-b", "upf-c"]
        assert gtpu.decode(egress).payload == b"payload"

    def test_plain_traffic_carries_nothing(self):
        chain = gtpu.TunnelChain(["upf-a"])
        wire = gtpu.encode(gtpu.GtpPacket(teid=77, payload=b"payload"))
        chain.forward(wire)
        assert chain.hops_with_replica() == []

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            gtpu.TunnelChain([])


class TestAtCommands:
    def test_parse_simple(self):
        command = parse("AT+CGATT=1")
        assert command.name == "CGATT"
        assert command.parameters == ("1",)

    def test_parse_no_parameters(self):
        assert parse("AT+COPS").parameters == ()

    def test_parse_rejects_non_at(self):
        with pytest.raises(AtCommandError):
            parse("ping satellite")

    def test_render_parse_roundtrip(self):
        command = AtCommand("CGQREQ", ("1", "2", "3"))
        assert parse(command.render()) == command

    def test_session_request_roundtrip(self):
        replica = b"\x01\x02binary replica\xff\x00"
        command = build_session_request(3, replica)
        context, recovered = extract_session_request(command)
        assert context == 3
        assert recovered == replica

    def test_extract_rejects_wrong_command(self):
        with pytest.raises(AtCommandError):
            extract_session_request(AtCommand("CGATT", ("1",)))

    def test_extract_rejects_legacy_cgqreq(self):
        """A plain (non-SpaceCore) CGQREQ falls back to legacy 5G."""
        legacy = AtCommand("CGQREQ", ("1", "1", "1", "1", "1", "1"))
        with pytest.raises(AtCommandError):
            extract_session_request(legacy)

    def test_extract_rejects_bad_base64(self):
        bad = AtCommand("CGQREQ",
                        ("1", "1", "1", "1", "1", "1", "!!notb64!!"))
        with pytest.raises(AtCommandError):
            extract_session_request(bad)

    def test_context_id_validation(self):
        with pytest.raises(ValueError):
            build_session_request(0, b"x")


class TestProxyAndAgent:
    def test_proxy_requires_replica(self):
        proxy = UeModemProxy()
        with pytest.raises(AtCommandError):
            proxy.request_session()

    def test_proxy_increments_context_ids(self):
        proxy = UeModemProxy()
        proxy.install_replica(b"replica")
        first = extract_session_request(proxy.request_session())[0]
        second = extract_session_request(proxy.request_session())[0]
        assert second == first + 1

    def test_empty_replica_rejected(self):
        with pytest.raises(ValueError):
            UeModemProxy().install_replica(b"")

    def test_agent_extracts_replica(self):
        proxy = UeModemProxy()
        proxy.install_replica(b"the states")
        agent = SatelliteAtAgent()
        replica = agent.handle(proxy.request_session().render())
        assert replica == b"the states"
        assert agent.legacy_fallbacks == 0

    def test_agent_falls_back_on_legacy_commands(self):
        agent = SatelliteAtAgent()
        assert agent.handle("AT+CGATT=1") is None
        assert agent.handle("AT+CGQREQ=1,1,1,1,1,1") is None
        assert agent.legacy_fallbacks == 2

    def test_end_to_end_with_real_replica(self):
        """UE proxy -> AT channel -> satellite agent -> ABE decrypt."""
        from repro.core.home import SpaceCoreHome
        from repro.crypto import decrypt
        from repro.fiveg import SessionState, StateReplica
        home = SpaceCoreHome()
        ue = home.provision_subscriber(42)
        home.register(ue, (1, 1), (1, 1))
        creds = home.enroll_satellite("sat-at")
        proxy = UeModemProxy()
        proxy.install_replica(ue.replica.to_bytes())
        agent = SatelliteAtAgent()
        raw = agent.handle(proxy.request_session().render())
        assert raw is not None
        replica = StateReplica.from_bytes(raw)
        blob = decrypt(creds.abe_key, replica.ciphertext)
        state = SessionState.from_bytes(blob)
        assert state.identifiers.supi == str(ue.supi)


class TestReplicaWireFormat:
    def test_replica_roundtrip(self):
        from repro.core.home import SpaceCoreHome
        from repro.fiveg import StateReplica
        home = SpaceCoreHome()
        ue = home.provision_subscriber(7)
        home.register(ue, (1, 1), (1, 1))
        wire = ue.replica.to_bytes()
        recovered = StateReplica.from_bytes(wire)
        assert recovered.version == ue.replica.version
        assert recovered.signature == ue.replica.signature
        assert (recovered.ciphertext.payload
                == ue.replica.ciphertext.payload)

    def test_replica_rides_gtpu_fef(self):
        """The full S5 data path: replica in the GTP-U tunnel header."""
        from repro.core.home import SpaceCoreHome
        from repro.crypto import decrypt
        from repro.fiveg import SessionState, StateReplica
        home = SpaceCoreHome()
        ue = home.provision_subscriber(8)
        home.register(ue, (1, 1), (1, 1))
        creds = home.enroll_satellite("sat-gtp")
        wire = gtpu.encapsulate_with_replica(
            teid=1001, user_payload=b"user bytes",
            replica_bytes=ue.replica.to_bytes())
        chain = gtpu.TunnelChain(["ingress-upf", "egress-upf"])
        chain.forward(wire)
        assert chain.hops_with_replica() == ["ingress-upf",
                                             "egress-upf"]
        recovered = StateReplica.from_bytes(
            chain.replicas_seen["egress-upf"])
        state = SessionState.from_bytes(
            decrypt(creds.abe_key, recovered.ciphertext))
        assert state.identifiers.supi == str(ue.supi)
