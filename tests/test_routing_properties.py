"""Property-based tests for Algorithm 1's routing invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orbits import IdealPropagator, serving_satellite, starlink
from repro.topology import GeospatialRouter, GridTopology

_PROPAGATOR = IdealPropagator(starlink())
_TOPOLOGY = GridTopology(_PROPAGATOR, [])
_ROUTER = GeospatialRouter(_TOPOLOGY)

lat_strategy = st.floats(min_value=-math.radians(50),
                         max_value=math.radians(50))
lon_strategy = st.floats(min_value=-math.pi, max_value=math.pi)


class TestRoutingInvariants:
    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    @settings(max_examples=60, deadline=None)
    def test_always_delivers_on_healthy_grid(self, lat1, lon1, lat2,
                                             lon2):
        src = serving_satellite(_PROPAGATOR, 0.0, lat1, lon1)
        if src < 0:
            return
        result = _ROUTER.route(src, lat2, lon2, 0.0)
        assert result.delivered

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    @settings(max_examples=40, deadline=None)
    def test_hop_count_bounded_by_grid_diameter(self, lat1, lon1, lat2,
                                                lon2):
        """No route should wander beyond ~the torus diameter."""
        src = serving_satellite(_PROPAGATOR, 0.0, lat1, lon1)
        if src < 0:
            return
        result = _ROUTER.route(src, lat2, lon2, 0.0)
        c = _TOPOLOGY.constellation
        diameter = c.num_planes // 2 + c.sats_per_plane // 2
        assert result.hops <= diameter + 8

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    @settings(max_examples=30, deadline=None)
    def test_routing_is_deterministic(self, lat1, lon1, lat2, lon2):
        src = serving_satellite(_PROPAGATOR, 0.0, lat1, lon1)
        if src < 0:
            return
        first = _ROUTER.route(src, lat2, lon2, 0.0)
        second = _ROUTER.route(src, lat2, lon2, 0.0)
        assert first.path == second.path
        assert first.delay_s == second.delay_s

    @given(lat_strategy, lon_strategy)
    @settings(max_examples=30, deadline=None)
    def test_self_delivery_zero_hops(self, lat, lon):
        """Routing to a point under the source satellite never moves."""
        src = serving_satellite(_PROPAGATOR, 0.0, lat, lon)
        if src < 0:
            return
        result = _ROUTER.route(src, lat, lon, 0.0)
        assert result.delivered
        assert result.hops == 0
        assert result.delay_s == 0.0

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    @settings(max_examples=30, deadline=None)
    def test_path_has_no_cycles(self, lat1, lon1, lat2, lon2):
        src = serving_satellite(_PROPAGATOR, 0.0, lat1, lon1)
        if src < 0:
            return
        result = _ROUTER.route(src, lat2, lon2, 0.0)
        assert len(result.path) == len(set(result.path))

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy)
    @settings(max_examples=30, deadline=None)
    def test_path_follows_grid_edges(self, lat1, lon1, lat2, lon2):
        """Every hop in a route is a real ISL neighbour pair."""
        src = serving_satellite(_PROPAGATOR, 0.0, lat1, lon1)
        if src < 0:
            return
        result = _ROUTER.route(src, lat2, lon2, 0.0)
        for a, b in zip(result.path, result.path[1:]):
            assert b in _TOPOLOGY.isl_neighbors(a)

    @given(lat_strategy, lon_strategy, lat_strategy, lon_strategy,
           st.floats(min_value=0.0, max_value=7200.0))
    @settings(max_examples=30, deadline=None)
    def test_delivery_at_any_epoch(self, lat1, lon1, lat2, lon2, t):
        """The torus rotates but routing never depends on the epoch."""
        src = serving_satellite(_PROPAGATOR, t, lat1, lon1)
        if src < 0:
            return
        assert _ROUTER.route(src, lat2, lon2, t).delivered
