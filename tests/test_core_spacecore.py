"""Tests for SpaceCore: stateless satellites, home authority, system."""


import pytest

from repro.core import (
    FallbackRequired,
    MobilityAction,
    MobilityEvent,
    SpaceCoreSystem,
)
from repro.core.home import SpaceCoreHome
from repro.core.satellite import SpaceCoreSatellite
from repro.fiveg import SessionState
from repro.orbits import starlink


@pytest.fixture()
def system():
    return SpaceCoreSystem(starlink())


@pytest.fixture()
def registered_ue(system):
    ue = system.provision_ue(39.9, 116.4)  # Beijing
    system.register(ue)
    return ue


class TestRegistrationAndDelegation:
    def test_register_allocates_geospatial_ip(self, system, registered_ue):
        from repro.geo import GeospatialAddress
        address = GeospatialAddress.from_ipv6(registered_ue.ip_address)
        assert address.ue_cell == system.cell_of(registered_ue)

    def test_register_delegates_replica(self, registered_ue):
        assert registered_ue.has_replica
        assert registered_ue.replica.version == 1

    def test_ue_cannot_read_its_own_ciphertext_without_key(
            self, system, registered_ue):
        """The UE carries the blob; only its ABE key opens it."""
        from repro.crypto import AbeDecryptionError, decrypt, keygen
        wrong = keygen(system.home.core.abe_master, ["role:nobody"])
        with pytest.raises(AbeDecryptionError):
            decrypt(wrong, registered_ue.replica.ciphertext)
        ue_key = system.home.ue_abe_key(registered_ue)
        blob = decrypt(ue_key, registered_ue.replica.ciphertext)
        assert SessionState.from_bytes(blob).identifiers.supi == str(
            registered_ue.supi)


class TestLocalizedEstablishment:
    def test_establish_session_locally(self, system, registered_ue):
        served = system.establish_session(registered_ue)
        assert served.supi == str(registered_ue.supi)
        assert len(served.session_key) == 32
        assert registered_ue.connected

    def test_satellite_installs_forwarding_rule(self, system,
                                                registered_ue):
        system.establish_session(registered_ue)
        sat = system.satellite(
            system._ue_serving_sat[str(registered_ue.supi)])
        assert sat.upf.session_count == 1
        assert system.send_uplink(registered_ue, 1500)

    def test_unregistered_ue_falls_back(self, system):
        fresh = system.provision_ue(39.9, 116.4)
        with pytest.raises(FallbackRequired):
            system.establish_session(fresh)

    def test_fresh_session_key_per_establishment(self, system,
                                                 registered_ue):
        k1 = system.establish_session(registered_ue).session_key
        system.release(registered_ue)
        k2 = system.establish_session(registered_ue).session_key
        assert k1 != k2

    def test_release_evaporates_state(self, system, registered_ue):
        system.establish_session(registered_ue)
        sat_idx = system._ue_serving_sat[str(registered_ue.supi)]
        system.release(registered_ue)
        assert system.satellite(sat_idx).served_count == 0
        assert not registered_ue.connected

    def test_fallback_repairs_a_garbled_replica(self, system,
                                                registered_ue):
        """S4.2 roll-back: the home refreshes the replica and service
        continues over the same satellite."""
        import dataclasses
        real = registered_ue.replica
        registered_ue.replica = dataclasses.replace(
            real, ciphertext=dataclasses.replace(
                real.ciphertext,
                payload=b"\xff" * len(real.ciphertext.payload)))
        served = system.establish_session(registered_ue,
                                          allow_fallback=True)
        assert served.supi == str(registered_ue.supi)
        assert registered_ue.connected
        # The replica was re-issued by the home during the fallback.
        assert registered_ue.replica.ciphertext.payload != \
            b"\xff" * len(real.ciphertext.payload)

    def test_fallback_cannot_rescue_a_revoked_satellite(self, system,
                                                        registered_ue):
        """Revocation is final: even the legacy path will not let a
        hijacked satellite decrypt new replicas."""
        sat_index = system.serving_satellite_of(registered_ue, 0.0)
        system.home.revoke_satellite(f"sat-{sat_index}")
        with pytest.raises(FallbackRequired):
            system.establish_session(registered_ue, t=0.0,
                                     allow_fallback=True)

    def test_tampered_replica_rejected(self, system, registered_ue):
        """UE-side state manipulation is detected (Appendix B)."""
        import dataclasses
        real = registered_ue.replica
        tampered_ct = dataclasses.replace(
            real.ciphertext,
            payload=bytes([real.ciphertext.payload[0] ^ 1])
            + real.ciphertext.payload[1:])
        registered_ue.replica = dataclasses.replace(
            real, ciphertext=tampered_ct)
        with pytest.raises(FallbackRequired):
            system.establish_session(registered_ue)


class TestHandover:
    def test_handover_to_next_satellite(self, system, registered_ue):
        system.establish_session(registered_ue, t=0.0)
        old_sat = system._ue_serving_sat[str(registered_ue.supi)]
        new_sat = system.handover(registered_ue, t=200.0)
        assert new_sat is not None and new_sat != old_sat
        assert system.satellite(old_sat).served_count == 0
        assert system.satellite(new_sat).served_count == 1

    def test_no_handover_when_same_satellite(self, system, registered_ue):
        system.establish_session(registered_ue, t=0.0)
        assert system.handover(registered_ue, t=0.5) is None

    def test_idle_ue_never_hands_over(self, system, registered_ue):
        assert system.handover(registered_ue, t=200.0) is None


class TestDownlink:
    def test_downlink_reaches_remote_ue(self, system, registered_ue):
        ny = system.provision_ue(40.7, -74.0)
        system.register(ny)
        system.establish_session(registered_ue, t=0.0)
        ingress = system._ue_serving_sat[str(registered_ue.supi)]
        result = system.deliver_downlink(ingress, ny, t=0.0)
        assert result.route.delivered
        assert result.paged
        assert ny.connected

    def test_downlink_needs_address(self, system, registered_ue):
        stranger = system.provision_ue(0.0, 20.0)
        with pytest.raises(ValueError):
            system.deliver_downlink(0, stranger, t=0.0)


class TestMobilityManagement:
    def test_satellite_pass_idle_no_action(self, system):
        decision = system.mobility.on_satellite_pass(ue_connected=False)
        assert decision.event is MobilityEvent.SATELLITE_PASS_IDLE
        assert decision.action is MobilityAction.NONE

    def test_satellite_pass_active_local_handover(self, system):
        decision = system.mobility.on_satellite_pass(ue_connected=True)
        assert decision.action is MobilityAction.LOCAL_HANDOVER

    def test_beam_handover_no_core_ops(self, system):
        assert system.mobility.on_beam_change().action is MobilityAction.NONE

    def test_static_user_registration_rate_zero(self, system):
        assert system.mobility.registration_rate_static_user() == 0.0

    def test_small_move_no_signaling(self, system, registered_ue):
        decision = system.ue_moved(registered_ue, 39.95, 116.45)
        assert decision.action is MobilityAction.NONE

    def test_cell_crossing_triggers_home_update(self, system,
                                                registered_ue):
        old_ip = registered_ue.ip_address
        old_version = registered_ue.replica.version
        decision = system.ue_moved(registered_ue, -30.0, 25.0)
        assert decision.event is MobilityEvent.UE_CROSSED_CELL
        assert registered_ue.ip_address != old_ip
        assert registered_ue.replica.version > old_version


class TestHomeAuthority:
    def test_usage_report_updates_billing(self):
        home = SpaceCoreHome()
        ue = home.provision_subscriber(1)
        session = home.register(ue, (1, 1), (1, 1))
        from repro.fiveg.procedures import build_state_bundle
        bundle = build_state_bundle(session,
                                    home.core.amf.context(ue.supi), (1, 1))
        updated = home.apply_usage_report(ue, bundle, 5_000_000, 5_000_000)
        assert updated.billing.used_mb == pytest.approx(10.0)
        assert updated.version == bundle.version + 1
        assert ue.replica.version == updated.version

    def test_quota_exhaustion_throttles(self):
        home = SpaceCoreHome()
        ue = home.provision_subscriber(2, quota_mb=10)
        session = home.register(ue, (1, 1), (1, 1))
        from repro.fiveg.procedures import build_state_bundle
        bundle = build_state_bundle(session,
                                    home.core.amf.context(ue.supi), (1, 1))
        updated = home.apply_usage_report(ue, bundle, 20_000_000,
                                          0)
        assert updated.billing.throttled
        assert updated.qos.max_bitrate_down_kbps == 128

    def test_replica_downgrade_refused(self):
        """A malicious UE cannot roll back to an older, cheaper state."""
        home = SpaceCoreHome()
        ue = home.provision_subscriber(3)
        session = home.register(ue, (1, 1), (1, 1))
        from repro.fiveg.procedures import build_state_bundle
        bundle = build_state_bundle(session,
                                    home.core.amf.context(ue.supi), (1, 1))
        old_replica = ue.replica
        home.apply_usage_report(ue, bundle, 1000, 1000)
        with pytest.raises(ValueError):
            ue.store_replica(old_replica)


class TestRevocation:
    def test_revoked_satellite_cannot_open_new_states(self):
        home = SpaceCoreHome()
        bad_creds = home.enroll_satellite("sat-bad")
        home.enroll_satellite("sat-good")
        home.revoke_satellite("sat-bad")
        ue = home.provision_subscriber(4)
        home.register(ue, (1, 1), (1, 1))
        bad_sat = SpaceCoreSatellite("sat-bad", bad_creds)
        with pytest.raises(FallbackRequired):
            bad_sat.establish_session_locally(ue, 0.0, home.verify_key)
        # The re-keyed survivor still works.
        good_sat = SpaceCoreSatellite(
            "sat-good", home.credentials_for("sat-good"))
        served = good_sat.establish_session_locally(ue, 0.0,
                                                    home.verify_key)
        assert served.supi == str(ue.supi)

    def test_epoch_increases_per_revocation(self):
        home = SpaceCoreHome()
        home.enroll_satellite("a")
        home.enroll_satellite("b")
        assert home.epoch == 0
        home.revoke_satellite("a")
        assert home.epoch == 1
        home.revoke_satellite("b")
        assert home.epoch == 2

    def test_exposed_states_bounded_by_served_sessions(self):
        """Fig. 19: hijack leaks only the currently served sessions."""
        home = SpaceCoreHome()
        creds = home.enroll_satellite("sat-1")
        sat = SpaceCoreSatellite("sat-1", creds)
        ues = []
        for msin in range(5, 8):
            ue = home.provision_subscriber(msin)
            home.register(ue, (1, 1), (1, 1))
            sat.establish_session_locally(ue, 0.0, home.verify_key)
            ues.append(ue)
        assert len(sat.exposed_states()) == 3
        sat.release_session(str(ues[0].supi))
        assert len(sat.exposed_states()) == 2
        sat.release_all()
        assert sat.exposed_states() == []
