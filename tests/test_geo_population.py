"""Tests for the global UE population model."""

import math
import random

import pytest

from repro.geo import PopulationGrid, Region, WORLD_BANK_REGIONS


class TestRegion:
    def test_contains_inside(self):
        r = Region("box", 0, 10, 0, 10, 1.0)
        assert r.contains(math.radians(5), math.radians(5))
        assert not r.contains(math.radians(15), math.radians(5))

    def test_contains_antimeridian_box(self):
        r = Region("pacific", -10, 10, 170, -170, 1.0)
        assert r.contains(0.0, math.radians(175))
        assert r.contains(0.0, math.radians(-175))
        assert not r.contains(0.0, math.radians(0))

    def test_area_positive_and_reasonable(self):
        r = Region("box", 0, 10, 0, 10, 1.0)
        # 10x10 degrees near the equator is about 1.2M km^2.
        assert r.area_km2() == pytest.approx(1.23e6, rel=0.05)

    def test_antimeridian_area(self):
        r = Region("pacific", -10, 10, 170, -170, 1.0)
        straight = Region("s", -10, 10, 0, 20, 1.0)
        assert r.area_km2() == pytest.approx(straight.area_km2())

    def test_world_bank_weights_sum_to_one(self):
        assert sum(r.weight for r in WORLD_BANK_REGIONS) == pytest.approx(
            1.0, abs=0.01)


class TestPopulationGrid:
    def setup_method(self):
        self.grid = PopulationGrid()

    def test_rejects_empty_regions(self):
        with pytest.raises(ValueError):
            PopulationGrid(regions=[])

    def test_sample_count(self):
        ues = self.grid.sample(250, random.Random(1))
        assert len(ues) == 250
        for lat, lon in ues:
            assert -math.pi / 2 <= lat <= math.pi / 2
            assert -math.pi <= lon <= math.pi

    def test_samples_avoid_open_ocean(self):
        ues = self.grid.sample(300, random.Random(2))
        on_land_boxes = sum(
            any(r.contains(lat, lon) for r in WORLD_BANK_REGIONS)
            for lat, lon in ues)
        assert on_land_boxes == 300

    def test_asia_dominates_samples(self):
        ues = self.grid.sample(1000, random.Random(3))
        asia = sum(1 for lat, lon in ues
                   if 60 <= math.degrees(lon) <= 150
                   and -11 <= math.degrees(lat) <= 54)
        assert asia > 400  # Asia carries >50% of weight

    def test_density_zero_over_ocean(self):
        assert self.grid.density_at(0.0, math.radians(-140.0)) == 0.0

    def test_density_positive_over_china(self):
        d = self.grid.density_at(math.radians(35.0), math.radians(110.0))
        assert d > 10.0  # subscribers per km^2

    def test_region_of(self):
        assert self.grid.region_of(math.radians(35.0),
                                   math.radians(110.0)) == "east-asia"
        assert self.grid.region_of(0.0, math.radians(-140.0)) == "ocean"

    def test_footprint_users_scale_with_radius(self):
        lat, lon = math.radians(30.0), math.radians(110.0)
        small = self.grid.users_in_footprint(lat, lon, 300.0)
        large = self.grid.users_in_footprint(lat, lon, 900.0)
        assert large > small > 0

    def test_footprint_over_ocean_empty(self):
        assert self.grid.users_in_footprint(0.0, math.radians(-140.0),
                                            500.0) == 0.0

    def test_capped_users_respects_capacity(self):
        lat, lon = math.radians(30.0), math.radians(110.0)
        served = self.grid.capped_users(lat, lon, 900.0, capacity=30000)
        assert served == 30000.0

    def test_capped_users_below_capacity_over_sparse_area(self):
        served = self.grid.capped_users(0.0, math.radians(-140.0), 500.0,
                                        capacity=30000)
        assert served == 0.0

    def test_total_mass_conserved(self):
        """Densities integrate back to the subscriber total."""
        total = sum(
            (r.weight / sum(x.weight for x in WORLD_BANK_REGIONS))
            * self.grid.total_subscribers
            for r in WORLD_BANK_REGIONS)
        assert total == pytest.approx(self.grid.total_subscribers, rel=1e-6)
