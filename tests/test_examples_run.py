"""Every example script must run cleanly end to end.

The examples are a deliverable; a regression that breaks one is as bad
as a failing unit test.  Each runs in a subprocess with a generous
timeout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=420)
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}")
    assert "Traceback" not in result.stderr
    # Every example narrates something.
    assert len(result.stdout.strip()) > 100


def test_emergency_resilience_runs_on_the_scenario_layer():
    """The drill must use the declarative harness and report its SLO
    verdict (ISSUE 7 satellite: port onto the scenario layer)."""
    script = EXAMPLES_DIR / "emergency_resilience.py"
    source = script.read_text()
    assert "repro.scenarios" in source
    assert "ScenarioSpec" in source and "SLOBudget" in source
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=420)
    assert result.returncode == 0, result.stderr[-2000:]
    out = result.stdout
    assert "[slo] verdict: pass" in out
    assert "survival_margin" in out
    assert "session survival: SpaceCore" in out
    # The hijack drill stays part of the story.
    assert "[revoked]" in out


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_has_module_docstring(script):
    source = script.read_text()
    assert source.lstrip().startswith(('"""', '#!'))
    assert '"""' in source
