"""Every example script must run cleanly end to end.

The examples are a deliverable; a regression that breaks one is as bad
as a failing unit test.  Each runs in a subprocess with a generous
timeout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=420)
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}")
    assert "Traceback" not in result.stderr
    # Every example narrates something.
    assert len(result.stdout.strip()) > 100


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_has_module_docstring(script):
    source = script.read_text()
    assert source.lstrip().startswith(('"""', '#!'))
    assert '"""' in source
