"""Tests for the vectorized UE-cohort signaling engine."""

import pytest

from repro.baselines.solutions import fiveg_ntn, spacecore
from repro.constants import SESSION_INTERARRIVAL_S
from repro.orbits import starlink
from repro.runtime import OfferedLoadProbe, UECohortEngine
from repro.sim import CohortEmulation, NeighborhoodEmulation


def _stats_tuple(stats):
    return (stats.sessions_established, stats.releases, stats.handovers,
            stats.mobility_registrations, stats.initial_registrations,
            stats.signaling_messages, stats.satellite_messages,
            stats.crossing_messages, dict(stats.events_by_procedure))


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        runs = [UECohortEngine(starlink(), n_ues=50_000, seed=9).run(3600.0)
                for _ in range(2)]
        assert _stats_tuple(runs[0]) == _stats_tuple(runs[1])

    def test_different_seeds_differ(self):
        a = UECohortEngine(starlink(), n_ues=50_000, seed=0).run(3600.0)
        b = UECohortEngine(starlink(), n_ues=50_000, seed=1).run(3600.0)
        assert _stats_tuple(a) != _stats_tuple(b)

    def test_procedure_draws_independent(self):
        """Per-procedure seed derivation keeps draws decoupled: the
        session counts must not move when another kind's rate does."""
        sc = UECohortEngine(starlink(), n_ues=20_000, seed=4,
                            solution=spacecore()).run(3600.0)
        ntn = UECohortEngine(starlink(), n_ues=20_000, seed=4,
                             solution=fiveg_ntn()).run(3600.0)
        assert sc.events_by_procedure["C2"] == \
            ntn.events_by_procedure["C2"]


class TestStatistics:
    def test_session_rate_matches_prediction(self):
        engine = UECohortEngine(starlink(), n_ues=200_000, seed=0)
        stats = engine.run(3600.0)
        predicted = engine.predicted_session_rate_per_ue()
        assert stats.session_rate_per_ue == \
            pytest.approx(predicted, rel=0.02)

    def test_event_rate_matches_prediction(self):
        engine = UECohortEngine(starlink(), n_ues=200_000, seed=1)
        stats = engine.run(3600.0)
        assert stats.events_per_ue_s == \
            pytest.approx(engine.predicted_events_per_ue_s(), rel=0.02)

    def test_messages_follow_flows(self):
        """Batched cost application = sum(events_k * len(flow_k))."""
        solution = spacecore()
        engine = UECohortEngine(starlink(), n_ues=30_000, seed=2,
                                solution=solution)
        stats = engine.run(1800.0)
        expected = sum(
            count * len(solution.flows[kind])
            for kind in solution.flows
            for count in [stats.events_by_procedure[kind.value]])
        assert stats.signaling_messages == expected

    def test_releases_bounded_by_sessions(self):
        stats = UECohortEngine(starlink(), n_ues=10_000,
                               seed=3).run(600.0)
        assert 0 <= stats.releases <= stats.sessions_established

    def test_legacy_mix_has_mobility_row(self):
        """SkyCore binds tracking areas to satellites, so every pass
        triggers a mobility registration; NTN still crosses ground."""
        from repro.baselines.solutions import skycore
        stats = UECohortEngine(starlink(), n_ues=50_000, seed=0,
                               solution=skycore()).run(3600.0)
        assert stats.mobility_registrations > 0
        ntn = UECohortEngine(starlink(), n_ues=50_000, seed=0,
                             solution=fiveg_ntn()).run(3600.0)
        assert ntn.crossing_messages > 0


class TestScaling:
    def test_cohort_count_bounded_by_population(self):
        engine = UECohortEngine(starlink(), n_ues=10, n_cohorts=256)
        assert engine.n_cohorts == 10

    def test_cohort_sizes_partition_population(self):
        engine = UECohortEngine(starlink(), n_ues=100_003, n_cohorts=64)
        assert int(engine._sizes.sum()) == 100_003

    def test_million_ue_load_point_runs(self):
        stats = UECohortEngine(starlink(), n_ues=1_000_000,
                               seed=0).run(3600.0)
        assert stats.ue_count == 1_000_000
        assert stats.sessions_established > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            UECohortEngine(starlink(), n_ues=0)
        with pytest.raises(ValueError):
            UECohortEngine(starlink(), n_ues=10, n_cohorts=0)
        with pytest.raises(ValueError):
            UECohortEngine(starlink(), n_ues=10, session_interval_s=0.0)
        with pytest.raises(ValueError):
            UECohortEngine(dwell_s=None, n_ues=10)
        with pytest.raises(ValueError):
            UECohortEngine(starlink(), n_ues=10).run(0.0)


class TestOfferedLoadProbe:
    """The engine's offered-load routability probe (epoch sweep)."""

    def test_same_seed_bit_identical(self):
        probes = [
            UECohortEngine(starlink(), n_ues=5_000, seed=9)
            .probe_offered_load(600.0, epochs=6, max_packets=48)
            for _ in range(2)
        ]
        assert probes[0] == probes[1]
        assert isinstance(probes[0], OfferedLoadProbe)

    def test_bounds_and_table_reuse(self):
        engine = UECohortEngine(starlink(), n_ues=5_000, seed=2)
        probe = engine.probe_offered_load(600.0, epochs=6,
                                          max_packets=48)
        assert probe.packets == min(probe.offered_sessions, 48)
        assert 0 <= probe.delivered <= probe.routed <= probe.packets
        assert 0.0 <= probe.delivery_fraction <= 1.0
        # One next-hop table per epoch, no rebuilds inside the sweep.
        assert probe.table_builds == probe.epochs
        # A second probe reuses every table the first one built.
        again = engine.probe_offered_load(600.0, epochs=6,
                                          max_packets=48)
        assert again.table_builds == 0

    def test_matches_scalar_walk(self):
        """Probe packets route bit-identically to the scalar walk."""
        from repro.topology.routing import RELAY_MAX_HOPS
        engine = UECohortEngine(starlink(), n_ues=2_000, seed=5)
        probe = engine.probe_offered_load(600.0, epochs=4,
                                          max_packets=16)
        router = engine._offered_router()
        assert router.max_hops == RELAY_MAX_HOPS
        assert probe.delivered > 0

    def test_requires_constellation(self):
        engine = UECohortEngine(dwell_s=300.0, n_ues=100)
        with pytest.raises(ValueError):
            engine.probe_offered_load(600.0)

    def test_validation(self):
        engine = UECohortEngine(starlink(), n_ues=100)
        with pytest.raises(ValueError):
            engine.probe_offered_load(0.0)
        with pytest.raises(ValueError):
            engine.probe_offered_load(600.0, epochs=0)

    def test_metrics_exported(self):
        from repro.obs.metrics import MetricsRegistry
        metrics = MetricsRegistry()
        engine = UECohortEngine(starlink(), n_ues=2_000, seed=1,
                                metrics=metrics)
        probe = engine.probe_offered_load(600.0, epochs=4,
                                          max_packets=32)
        assert metrics.counter_value(
            "cohort.offered_probes", solution="SpaceCore") == 1
        assert metrics.counter_value(
            "cohort.offered_packets",
            solution="SpaceCore") == probe.packets


class TestCohortEmulation:
    def test_rate_agrees_with_per_ue_emulation(self):
        """The cohort engine and the live-stack neighbourhood must
        measure the same per-UE session rate within sampling noise."""
        per_ue = NeighborhoodEmulation(starlink(), num_ues=20, seed=0)
        per_ue_stats = per_ue.run(3000.0)
        cohort = CohortEmulation(starlink(), num_ues=100_000, seed=0)
        cohort_stats = cohort.run(3000.0)
        assert cohort_stats.session_rate_per_ue == \
            pytest.approx(cohort.predicted_session_rate_per_ue(),
                          rel=0.05)
        # The per-UE emulation has only 20 UEs of samples; allow wide
        # but meaningful agreement between the two measurements.
        assert per_ue_stats.session_rate_per_ue == \
            pytest.approx(cohort_stats.session_rate_per_ue, rel=0.25)

    def test_interval_knob_respected(self):
        fast = CohortEmulation(starlink(), num_ues=50_000, seed=0,
                               session_interval_s=10.0)
        stats = fast.run(1000.0)
        assert stats.session_rate_per_ue == pytest.approx(0.1, rel=0.05)
        assert SESSION_INTERARRIVAL_S != 10.0
