"""Tests for line-of-sight feasibility and failure recovery."""

import math

import pytest

from repro.constants import EARTH_RADIUS_KM
from repro.core import SpaceCoreSystem
from repro.orbits import IdealPropagator, starlink
from repro.topology import GridTopology
from repro.topology.links import line_of_sight_clear


class TestLineOfSight:
    ALT = EARTH_RADIUS_KM + 550.0

    def test_adjacent_satellites_clear(self):
        a = (self.ALT, 0.0, 0.0)
        b = (self.ALT * math.cos(0.3), self.ALT * math.sin(0.3), 0.0)
        assert line_of_sight_clear(a, b, EARTH_RADIUS_KM + 80.0)

    def test_antipodal_satellites_occluded(self):
        a = (self.ALT, 0.0, 0.0)
        b = (-self.ALT, 0.0, 0.0)
        assert not line_of_sight_clear(a, b, EARTH_RADIUS_KM + 80.0)

    def test_coincident_points(self):
        a = (self.ALT, 0.0, 0.0)
        assert line_of_sight_clear(a, a, EARTH_RADIUS_KM)

    def test_grid_neighbors_always_feasible(self):
        topo = GridTopology(IdealPropagator(starlink()), [])
        for sat in (0, 100, 791, 1583):
            for nbr in topo.isl_neighbors(sat):
                assert topo.isl_feasible(sat, nbr, 0.0)

    def test_cross_constellation_pair_infeasible(self):
        """Two satellites on opposite sides of the Earth cannot link."""
        topo = GridTopology(IdealPropagator(starlink()), [])
        c = topo.constellation
        near = c.sat_index(0, 0)
        far = c.sat_index(0, c.sats_per_plane // 2)  # half orbit away
        assert not topo.isl_feasible(near, far, 0.0)


class TestFailureRecovery:
    @pytest.fixture()
    def system_with_session(self):
        system = SpaceCoreSystem(starlink())
        ue = system.provision_ue(39.9, 116.4)
        system.register(ue)
        system.establish_session(ue, t=0.0)
        return system, ue

    def test_recovery_after_serving_satellite_dies(self,
                                                   system_with_session):
        system, ue = system_with_session
        victim = system._ue_serving_sat[str(ue.supi)]
        system.topology.fail_satellite(victim)
        new_sat = system.recover_from_satellite_failure(ue, t=0.0)
        assert new_sat is not None and new_sat != victim
        assert system.satellite(new_sat).is_serving(str(ue.supi))
        assert system.send_uplink(ue, 800, 0.0)

    def test_recovery_needs_no_state_from_dead_node(self,
                                                    system_with_session):
        """The dead satellite's ephemeral state is simply lost; the
        replica re-creates everything on the new node."""
        system, ue = system_with_session
        victim = system._ue_serving_sat[str(ue.supi)]
        system.satellite(victim)  # instantiate the doomed node
        system.topology.fail_satellite(victim)
        new_sat = system.recover_from_satellite_failure(ue, t=0.0)
        # The dead node still holds its stale entry (it is dead, not
        # cleaned up); the new node serves independently.
        assert new_sat != victim
        assert system.satellite(new_sat).served_count == 1

    def test_recovery_fails_politely_without_coverage(self):
        system = SpaceCoreSystem(starlink())
        ue = system.provision_ue(39.9, 116.4)
        system.register(ue)
        system.establish_session(ue, t=0.0)
        # Kill every visible satellite.
        from repro.orbits import visible_satellites
        for sat in visible_satellites(system.propagator, 0.0, ue.lat,
                                      ue.lon):
            system.topology.fail_satellite(int(sat))
        assert system.recover_from_satellite_failure(ue, 0.0) is None
        assert not ue.connected

    def test_recovered_session_gets_fresh_key(self, system_with_session):
        """Key K rotates on the new satellite (forward secrecy)."""
        system, ue = system_with_session
        victim = system._ue_serving_sat[str(ue.supi)]
        old_key = system.satellite(victim).served_session(
            str(ue.supi)).session_key
        system.topology.fail_satellite(victim)
        new_sat = system.recover_from_satellite_failure(ue, 0.0)
        new_key = system.satellite(new_sat).served_session(
            str(ue.supi)).session_key
        assert new_key != old_key
