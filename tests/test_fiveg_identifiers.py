"""Tests for 5G identifiers and AKA."""

import random

import pytest

from repro.crypto import generate_keypair
from repro.fiveg.aka import (
    confirm_response,
    derive_k_amf,
    derive_k_seaf,
    generate_vector,
    ue_response,
)
from repro.fiveg.identifiers import Guti, GutiAllocator, Plmn, Suci, Supi


class TestPlmn:
    def test_encode_decode(self):
        plmn = Plmn(460, 0)
        assert Plmn.decode(plmn.encode()) == plmn

    def test_validation(self):
        with pytest.raises(ValueError):
            Plmn(1000, 0)
        with pytest.raises(ValueError):
            Plmn(460, -1)


class TestSupi:
    def test_string_format(self):
        supi = Supi(Plmn(460, 0), 1234567)
        assert str(supi) == "imsi-4600000001234567"

    def test_msin_range(self):
        with pytest.raises(ValueError):
            Supi(Plmn(460, 0), 10**10)


class TestSuci:
    def test_conceal_deconceal_roundtrip(self):
        home_sk, home_vk = generate_keypair(random.Random(1))
        supi = Supi(Plmn(460, 0), 987654)
        suci = Suci.conceal(supi, home_vk, random.Random(2))
        assert suci.deconceal(home_sk) == supi

    def test_concealment_hides_msin(self):
        """The SUCI must not contain the MSIN in the clear."""
        home_sk, home_vk = generate_keypair(random.Random(1))
        supi = Supi(Plmn(460, 0), 987654)
        suci = Suci.conceal(supi, home_vk, random.Random(2))
        msin_bytes = supi.msin.to_bytes(8, "big")
        assert suci.masked_msin != msin_bytes

    def test_concealment_randomised(self):
        home_sk, home_vk = generate_keypair(random.Random(1))
        supi = Supi(Plmn(460, 0), 987654)
        a = Suci.conceal(supi, home_vk)
        b = Suci.conceal(supi, home_vk)
        assert a.ephemeral != b.ephemeral

    def test_wrong_home_key_garbles(self):
        home_sk, home_vk = generate_keypair(random.Random(1))
        other_sk, _ = generate_keypair(random.Random(9))
        supi = Supi(Plmn(460, 0), 987654)
        suci = Suci.conceal(supi, home_vk)
        # The wrong key either yields a different subscriber or an
        # out-of-range MSIN that fails validation.
        try:
            recovered = suci.deconceal(other_sk)
        except ValueError:
            return
        assert recovered != supi


class TestGuti:
    def test_tmsi_range(self):
        with pytest.raises(ValueError):
            Guti(Plmn(460, 0), 1, 2**32)

    def test_allocator_unique(self):
        alloc = GutiAllocator(Plmn(460, 0), 1, random.Random(0))
        gutis = {alloc.allocate().tmsi for _ in range(200)}
        assert len(gutis) == 200

    def test_release_allows_reuse(self):
        alloc = GutiAllocator(Plmn(460, 0), 1, random.Random(0))
        guti = alloc.allocate()
        alloc.release(guti)
        # No assertion on reuse -- just no exhaustion errors.
        for _ in range(10):
            alloc.allocate()


class TestAka:
    KEY = b"k" * 32
    SN = "5G:460000"

    def test_successful_mutual_authentication(self):
        vector = generate_vector(self.KEY, self.SN)
        res_star, k_ausf = ue_response(self.KEY, self.SN, vector.rand,
                                       vector.autn)
        assert confirm_response(vector, res_star)
        assert k_ausf == vector.k_ausf

    def test_fake_network_rejected_by_ue(self):
        """A base station without K cannot forge AUTN."""
        vector = generate_vector(self.KEY, self.SN)
        with pytest.raises(ValueError):
            ue_response(self.KEY, self.SN, vector.rand, b"\x00" * 16)

    def test_wrong_ue_key_rejected_by_network(self):
        vector = generate_vector(self.KEY, self.SN)
        wrong = b"x" * 32
        autn_for_wrong = generate_vector(wrong, self.SN,
                                         vector.rand).autn
        res_star, _ = ue_response(wrong, self.SN, vector.rand,
                                  autn_for_wrong)
        assert not confirm_response(vector, res_star)

    def test_serving_network_binding(self):
        """RES* binds to the serving network name (anti-redirect)."""
        v1 = generate_vector(self.KEY, "5G:460000")
        res_elsewhere, _ = ue_response(self.KEY, "5G:310410", v1.rand,
                                       v1.autn)
        assert not confirm_response(v1, res_elsewhere)

    def test_key_hierarchy_deterministic(self):
        vector = generate_vector(self.KEY, self.SN, rand=b"r" * 16)
        k_seaf = derive_k_seaf(vector.k_ausf, self.SN)
        k_amf = derive_k_amf(k_seaf, "imsi-001")
        assert k_seaf == derive_k_seaf(vector.k_ausf, self.SN)
        assert k_amf != k_seaf
        assert len(k_amf) == 32

    def test_vectors_are_fresh(self):
        v1 = generate_vector(self.KEY, self.SN)
        v2 = generate_vector(self.KEY, self.SN)
        assert v1.rand != v2.rand
        assert v1.xres_star != v2.xres_star
