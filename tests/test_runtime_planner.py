"""Tests for the cost-aware execution planner and its pool mechanisms.

Unit tests pin the planning math (batch sizing, break-even fallback,
forced modes, cost priors); integration tests drive ``run_sharded``
through real pools and check the mechanisms the plan selects: batching
that preserves per-shard order and seed derivation, warm-pool reuse
across calls, shared-registry shipping, and the no-pool short-circuits.
"""

import math

import pytest

from repro.runtime import (
    PLANNER_ENV_VAR,
    ExecutionPlan,
    get_shared,
    plan_execution,
    planner_calibration,
    planner_decisions,
    pools_created,
    reset_planner,
    run_sharded,
    seed_for,
    shutdown_worker_pools,
    warm_pool_info,
)
from repro.runtime.planner import (
    DEFAULT_POOL_STARTUP_S,
    DEFAULT_TASK_OVERHEAD_S,
    FORCED_TASKS_PER_WORKER,
    MIN_TASK_SPAN_S,
    cost_prior,
    cost_priors,
    forced_mode,
    update_cost_prior,
)


@pytest.fixture(autouse=True)
def _clean_planner():
    """Each test starts from process-start planner state, no warm pool."""
    reset_planner()
    shutdown_worker_pools()
    yield
    reset_planner()
    shutdown_worker_pools()


def _seeded(work):
    index, base_seed = work
    return seed_for(base_seed, f"shard:{index}")


def _double(x):
    return 2 * x


def _shared_sum(x):
    return x + get_shared("test:offset")


# ---------------------------------------------------------------------------
# Planning math
# ---------------------------------------------------------------------------

class TestChunkSizing:
    def test_chunk_never_exceeds_item_count(self):
        plan = plan_execution(n_items=3, workers=8, est_item_cost_s=1e-6,
                              cores=8)
        assert 1 <= plan.chunk_size <= 3

    def test_chunk_spreads_across_all_workers(self):
        """Cheap 80-item grid: batching must still use every worker."""
        plan = plan_execution(n_items=80, workers=4, est_item_cost_s=1e-4,
                              cores=4)
        assert plan.chunk_size <= math.ceil(80 / 4)
        assert plan.n_tasks >= 4

    def test_expensive_items_get_singleton_chunks(self):
        plan = plan_execution(n_items=8, workers=4, est_item_cost_s=1.0,
                              cores=4)
        assert plan.chunk_size == 1
        assert plan.n_tasks == 8

    def test_chunk_targets_min_task_span(self):
        est = 1e-4
        plan = plan_execution(n_items=1000, workers=4,
                              est_item_cost_s=est, cores=4)
        target = max(MIN_TASK_SPAN_S,
                     10.0 * plan.overhead_per_task_s)
        assert plan.chunk_size == math.ceil(target / est)

    def test_forced_sharded_without_estimate_balances(self):
        plan = plan_execution(n_items=30, workers=3, est_item_cost_s=None,
                              force="sharded", cores=1)
        assert plan.mode == "sharded"
        assert plan.reason == "forced-sharded"
        assert plan.chunk_size == math.ceil(
            30 / (3 * FORCED_TASKS_PER_WORKER))


class TestBreakEven:
    def test_expensive_grid_shards(self):
        plan = plan_execution(n_items=8, workers=4, est_item_cost_s=1.0,
                              cores=4)
        assert plan.mode == "sharded"
        assert plan.reason == "parallel-wins"
        assert plan.serial_est_s == pytest.approx(8.0)

    def test_cheap_grid_falls_back_to_serial(self):
        plan = plan_execution(n_items=80, workers=4, est_item_cost_s=1e-4,
                              cores=4)
        assert plan.mode == "serial"
        assert plan.reason == "below-break-even"

    def test_single_core_always_serial(self):
        plan = plan_execution(n_items=8, workers=4, est_item_cost_s=10.0,
                              cores=1)
        assert plan.mode == "serial"
        assert plan.reason == "single-core"

    def test_warm_pool_drops_startup_from_projection(self):
        cold = plan_execution(n_items=80, workers=4, est_item_cost_s=1e-3,
                              cores=4, pool_is_warm=False)
        warm = plan_execution(n_items=80, workers=4, est_item_cost_s=1e-3,
                              cores=4, pool_is_warm=True)
        assert cold.pool_startup_s == DEFAULT_POOL_STARTUP_S
        assert warm.pool_startup_s == 0.0
        assert warm.parallel_est_s < cold.parallel_est_s

    def test_default_overhead_before_calibration(self):
        plan = plan_execution(n_items=8, workers=2, est_item_cost_s=1.0,
                              cores=2)
        assert plan.overhead_per_task_s == DEFAULT_TASK_OVERHEAD_S
        assert planner_calibration() == {}

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            plan_execution(n_items=1, workers=2, est_item_cost_s=1.0)
        with pytest.raises(ValueError):
            plan_execution(n_items=4, workers=1, est_item_cost_s=1.0)
        with pytest.raises(ValueError):
            plan_execution(n_items=4, workers=2, est_item_cost_s=1.0,
                           remaining=5)
        with pytest.raises(ValueError):
            plan_execution(n_items=4, workers=2, est_item_cost_s=None)

    def test_plan_is_frozen(self):
        plan = plan_execution(n_items=4, workers=2, est_item_cost_s=1.0,
                              cores=2)
        assert isinstance(plan, ExecutionPlan)
        with pytest.raises(AttributeError):
            plan.mode = "sharded"


class TestForcedMode:
    def test_unset_is_auto(self, monkeypatch):
        monkeypatch.delenv(PLANNER_ENV_VAR, raising=False)
        assert forced_mode() is None

    def test_auto_is_none(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "auto")
        assert forced_mode() is None

    def test_serial_and_sharded(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "serial")
        assert forced_mode() == "serial"
        monkeypatch.setenv(PLANNER_ENV_VAR, " Sharded ")
        assert forced_mode() == "sharded"

    def test_invalid_raises(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "turbo")
        with pytest.raises(ValueError):
            forced_mode()


class TestCostPriors:
    def test_unknown_label_has_no_prior(self):
        assert cost_prior("never-seen") is None

    def test_first_sample_sets_prior(self):
        update_cost_prior("lbl", 1.0, source="serial")
        assert cost_prior("lbl") == 1.0

    def test_ema_folds_new_samples(self):
        update_cost_prior("lbl", 1.0)
        update_cost_prior("lbl", 2.0)
        assert cost_prior("lbl") == pytest.approx(1.5)
        entry = cost_priors()["lbl"]
        assert entry["samples"] == 2

    def test_negative_samples_ignored(self):
        update_cost_prior("lbl", 1.0)
        update_cost_prior("lbl", -5.0)
        assert cost_prior("lbl") == 1.0

    def test_reset_clears_priors(self):
        update_cost_prior("lbl", 1.0)
        reset_planner()
        assert cost_prior("lbl") is None


# ---------------------------------------------------------------------------
# run_sharded integration
# ---------------------------------------------------------------------------

class TestPoolIntegration:
    def test_batched_order_and_seed_derivation(self, monkeypatch):
        """Chunked pool dispatch returns serial's exact seed sequence."""
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        work = [(index, 7) for index in range(30)]
        serial = [_seeded(item) for item in work]
        assert run_sharded(_seeded, work, workers=3) == serial

    def test_warm_pool_survives_consecutive_calls(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        before = pools_created()
        run_sharded(_double, range(8), workers=2)
        run_sharded(_double, range(8), workers=2)
        assert pools_created() == before + 1
        assert warm_pool_info() == {"workers": 2, "shared_keys": []}

    def test_shutdown_tears_down_cleanly(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        run_sharded(_double, range(4), workers=2)
        assert warm_pool_info() is not None
        shutdown_worker_pools()
        assert warm_pool_info() is None
        # And the next call simply builds a fresh pool.
        assert run_sharded(_double, range(4), workers=2) == \
            [0, 2, 4, 6]

    def test_worker_count_change_recycles_pool(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        before = pools_created()
        run_sharded(_double, range(8), workers=2)
        run_sharded(_double, range(8), workers=3)
        assert pools_created() == before + 2

    def test_shared_objects_reach_workers(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        values = run_sharded(_shared_sum, range(6), workers=2,
                             shared={"test:offset": 100})
        assert values == [100, 101, 102, 103, 104, 105]

    def test_shared_change_recycles_pool(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        before = pools_created()
        run_sharded(_shared_sum, range(4), workers=2,
                    shared={"test:offset": 1})
        run_sharded(_shared_sum, range(4), workers=2,
                    shared={"test:offset": 2})
        assert pools_created() == before + 2

    def test_same_shared_objects_keep_pool_warm(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        offset = 10
        before = pools_created()
        first = run_sharded(_shared_sum, range(4), workers=2,
                            shared={"test:offset": offset})
        second = run_sharded(_shared_sum, range(4), workers=2,
                             shared={"test:offset": offset})
        assert first == second == [10, 11, 12, 13]
        assert pools_created() == before + 1

    def test_shared_available_on_serial_path(self):
        values = run_sharded(_shared_sum, range(3), workers=1,
                             shared={"test:offset": 5})
        assert values == [5, 6, 7]

    def test_shared_scope_is_popped_after_call(self):
        run_sharded(_shared_sum, range(3), workers=1,
                    shared={"test:offset": 5})
        with pytest.raises(KeyError):
            get_shared("test:offset")

    def test_no_pool_for_trivial_inputs_even_forced(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        before = pools_created()
        assert run_sharded(_double, [], workers=4) == []
        assert run_sharded(_double, [21], workers=4) == [42]
        assert pools_created() == before

    def test_auto_mode_routes_cheap_grid_serial(self, monkeypatch):
        """A trivial fan-out must never pay for a pool in auto mode."""
        monkeypatch.delenv(PLANNER_ENV_VAR, raising=False)
        before = pools_created()
        assert run_sharded(_double, range(16), workers=4,
                           label="planner-test.cheap") == \
            [2 * x for x in range(16)]
        assert pools_created() == before
        decision = planner_decisions()[-1]
        assert decision["label"] == "planner-test.cheap"
        assert decision["mode"] == "serial"
        assert decision["reason"] in ("below-break-even", "single-core")

    def test_forced_serial_never_pools(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "serial")
        before = pools_created()
        run_sharded(_double, range(16), workers=4, label="forced-serial")
        assert pools_created() == before
        decision = planner_decisions()[-1]
        assert decision["reason"] == "forced-serial"

    def test_decision_log_records_forced_pool_runs(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV_VAR, "sharded")
        run_sharded(_double, range(8), workers=2, label="forced-pool")
        decision = planner_decisions()[-1]
        assert decision["label"] == "forced-pool"
        assert decision["mode"] == "sharded"
        assert decision["reason"] == "forced-sharded"
        assert decision["n_tasks"] >= 1
        # A real pool ran, so calibration now holds measured numbers.
        calibration = planner_calibration()
        assert calibration["task_overhead_s"] > 0
        assert calibration["pool_startup_s"] > 0

    def test_serial_runs_seed_cost_priors(self):
        run_sharded(_double, range(8), workers=1, label="prior-seeding")
        prior = cost_prior("prior-seeding")
        assert prior is not None and prior >= 0
