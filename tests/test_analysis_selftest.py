"""The analyzer self-test: ``src/repro`` must lint clean, in tier-1.

This is the gate ISSUE 4 asks for: future PRs that reintroduce an
unseeded draw, a ``hash()``-derived seed, a per-UE table on a
SpaceCore NF, an unsound cache key, a frozen-snapshot mutation, or an
implicit-Optional hint fail `pytest` directly -- the check cannot be
skipped by not running the lint CLI.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze
from repro.analysis.baseline import BASELINE_FILENAME
from repro.runtime.memo import (
    MEMO_DECORATOR_NAMES,
    cached_dwell_time_s,
    memo_metadata,
    memoized_functions,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
PACKAGE = REPO_ROOT / "src" / "repro"


def test_package_has_zero_non_baselined_findings():
    """Every finding over src/repro is fixed, suppressed inline with a
    justification, or explicitly baselined -- never silently present."""
    result = analyze([PACKAGE], root=REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
    new, _, _ = baseline.partition(result.findings)
    assert not new, "\n".join(
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in new)


def test_committed_baseline_is_empty():
    """The acceptance bar: exceptions live inline next to the code
    they excuse (self-documenting), not in the baseline file."""
    baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
    assert baseline.entries == {}


def test_committed_baseline_has_no_stale_entries():
    result = analyze([PACKAGE], root=REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
    _, _, stale = baseline.partition(result.findings)
    assert stale == []


def test_analyzer_covers_the_whole_package():
    result = analyze([PACKAGE], root=REPO_ROOT)
    checked = set(result.files)
    assert "src/repro/core/spacecore.py" in checked
    assert "src/repro/runtime/parallel.py" in checked
    assert "src/repro/sim/engine.py" in checked
    assert len(checked) > 100


def test_benchmarks_and_examples_lint_clean():
    """Since ISSUE 9 the executable entry points around the package
    ride the same contracts: benchmarks and examples must be free of
    non-baselined findings too (they define the workloads whose
    artifacts the golden gate compares)."""
    targets = [REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]
    result = analyze([t for t in targets if t.exists()],
                     root=REPO_ROOT)
    assert result.files_checked > 0
    baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
    new, _, _ = baseline.partition(result.findings)
    assert not new, "\n".join(
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in new)


def test_suite_itself_lints_clean():
    """The test suite is analyzed too (fixtures excluded -- they are
    the known-bad corpus): a wall-clock read or unseeded draw smuggled
    into a test helper would skew goldens just as surely."""
    files = sorted((REPO_ROOT / "tests").glob("test_*.py"))
    result = analyze(files, root=REPO_ROOT)
    assert result.files_checked >= 50
    baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
    new, _, _ = baseline.partition(result.findings)
    assert not new, "\n".join(
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in new)


def test_every_package_suppression_is_justified():
    """ISSUE 9 acceptance: new suppressions only land with a
    '-- why' trailer, enforced by bare-suppression staying quiet."""
    result = analyze([PACKAGE], root=REPO_ROOT)
    bare = [f for f in result.findings if f.rule == "bare-suppression"]
    assert bare == []


def test_inline_suppressions_are_counted_not_hidden():
    """The three justified ephemeral-state tables stay visible as
    suppressions in the result (reviewers can audit the count)."""
    result = analyze([PACKAGE], root=REPO_ROOT)
    assert result.suppressed >= 3


def test_memo_decorator_metadata_is_exposed():
    """runtime.memo exposes decorator metadata for the checker and
    the decorator-name list the cache rules key on."""
    assert "shard_memoized" in MEMO_DECORATOR_NAMES
    assert "lru_cache" in MEMO_DECORATOR_NAMES
    metadata = memo_metadata(cached_dwell_time_s)
    assert metadata is not None
    assert metadata["decorator"] == "shard_memoized"
    assert metadata["make_key"] == "_dwell_key"
    assert cached_dwell_time_s in memoized_functions()


def test_memo_metadata_absent_on_plain_functions():
    assert memo_metadata(test_committed_baseline_is_empty) is None
