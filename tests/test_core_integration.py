"""Tests for seamless space-terrestrial integration (S4.5)."""

import pytest

from repro.core import (
    AccessDomain,
    IntegratedAccessManager,
    SpaceCoreSystem,
    TerrestrialBaseStation,
)
from repro.orbits import starlink

CITY_GNB = TerrestrialBaseStation("beijing-gnb", 39.9, 116.4,
                                  radius_km=8.0)


@pytest.fixture()
def setup():
    system = SpaceCoreSystem(starlink())
    manager = IntegratedAccessManager(system, [CITY_GNB])
    urban = system.provision_ue(39.9, 116.41)   # inside gNB coverage
    rural = system.provision_ue(36.0, 100.0)    # satellite-only
    system.register(urban)
    system.register(rural)
    return system, manager, urban, rural


class TestCoverage:
    def test_gnb_coverage_radius(self):
        import math
        assert CITY_GNB.covers(math.radians(39.92), math.radians(116.41))
        assert not CITY_GNB.covers(math.radians(40.5),
                                   math.radians(116.4))

    def test_best_access_prefers_terrestrial(self, setup):
        _, manager, urban, _ = setup
        decision = manager.best_access(urban)
        assert decision.domain is AccessDomain.TERRESTRIAL
        assert decision.target == "beijing-gnb"

    def test_best_access_falls_back_to_satellite(self, setup):
        _, manager, _, rural = setup
        decision = manager.best_access(rural)
        assert decision.domain is AccessDomain.SATELLITE
        assert decision.target.startswith("sat-")


class TestIdleReselection:
    def test_idle_reselection_no_signaling(self, setup):
        """S4.5: idle UEs switch domains via standard reselection --
        zero core signaling."""
        _, manager, urban, _ = setup
        manager.reselect_idle(urban)
        assert manager.bus.count() == 0

    def test_reselection_counts_domain_changes(self, setup):
        system, manager, urban, _ = setup
        manager.reselect_idle(urban)
        assert manager.reselections == 0  # first camp, no change
        urban.move_to(0.7, 1.8)  # far away: leaves gNB coverage
        manager.reselect_idle(urban)
        assert manager.reselections == 1
        assert manager.current_domain(urban) is AccessDomain.SATELLITE

    def test_reselect_rejects_connected(self, setup):
        system, manager, _, rural = setup
        system.establish_session(rural)
        with pytest.raises(ValueError):
            manager.reselect_idle(rural)


class TestCrossDomainHandover:
    def test_satellite_to_terrestrial(self, setup):
        system, manager, urban, _ = setup
        # Start connected on a satellite (pretend no gNB yet).
        manager._domain[str(urban.supi)] = AccessDomain.SATELLITE
        system.establish_session(urban)
        decision = manager.handover_connected(urban)
        assert decision.domain is AccessDomain.TERRESTRIAL
        assert manager.cross_domain_handovers == 1
        # The satellite's ephemeral state evaporated; identity kept.
        assert urban.connected
        assert manager.bus.count("C3") > 0

    def test_terrestrial_to_satellite(self, setup):
        system, manager, urban, _ = setup
        manager._domain[str(urban.supi)] = AccessDomain.TERRESTRIAL
        urban.connected = True
        urban.move_to(0.63, 1.75)  # leaves the gNB: radians, rural
        decision = manager.handover_connected(urban)
        assert decision.domain is AccessDomain.SATELLITE
        # The satellite installed the replica locally.
        sat_index = system.serving_satellite_of(urban)
        assert system.satellite(sat_index).is_serving(str(urban.supi))

    def test_no_handover_within_same_domain(self, setup):
        system, manager, urban, _ = setup
        manager._domain[str(urban.supi)] = AccessDomain.TERRESTRIAL
        urban.connected = True
        decision = manager.handover_connected(urban)
        assert decision.domain is AccessDomain.TERRESTRIAL
        assert manager.cross_domain_handovers == 0

    def test_handover_rejects_idle(self, setup):
        _, manager, urban, _ = setup
        with pytest.raises(ValueError):
            manager.handover_connected(urban)

    def test_same_identity_across_domains(self, setup):
        """S4.5: one SUPI registers to both space and ground."""
        system, manager, urban, _ = setup
        manager._domain[str(urban.supi)] = AccessDomain.SATELLITE
        system.establish_session(urban)
        ip_before = urban.ip_address
        manager.handover_connected(urban)
        assert urban.ip_address == ip_before
        assert system.home.core.amf.context(urban.supi) is not None
