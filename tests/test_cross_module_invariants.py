"""Cross-module invariants: the pieces must agree with each other."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ALL_OPTIONS, ALL_SOLUTIONS
from repro.fiveg.messages import ProcedureKind, Role
from repro.fiveg.qos import QosShaper
from repro.fiveg.state import QosState
from repro.fiveg.wire import MESSAGE_TYPE_IDS
from repro.geo import AddressAllocator, GeospatialAddress
from repro.orbits import starlink


class TestCatalogCoherence:
    def test_every_solution_flow_is_wire_encodable(self):
        """Every message any solution can emit has a wire type id."""
        for factory in ALL_SOLUTIONS:
            solution = factory()
            for kind in ProcedureKind:
                for template in solution.flow(kind):
                    # Baoyun/DPCM derive their flows from the catalog;
                    # derived names must still be registered or be the
                    # two documented DPCM specials.
                    known = (template.name in MESSAGE_TYPE_IDS
                             or "device-state" in template.name
                             or template.name
                             == "session-context-install")
                    assert known, template.name

    def test_ran_roles_always_on_board(self):
        """Every placement keeps the radio in orbit (the premise of
        all four Fig. 6 options and all five solutions)."""
        for factory in tuple(ALL_SOLUTIONS) + tuple(ALL_OPTIONS):
            assert Role.RAN in factory().on_board

    def test_flows_start_at_the_ue_side(self):
        """UE- or RAN-originated first message in every procedure the
        UE initiates."""
        for factory in ALL_SOLUTIONS:
            solution = factory()
            for kind in (ProcedureKind.INITIAL_REGISTRATION,
                         ProcedureKind.SESSION_ESTABLISHMENT):
                flow = solution.flow(kind)
                if flow:
                    assert flow[0].src in (Role.UE, Role.RAN)


class TestAddressCellCoherence:
    def test_system_address_matches_grid_cell(self):
        """The cell the system writes into the address is the cell the
        grid computes for the UE's position."""
        from repro.core import SpaceCoreSystem
        system = SpaceCoreSystem(starlink())
        for lat, lon in ((39.9, 116.4), (-33.9, 151.2), (6.5, 3.4)):
            ue = system.provision_ue(lat, lon)
            system.register(ue)
            address = GeospatialAddress.from_ipv6(ue.ip_address)
            assert address.ue_cell == system.grid.cell_of(ue.lat,
                                                          ue.lon)

    def test_same_cell_ues_share_prefix(self):
        alloc = AddressAllocator(46000)
        a = alloc.allocate((1, 1), (5, 5))
        b = alloc.allocate((1, 1), (5, 5))
        c = alloc.allocate((1, 1), (6, 6))
        assert a.in_same_prefix(b)
        assert not a.in_same_prefix(c)

    def test_prefix_parses_as_ipv6_network(self):
        import ipaddress
        alloc = AddressAllocator(46000)
        address = alloc.allocate((1, 1), (5, 5))
        network = ipaddress.IPv6Network(address.cell_prefix())
        assert ipaddress.IPv6Address(address.to_ipv6()) in network

    @given(st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
           st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_prefix_independent_of_suffix(self, cell, s1, s2):
        a = GeospatialAddress(46000, (0, 0), cell, s1)
        b = GeospatialAddress(46000, (0, 0), cell, s2)
        assert a.in_same_prefix(b)


class TestShaperInvariant:
    @given(st.integers(64, 100_000), st.lists(
        st.tuples(st.floats(0.0, 10.0), st.integers(1, 3000)),
        min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_admitted_bytes_never_exceed_rate_plus_burst(self, kbps,
                                                         offered):
        """Token-bucket conservation: admitted <= rate*T + burst."""
        shaper = QosShaper(QosState(max_bitrate_up_kbps=kbps))
        times = sorted(t for t, _ in offered)
        horizon = times[-1] if times else 0.0
        for (t, size), ts in zip(sorted(offered), times):
            shaper.admit_uplink(size, ts)
        rate_bytes_s = kbps * 1000 / 8
        burst = max(1500.0, rate_bytes_s)
        allowance = rate_bytes_s * horizon + burst
        assert shaper.uplink.admitted_bytes <= allowance + 1e-6
