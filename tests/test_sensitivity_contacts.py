"""Tests for sensitivity analysis and contact plans."""

import pytest

from repro.experiments import (
    by_parameter,
    constellation_scaling,
    sensitivity_sweep,
    worst_case_reduction,
)
from repro.geo import GeospatialCellGrid
from repro.orbits import IdealPropagator, default_ground_stations, starlink
from repro.topology import (
    GridTopology,
    cell_coverage_plan,
    gateway_contact_plan,
    summarize,
)


@pytest.fixture(scope="module")
def sensitivity_points():
    return sensitivity_sweep(starlink())


class TestSensitivity:
    def test_sweep_covers_three_parameters(self, sensitivity_points):
        grouped = by_parameter(sensitivity_points)
        assert set(grouped) == {"mean_hops", "gateways", "capacity"}

    def test_conclusion_robust(self, sensitivity_points):
        """Across every perturbation SpaceCore keeps a large margin."""
        assert worst_case_reduction(sensitivity_points) > 5.0

    def test_more_hops_bigger_reduction(self, sensitivity_points):
        hops_points = sorted(by_parameter(sensitivity_points)
                             ["mean_hops"], key=lambda p: p.value)
        reductions = [p.reduction_vs_ntn for p in hops_points]
        assert reductions == sorted(reductions)

    def test_capacity_invariance(self, sensitivity_points):
        """Both loads scale linearly in capacity: the ratio holds."""
        cap_points = by_parameter(sensitivity_points)["capacity"]
        values = [p.reduction_vs_ntn for p in cap_points]
        assert max(values) / min(values) < 1.5


class TestScaling:
    def test_denser_shells_bigger_win(self):
        points = constellation_scaling(sizes=((6, 11), (36, 20),
                                              (72, 22)))
        assert points[0].total_satellites < points[-1].total_satellites
        assert (points[-1].reduction_vs_ntn
                > points[0].reduction_vs_ntn)

    def test_all_sizes_favor_spacecore(self):
        points = constellation_scaling(sizes=((6, 11), (18, 20)))
        for point in points:
            assert point.reduction_vs_ntn > 2.0


@pytest.fixture(scope="module")
def topology():
    return GridTopology(IdealPropagator(starlink()),
                        default_ground_stations())


class TestContactPlans:
    def test_gateway_plan_structure(self, topology):
        station = topology.ground_stations[0]
        plan = gateway_contact_plan(topology, station, 0.0, 1800.0,
                                    step_s=30.0)
        assert plan, "a mid-latitude gateway is never uncovered"
        for contact in plan:
            assert contact.end_s > contact.start_s
            assert 0 <= contact.satellite < 1584
        # Contacts are time-ordered and non-overlapping.
        for a, b in zip(plan, plan[1:]):
            assert a.end_s <= b.start_s

    def test_gateway_hands_over_repeatedly(self, topology):
        """The Fig. 11 effect seen from the ground: servers rotate."""
        station = topology.ground_stations[0]
        plan = gateway_contact_plan(topology, station, 0.0, 1800.0,
                                    step_s=30.0)
        stats = summarize(plan, 0.0, 1800.0)
        assert stats.contact_count >= 3
        assert stats.distinct_satellites >= 3
        assert stats.coverage_fraction > 0.95

    def test_contact_durations_bounded_by_dwell(self, topology):
        """Closest-server contacts are shorter than the full pass:
        with Starlink's dense multi-coverage a *different* satellite
        becomes closest well before the current one sets."""
        from repro.orbits import mean_dwell_time_s
        station = topology.ground_stations[0]
        plan = gateway_contact_plan(topology, station, 0.0, 3600.0,
                                    step_s=15.0)
        stats = summarize(plan, 0.0, 3600.0)
        dwell = mean_dwell_time_s(topology.constellation)
        assert 15.0 < stats.mean_duration_s <= dwell * 1.2

    def test_cell_plan_rotates_servers(self, topology):
        grid = GeospatialCellGrid(topology.constellation)
        cell = grid.cell_of_degrees(39.9, 116.4)
        plan = cell_coverage_plan(topology, grid, cell, 0.0, 1200.0,
                                  step_s=30.0)
        stats = summarize(plan, 0.0, 1200.0)
        assert stats.distinct_satellites >= 2
        assert stats.coverage_fraction > 0.9

    def test_failed_satellite_leaves_gap(self, topology):
        grid = GeospatialCellGrid(topology.constellation)
        cell = grid.cell_of_degrees(39.9, 116.4)
        plan = cell_coverage_plan(topology, grid, cell, 0.0, 600.0,
                                  step_s=30.0)
        victim = plan[0].satellite
        local = GridTopology(topology.propagator, [])
        local.fail_satellite(victim)
        degraded = cell_coverage_plan(local, grid, cell, 0.0, 600.0,
                                      step_s=30.0)
        assert victim not in {c.satellite for c in degraded}

    def test_validation(self, topology):
        station = topology.ground_stations[0]
        with pytest.raises(ValueError):
            gateway_contact_plan(topology, station, 10.0, 5.0)
