"""Fuzz/robustness tests: malformed inputs must fail cleanly.

Codecs that face the network (GTP-U, the signaling wire format, AT
commands, NAS security, the replica format) must never crash on
garbage -- they raise their typed errors instead.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fiveg import StateReplica, gtpu
from repro.fiveg.atcmd import AtCommandError, SatelliteAtAgent, parse
from repro.fiveg.nas_security import NasSecurityError, establish_pair
from repro.fiveg.wire import WireError, decode_frame


class TestGtpuFuzz:
    @given(st.binary(max_size=256))
    @settings(max_examples=200)
    def test_random_bytes_never_crash(self, data):
        try:
            gtpu.decode(data)
        except gtpu.GtpError:
            pass  # the only acceptable failure mode

    @given(st.binary(min_size=8, max_size=128))
    @settings(max_examples=100)
    def test_mutated_valid_packets(self, noise):
        wire = bytearray(gtpu.encapsulate_with_replica(
            7, b"payload", b"replica-bytes"))
        for i, b in enumerate(noise):
            wire[i % len(wire)] ^= b
        try:
            gtpu.decode(bytes(wire))
        except gtpu.GtpError:
            pass


class TestWireFuzz:
    @given(st.binary(max_size=128))
    @settings(max_examples=200)
    def test_random_bytes_never_crash(self, data):
        try:
            decode_frame(data)
        except WireError:
            pass


class TestAtFuzz:
    @given(st.text(max_size=120))
    @settings(max_examples=200)
    def test_random_text_never_crashes_parser(self, line):
        try:
            parse(line)
        except AtCommandError:
            pass

    @given(st.text(max_size=120))
    @settings(max_examples=100)
    def test_agent_survives_garbage(self, line):
        agent = SatelliteAtAgent()
        assert agent.handle(line) is None or isinstance(
            agent.handle(line), bytes)


class TestNasFuzz:
    @given(st.binary(max_size=128))
    @settings(max_examples=150)
    def test_random_bytes_never_authenticate(self, data):
        _, amf = establish_pair(b"k" * 32)
        try:
            amf.unprotect(data, uplink=True)
        except NasSecurityError:
            return
        # Authenticating random bytes would require a MAC collision;
        # with an 8-byte MAC the chance is ~2^-64 per example.
        pytest.fail("random bytes passed NAS integrity")


class TestReplicaFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=100)
    def test_random_bytes_rejected(self, data):
        with pytest.raises((ValueError, KeyError, json.JSONDecodeError,
                            UnicodeDecodeError, TypeError)):
            StateReplica.from_bytes(data)

    def test_truncated_real_replica_rejected(self):
        from repro.core import SpaceCoreHome
        home = SpaceCoreHome()
        ue = home.provision_subscriber(1)
        home.register(ue, (0, 0), (0, 0))
        wire = ue.replica.to_bytes()
        with pytest.raises((ValueError, json.JSONDecodeError)):
            StateReplica.from_bytes(wire[: len(wire) // 2])
