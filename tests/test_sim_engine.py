"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(3.0, fired.append, "middle")
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_during_event(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, fired.append, "second")

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_start_time(self):
        sim = Simulator(start_time=100.0)
        assert sim.now == 100.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending() == 1
        keep.cancel()
        assert sim.pending() == 0


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(10.0, fired.append, "out")
        sim.run(until=5.0)
        assert fired == ["in"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["in", "out"]

    def test_run_until_advances_even_without_events(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_max_events_budget(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_max_events_skips_cancelled_head(self):
        """A cancelled head event must not consume the event budget."""
        sim = Simulator()
        fired = []
        head = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.schedule(3.0, fired.append, "c")
        head.cancel()
        sim.run(max_events=1)
        assert fired == ["b"]
        assert sim.now == 2.0
        assert sim.pending() == 1
        sim.run(max_events=1)
        assert fired == ["b", "c"]
        assert sim.pending() == 0

    def test_max_events_with_all_heads_cancelled(self):
        """Budgeted run over a fully cancelled queue fires nothing."""
        sim = Simulator()
        fired = []
        handles = [sim.schedule(float(i + 1), fired.append, i)
                   for i in range(3)]
        for handle in handles:
            handle.cancel()
        sim.run(max_events=5)
        assert fired == []
        assert sim.pending() == 0

    def test_until_with_cancelled_head_past_deadline(self):
        """A cancelled event beyond ``until`` must not stall the clock."""
        sim = Simulator()
        fired = []
        late = sim.schedule(10.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        late.cancel()
        sim.run(until=5.0, max_events=10)
        assert fired == ["early"]
        assert sim.now == 5.0

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_periodic_first_delay(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(10.0, lambda: ticks.append(sim.now),
                              first_delay=0.5)
        sim.run(until=21.0)
        assert ticks == [0.5, 10.5, 20.5]

    def test_periodic_cancel_stops_chain(self):
        sim = Simulator()
        ticks = []
        handle = sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.5)
        handle.cancel()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_periodic_with_jitter(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(1.0, lambda: ticks.append(sim.now),
                              jitter=lambda: 0.25)
        sim.run(until=4.0)
        assert ticks == pytest.approx([1.0, 2.25, 3.5])

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_periodic(0.0, lambda: None)

    def test_cancel_from_inside_callback_stops_chain(self):
        """ISSUE 5 regression: self-cancellation must not be a no-op.

        The currently-firing handle has ``fired=True`` so cancelling
        *it* does nothing; the chain flag has to stop the re-arm or
        the periodic runs forever.
        """
        sim = Simulator()
        ticks = []
        chain = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 3:
                chain["handle"].cancel()

        chain["handle"] = sim.schedule_periodic(1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert sim.pending() == 0

    def test_cancel_inside_callback_then_outside_is_idempotent(self):
        sim = Simulator()
        ticks = []
        chain = {}

        def tick():
            ticks.append(sim.now)
            chain["handle"].cancel()

        chain["handle"] = sim.schedule_periodic(2.0, tick)
        sim.run(until=20.0)
        chain["handle"].cancel()
        sim.run(until=40.0)
        assert ticks == [2.0]
