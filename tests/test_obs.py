"""Unit tests for the deterministic observability subsystem."""

import json

import pytest

from repro.obs import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    Tracer,
    merge_snapshots,
)


class TestCounters:
    def test_increment_and_read(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.counter_value("x") == 5

    def test_labels_split_series(self):
        registry = MetricsRegistry()
        registry.counter("x", kind="a").inc()
        registry.counter("x", kind="b").inc(2)
        assert registry.counter_value("x", kind="a") == 1
        assert registry.counter_value("x", kind="b") == 2
        assert registry.counter_value("x") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_unknown_series_reads_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0


class TestGauges:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.add(-2)
        assert registry.snapshot()["gauges"]["depth"] == 5


class TestHistograms:
    def test_bucketing_with_overflow(self):
        histogram = Histogram((1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 99.0):
            histogram.observe(value)
        # Bounds are inclusive upper edges plus one overflow bucket.
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(102.0)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_registry_default_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        assert histogram.bounds == DEFAULT_LATENCY_BUCKETS_S

    def test_recreation_with_other_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("hops", buckets=DEFAULT_COUNT_BUCKETS)
        # Omitting buckets returns the same instrument...
        assert registry.histogram("hops").bounds == DEFAULT_COUNT_BUCKETS
        # ...but contradicting the frozen bounds is a bug.
        with pytest.raises(ValueError):
            registry.histogram("hops", buckets=(1.0, 2.0))


class TestRegistryNamespace:
    def test_one_kind_per_name(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_same_series_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x", a=1) is registry.counter("x", a=1)


class TestSnapshots:
    def test_label_order_does_not_matter(self):
        """The series key sorts labels, so kwargs order is invisible."""
        registry = MetricsRegistry()
        registry.counter("x", b=2, a=1).inc()
        registry.counter("x", a=1, b=2).inc()
        assert registry.snapshot()["counters"] == {"x{a=1,b=2}": 2}

    def test_snapshot_is_detached(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        snapshot = registry.snapshot()
        registry.counter("x").inc()
        assert snapshot["counters"]["x"] == 1

    def test_snapshot_is_json_stable(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("x", kind="z").inc()
            registry.counter("x", kind="a").inc()
            registry.gauge("g").set(3.5)
            registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
            return json.dumps(registry.snapshot(), sort_keys=True)

        assert build() == build()


class TestMerge:
    def _shard(self, n):
        registry = MetricsRegistry()
        registry.counter("runs").inc(n)
        registry.gauge("level").set(n)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(0.5 * n)
        return registry.snapshot()

    def test_merge_adds_everything(self):
        merged = merge_snapshots([self._shard(1), self._shard(2)])
        assert merged["counters"]["runs"] == 3
        assert merged["gauges"]["level"] == 3
        series = merged["histograms"]["lat"]
        assert series["count"] == 2
        assert series["bucket_counts"] == [2, 0, 0]
        assert series["sum"] == pytest.approx(1.5)

    def test_merge_of_empty_list_is_empty(self):
        assert merge_snapshots([]) == {"counters": {}, "gauges": {},
                                       "histograms": {}}

    def test_merge_matches_single_registry(self):
        """Sharding must be invisible: two per-shard registries merge
        to exactly what one registry seeing all samples reports."""
        combined = MetricsRegistry()
        for n in (1, 2, 3):
            combined.counter("runs").inc(n)
            combined.histogram("lat", buckets=(1.0, 2.0)).observe(
                0.5 * n)
        merged = merge_snapshots([self._shard(n) for n in (1, 2, 3)])
        assert merged["counters"] == combined.snapshot()["counters"]
        assert merged["histograms"] == combined.snapshot()["histograms"]

    def test_merge_is_order_deterministic(self):
        shards = [self._shard(n) for n in (1, 2, 3)]
        one = json.dumps(merge_snapshots(shards), sort_keys=True)
        two = json.dumps(merge_snapshots(shards), sort_keys=True)
        assert one == two

    def test_bound_mismatch_raises(self):
        left = MetricsRegistry()
        left.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        right = MetricsRegistry()
        right.histogram("lat", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots([left.snapshot(), right.snapshot()])

    def test_disjoint_series_union(self):
        left = MetricsRegistry()
        left.counter("a").inc()
        right = MetricsRegistry()
        right.counter("b").inc()
        merged = merge_snapshots([left.snapshot(), right.snapshot()])
        assert merged["counters"] == {"a": 1, "b": 1}


class TestTracer:
    def test_events_stamp_with_injected_clock(self):
        t = {"now": 0.0}
        tracer = Tracer(clock=lambda: t["now"])
        t["now"] = 12.5
        span = tracer.event("fault.sat-fail", target=[3])
        assert span.start_s == span.end_s == 12.5
        assert span.attrs == {"target": [3]}

    def test_set_clock_rebinds(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        tracer = Tracer()
        tracer.set_clock(lambda: sim.now)
        sim.schedule_at(4.0, lambda: tracer.event("tick"))
        sim.run()
        assert tracer.records[0].start_s == 4.0

    def test_span_brackets_simulated_time(self):
        t = {"now": 1.0}
        tracer = Tracer(clock=lambda: t["now"])
        with tracer.span("phase", step="a") as span:
            t["now"] = 5.0
        assert span.start_s == 1.0
        assert span.end_s == 5.0
        assert span.duration_s == pytest.approx(4.0)

    def test_record_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Tracer().record("x", 2.0, 1.0)

    def test_attrs_are_normalised_to_json(self):
        tracer = Tracer()
        tracer.event("x", target=(1, 2), obj=object())
        payload = tracer.to_dicts()[0]
        assert payload["attrs"]["target"] == [1, 2]
        assert isinstance(payload["attrs"]["obj"], str)
        json.dumps(payload)  # must not raise

    def test_jsonl_export_round_trips(self, tmp_path):
        tracer = Tracer()
        tracer.record("a", 0.0, 1.0, n=1)
        tracer.event("b")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_export_is_byte_stable(self):
        def build():
            tracer = Tracer(clock=lambda: 3.0)
            tracer.event("x", b=2, a=1)
            return tracer.export_jsonl()

        assert build() == build()
