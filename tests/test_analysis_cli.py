"""``repro lint`` CLI contract: exit codes, JSON schema, baselines.

Everything here drives the real argparse entry point
(``repro.cli.main``) the way CI does, against small temporary trees,
so the exit-code contract (0 clean / 1 findings / 2 usage) and the
``--format json`` schema are pinned.
"""

import json

import pytest

from repro.cli import main

CLEAN_SOURCE = '''\
from typing import Optional


def fine(count: Optional[int] = None) -> int:
    return count or 0
'''

BAD_SOURCE = '''\
def truncated(count: int = None):
    return count
'''


@pytest.fixture
def tree(tmp_path):
    """A throwaway project root (pyproject marks the root)."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    return tmp_path


def write(tree, name, source):
    path = tree / name
    path.write_text(source)
    return path


def run_lint(capsys, *argv):
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


class TestExitCodes:
    def test_clean_file_exits_zero(self, tree, capsys):
        path = write(tree, "clean.py", CLEAN_SOURCE)
        code, out = run_lint(capsys, str(path))
        assert code == 0
        assert "0 new finding(s)" in out

    def test_findings_exit_nonzero(self, tree, capsys):
        path = write(tree, "bad.py", BAD_SOURCE)
        code, out = run_lint(capsys, str(path))
        assert code == 1
        assert "[implicit-optional]" in out

    def test_unknown_rule_exits_two(self, tree, capsys):
        path = write(tree, "clean.py", CLEAN_SOURCE)
        code, out = run_lint(capsys, str(path),
                             "--rules", "no-such-rule")
        assert code == 2
        assert "unknown rule ids" in out

    def test_rule_filter_limits_what_runs(self, tree, capsys):
        path = write(tree, "bad.py", BAD_SOURCE)
        code, _ = run_lint(capsys, str(path),
                           "--rules", "unseeded-rng")
        assert code == 0

    def test_list_rules(self, tree, capsys):
        code, out = run_lint(capsys, "--list-rules")
        assert code == 0
        assert "stateful-nf" in out
        assert "hash-seed" in out


class TestJsonFormat:
    def test_schema(self, tree, capsys):
        path = write(tree, "bad.py", BAD_SOURCE)
        code, out = run_lint(capsys, str(path), "--format", "json")
        assert code == 1
        report = json.loads(out)
        assert report["version"] == 2
        assert report["files_checked"] == 1
        assert set(report["summary"]) == {
            "total", "new", "baselined", "suppressed",
            "stale_baseline"}
        (finding,) = report["findings"]
        assert set(finding) == {"rule", "path", "line", "message",
                                "fingerprint", "baselined", "severity"}
        assert finding["rule"] == "implicit-optional"
        assert finding["path"] == "bad.py"
        assert finding["line"] == 1
        assert finding["baselined"] is False
        assert finding["severity"] == "error"
        assert len(finding["fingerprint"]) == 16

    def test_output_file(self, tree, capsys):
        path = write(tree, "bad.py", BAD_SOURCE)
        report_path = tree / "lint.json"
        code, _ = run_lint(capsys, str(path), "--format", "json",
                           "--output", str(report_path))
        assert code == 1
        report = json.loads(report_path.read_text())
        assert report["summary"]["new"] == 1

    def test_graph_export(self, tree, capsys):
        source = ("import time\n"
                  "def leaf():\n"
                  "    return time.time()\n"
                  "def trial():\n"
                  "    return leaf()\n")
        path = write(tree, "mod.py", source)
        graph_path = tree / "callgraph.json"
        code, _ = run_lint(capsys, str(path),
                           "--graph", str(graph_path))
        assert graph_path.exists()
        doc = json.loads(graph_path.read_text())
        assert doc["version"] == 1
        trial = doc["functions"]["mod.trial"]
        assert trial["calls"] == ["mod.leaf"]
        assert trial["effects"] == ["reads-wallclock"]
        assert trial["direct_effects"] == []
        assert any(o["effect"] == "reads-wallclock"
                   and o["function"] == "mod.leaf"
                   for o in doc["effect_sources"])


class TestBaselineRoundTrip:
    def test_add_then_expire(self, tree, capsys):
        """The full ratchet: findings -> baselined -> fixed -> stale
        -> expired on rewrite."""
        path = write(tree, "bad.py", BAD_SOURCE)
        baseline = tree / "lint-baseline.json"

        # 1. New finding fails the gate.
        assert run_lint(capsys, str(path))[0] == 1

        # 2. Accept it into the baseline; the gate passes.
        code, out = run_lint(capsys, str(path), "--write-baseline")
        assert code == 0
        assert baseline.exists()
        entries = json.loads(baseline.read_text())["findings"]
        assert len(entries) == 1
        code, out = run_lint(capsys, str(path))
        assert code == 0
        assert "1 baselined" in out

        # 3. Fix the code: the entry goes stale (still exit 0).
        write(tree, "bad.py", CLEAN_SOURCE)
        code, out = run_lint(capsys, str(path))
        assert code == 0
        assert "stale baseline entry" in out

        # 4. Rewrite: the stale entry expires.
        assert run_lint(capsys, str(path), "--write-baseline")[0] == 0
        assert json.loads(baseline.read_text())["findings"] == []

    def test_baseline_notes_survive_rewrite(self, tree, capsys):
        path = write(tree, "bad.py", BAD_SOURCE)
        baseline = tree / "lint-baseline.json"
        run_lint(capsys, str(path), "--write-baseline")
        data = json.loads(baseline.read_text())
        data["findings"][0]["note"] = "accepted: justified fixture"
        baseline.write_text(json.dumps(data))
        run_lint(capsys, str(path), "--write-baseline")
        rewritten = json.loads(baseline.read_text())
        assert rewritten["findings"][0]["note"] == \
            "accepted: justified fixture"

    def test_no_baseline_flag_reports_everything(self, tree, capsys):
        path = write(tree, "bad.py", BAD_SOURCE)
        run_lint(capsys, str(path), "--write-baseline")
        code, _ = run_lint(capsys, str(path), "--no-baseline")
        assert code == 1

    def test_explicit_baseline_path(self, tree, capsys):
        path = write(tree, "bad.py", BAD_SOURCE)
        custom = tree / "custom-baseline.json"
        code, _ = run_lint(capsys, str(path), "--baseline",
                           str(custom), "--write-baseline")
        assert code == 0
        assert custom.exists()
        code, _ = run_lint(capsys, str(path), "--baseline", str(custom))
        assert code == 0


class TestDefaultTarget:
    def test_bare_lint_analyzes_the_package(self, capsys):
        """``repro lint`` with no paths gates the real source tree --
        and it is clean (the CI invocation)."""
        code, out = run_lint(capsys)
        assert code == 0, out
        assert "0 new finding(s)" in out
