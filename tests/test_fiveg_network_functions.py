"""Tests for the network functions and the executable procedures."""

import pytest

from repro.fiveg import (
    CoreNetwork,
    ProcedureError,
    ProcedureRunner,
    SessionState,
    SpaceCoreRegistrar,
)
from repro.fiveg.nf import THROTTLED_KBPS, Upf
from repro.fiveg.state import BillingState, QosState


@pytest.fixture()
def core():
    return CoreNetwork()


@pytest.fixture()
def registered(core):
    ue = core.provision_subscriber(1)
    runner = ProcedureRunner(core)
    runner.initial_registration(ue, tracking_area=(2, 2))
    return core, ue, runner


class TestUpf:
    def test_rule_lifecycle(self):
        upf = Upf("u1")
        upf.install_rule(7, "2001:db8::1", QosState())
        assert upf.has_rule(7)
        assert upf.session_count == 1
        upf.remove_rule(7)
        assert not upf.has_rule(7)

    def test_uplink_forwarding_counts_usage(self):
        upf = Upf("u1")
        upf.install_rule(7, "2001:db8::1", QosState())
        assert upf.forward_uplink(7, 1500)
        assert upf.usage_report(7) == (1500, 0)

    def test_downlink_by_address(self):
        upf = Upf("u1")
        upf.install_rule(7, "2001:db8::1", QosState())
        assert upf.forward_downlink("2001:db8::1", 800)
        assert upf.usage_report(7) == (0, 800)

    def test_no_rule_drops(self):
        upf = Upf("u1")
        assert not upf.forward_uplink(9, 100)
        assert upf.packets_dropped == 1


class TestPcf:
    def test_policy_from_profile(self, core):
        ue = core.provision_subscriber(5, quota_mb=100)
        qos, billing = core.pcf.establish(core.udm.profile(ue.supi))
        assert billing.quota_mb == 100
        assert qos.forwarding_rules

    def test_throttle_after_quota(self, core):
        """S4.4's example: 128 Kbps after the quota is burnt."""
        qos = QosState(max_bitrate_down_kbps=100_000)
        billing = BillingState(quota_mb=10, used_mb=20)
        new_qos, _ = core.pcf.reevaluate(qos, billing)
        assert new_qos.max_bitrate_down_kbps == THROTTLED_KBPS
        assert new_qos.max_bitrate_up_kbps == THROTTLED_KBPS

    def test_no_throttle_under_quota(self, core):
        qos = QosState(max_bitrate_down_kbps=100_000)
        billing = BillingState(quota_mb=100, used_mb=1)
        new_qos, _ = core.pcf.reevaluate(qos, billing)
        assert new_qos.max_bitrate_down_kbps == 100_000


class TestRegistration:
    def test_registration_creates_context(self, registered):
        core, ue, _ = registered
        context = core.amf.context(ue.supi)
        assert context is not None
        assert context.registered
        assert ue.guti is not None

    def test_registration_counts(self, registered):
        core, _, _ = registered
        assert core.amf.registrations == 1
        assert core.ausf.authentications_succeeded == 1
        assert core.udm.vectors_generated == 1

    def test_unknown_subscriber_rejected(self, core):
        from repro.fiveg.identifiers import Supi
        from repro.fiveg.ue import UserEquipment
        stranger = UserEquipment(Supi(core.plmn, 999), b"k" * 32,
                                 core.home_verify_key)
        runner = ProcedureRunner(core)
        with pytest.raises(KeyError):
            runner.initial_registration(stranger, (0, 0))

    def test_emits_figure9a_message_count(self, registered):
        _, _, runner = registered
        assert runner.bus.count("C1") == 14

    def test_reregistration_replaces_context(self, registered):
        core, ue, runner = registered
        first_guti = ue.guti
        runner.initial_registration(ue, tracking_area=(3, 3))
        assert core.amf.registered_count == 1
        assert ue.guti != first_guti


class TestSessionEstablishment:
    def test_session_through_anchor(self, registered):
        core, ue, runner = registered
        session = runner.establish_session(ue, (2, 2), (2, 2))
        assert core.anchor_upf.has_rule(session.tunnel_id)
        assert ue.ip_address == session.address.to_ipv6()

    def test_requires_registration(self, core):
        ue = core.provision_subscriber(2)
        runner = ProcedureRunner(core)
        with pytest.raises(ProcedureError):
            runner.establish_session(ue, (0, 0), (0, 0))

    def test_data_flows_after_establishment(self, registered):
        core, ue, runner = registered
        session = runner.establish_session(ue, (2, 2), (2, 2))
        assert core.anchor_upf.forward_uplink(session.tunnel_id, 1200)
        assert core.anchor_upf.forward_downlink(ue.ip_address, 600)

    def test_geospatial_address_embeds_cell(self, registered):
        from repro.geo import GeospatialAddress
        core, ue, runner = registered
        runner.establish_session(ue, home_cell=(2, 2), ue_cell=(7, 8))
        address = GeospatialAddress.from_ipv6(ue.ip_address)
        assert address.ue_cell == (7, 8)
        assert address.home_cell == (2, 2)


class TestHandoverAndMobility:
    def test_handover_moves_user_plane(self, registered):
        core, ue, runner = registered
        edge = Upf("edge-upf")
        core.smf.attach_upf(edge)
        session = runner.establish_session(ue, (2, 2), (2, 2))
        runner.handover(ue, session.session_id, "edge-upf")
        assert edge.has_rule(session.tunnel_id)
        assert not core.anchor_upf.has_rule(session.tunnel_id)

    def test_mobility_registration_changes_ip(self, registered):
        """The baseline behaviour that kills TCP in Fig. 21."""
        core, ue, runner = registered
        runner.establish_session(ue, (2, 2), (2, 2))
        before = ue.ip_address
        runner.mobility_registration(ue, (9, 9))
        assert ue.ip_address != before
        assert core.amf.context(ue.supi).tracking_area == (9, 9)

    def test_mobility_message_count(self, registered):
        _, ue, runner = registered
        runner.establish_session(ue, (2, 2), (2, 2))
        runner.mobility_registration(ue, (9, 9))
        assert runner.bus.count("C4") == 13


class TestSpaceCoreRegistrar:
    def test_delegation_produces_verifiable_replica(self):
        core = CoreNetwork()
        ue = core.provision_subscriber(3)
        registrar = SpaceCoreRegistrar(core)
        registrar.register_and_delegate(ue, (1, 1), (5, 5))
        assert ue.has_replica
        # An enrolled satellite can open and verify the replica.
        from repro.crypto import decrypt
        creds = core.enroll_satellite("sat-x")
        blob = decrypt(creds.abe_key, ue.replica.ciphertext)
        assert core.home_verify_key.verify(blob, ue.replica.signature)
        state = SessionState.from_bytes(blob)
        assert state.location.cell_id == [5, 5] or \
            tuple(state.location.cell_id) == (5, 5)

    def test_replica_contains_dh_parameters(self):
        """Algorithm 2: state includes (p, g) for the key agreement."""
        core = CoreNetwork()
        ue = core.provision_subscriber(4)
        SpaceCoreRegistrar(core).register_and_delegate(ue, (1, 1), (5, 5))
        from repro.crypto import decrypt
        creds = core.enroll_satellite("sat-y")
        state = SessionState.from_bytes(
            decrypt(creds.abe_key, ue.replica.ciphertext))
        assert state.security.dh_generator == 4
        assert state.security.dh_prime_hex.startswith("0x")

    def test_k_seaf_never_delegated(self):
        """The anchor key stays home (S4.4): check the bundle."""
        core = CoreNetwork()
        ue = core.provision_subscriber(6)
        SpaceCoreRegistrar(core).register_and_delegate(ue, (1, 1), (5, 5))
        from repro.crypto import decrypt
        creds = core.enroll_satellite("sat-z")
        state = SessionState.from_bytes(
            decrypt(creds.abe_key, ue.replica.ciphertext))
        assert state.security.k_seaf == ""
        assert state.security.authentication_vector == ""
