"""Tests for orbital edge computing and state footprints."""

import math

import pytest

from repro.core.edge import OrbitalEdgeService
from repro.experiments.state_footprint import (
    durable_vs_ephemeral,
    footprint_comparison,
    satellite_state_footprint,
)
from repro.baselines import baoyun
from repro.orbits import IdealPropagator, default_ground_stations, starlink
from repro.topology import GridTopology

BEIJING = (math.radians(39.9), math.radians(116.4))


@pytest.fixture(scope="module")
def topology():
    return GridTopology(IdealPropagator(starlink()),
                        default_ground_stations())


@pytest.fixture(scope="module")
def edge(topology):
    service = OrbitalEdgeService(topology)
    service.place_over_population(0.0, replica_count=5)
    return service


class TestPlacement:
    def test_places_requested_count(self, edge):
        assert len(edge.replicas) == 5

    def test_replicas_spread_apart(self, edge, topology):
        from repro.orbits.coordinates import central_angle
        subs = topology.propagator.subpoints(0.0)
        replicas = edge.replicas
        for i, a in enumerate(replicas):
            for b in replicas[i + 1:]:
                angle = central_angle(float(subs[a][0]),
                                      float(subs[a][1]),
                                      float(subs[b][0]),
                                      float(subs[b][1]))
                assert angle * 6371.0 > 1500.0

    def test_validation(self, topology):
        with pytest.raises(ValueError):
            OrbitalEdgeService(topology).place_over_population(
                0.0, replica_count=0)


class TestServing:
    def test_request_served_from_nearby_replica(self, edge):
        result = edge.serve(*BEIJING, 0.0)
        assert result.served
        assert result.replica_sat in edge.replicas
        # A replica over east Asia should be a short hop away.
        assert result.latency_s < 0.08

    def test_edge_beats_ground_cdn(self, edge):
        """S2.2(3): orbital edge shortens content paths."""
        result = edge.serve(*BEIJING, 0.0)
        cdn = edge.ground_cdn_latency_s(*BEIJING, 0.0)
        assert result.latency_s < cdn

    def test_failover_to_next_replica(self, topology):
        service = OrbitalEdgeService(topology)
        service.place_over_population(0.0, replica_count=5)
        first = service.serve(*BEIJING, 0.0)
        assert first.served
        topology.fail_satellite(first.replica_sat)
        try:
            second = service.serve(*BEIJING, 0.0)
            assert second.served
            assert second.replica_sat != first.replica_sat
            assert service.failovers >= 1
        finally:
            topology.recover_satellite(first.replica_sat)

    def test_all_replicas_dead_fails_politely(self, topology):
        service = OrbitalEdgeService(topology)
        service.place_on([0])
        topology.fail_satellite(0)
        try:
            assert not service.serve(*BEIJING, 0.0).served
        finally:
            topology.recover_satellite(0)


class TestStateFootprint:
    def test_skycore_footprint_enormous(self):
        footprints = {f.solution: f for f in footprint_comparison()}
        assert footprints["SkyCore"].stored_items == 100_000_000
        assert footprints["SkyCore"].stored_megabytes > 1000

    def test_spacecore_smallest_durable_class(self):
        footprints = {f.solution: f for f in footprint_comparison()}
        assert footprints["SpaceCore"].stored_items < \
            footprints["Baoyun"].stored_items
        assert footprints["SkyCore"].stored_bytes == max(
            f.stored_bytes for f in footprints.values())

    def test_footprint_scales_with_capacity(self):
        small = satellite_state_footprint(baoyun(), 2_000, 10**8)
        large = satellite_state_footprint(baoyun(), 30_000, 10**8)
        assert large.stored_bytes == pytest.approx(
            15 * small.stored_bytes)

    def test_durability_classes(self):
        classes = durable_vs_ephemeral()
        assert classes["SpaceCore"] == "ephemeral"
        for name in ("SkyCore", "Baoyun", "DPCM", "5G NTN"):
            assert classes[name] == "durable"

    def test_measured_sizes_plausible(self):
        from repro.experiments.state_footprint import (
            _BUNDLE_BYTES,
            _VECTOR_BYTES,
        )
        assert 300 < _BUNDLE_BYTES < 2000
        assert 32 <= _VECTOR_BYTES <= 128
