"""Tests for workload generation and failure/attack models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import spacecore, skycore, baoyun, fiveg_ntn
from repro.constants import SESSION_INTERARRIVAL_S, STARLINK_DWELL_S
from repro.faults import (
    GilbertElliottChannel,
    HijackScenario,
    hijack_initial_leak,
    hijack_leak_series,
    mitm_leak_rate,
    procedure_success_probability,
    satellite_decay_series,
)
from repro.fiveg.messages import ProcedureKind
from repro.orbits import starlink
from repro.workload import (
    SessionWorkload,
    TABLE2_COUNTS,
    layer_mix,
    poisson_arrivals,
    registration_delay_samples,
    satellite_workload,
    synthesize,
    table2_summary,
    total_messages,
)


class TestPoisson:
    def test_rate_matches(self):
        rng = random.Random(0)
        events = list(poisson_arrivals(10.0, 1000.0, rng))
        assert len(events) == pytest.approx(10000, rel=0.05)

    def test_zero_rate_no_events(self):
        assert list(poisson_arrivals(0.0, 100.0, random.Random(0))) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            list(poisson_arrivals(-1.0, 10.0, random.Random(0)))

    def test_events_sorted_and_bounded(self):
        events = list(poisson_arrivals(5.0, 50.0, random.Random(1)))
        assert events == sorted(events)
        assert all(0 <= t < 50.0 for t in events)


class TestSessionWorkload:
    def test_event_stream_rates(self):
        workload = SessionWorkload(num_ues=1000, dwell_s=STARLINK_DWELL_S,
                                   mobility_registrations=True, seed=1)
        events = workload.events(600.0)
        sessions = [e for e in events
                    if e.kind is ProcedureKind.SESSION_ESTABLISHMENT]
        expected = 1000 / SESSION_INTERARRIVAL_S * 600
        assert len(sessions) == pytest.approx(expected, rel=0.15)

    def test_mobility_bursts_present_when_enabled(self):
        workload = SessionWorkload(num_ues=500, dwell_s=STARLINK_DWELL_S,
                                   mobility_registrations=True, seed=2)
        events = workload.events(400.0)
        mob = [e for e in events
               if e.kind is ProcedureKind.MOBILITY_REGISTRATION]
        assert len(mob) >= 500  # at least one burst of all UEs

    def test_no_mobility_when_disabled(self):
        workload = SessionWorkload(num_ues=500, dwell_s=STARLINK_DWELL_S,
                                   mobility_registrations=False, seed=2)
        events = workload.events(400.0)
        assert not [e for e in events
                    if e.kind is ProcedureKind.MOBILITY_REGISTRATION]

    def test_events_sorted(self):
        workload = satellite_workload(starlink(), 200, True)
        events = workload.events(300.0)
        times = [e.time_s for e in events]
        assert times == sorted(times)

    def test_mean_rates_consistent(self):
        workload = SessionWorkload(num_ues=2000, dwell_s=165.8,
                                   mobility_registrations=True)
        rates = workload.mean_rates()
        assert rates[ProcedureKind.SESSION_ESTABLISHMENT] == \
            pytest.approx(2000 / 106.9)
        assert rates[ProcedureKind.MOBILITY_REGISTRATION] == \
            pytest.approx(2000 / 165.8)


class TestTable2Traces:
    def test_totals_match_paper(self):
        """Table 2's Total row, verbatim."""
        assert total_messages("inmarsat-explorer-710") == 971_120
        assert total_messages("tiantong-sc310") == 2_106_916
        assert total_messages("tiantong-t900") == 4_279_736
        assert total_messages("china-telecom") == 3_857_732
        assert total_messages("china-unicom") == 1_491_534
        assert total_messages("china-mobile") == 8_480_488

    def test_mix_sums_to_one(self):
        for source in TABLE2_COUNTS:
            assert sum(layer_mix(source).values()) == pytest.approx(1.0)

    def test_synthesized_mix_matches(self):
        trace = synthesize("tiantong-sc310", 20000, seed=3)
        l1_fraction = sum(1 for m in trace if m.layer == "L1/L2") / len(
            trace)
        assert l1_fraction == pytest.approx(
            layer_mix("tiantong-sc310")["L1/L2"], abs=0.02)

    def test_synthesized_times_ordered(self):
        trace = synthesize("china-mobile", 500, duration_s=100.0)
        times = [m.time_s for m in trace]
        assert times == sorted(times)
        assert all(0 <= t <= 100.0 for t in times)

    def test_unknown_source_rejected(self):
        with pytest.raises(KeyError):
            synthesize("verizon", 10)

    def test_registration_delays_match_measured_means(self):
        """Fig. 5b: ~9.5 s Inmarsat, ~13.5 s Tiantong."""
        inm = registration_delay_samples("inmarsat-explorer-710", 4000)
        tia = registration_delay_samples("tiantong-sc310", 4000)
        assert sum(inm) / len(inm) == pytest.approx(9.5, rel=0.1)
        assert sum(tia) / len(tia) == pytest.approx(13.5, rel=0.1)

    def test_terrestrial_source_has_no_registration_delay(self):
        with pytest.raises(KeyError):
            registration_delay_samples("china-mobile", 10)

    def test_summary_covers_all_sources(self):
        assert len(table2_summary()) == 6


class TestFailures:
    def test_decay_accumulates(self):
        series = satellite_decay_series(1584, 24, seed=1)
        accumulated = [s.accumulated for s in series]
        assert accumulated == sorted(accumulated)
        assert accumulated[-1] > 0

    def test_decay_calibrated_to_one_in_forty(self):
        """S3.3: about 1/40 Starlink satellites failed over ~2 years."""
        series = satellite_decay_series(10000, 24, seed=2)
        fraction = series[-1].accumulated / 10000
        assert fraction == pytest.approx(1 / 40, rel=0.3)

    def test_gilbert_elliott_bursty(self):
        channel = GilbertElliottChannel(seed=3)
        series = channel.series(5000)
        assert max(series) == pytest.approx(0.35)
        assert min(series) == pytest.approx(0.001)
        bad_fraction = sum(1 for f in series if f > 0.1) / len(series)
        expected = channel.steady_state_bad_fraction
        assert bad_fraction == pytest.approx(expected, abs=0.03)

    def test_gilbert_elliott_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_good_to_bad=1.5)

    def test_procedure_fragility_grows_with_length(self):
        """S3.3: long stateful flows are exponentially fragile."""
        short = procedure_success_probability(4, 0.05)
        long = procedure_success_probability(18, 0.05)
        assert short > long

    def test_retries_help(self):
        assert (procedure_success_probability(18, 0.05, retries=2)
                > procedure_success_probability(18, 0.05, retries=0))

    @given(st.integers(0, 40), st.floats(0.0, 0.5))
    @settings(max_examples=50)
    def test_success_probability_in_range(self, n, loss):
        p = procedure_success_probability(n, loss)
        assert 0.0 <= p <= 1.0


class TestAttacks:
    SCENARIO = HijackScenario(capacity=30000,
                              total_subscribers=100_000_000,
                              dwell_s=165.8)

    def test_skycore_leaks_everything_immediately(self):
        assert hijack_initial_leak(skycore(), self.SCENARIO) == 100_000_000

    def test_spacecore_initial_leak_is_tiny(self):
        leak = hijack_initial_leak(spacecore(), self.SCENARIO)
        assert leak < 30000 * 0.2

    def test_hijack_series_monotone(self):
        for factory in (spacecore, baoyun, fiveg_ntn):
            series = hijack_leak_series(factory(), self.SCENARIO, 3000.0)
            values = [v for _, v in series]
            assert values == sorted(values)

    def test_spacecore_leak_flattens_after_revocation(self):
        """Appendix B: the home disables the hijacked satellite."""
        series = hijack_leak_series(spacecore(), self.SCENARIO, 6000.0)
        after = [v for t, v in series if t > self.SCENARIO.
                 revocation_delay_s + 60]
        assert max(after) == pytest.approx(min(after))

    def test_baoyun_keeps_leaking(self):
        series = hijack_leak_series(baoyun(), self.SCENARIO, 6000.0)
        assert series[-1][1] > series[len(series) // 2][1]

    def test_mitm_spacecore_near_zero(self):
        """Fig. 19b: ABE-encrypted replicas leak nothing readable."""
        sc_rate = mitm_leak_rate(spacecore(), 30000, 165.8)
        ntn_rate = mitm_leak_rate(fiveg_ntn(), 30000, 165.8)
        assert sc_rate < ntn_rate / 50

    def test_mitm_ipsec_mitigates(self):
        assert mitm_leak_rate(baoyun(), 30000, 165.8,
                              ipsec_enabled=True) == 0.0

    def test_skycore_mitm_worst(self):
        """Sync broadcasts replicate vectors over wireless ISLs."""
        rates = {f().name: mitm_leak_rate(f(), 30000, 165.8)
                 for f in (spacecore, skycore, baoyun, fiveg_ntn)}
        assert rates["SkyCore"] == max(rates.values())
