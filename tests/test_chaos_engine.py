"""Tests for the event-driven chaos engine (scheduled fault injection).

The contract under test is *determinism*: the same (scenario, seed)
pair must produce a bit-identical fault event list, controller log,
and packet-loss pattern on every run.  CI runs this module under
several CHAOS_SEED values, so nothing below may depend on a particular
seed's draw -- only on seed-stable invariants.
"""

import math
import os

import pytest

from repro.faults import (
    ChaosController,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    JammingAttack,
    LinkChannelModel,
)
from repro.faults.failures import satellite_decay_series
from repro.orbits import IdealPropagator, starlink
from repro.sim import Simulator
from repro.topology import GridTopology
from repro.topology.routing import DijkstraRouter

#: CI sweeps this over several values; the assertions must hold for all.
SEED = int(os.environ.get("CHAOS_SEED", "0"))

BEIJING = (math.radians(39.9), math.radians(116.4))


@pytest.fixture()
def topology():
    return GridTopology(IdealPropagator(starlink()), [])


def _decay_schedule(seed):
    return FaultSchedule().add_satellite_decay(
        range(200), horizon_s=3600.0, acceleration=2.0e5,
        repair_delay_s=600.0, seed=seed)


class TestFaultSchedule:
    def test_decay_is_seed_reproducible(self):
        a = _decay_schedule(SEED).events()
        b = _decay_schedule(SEED).events()
        assert [e.key() for e in a] == [e.key() for e in b]
        assert len(a) > 0

    def test_different_seeds_draw_different_times(self):
        a = _decay_schedule(SEED).events()
        b = _decay_schedule(SEED + 1).events()
        assert [e.key() for e in a] != [e.key() for e in b]

    def test_decay_respects_horizon(self):
        for event in _decay_schedule(SEED).events():
            assert 0.0 <= event.time <= 3600.0

    def test_repair_follows_failure(self):
        down_at = {}
        for event in _decay_schedule(SEED).events():
            if event.kind is FaultKind.SAT_FAIL:
                down_at[event.target] = event.time
            elif event.kind is FaultKind.SAT_RECOVER:
                assert event.time == pytest.approx(
                    down_at[event.target] + 600.0)

    def test_zero_hazard_schedules_nothing(self):
        schedule = FaultSchedule().add_satellite_decay(
            range(100), horizon_s=3600.0, monthly_hazard=0.0, seed=SEED)
        assert len(schedule) == 0

    def test_link_bursts_pair_up_and_close(self):
        links = [(0, 1), (4, 5), (100, 101)]
        schedule = FaultSchedule().add_link_bursts(
            links, horizon_s=5000.0, step_s=5.0, p_good_to_bad=0.05,
            seed=SEED)
        open_links = set()
        for event in schedule.events():
            if event.kind is FaultKind.ISL_FAIL:
                assert event.target not in open_links
                open_links.add(event.target)
            elif event.kind is FaultKind.ISL_RECOVER:
                open_links.discard(event.target)
        assert not open_links, "an outage leaked past the horizon"

    def test_link_bursts_reproducible_per_link(self):
        def make():
            return FaultSchedule().add_link_bursts(
                [(7, 8)], horizon_s=8000.0, step_s=5.0,
                p_good_to_bad=0.05, seed=SEED).events()
        assert [e.key() for e in make()] == [e.key() for e in make()]

    def test_jamming_window_events(self):
        attack = JammingAttack(*BEIJING, radius_km=1000.0)
        events = FaultSchedule().add_jamming_window(
            attack, 100.0, 400.0).events()
        assert [e.kind for e in events] == [FaultKind.JAM_START,
                                            FaultKind.JAM_STOP]
        assert events[0].attack is attack
        assert events[0].key()[2] == events[1].key()[2]

    def test_events_sorted_by_time(self):
        schedule = _decay_schedule(SEED).add_jamming_window(
            JammingAttack(*BEIJING), 10.0, 20.0)
        times = [e.time for e in schedule.events()]
        assert times == sorted(times)

    @pytest.mark.parametrize("bad_call", [
        lambda s: s.add(FaultEvent(-1.0, FaultKind.SAT_FAIL, (0,))),
        lambda s: s.add_satellite_decay([0], horizon_s=-1.0),
        lambda s: s.add_satellite_decay([0], 10.0, acceleration=0.0),
        lambda s: s.add_satellite_decay([0], 10.0, monthly_hazard=1.5),
        lambda s: s.add_satellite_decay([0], 10.0, monthly_hazard=-0.1),
        lambda s: s.add_link_bursts([(0, 1)], horizon_s=-5.0),
        lambda s: s.add_link_bursts([(0, 1)], 10.0, step_s=0.0),
        lambda s: s.add_jamming_window(JammingAttack(0, 0), -1.0, 5.0),
        lambda s: s.add_jamming_window(JammingAttack(0, 0), 9.0, 5.0),
    ])
    def test_invalid_parameters_rejected(self, bad_call):
        with pytest.raises(ValueError):
            bad_call(FaultSchedule())


class TestChaosController:
    def test_applies_events_and_logs(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        schedule = (FaultSchedule()
                    .add(FaultEvent(1.0, FaultKind.SAT_FAIL, (42,)))
                    .add(FaultEvent(2.0, FaultKind.ISL_FAIL, (0, 1)))
                    .add(FaultEvent(3.0, FaultKind.SAT_RECOVER, (42,))))
        assert controller.arm(schedule) == 3
        sim.run()
        assert topology.is_up(42)
        assert not topology.isl_up(0, 1)
        assert controller.log_keys() == [e.key()
                                         for e in schedule.events()]

    def test_fault_epoch_advances_per_applied_event(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        before = topology.fault_epoch
        controller.arm(FaultSchedule()
                       .add(FaultEvent(1.0, FaultKind.SAT_FAIL, (5,)))
                       .add(FaultEvent(2.0, FaultKind.SAT_FAIL, (6,))))
        sim.run()
        assert topology.fault_epoch == before + 2

    def test_subscribers_see_every_event_in_order(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        seen = []
        controller.subscribe(lambda e: seen.append(e.key()))
        controller.arm(_decay_schedule(SEED))
        sim.run()
        assert seen == controller.log_keys()

    def test_seeded_run_is_bit_reproducible(self, topology):
        def run_once():
            sim = Simulator()
            controller = ChaosController(
                sim, GridTopology(topology.propagator, []))
            controller.arm(_decay_schedule(SEED).add_jamming_window(
                JammingAttack(*BEIJING, radius_km=800.0), 50.0, 900.0))
            sim.run()
            return controller.log_keys()

        assert run_once() == run_once()

    def test_jamming_active_tracks_open_windows(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        controller.arm(FaultSchedule().add_jamming_window(
            JammingAttack(*BEIJING, radius_km=500.0), 10.0, 20.0))
        sim.run(until=15.0)
        assert controller.jamming_active()
        sim.run()
        assert not controller.jamming_active()


class TestIdempotentTopologyFaults:
    def test_double_fail_bumps_epoch_once(self, topology):
        before = topology.fault_epoch
        topology.fail_satellite(3)
        topology.fail_satellite(3)
        assert topology.fault_epoch == before + 1

    def test_recover_of_healthy_satellite_is_noop(self, topology):
        before = topology.fault_epoch
        topology.recover_satellite(3)
        assert topology.fault_epoch == before

    def test_isl_fail_recover_idempotent(self, topology):
        before = topology.fault_epoch
        topology.fail_isl(0, 1)
        topology.fail_isl(1, 0)          # same undirected link
        topology.recover_isl(0, 1)
        topology.recover_isl(0, 1)
        assert topology.fault_epoch == before + 2
        assert topology.isl_up(0, 1)


class TestJammingIdempotency:
    """Regression: repeated apply/lift cycles must keep the epoch
    monotone and never leave the DijkstraRouter serving a stale graph.
    """

    def test_repeated_cycles_monotone_epoch_and_fresh_routes(
            self, topology):
        attack = JammingAttack(*BEIJING, radius_km=1000.0)
        router = DijkstraRouter(topology)
        sat = attack.affected_satellites(topology, 0.0)[0]
        neighbor = next(iter(topology.isl_neighbors(sat)))
        baseline_edges = router._graph(0.0).number_of_edges()
        epochs = [topology.fault_epoch]
        for _ in range(3):
            assert attack.apply(topology, 0.0) > 0
            epochs.append(topology.fault_epoch)
            assert not topology.isl_up(sat, neighbor)
            # The LRU is keyed by fault epoch: the post-jam graph must
            # be rebuilt without the downed links, never served stale.
            jammed = router._graph(0.0)
            assert not jammed.has_edge(sat, neighbor)
            assert jammed.number_of_edges() < baseline_edges
            attack.lift(topology, 0.0)
            epochs.append(topology.fault_epoch)
            assert topology.isl_up(sat, neighbor)
            assert router._graph(0.0).number_of_edges() == baseline_edges
        assert epochs == sorted(epochs)

    def test_double_apply_downs_nothing_new(self, topology):
        attack = JammingAttack(*BEIJING, radius_km=1000.0)
        attack.apply(topology, 0.0)
        epoch = topology.fault_epoch
        attack.apply(topology, 0.0)
        assert topology.fault_epoch == epoch

    def test_lift_spares_failures_from_other_sources(self, topology):
        attack = JammingAttack(*BEIJING, radius_km=1000.0)
        sat = attack.affected_satellites(topology, 0.0)[0]
        neighbor = next(iter(topology.isl_neighbors(sat)))
        topology.fail_isl(sat, neighbor)    # decay, not jamming
        attack.apply(topology, 0.0)
        attack.lift(topology, 0.0)
        assert not topology.isl_up(sat, neighbor)

    def test_double_lift_is_noop(self, topology):
        attack = JammingAttack(*BEIJING, radius_km=1000.0)
        attack.apply(topology, 0.0)
        attack.lift(topology, 0.0)
        epoch = topology.fault_epoch
        attack.lift(topology, 0.0)
        assert topology.fault_epoch == epoch


class TestLinkChannelModel:
    def test_loss_pattern_reproducible(self):
        a = LinkChannelModel(seed=SEED)
        b = LinkChannelModel(seed=SEED)
        assert ([a.frame_lost(3, 4) for _ in range(200)]
                == [b.frame_lost(3, 4) for _ in range(200)])

    def test_links_are_independent_channels(self):
        model = LinkChannelModel(seed=SEED, p_good_to_bad=0.2)
        a = [model.frame_lost(0, 1) for _ in range(300)]
        b = [model.frame_lost(10, 11) for _ in range(300)]
        assert a != b

    def test_link_direction_does_not_matter(self):
        model = LinkChannelModel(seed=SEED)
        assert model.channel(5, 6) is model.channel(6, 5)

    def test_burst_state_visible(self):
        model = LinkChannelModel(seed=SEED, p_good_to_bad=1.0,
                                 p_bad_to_good=0.0)
        model.frame_lost(0, 1)
        assert model.in_burst(0, 1)


class TestFailuresValidation:
    def test_default_hazard_used_when_none(self):
        series = satellite_decay_series(1000, months=24, seed=SEED)
        assert len(series) == 24
        assert series[-1].accumulated > 0

    def test_explicit_hazard_reproducible(self):
        def run():
            return [p.accumulated for p in
                    satellite_decay_series(500, 12, monthly_hazard=0.01,
                                           seed=SEED)]
        assert run() == run()

    @pytest.mark.parametrize("kwargs", [
        dict(fleet_size=-1, months=12),
        dict(fleet_size=10, months=-1),
        dict(fleet_size=10, months=12, monthly_hazard=-0.01),
        dict(fleet_size=10, months=12, monthly_hazard=1.01),
    ])
    def test_invalid_inputs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            satellite_decay_series(**kwargs)


class TestArmIdempotency:
    """Regression: overlapping/duplicate schedules arm each distinct
    fault exactly once, and re-arming reports zero new events.
    """

    def test_rearming_same_schedule_is_noop(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        schedule = _decay_schedule(SEED)
        first = controller.arm(schedule)
        assert first == len(schedule.events())
        assert controller.arm(schedule) == 0
        assert controller.events_armed == first
        sim.run()
        # Each event fired exactly once despite the double arm.
        assert controller.log_keys() == [e.key()
                                         for e in schedule.events()]

    def test_overlapping_schedules_dedupe_by_key(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        shared = FaultEvent(5.0, FaultKind.SAT_FAIL, (7,))
        a = FaultSchedule().add(shared).add(
            FaultEvent(6.0, FaultKind.SAT_RECOVER, (7,)))
        b = FaultSchedule().add(shared).add(
            FaultEvent(8.0, FaultKind.SAT_FAIL, (9,)))
        assert controller.arm(a) == 2
        assert controller.arm(b) == 1   # only the (8.0, fail, 9) is new
        sim.run()
        assert len(controller.log) == 3

    def test_distinct_compute_factors_are_distinct_events(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        a = FaultSchedule().add(FaultEvent(
            1.0, FaultKind.COMPUTE_DEGRADE, (3,), factor=0.5))
        b = FaultSchedule().add(FaultEvent(
            1.0, FaultKind.COMPUTE_DEGRADE, (3,), factor=0.25))
        assert controller.arm(a) == 1
        assert controller.arm(b) == 1   # different factor, different key
        assert controller.arm(b) == 0

    def test_tie_order_deterministic_for_same_arm_sequence(
            self, topology):
        def run():
            sim = Simulator()
            controller = ChaosController(
                sim, GridTopology(topology.propagator, []))
            for sat in (11, 3, 7):
                controller.arm(FaultSchedule().add(
                    FaultEvent(2.0, FaultKind.SAT_FAIL, (sat,))))
            sim.run()
            return controller.log_keys()

        assert run() == run()

    def test_batch_arm_fires_ties_in_sorted_order(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        schedule = FaultSchedule()
        for sat in (11, 3, 7):
            schedule.add(FaultEvent(2.0, FaultKind.SAT_FAIL, (sat,)))
        controller.arm(schedule)
        sim.run()
        assert [key[2] for key in controller.log_keys()] == [
            (3,), (7,), (11,)]


class TestGroundStationFaults:
    @pytest.fixture()
    def gs_topology(self):
        from repro.orbits import default_ground_stations
        return GridTopology(IdealPropagator(starlink()),
                            default_ground_stations(6))

    def test_outage_window_downs_and_restores(self, gs_topology):
        sim = Simulator()
        controller = ChaosController(sim, gs_topology)
        controller.arm(FaultSchedule().add_ground_station_outage(
            [0, 2], 10.0, 20.0))
        sim.run(until=15.0)
        assert not gs_topology.ground_station_up(0)
        assert not gs_topology.ground_station_up(2)
        assert gs_topology.ground_station_up(1)
        assert len(gs_topology.live_ground_stations()) == 4
        sim.run()
        assert gs_topology.ground_station_up(0)
        assert len(gs_topology.live_ground_stations()) == 6

    def test_gs_failure_is_idempotent_and_epoch_bumps_once(
            self, gs_topology):
        before = gs_topology.fault_epoch
        gs_topology.fail_ground_station(1)
        gs_topology.fail_ground_station(1)
        assert gs_topology.fault_epoch == before + 1
        gs_topology.recover_ground_station(1)
        gs_topology.recover_ground_station(1)
        assert gs_topology.fault_epoch == before + 2

    def test_unknown_station_index_rejected(self, gs_topology):
        with pytest.raises(ValueError):
            gs_topology.fail_ground_station(99)

    def test_snapshot_graph_drops_dead_gateways(self, gs_topology):
        gs_topology.fail_ground_station(0)
        name = gs_topology.ground_stations[0].name
        graph = gs_topology.snapshot_graph(0.0, include_ground=True)
        assert name not in graph


class TestComputeDegradation:
    def test_window_tracks_live_factor(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        controller.arm(FaultSchedule().add_compute_degradation(
            [4, 5], 10.0, 30.0, factor=0.5))
        assert controller.min_compute_factor() == 1.0
        sim.run(until=20.0)
        assert controller.min_compute_factor() == 0.5
        sim.run()
        assert controller.min_compute_factor() == 1.0

    def test_factor_at_replays_history_after_run(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        controller.arm(FaultSchedule().add_compute_degradation(
            [4], 10.0, 30.0, factor=0.25))
        sim.run()
        assert controller.compute_factor_at(5.0) == 1.0
        assert controller.compute_factor_at(15.0) == 0.25
        assert controller.compute_factor_at(35.0) == 1.0

    def test_worst_factor_wins_under_overlap(self, topology):
        sim = Simulator()
        controller = ChaosController(sim, topology)
        controller.arm(FaultSchedule()
                       .add_compute_degradation([1], 0.0, 100.0,
                                                factor=0.5)
                       .add_compute_degradation([2], 10.0, 50.0,
                                                factor=0.2))
        sim.run(until=20.0)
        assert controller.min_compute_factor() == 0.2
        sim.run(until=60.0)
        assert controller.min_compute_factor() == 0.5

    @pytest.mark.parametrize("factor", [0.0, 1.0, 1.5, -0.1])
    def test_invalid_factor_rejected(self, factor):
        with pytest.raises(ValueError):
            FaultSchedule().add_compute_degradation([0], 0.0, 10.0,
                                                    factor=factor)

    def test_derated_platform_scales_cost(self):
        from repro.hardware.model import RASPBERRY_PI_4
        half = RASPBERRY_PI_4.derated(0.5)
        assert half.base_cost_us == pytest.approx(
            2.0 * RASPBERRY_PI_4.base_cost_us)
        assert RASPBERRY_PI_4.derated(1.0) is RASPBERRY_PI_4
        with pytest.raises(ValueError):
            RASPBERRY_PI_4.derated(0.0)
