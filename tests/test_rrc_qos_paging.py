"""Tests for the RRC state machine, QoS shaping, and paging."""

import pytest
from hypothesis import strategies as st

from repro.core.paging import (
    DEFAULT_DRX_CYCLE_S,
    PagingTransaction,
    geospatial_cell_cost,
    legacy_tracking_area_cost,
    occasion_for,
)
from repro.fiveg.qos import QosShaper, TokenBucket
from repro.fiveg.rrc import RrcConnection, RrcError, RrcEvent, RrcState
from repro.fiveg.state import QosState
from repro.geo import GeospatialCellGrid
from repro.orbits import starlink


class TestRrcStateMachine:
    def test_starts_idle(self):
        assert RrcConnection().state is RrcState.IDLE

    def test_setup_connects(self):
        rrc = RrcConnection()
        assert rrc.handle(RrcEvent.SETUP, 0.0) is RrcState.CONNECTED
        assert rrc.connected

    def test_inactivity_releases(self):
        """S3.1: inactive connections release after 10-15 s."""
        rrc = RrcConnection(inactivity_timeout_s=12.5)
        rrc.handle(RrcEvent.SETUP, 0.0)
        assert rrc.tick(12.0) is None
        transition = rrc.tick(12.5)
        assert transition is not None
        assert rrc.state is RrcState.IDLE

    def test_data_activity_refreshes_timer(self):
        rrc = RrcConnection(inactivity_timeout_s=10.0)
        rrc.handle(RrcEvent.SETUP, 0.0)
        rrc.data_activity(8.0)
        assert rrc.tick(12.0) is None  # timer restarted at t=8
        assert rrc.tick(18.0) is not None

    def test_suspend_resume_cycle(self):
        rrc = RrcConnection()
        rrc.handle(RrcEvent.SETUP, 0.0)
        rrc.handle(RrcEvent.SUSPEND, 1.0)
        assert rrc.state is RrcState.INACTIVE
        assert rrc.reachable_by_paging
        rrc.handle(RrcEvent.RESUME, 2.0)
        assert rrc.connected
        assert rrc.resumes == 1

    def test_paging_connects_idle_ue(self):
        rrc = RrcConnection()
        rrc.handle(RrcEvent.PAGE, 5.0)
        assert rrc.connected

    def test_illegal_transitions_rejected(self):
        rrc = RrcConnection()
        with pytest.raises(RrcError):
            rrc.handle(RrcEvent.RESUME, 0.0)  # resume from idle
        rrc.handle(RrcEvent.SETUP, 0.0)
        with pytest.raises(RrcError):
            rrc.handle(RrcEvent.SETUP, 1.0)  # double setup

    def test_data_activity_requires_connected(self):
        with pytest.raises(RrcError):
            RrcConnection().data_activity(0.0)

    def test_radio_link_failure_drops_to_idle(self):
        rrc = RrcConnection()
        rrc.handle(RrcEvent.SETUP, 0.0)
        rrc.handle(RrcEvent.RADIO_LINK_FAILURE, 3.0)
        assert rrc.state is RrcState.IDLE

    def test_connected_fraction_matches_paper_math(self):
        """A session every ~107 s held ~12.5 s -> ~12% connected."""
        rrc = RrcConnection(inactivity_timeout_s=12.5)
        t = 0.0
        while t < 1069.0:
            rrc.handle(RrcEvent.SETUP, t)
            rrc.handle(RrcEvent.INACTIVITY_EXPIRED, t + 12.5)
            t += 106.9
        fraction = rrc.connected_time_fraction(1069.0)
        assert fraction == pytest.approx(12.5 / 106.9, rel=0.05)

    def test_history_recorded(self):
        rrc = RrcConnection()
        rrc.handle(RrcEvent.SETUP, 0.0)
        rrc.handle(RrcEvent.RELEASE, 1.0)
        assert len(rrc.history) == 2
        assert rrc.history[0].event is RrcEvent.SETUP

    def test_validation(self):
        with pytest.raises(ValueError):
            RrcConnection(inactivity_timeout_s=0)


class TestTokenBucket:
    def test_admits_within_rate(self):
        bucket = TokenBucket(rate_bytes_s=1000.0, burst_bytes=1000.0)
        assert bucket.admit(500, 0.0)
        assert bucket.admit(500, 0.0)
        assert not bucket.admit(500, 0.0)  # bucket empty

    def test_refills_over_time(self):
        bucket = TokenBucket(rate_bytes_s=1000.0, burst_bytes=1000.0)
        bucket.admit(1000, 0.0)
        assert not bucket.admit(1000, 0.5)  # only 500 refilled
        assert bucket.admit(1000, 1.5)

    def test_burst_capped(self):
        bucket = TokenBucket(rate_bytes_s=1000.0, burst_bytes=1000.0)
        assert bucket.available_tokens(100.0) == 1000.0

    def test_time_backwards_rejected(self):
        bucket = TokenBucket(1000.0, 1000.0)
        bucket.admit(1, 5.0)
        with pytest.raises(ValueError):
            bucket.admit(1, 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 100.0)
        bucket = TokenBucket(10.0, 10.0)
        with pytest.raises(ValueError):
            bucket.admit(-1, 0.0)


class TestQosShaper:
    def test_shapes_to_configured_rate(self):
        shaper = QosShaper(QosState(max_bitrate_down_kbps=512))
        achieved = shaper.achievable_throughput_kbps("down", 5.0)
        # Sustained rate plus the initial one-second burst allowance
        # amortised over the window: 512 * (1 + 1/5) at most.
        assert 512 <= achieved <= 512 * 1.25

    def test_throttle_reconfiguration_bites(self):
        """The paper's 128 Kbps throttle actually slows the session."""
        shaper = QosShaper(QosState(max_bitrate_down_kbps=100_000))
        fast = shaper.achievable_throughput_kbps("down", 2.0)
        import dataclasses
        shaper.reconfigure(dataclasses.replace(
            shaper.qos, max_bitrate_down_kbps=128,
            max_bitrate_up_kbps=128))
        slow = shaper.achievable_throughput_kbps("down", 2.0)
        assert slow < fast / 100
        assert slow == pytest.approx(128, rel=0.5)

    def test_counters(self):
        shaper = QosShaper(QosState(max_bitrate_up_kbps=8))  # 1 kB/s
        assert shaper.admit_uplink(1000, 0.0)
        assert not shaper.admit_uplink(1500, 0.1)
        assert shaper.uplink.admitted == 1
        assert shaper.uplink.dropped == 1
        assert 0 < shaper.uplink.drop_ratio < 1

    def test_directions_independent(self):
        shaper = QosShaper(QosState(max_bitrate_up_kbps=8,
                                    max_bitrate_down_kbps=8000))
        assert shaper.admit_downlink(100_000, 0.0) or True
        assert shaper.admit_uplink(1000, 0.0)


class TestEnforcingUpf:
    def make_upf(self, kbps=8):
        from repro.fiveg.nf import Upf
        upf = Upf("edge", enforce_qos=True)
        upf.install_rule(1, "2001:db8::1",
                         QosState(max_bitrate_up_kbps=kbps,
                                  max_bitrate_down_kbps=kbps))
        return upf

    def test_enforcement_drops_over_rate_traffic(self):
        upf = self.make_upf(kbps=8)  # 1 kB/s, 1.5 kB burst floor
        assert upf.forward_uplink(1, 1500, now_s=0.0)
        assert not upf.forward_uplink(1, 1500, now_s=0.01)
        assert upf.packets_dropped == 1

    def test_no_timestamp_skips_shaping(self):
        """Legacy call sites without clocks keep working unshaped."""
        upf = self.make_upf(kbps=8)
        for _ in range(5):
            assert upf.forward_uplink(1, 1500)

    def test_home_pushed_throttle_applies(self):
        """S4.4: the home's session modification reconfigures shaping."""
        upf = self.make_upf(kbps=100_000)
        assert upf.forward_downlink("2001:db8::1", 100_000, now_s=0.0)
        upf.update_qos(1, QosState(max_bitrate_up_kbps=128,
                                   max_bitrate_down_kbps=128))
        # 100 kB exceeds a 128 Kbps bucket's burst: dropped.
        assert not upf.forward_downlink("2001:db8::1", 100_000,
                                        now_s=1.0)

    def test_update_qos_unknown_tunnel(self):
        upf = self.make_upf()
        with pytest.raises(KeyError):
            upf.update_qos(99, QosState())

    def test_non_enforcing_upf_has_no_shaper(self):
        from repro.fiveg.nf import Upf
        upf = Upf("plain")
        entry = upf.install_rule(1, "2001:db8::2", QosState())
        assert entry.shaper is None


class TestPaging:
    def test_occasions_spread_by_identity(self):
        offsets = {occasion_for(suffix).offset_s
                   for suffix in range(16)}
        assert len(offsets) == 4  # OCCASIONS_PER_CYCLE buckets

    def test_next_after(self):
        occasion = occasion_for(1)
        first = occasion.next_after(0.0)
        assert first >= 0.0
        later = occasion.next_after(first + 0.001)
        assert later == pytest.approx(first + DEFAULT_DRX_CYCLE_S)

    def test_negative_suffix_rejected(self):
        with pytest.raises(ValueError):
            occasion_for(-1)

    def test_transaction_answers_at_occasion(self):
        txn = PagingTransaction(ue_suffix=5)
        answered = txn.page(0.0, ue_reachable=True)
        assert answered is not None
        assert answered >= 0.0
        assert txn.attempts == 1

    def test_unreachable_ue_unanswered(self):
        txn = PagingTransaction(ue_suffix=5)
        assert txn.page(0.0, ue_reachable=False) is None

    def test_geospatial_paging_cheaper_than_tracking_area(self):
        """SpaceCore pages one footprint; legacy pages a whole area."""
        constellation = starlink()
        grid = GeospatialCellGrid(constellation)
        legacy = legacy_tracking_area_cost(constellation)
        spacecore = geospatial_cell_cost(grid)
        assert (spacecore.transmitting_satellites
                < legacy.transmitting_satellites / 4)
        assert spacecore.paged_area_km2 < legacy.paged_area_km2
