"""Gated third-party tooling checks: ruff and the mypy typed core.

Neither tool is a runtime dependency, so these tests *skip* when the
tool is absent (the default local environment) and run in the CI
``static-analysis`` job, which installs both.  The invocations here
are exactly the CI ones -- keeping them in pytest means a contributor
with the tools installed gets the gate locally for free.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The mypy ratchet: files that must type-check today.  Grow this
#: list as modules are brought up to the bar; never shrink it.
TYPED_CORE = [
    "src/repro/analysis",
    "src/repro/obs",
    "src/repro/runtime",
    "src/repro/scenarios",
    "src/repro/sim/engine.py",
    "src/repro/orbits/snapshot.py",
]


def _tool_missing(module: str) -> bool:
    return importlib.util.find_spec(module) is None


def _run(argv):
    return subprocess.run(
        [sys.executable, "-m", *argv], cwd=REPO_ROOT,
        capture_output=True, text=True)


@pytest.mark.skipif(_tool_missing("ruff"),
                    reason="ruff not installed (runs in CI)")
def test_ruff_clean():
    """``ruff check`` over the whole tree, config from pyproject."""
    proc = _run(["ruff", "check", "src", "tests", "benchmarks"])
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(_tool_missing("mypy"),
                    reason="mypy not installed (runs in CI)")
def test_mypy_typed_core():
    """mypy over the ratcheted file set, config from pyproject."""
    proc = _run(["mypy", *TYPED_CORE])
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_py_typed_marker_ships():
    """PEP 561: the package advertises inline types to consumers."""
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
    try:
        import tomllib  # 3.11+
    except ImportError:
        return
    with open(REPO_ROOT / "pyproject.toml", "rb") as fh:
        config = tomllib.load(fh)
    assert config["tool"]["setuptools"]["package-data"]["repro"] == [
        "py.typed"]


def test_typed_core_paths_exist():
    """The ratchet list cannot rot: every entry must exist."""
    for entry in TYPED_CORE:
        assert (REPO_ROOT / entry).exists(), entry
