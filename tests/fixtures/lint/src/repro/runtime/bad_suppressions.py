"""Known-bad fixture: suppression comments without justification.

Parsed by the analyzer tests, never imported or executed.
"""

import time


def unjustified_bracketed() -> float:
    # bare-suppression: names the rule but records no reason.
    return time.time()  # repro: ignore[wallclock-time]


def bare_blanket() -> dict:
    # bare-suppression: silences everything, says nothing.
    return {"b": 1, "a": 2}  # repro: ignore


def self_suppression_attempt() -> float:
    # bare-suppression is not suppressible: this still fires.
    return time.time()  # repro: ignore[wallclock-time, bare-suppression]


def justified() -> float:
    # Negative control: a justified waiver may not be flagged.
    return time.time()  # repro: ignore[wallclock-time] -- operator-facing log stamp only
