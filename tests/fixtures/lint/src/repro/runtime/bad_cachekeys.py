"""Known-bad fixture: both cache-key soundness rules fire here."""

import functools
from typing import Dict, List

from repro.runtime.memo import shard_memoized

#: Mutable module global a memoized function must not read.
_TUNING: Dict[str, float] = {"spacing_km": 50.0}

#: Immutable module global: reading this is fine.
_LIMIT = 64


def _key(stations, t):
    return (tuple(stations), t)


@functools.lru_cache(maxsize=None)
def mean_hops(stations: List[str], t: float = 0.0) -> float:
    # cache-key-unhashable: List parameter on an lru_cache function.
    return float(len(stations)) + t


@shard_memoized(_key)
def dwell_profile(stations, t: float = 0.0) -> float:
    # cache-mutable-global: result depends on _TUNING, which is
    # outside the cache key.
    return _TUNING["spacing_km"] * t + _LIMIT


@functools.lru_cache(maxsize=None)
def hops_with_default(extra: list = []) -> int:
    # cache-key-unhashable: mutable default.
    return len(extra)


@shard_memoized(_key)
def sound_cached(stations: tuple, t: float = 0.0) -> float:
    # Negative control: hashable params, locals shadow nothing.
    spacing = 50.0
    return spacing * t + len(stations)
