"""Known-bad fixture: impure workers dispatched through run_sharded.

Parsed by the analyzer tests, never imported or executed.  The
impurities sit one and two call-hops below the worker -- exactly the
shape the file-local linter could not see.
"""

import random
import time

from repro.runtime.parallel import run_sharded

_RESULTS = []


def _elapsed_s() -> float:
    # The wall-clock read lives two hops below the dispatch site.
    return time.time()


def _timed_step(x: float) -> float:
    return x + _elapsed_s()


def _timed_trial(x: float) -> float:
    # hop 1 -> _timed_step, hop 2 -> _elapsed_s -> time.time()
    return _timed_step(x)


def _sampling_trial(x: float) -> float:
    # draws-unseeded-rng directly inside the worker.
    return x * random.random()


def _recording_trial(x: float) -> float:
    # mutates-module-global: results leak into a module list, so the
    # serial and sharded runs see different accumulation.
    _RESULTS.append(x)
    return x


def _pure_trial(x: float) -> float:
    return x * 2.0


def sweep(items):
    # shard-purity: wall clock two hops below the worker (acceptance).
    timed = run_sharded(_timed_trial, items, workers=4)
    # shard-purity: unseeded draw inside the worker.
    sampled = run_sharded(_sampling_trial, items, workers=4)
    # shard-purity: module-global mutation inside the worker.
    recorded = run_sharded(_recording_trial, items, workers=4)
    # Negative control: a pure worker may not be flagged.
    clean = run_sharded(_pure_trial, items, workers=4)
    return timed, sampled, recorded, clean
