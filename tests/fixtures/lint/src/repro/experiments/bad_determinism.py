"""Known-bad fixture: every determinism rule fires in this file.

Parsed by the analyzer tests, never imported or executed.
"""

import random
import time

import numpy as np


def sample_arrivals(rate: float, n: int):
    # unseeded-rng: module-level numpy draw (acceptance fixture).
    return np.random.poisson(rate, size=n)


def pick_one(items):
    # unseeded-rng: module-level stdlib draw.
    return random.choice(items)


def make_rng():
    # unseeded-rng: seedable constructor without a seed.
    return np.random.default_rng()


def derive_seed(config):
    # hash-seed: builtin hash() bound to a seed name (acceptance
    # fixture) and fed to an RNG constructor.
    seed = hash(config)
    return random.Random(seed)


def stamp_run():
    # wallclock-time: wall clock read inside experiments/.
    return time.time()


def measure_handler():
    # wallclock-time: monotonic timer feeding simulated accounting
    # (the ISSUE 5 SBI bug shape).
    start = time.perf_counter()
    return time.perf_counter() - start


def seeded_is_fine(seed: int, rate: float, n: int):
    # Negative control: none of these may be flagged.
    rng = np.random.default_rng(seed)
    picker = random.Random(seed)
    return rng.poisson(rate, size=n), picker.random()
