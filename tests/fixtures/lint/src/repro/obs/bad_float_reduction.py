"""Known-bad fixture: order-dependent float reductions in merge code.

Parsed by the analyzer tests, never imported or executed.  Float
addition is not associative, so reducing over an unordered collection
makes totals depend on iteration order (and therefore on shard count
or hash seed).
"""

from typing import Dict, List, Set


def total_latency(samples: Set[float]) -> float:
    # float-reduction-order: sum() directly over a set.
    return sum(samples)


def merge_counters(counters: Dict[str, float]) -> float:
    # float-reduction-order: sum() over a dict .values() view.
    return sum(counters.values())


def weighted_total(samples: Set[float]) -> float:
    # float-reduction-order: generator over a set feeding sum().
    return sum(s * 0.5 for s in samples)


def accumulate(samples: Set[float]) -> float:
    # float-reduction-order: loop accumulation over a set.
    total = 0.0
    for s in samples:
        total += s
    return total


def sorted_total(samples: Set[float]) -> float:
    # Negative control: sorting pins the reduction order.
    return sum(sorted(samples))


def list_total(samples: List[float]) -> float:
    # Negative control: lists iterate in a deterministic order.
    return sum(samples)
