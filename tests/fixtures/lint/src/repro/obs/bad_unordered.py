"""Known-bad fixture: unordered iteration feeding serialized artifacts.

Parsed by the analyzer tests, never imported or executed.  Iterating a
set in a function that (transitively) reaches a JSON sink bakes
``PYTHONHASHSEED`` into artifact bytes.
"""

import json
from typing import Set


def export_failed(failed: Set[str]) -> str:
    # unordered-iteration: list() over a set-valued parameter in the
    # same function as the json.dumps sink.
    rows = list(failed)
    return json.dumps(rows)


def _to_json(rows) -> str:
    return json.dumps(rows)


def snapshot_names(names: Set[str]) -> str:
    # unordered-iteration: the comprehension iterates a set while the
    # sink is one call-hop below (_to_json -> json.dumps).
    rows = [name.upper() for name in names]
    return _to_json(rows)


def sorted_export(failed: Set[str]) -> str:
    # Negative control: sorted() pins the order; may not be flagged.
    return json.dumps(sorted(failed))


def count_only(failed: Set[str]) -> int:
    # Negative control: set iteration with no artifact sink below.
    seen = []
    for name in failed:
        seen.append(name)
    return len(seen)
