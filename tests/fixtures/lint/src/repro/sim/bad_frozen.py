"""Known-bad fixture: frozen-mutation rule cases."""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class EpochSnapshot:
    """A frozen value type handed out by a shared cache."""

    t: float
    epoch: int

    def __post_init__(self):
        # Negative control: a frozen class may build itself.
        object.__setattr__(self, "epoch", int(self.epoch))


def advance(snap: EpochSnapshot) -> EpochSnapshot:
    # frozen-mutation: in-place mutation of an annotated frozen value.
    snap.t = snap.t + 1.0
    return snap


def rebuild(t: float):
    snap = EpochSnapshot(t=t, epoch=0)
    # frozen-mutation: constructor-inferred local, augmented assign.
    snap.epoch += 1
    # frozen-mutation: setattr escape hatch.
    object.__setattr__(snap, "t", 0.0)
    return snap


def fine(t: float, maybe: Optional[EpochSnapshot] = None) -> float:
    # Negative control: reads never fire the rule.
    snap = EpochSnapshot(t=t, epoch=1)
    return snap.t + (maybe.t if maybe else 0.0)
