"""Known-bad fixture: topology-keyed caches with no invalidation.

Parsed by the analyzer tests, never imported or executed.
``StaleRouter`` is a minimal reproduction of the pre-PR-8
``DijkstraRouter``: its LRU key includes ``fault_epoch``, but nothing
registers ``add_fault_listener``, so direct mutation of fault state
between epoch reads serves stale routes.
"""

from collections import OrderedDict
from functools import lru_cache


class StaleRouter:
    """The pre-PR-8 bug shape: keyed on fault state, never invalidated."""

    def __init__(self, topology):
        self.topology = topology
        self._graph_cache = OrderedDict()

    def route(self, src: int, dst: int, t: float):
        # stale-cache: the key reads fault_epoch, but no method of
        # this class ever reaches add_fault_listener.
        key = (float(t), self.topology.fault_epoch)
        cached = self._graph_cache.get(key)
        if cached is None:
            cached = self._walk(src, dst, t)
            self._graph_cache[key] = cached
        return cached

    def _walk(self, src: int, dst: int, t: float):
        return [src, dst]


@lru_cache(maxsize=64)
def mean_path_length(topology, t: float) -> float:
    # stale-cache: a memoized function keyed on a mutable topology
    # argument can never observe fault injection.
    return float(len(topology.failed_satellites()))


class ListenerRouter:
    """Negative control: the PR-8 fix shape may not be flagged."""

    def __init__(self, topology):
        self.topology = topology
        self._graph_cache = OrderedDict()
        topology.add_fault_listener(self.invalidate)

    def invalidate(self) -> None:
        self._graph_cache.clear()

    def route(self, src: int, dst: int, t: float):
        key = (float(t), self.topology.fault_epoch)
        cached = self._graph_cache.get(key)
        if cached is None:
            cached = [src, dst]
            self._graph_cache[key] = cached
        return cached


class EpochFreeStore:
    """Negative control: a store that never reads fault state."""

    def __init__(self):
        self._by_name = {}

    def put(self, name: str, value: float) -> None:
        self._by_name[name] = value
