"""Known-bad fixture: listener registries holding strong references.

Parsed by the analyzer tests, never imported or executed.  A registry
that appends callbacks directly pins every registrant (routers and
their caches included) alive for the registry's lifetime; grid.py's
contract is ``weakref.WeakMethod`` for bound methods.
"""

import weakref


class LeakyRegistry:
    def __init__(self):
        self._fault_listeners = []

    def add_fault_listener(self, listener) -> None:
        # listener-leak: a strong reference pins the registrant.
        self._fault_listeners.append(listener)


class LeakySetRegistry:
    def __init__(self):
        self.listeners = set()

    def subscribe(self, callback) -> None:
        # listener-leak: .add() into a listener set, still strong.
        self.listeners.add(callback)


class WeakRegistry:
    """Negative control: the grid.py pattern may not be flagged."""

    def __init__(self):
        self._fault_listeners = []

    def add_fault_listener(self, listener) -> None:
        if hasattr(listener, "__self__"):
            ref = weakref.WeakMethod(listener)
        else:
            ref = weakref.ref(listener)
        self._fault_listeners.append(ref)

    def add_direct(self, listener) -> None:
        self._fault_listeners.append(weakref.ref(listener))


class PlainCollector:
    """Negative control: not a listener registry at all."""

    def __init__(self):
        self._samples = []

    def record(self, value: float) -> None:
        self._samples.append(value)
