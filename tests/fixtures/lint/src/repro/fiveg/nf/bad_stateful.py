"""Known-bad fixture: the statelessness rule's acceptance case.

A SpaceCore-path NF growing a per-UE session table -- exactly the
Fig. 9 violation the rule exists to catch.
"""

from typing import Dict


class SpaceCoreSessionAnchor:
    """A satellite-resident NF that wrongly anchors sessions."""

    def __init__(self, name: str):
        self.name = name
        # stateful-nf: per-UE durable state on a SpaceCore NF
        # (acceptance fixture).
        self._sessions: Dict[str, object] = {}
        # Not per-UE vocabulary: must not be flagged.
        self._link_budgets: Dict[int, float] = {}

    def remember(self, supi: str, blob: object) -> None:
        self._ue_contexts = {supi: blob}


class Amf:
    """Allowlisted stateful baseline: holding UE state is its job."""

    def __init__(self):
        self._contexts: Dict[str, object] = {}


class SuppressedProxy:
    """Inline suppression keeps a justified table out of the report."""

    def __init__(self):
        self._served_sessions: Dict[str, object] = {}  # repro: ignore[stateful-nf] -- ephemeral fixture
