"""Known-bad fixture: implicit-Optional parameter hints."""

from typing import List, Optional, Union


def truncated(count: int = None) -> List[int]:
    # implicit-optional: int does not admit None.
    return list(range(count or 0))


def spaced(spacing_km: float = None, *, label: str = None) -> str:
    # implicit-optional: both the positional and the kw-only param.
    return f"{label}@{spacing_km}"


def fine(count: Optional[int] = None,
         other: Union[int, None] = None,
         anything=None,
         name: str = "x") -> int:
    # Negative controls: Optional/Union-None/unannotated/non-None.
    return (count or 0) + (other or 0) + len(name) + (anything or 0)
