"""Call-graph construction and effect inference (ISSUE 9 tentpole).

Synthetic-package tests pin the resolution layers (imports, relative
imports, self-dispatch, callable references) and the fixed point;
real-package spot checks pin the facts the interprocedural rules rely
on -- above all that every ``run_sharded`` worker in ``src/repro``
stays transitively shard-pure.
"""

from pathlib import Path

import pytest

from repro.analysis import SHARD_IMPURE_EFFECTS, analyze_effects, build_callgraph
from repro.analysis.effects import (
    READS_WALLCLOCK,
    REGISTERS_FAULT_LISTENER,
)
from repro.analysis.runner import collect_files, default_target, load_module


def _build(tmp_path, files):
    modules = []
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    for path in collect_files([tmp_path]):
        module, error = load_module(path, tmp_path)
        assert error is None, error
        modules.append(module)
    return build_callgraph(modules)


class TestGraphConstruction:
    def test_cross_module_from_import_resolves(self, tmp_path):
        graph = _build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/util.py": ("import time\n"
                            "def helper():\n"
                            "    return time.time()\n"),
            "pkg/work.py": ("from .util import helper\n"
                            "def outer():\n"
                            "    return helper()\n"),
        })
        assert "pkg.util.helper" in graph.nodes
        assert "pkg.util.helper" in graph.edges["pkg.work.outer"]

    def test_self_method_dispatch_resolves(self, tmp_path):
        graph = _build(tmp_path, {
            "mod.py": ("class Router:\n"
                       "    def route(self):\n"
                       "        return self._walk()\n"
                       "    def _walk(self):\n"
                       "        return []\n"),
        })
        assert "mod.Router._walk" in graph.edges["mod.Router.route"]

    def test_annotated_parameter_dispatch_resolves(self, tmp_path):
        graph = _build(tmp_path, {
            "top.py": ("class Grid:\n"
                       "    def bump(self):\n"
                       "        return 1\n"),
            "use.py": ("from top import Grid\n"
                       "def poke(grid: Grid):\n"
                       "    return grid.bump()\n"),
        })
        assert "top.Grid.bump" in graph.edges["use.poke"]

    def test_constructor_call_links_init(self, tmp_path):
        graph = _build(tmp_path, {
            "mod.py": ("class Thing:\n"
                       "    def __init__(self):\n"
                       "        self.x = 1\n"
                       "def make():\n"
                       "    return Thing()\n"),
        })
        assert "mod.Thing.__init__" in graph.edges["mod.make"]

    def test_callable_argument_contributes_reference_edge(self, tmp_path):
        graph = _build(tmp_path, {
            "mod.py": ("def worker(x):\n"
                       "    return x\n"
                       "def dispatch(run, items):\n"
                       "    return run(worker, items)\n"),
        })
        assert "mod.worker" in graph.edges["mod.dispatch"]

    def test_nested_function_is_its_own_node(self, tmp_path):
        graph = _build(tmp_path, {
            "mod.py": ("import time\n"
                       "def outer():\n"
                       "    def inner():\n"
                       "        return time.time()\n"
                       "    return inner()\n"),
        })
        assert "mod.outer.inner" in graph.nodes
        assert "mod.outer.inner" in graph.edges["mod.outer"]


class TestEffectInference:
    def test_wallclock_propagates_two_hops(self, tmp_path):
        graph = _build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/util.py": ("import time\n"
                            "def leaf():\n"
                            "    return time.time()\n"),
            "pkg/mid.py": ("from .util import leaf\n"
                           "def step():\n"
                           "    return leaf()\n"),
            "pkg/top.py": ("from .mid import step\n"
                           "def trial():\n"
                           "    return step()\n"),
        })
        effects = analyze_effects(graph)
        assert READS_WALLCLOCK in effects.effects_of("pkg.top.trial")
        # Only the leaf carries the *direct* effect.
        assert READS_WALLCLOCK not in effects.direct["pkg.top.trial"]
        path, occurrence = effects.chain("pkg.top.trial",
                                         READS_WALLCLOCK)
        assert path == ["pkg.top.trial", "pkg.mid.step",
                        "pkg.util.leaf"]
        assert occurrence is not None
        assert "time.time" in occurrence.detail

    def test_suppressed_source_does_not_poison_callers(self, tmp_path):
        graph = _build(tmp_path, {
            "pkg/util.py": (
                "import time\n"
                "def leaf():\n"
                "    return time.time()  "
                "# repro: ignore[wallclock-time] -- calibration only\n"),
            "pkg/top.py": ("from pkg.util import leaf\n"
                           "def trial():\n"
                           "    return leaf()\n"),
        })
        effects = analyze_effects(graph)
        assert READS_WALLCLOCK not in effects.effects_of("pkg.top.trial")

    def test_cache_named_globals_are_exempt(self, tmp_path):
        graph = _build(tmp_path, {
            "mod.py": ("_CACHE = {}\n"
                       "_LOG = []\n"
                       "def memoized(k):\n"
                       "    _CACHE[k] = k\n"
                       "def leaky(k):\n"
                       "    _LOG.append(k)\n"),
        })
        effects = analyze_effects(graph)
        assert not effects.effects_of("mod.memoized")
        assert "mutates-module-global" in effects.effects_of("mod.leaky")


class TestRealPackage:
    @pytest.fixture(scope="class")
    def analysis(self):
        targets, root = default_target()
        modules = []
        for path in collect_files(targets):
            module, error = load_module(path, root)
            if module is not None:
                modules.append(module)
        graph = build_callgraph(modules)
        return graph, analyze_effects(graph)

    def test_router_invalidation_is_a_node(self, analysis):
        graph, _ = analysis
        assert "repro.topology.routing.DijkstraRouter.invalidate" \
            in graph.nodes

    def test_router_init_registers_fault_listener(self, analysis):
        _, effects = analysis
        for router in ("repro.topology.routing.DijkstraRouter",
                       "repro.topology.batch_routing.BatchGeoRouter"):
            assert REGISTERS_FAULT_LISTENER in effects.direct[
                f"{router}.__init__"], router

    def test_every_shipped_shard_worker_is_pure(self, analysis):
        # The acceptance invariant behind the shard-purity rule: the
        # workers the experiments actually dispatch stay transitively
        # free of wall-clock, unseeded-RNG, and global-mutation
        # effects (justified exceptions are waived at their source).
        _, effects = analysis
        workers = [
            "repro.experiments.sensitivity._sensitivity_cell",
            "repro.experiments.sensitivity._scaling_cell",
            "repro.experiments.signaling._sweep_point",
            "repro.experiments.chaos_availability._chaos_trial",
            "repro.scenarios.engine._scenario_trial",
        ]
        for worker in workers:
            assert worker in effects.summary, worker
            impure = effects.effects_of(worker) & SHARD_IMPURE_EFFECTS
            assert not impure, f"{worker}: {sorted(impure)}"

    def test_graph_covers_the_package(self, analysis):
        graph, _ = analysis
        assert len(graph.nodes) > 800
        resolved_edges = sum(len(v) for v in graph.edges.values())
        assert resolved_edges > 1000
