"""Tests for the UDSF comparison and the live-stack emulation."""

import pytest

from repro.fiveg.nf.udsf import (
    ConflictError,
    UDSF_ACCESS_LATENCY_S,
    Udsf,
    compare_state_retrieval,
)
from repro.orbits import starlink
from repro.sim import NeighborhoodEmulation


class TestUdsf:
    def test_put_get_roundtrip(self):
        store = Udsf("home-udsf")
        store.put("ue-1", b"state blob")
        record = store.get("ue-1")
        assert record is not None
        assert record.blob == b"state blob"
        assert record.version == 1

    def test_versions_increment(self):
        store = Udsf("home-udsf")
        store.put("k", b"v1")
        record = store.put("k", b"v2")
        assert record.version == 2

    def test_optimistic_concurrency(self):
        store = Udsf("home-udsf")
        store.put("k", b"v1")
        with pytest.raises(ConflictError):
            store.put("k", b"v2", expected_version=7)
        assert store.conflicts == 1
        store.put("k", b"v2", expected_version=1)

    def test_delete(self):
        store = Udsf("home-udsf")
        store.put("k", b"v")
        assert store.delete("k")
        assert not store.delete("k")
        assert store.get("k") is None

    def test_counters(self):
        store = Udsf("home-udsf")
        store.put("a", b"1")
        store.get("a")
        store.get("missing")
        assert store.writes == 1
        assert store.reads == 2
        assert store.record_count == 1

    def test_latency_includes_rtt(self):
        remote = Udsf("ground-udsf", location_rtt_s=0.060)
        local = Udsf("onboard-udsf", location_rtt_s=0.0)
        assert remote.read_latency_s() == pytest.approx(
            0.060 + UDSF_ACCESS_LATENCY_S)
        assert remote.read_latency_s() > local.read_latency_s()

    def test_footnote3_comparison(self):
        """Device-as-repository beats a ground UDSF by the whole RTT."""
        udsf_latency, device_latency = compare_state_retrieval(
            udsf_rtt_s=0.120, local_crypto_s=0.004)
        assert device_latency < udsf_latency / 10


class TestNeighborhoodEmulation:
    @pytest.fixture(scope="class")
    def stats(self):
        emulation = NeighborhoodEmulation(starlink(), num_ues=12,
                                          seed=5,
                                          session_interval_s=40.0)
        result = emulation.run(480.0)
        # Stash the emulation for per-test assertions.
        result.emulation = emulation
        return result

    def test_sessions_succeed(self, stats):
        assert stats.sessions_attempted > 0
        assert stats.success_ratio == 1.0
        assert stats.fallbacks == 0

    def test_measured_rate_matches_analytic(self, stats):
        """Emulation cross-validates the closed-form workload rates."""
        predicted = stats.emulation.predicted_session_rate_per_ue()
        assert stats.session_rate_per_ue == pytest.approx(predicted,
                                                          rel=0.35)

    def test_uplink_follows_establishment(self, stats):
        assert stats.uplink_packets == stats.sessions_established

    def test_releases_follow_sessions(self, stats):
        # Every session not still active at the horizon was released.
        assert 0 < stats.releases <= stats.sessions_established

    def test_some_handovers_happen(self, stats):
        """Active sessions crossing pass boundaries hand over locally."""
        assert stats.handovers >= 1

    def test_signaling_counted(self, stats):
        # 4 messages per local establishment, plus handover flows.
        assert stats.signaling_messages >= 4 * stats.sessions_established

    def test_no_lingering_state_for_idle_ues(self, stats):
        """After the run, released UEs left no satellite-side state."""
        emulation = stats.emulation
        lingering = sum(
            emulation.system.satellite(index).served_count
            for index in emulation.system._satellites)
        connected = sum(1 for ue in emulation.ues if ue.connected)
        assert lingering == connected

    def test_validation(self):
        with pytest.raises(ValueError):
            NeighborhoodEmulation(starlink(), num_ues=0)

    def test_usage_reports_flow_to_home(self, stats):
        """The S4.4 billing loop runs inside the emulation."""
        assert stats.usage_reports > 0
        assert stats.state_updates_pushed >= stats.usage_reports

    def test_replica_versions_advance_with_usage(self, stats):
        """Home-pushed updates bump the delegated state versions."""
        emulation = stats.emulation
        versions = [ue.replica.version for ue in emulation.ues
                    if ue.replica is not None]
        assert max(versions) > 1

    def test_billing_accumulates_across_sessions(self, stats):
        """Charged megabytes survive establishment cycles."""
        from repro.crypto import decrypt
        from repro.fiveg import SessionState
        emulation = stats.emulation
        home = emulation.system.home
        charged = []
        for ue in emulation.ues:
            key = home.ue_abe_key(ue)
            state = SessionState.from_bytes(
                decrypt(key, ue.replica.ciphertext))
            charged.append(state.billing.used_mb)
        assert max(charged) > 0.0
