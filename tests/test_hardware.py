"""Tests for the hardware CPU model and the queueing-latency model."""

import pytest

from repro.baselines import option3_session_mobility, option4_all_functions
from repro.fiveg.messages import (
    INITIAL_REGISTRATION_FLOW,
    Role,
    SESSION_ESTABLISHMENT_FLOW,
)
from repro.hardware import (
    RASPBERRY_PI_4,
    SATURATED_LATENCY_S,
    XEON_WORKSTATION,
    cpu_breakdown,
    mm1_wait_s,
    procedure_latency,
)


class TestCpuModel:
    def test_xeon_faster_than_rpi(self):
        for role in (Role.AMF, Role.AUSF, Role.UPF):
            assert (XEON_WORKSTATION.message_cost_s(role)
                    < RASPBERRY_PI_4.message_cost_s(role))

    def test_ausf_costs_more_than_upf(self):
        """Crypto-heavy NFs weigh more per message."""
        assert (RASPBERRY_PI_4.message_cost_s(Role.AUSF)
                > RASPBERRY_PI_4.message_cost_s(Role.UPF))

    def test_ue_messages_cost_nothing(self):
        assert RASPBERRY_PI_4.message_cost_s(Role.UE) == 0.0

    def test_procedure_cost_only_counts_onboard(self):
        option = option3_session_mobility()
        full = RASPBERRY_PI_4.procedure_cost_s(
            SESSION_ESTABLISHMENT_FLOW,
            option4_all_functions().on_board)
        partial = RASPBERRY_PI_4.procedure_cost_s(
            SESSION_ESTABLISHMENT_FLOW, option.on_board)
        assert 0 < partial < full

    def test_breakdown_scales_with_rate(self):
        option = option4_all_functions()
        low = cpu_breakdown(RASPBERRY_PI_4, 10,
                            INITIAL_REGISTRATION_FLOW, option.on_board)
        high = cpu_breakdown(RASPBERRY_PI_4, 100,
                             INITIAL_REGISTRATION_FLOW, option.on_board)
        assert high.total_percent > low.total_percent

    def test_breakdown_contains_expected_functions(self):
        """Fig. 7's legend: AMF, AUSF, UDM, PCF, Others, DB..."""
        option = option4_all_functions()
        breakdown = cpu_breakdown(RASPBERRY_PI_4, 50,
                                  INITIAL_REGISTRATION_FLOW,
                                  option.on_board)
        assert "AMF" in breakdown.by_function
        assert "AUSF" in breakdown.by_function
        assert "Others" in breakdown.by_function
        assert "DB" in breakdown.by_function

    def test_total_capped_at_100(self):
        option = option4_all_functions()
        breakdown = cpu_breakdown(RASPBERRY_PI_4, 100000,
                                  INITIAL_REGISTRATION_FLOW,
                                  option.on_board)
        assert breakdown.total_percent == 100.0
        assert breakdown.saturated

    def test_radio_only_breakdown_light(self):
        """Fig. 7 context: without core NFs the satellite idles."""
        from repro.baselines import option1_radio_only
        option = option1_radio_only()
        breakdown = cpu_breakdown(RASPBERRY_PI_4, 100,
                                  INITIAL_REGISTRATION_FLOW,
                                  option.on_board)
        full = cpu_breakdown(RASPBERRY_PI_4, 100,
                             INITIAL_REGISTRATION_FLOW,
                             option4_all_functions().on_board)
        assert breakdown.total_percent < full.total_percent / 2


class TestQueueing:
    def test_wait_zero_for_free_server(self):
        wait, saturated = mm1_wait_s(0.0, 0.001)
        assert wait == 0.0 and not saturated

    def test_wait_grows_with_load(self):
        w1, _ = mm1_wait_s(100, 0.001)
        w2, _ = mm1_wait_s(900, 0.001)
        assert w2 > w1

    def test_saturation(self):
        wait, saturated = mm1_wait_s(1001, 0.001)
        assert saturated
        assert wait == SATURATED_LATENCY_S

    def test_more_servers_more_capacity(self):
        _, sat1 = mm1_wait_s(1500, 0.001, servers=1)
        _, sat2 = mm1_wait_s(1500, 0.001, servers=4)
        assert sat1 and not sat2

    def test_zero_service_time(self):
        assert mm1_wait_s(100, 0.0) == (0.0, False)


class TestProcedureLatency:
    def test_latency_grows_with_rate(self):
        option = option4_all_functions()
        low = procedure_latency(RASPBERRY_PI_4, 10,
                                INITIAL_REGISTRATION_FLOW,
                                option.on_board)
        high = procedure_latency(RASPBERRY_PI_4, 200,
                                 INITIAL_REGISTRATION_FLOW,
                                 option.on_board)
        assert high.total_s > low.total_s

    def test_propagation_charged_for_crossings(self):
        option = option3_session_mobility()
        near = procedure_latency(RASPBERRY_PI_4, 10,
                                 SESSION_ESTABLISHMENT_FLOW,
                                 option.on_board, ground_rtt_s=0.0)
        far = procedure_latency(RASPBERRY_PI_4, 10,
                                SESSION_ESTABLISHMENT_FLOW,
                                option.on_board, ground_rtt_s=0.5)
        assert far.propagation_s > near.propagation_s

    def test_all_onboard_no_propagation(self):
        option = option4_all_functions()
        estimate = procedure_latency(RASPBERRY_PI_4, 10,
                                     SESSION_ESTABLISHMENT_FLOW,
                                     option.on_board, ground_rtt_s=0.5)
        assert estimate.propagation_s == 0.0

    def test_crypto_overhead_added(self):
        option = option3_session_mobility()
        plain = procedure_latency(RASPBERRY_PI_4, 10,
                                  SESSION_ESTABLISHMENT_FLOW,
                                  option.on_board)
        crypto = procedure_latency(RASPBERRY_PI_4, 10,
                                   SESSION_ESTABLISHMENT_FLOW,
                                   option.on_board,
                                   crypto_overhead_s=0.004)
        assert crypto.total_s == pytest.approx(plain.total_s + 0.004)

    def test_xeon_lower_latency(self):
        option = option4_all_functions()
        rpi = procedure_latency(RASPBERRY_PI_4, 100,
                                INITIAL_REGISTRATION_FLOW,
                                option.on_board)
        xeon = procedure_latency(XEON_WORKSTATION, 100,
                                 INITIAL_REGISTRATION_FLOW,
                                 option.on_board)
        assert xeon.total_s < rpi.total_s
