"""Per-rule tests of the invariant analyzer against known-bad fixtures.

Each rule family has a fixture file under ``tests/fixtures/lint/``
whose tree mirrors ``src/repro/`` so path-scoped rules apply exactly
as they do on the real package.  The acceptance cases from ISSUE 4 --
an unseeded ``np.random.poisson``, a ``hash()``-derived seed, and a
per-UE ``self._sessions`` dict on a SpaceCore NF -- are each pinned
to their rule here.
"""

import ast
from pathlib import Path

import pytest

from repro.analysis import analyze, get_rules
from repro.analysis.core import ModuleInfo, ProjectContext

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "lint"


def findings_for(filename):
    """All findings for one fixture file, analyzed under fixture root."""
    result = analyze([FIXTURE_ROOT / "src" / "repro" / filename],
                     root=FIXTURE_ROOT)
    return result.findings


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


def messages(findings):
    return " | ".join(f.message for f in findings)


class TestDeterminismRules:
    def setup_method(self):
        self.findings = findings_for("experiments/bad_determinism.py")

    def test_unseeded_numpy_poisson_is_caught(self):
        hits = by_rule(self.findings, "unseeded-rng")
        assert any("numpy.random.poisson" in f.message for f in hits)

    def test_unseeded_stdlib_draw_is_caught(self):
        hits = by_rule(self.findings, "unseeded-rng")
        assert any("random.choice" in f.message for f in hits)

    def test_bare_default_rng_is_caught(self):
        hits = by_rule(self.findings, "unseeded-rng")
        assert any("without a seed" in f.message for f in hits)

    def test_hash_derived_seed_is_caught(self):
        hits = by_rule(self.findings, "hash-seed")
        assert hits, messages(self.findings)

    def test_wall_clock_in_experiments_is_caught(self):
        hits = by_rule(self.findings, "wallclock-time")
        assert any("time.time" in f.message for f in hits)

    def test_perf_counter_is_caught(self):
        # ISSUE 5: the SBI mesh fed perf_counter() readings into its
        # latency accounting; monotonic timers are now banned in scope.
        hits = by_rule(self.findings, "wallclock-time")
        assert any("time.perf_counter" in f.message for f in hits)

    def test_wallclock_scope_covers_instrumented_layers(self):
        rule = next(r for r in get_rules(["wallclock-time"]))
        assert rule.applies_to("src/repro/fiveg/sbi.py")
        assert rule.applies_to("src/repro/obs/metrics.py")
        assert rule.applies_to("src/repro/core/robustness.py")
        assert rule.applies_to("src/repro/faults/chaos.py")
        # Benchmark timing and the CLI front end stay legal.
        assert not rule.applies_to("src/repro/cli.py")
        assert not rule.applies_to("benchmarks/test_perf_snapshot.py")

    def test_seeded_draws_are_not_flagged(self):
        # The negative-control function sits at the bottom of the
        # fixture; nothing may be flagged past its first line.
        tree = ast.parse(
            (FIXTURE_ROOT / "src/repro/experiments/"
             "bad_determinism.py").read_text())
        control_line = next(
            n.lineno for n in tree.body
            if isinstance(n, ast.FunctionDef)
            and n.name == "seeded_is_fine")
        assert not [f for f in self.findings if f.line > control_line]


class TestStatelessnessRule:
    def setup_method(self):
        self.findings = findings_for("fiveg/nf/bad_stateful.py")

    def test_per_ue_sessions_dict_is_caught(self):
        hits = by_rule(self.findings, "stateful-nf")
        assert any("_sessions" in f.message for f in hits)

    def test_method_body_assignment_is_caught(self):
        hits = by_rule(self.findings, "stateful-nf")
        assert any("_ue_contexts" in f.message for f in hits)

    def test_non_per_ue_table_is_not_flagged(self):
        assert not any("_link_budgets" in f.message
                       for f in self.findings)

    def test_stateful_baseline_allowlist(self):
        # Amf models the stateful architecture; its tables are legal.
        assert not any("Amf" in f.message for f in self.findings)

    def test_inline_suppression_is_honored(self):
        assert not any("SuppressedProxy" in f.message
                       for f in self.findings)

    def test_out_of_scope_module_is_not_checked(self):
        # The same class outside fiveg/nf/ and core/ is out of scope.
        rule = get_rules(["stateful-nf"])[0]
        assert not rule.applies_to("src/repro/geo/population.py")
        assert rule.applies_to("src/repro/fiveg/nf/amf.py")
        assert rule.applies_to("src/repro/core/spacecore.py")


class TestCacheKeyRules:
    def setup_method(self):
        self.findings = findings_for("runtime/bad_cachekeys.py")

    def test_list_parameter_is_caught(self):
        hits = by_rule(self.findings, "cache-key-unhashable")
        assert any("mean_hops" in f.message for f in hits)

    def test_mutable_default_is_caught(self):
        hits = by_rule(self.findings, "cache-key-unhashable")
        assert any("hops_with_default" in f.message for f in hits)

    def test_mutable_global_read_is_caught(self):
        hits = by_rule(self.findings, "cache-mutable-global")
        assert any("_TUNING" in f.message for f in hits)

    def test_immutable_global_read_is_fine(self):
        assert not any("_LIMIT" in f.message for f in self.findings)

    def test_sound_cached_function_is_not_flagged(self):
        assert not any("sound_cached" in f.message
                       for f in self.findings)


class TestFrozenMutationRule:
    def setup_method(self):
        self.findings = findings_for("sim/bad_frozen.py")

    def test_annotated_parameter_mutation_is_caught(self):
        hits = by_rule(self.findings, "frozen-mutation")
        assert any("snap.t" in f.message for f in hits)

    def test_constructor_inferred_augassign_is_caught(self):
        hits = by_rule(self.findings, "frozen-mutation")
        assert any("snap.epoch" in f.message for f in hits)

    def test_setattr_escape_hatch_is_caught(self):
        hits = by_rule(self.findings, "frozen-mutation")
        assert any("setattr" in f.message for f in hits)

    def test_own_post_init_is_exempt(self):
        assert not any(f.line < 19 for f in
                       by_rule(self.findings, "frozen-mutation"))


class TestImplicitOptionalRule:
    def setup_method(self):
        self.findings = findings_for("orbits/bad_typing.py")

    def test_positional_and_kwonly_params_are_caught(self):
        hits = by_rule(self.findings, "implicit-optional")
        names = messages(hits)
        assert "count" in names
        assert "spacing_km" in names
        assert "label" in names

    def test_optional_union_and_unannotated_are_fine(self):
        assert not any(f.message.startswith("fine()")
                       for f in self.findings)


class TestFrameworkPlumbing:
    def test_rules_are_registered(self):
        ids = {rule.id for rule in get_rules()}
        assert {"unseeded-rng", "hash-seed", "wallclock-time",
                "stateful-nf", "cache-key-unhashable",
                "cache-mutable-global", "frozen-mutation",
                "implicit-optional"} <= ids

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            get_rules(["no-such-rule"])

    def test_fingerprints_are_stable_across_line_drift(self, tmp_path):
        bad = "def f(count: int = None):\n    return count\n"
        first = tmp_path / "mod.py"
        first.write_text(bad)
        drifted = tmp_path / "mod2.py"
        drifted.write_text(bad)
        one = analyze([first], root=tmp_path).findings
        # Same content lower in the file: fingerprint must not move.
        first.write_text("\n\n# pushed down\n" + bad)
        two = analyze([first], root=tmp_path).findings
        assert [f.fingerprint for f in one] == \
            [f.fingerprint for f in two]
        assert one[0].line != two[0].line

    def test_parse_error_becomes_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        result = analyze([broken], root=tmp_path)
        assert [f.rule for f in result.findings] == ["parse-error"]

    def test_project_context_collects_frozen_classes(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass(frozen=True)\n"
                  "class Snap:\n    t: float\n")
        module = ModuleInfo(Path("m.py"), "m.py", source,
                            ast.parse(source))
        context = ProjectContext(Path("."), [module])
        assert "Snap" in context.frozen_classes
        # Documented immutable-by-contract snapshot types ride along.
        assert "ConstellationSnapshot" in context.frozen_classes


class TestShardPurityRule:
    def setup_method(self):
        self.findings = findings_for("experiments/bad_shard_purity.py")
        self.hits = by_rule(self.findings, "shard-purity")

    def test_wallclock_two_hops_deep_is_caught(self):
        # Acceptance fixture: time.time() sits two call-hops below
        # the dispatched worker.
        timed = [f for f in self.hits if "_timed_trial" in f.message]
        assert timed, messages(self.findings)
        assert "wall clock" in timed[0].message
        # The message names the full call chain down to the source.
        assert "_timed_step" in timed[0].message
        assert "_elapsed_s" in timed[0].message
        assert "time.time" in timed[0].message

    def test_unseeded_draw_in_worker_is_caught(self):
        assert any("_sampling_trial" in f.message
                   and "unseeded" in f.message for f in self.hits)

    def test_global_mutation_in_worker_is_caught(self):
        assert any("_recording_trial" in f.message
                   and "module global" in f.message for f in self.hits)

    def test_pure_worker_is_not_flagged(self):
        assert not any("_pure_trial" in f.message for f in self.hits)

    def test_findings_sit_at_the_dispatch_site(self):
        assert all("run_sharded" in
                   "".join(open("tests/fixtures/lint/src/repro/"
                                "experiments/bad_shard_purity.py")
                           .readlines()[f.line - 1])
                   for f in self.hits)


class TestStaleCacheRule:
    def setup_method(self):
        self.findings = findings_for("topology/bad_stale_cache.py")
        self.hits = by_rule(self.findings, "stale-cache")

    def test_pre_pr8_router_shape_is_caught(self):
        # Acceptance fixture: fault_epoch-keyed LRU with no
        # add_fault_listener registration anywhere in the class.
        assert any("StaleRouter._graph_cache" in f.message
                   for f in self.hits), messages(self.findings)

    def test_memoized_topology_param_is_caught(self):
        assert any("mean_path_length" in f.message
                   and "topology" in f.message for f in self.hits)

    def test_listener_registering_router_is_not_flagged(self):
        assert not any("ListenerRouter" in f.message for f in self.hits)

    def test_fault_state_free_store_is_not_flagged(self):
        assert not any("EpochFreeStore" in f.message for f in self.hits)


class TestUnorderedIterationRule:
    def setup_method(self):
        self.findings = findings_for("obs/bad_unordered.py")
        self.hits = by_rule(self.findings, "unordered-iteration")

    def test_set_iteration_feeding_json_is_caught(self):
        assert any("export_failed" in f.message for f in self.hits), \
            messages(self.findings)

    def test_sink_one_hop_below_is_caught(self):
        assert any("snapshot_names" in f.message for f in self.hits)

    def test_sorted_iteration_is_not_flagged(self):
        assert not any("sorted_export" in f.message for f in self.hits)

    def test_iteration_without_sink_is_not_flagged(self):
        assert not any("count_only" in f.message for f in self.hits)

    def test_severity_is_warning(self):
        assert all(f.severity == "warning" for f in self.hits)


class TestFloatReductionOrderRule:
    def setup_method(self):
        self.findings = findings_for("obs/bad_float_reduction.py")
        self.hits = by_rule(self.findings, "float-reduction-order")

    def test_sum_over_set_is_caught(self):
        assert any("total_latency" in f.message for f in self.hits), \
            messages(self.findings)

    def test_sum_over_dict_values_is_caught(self):
        assert any("merge_counters" in f.message for f in self.hits)

    def test_generator_over_set_is_caught(self):
        assert any("weighted_total" in f.message for f in self.hits)

    def test_loop_accumulation_over_set_is_caught(self):
        assert any("accumulate" in f.message for f in self.hits)

    def test_sorted_and_list_reductions_are_not_flagged(self):
        assert not any("sorted_total" in f.message for f in self.hits)
        assert not any("list_total" in f.message for f in self.hits)


class TestListenerLeakRule:
    def setup_method(self):
        self.findings = findings_for("topology/bad_listener_leak.py")
        self.hits = by_rule(self.findings, "listener-leak")

    def test_strong_append_into_listener_list_is_caught(self):
        assert any("_fault_listeners" in f.message for f in self.hits), \
            messages(self.findings)

    def test_strong_add_into_listener_set_is_caught(self):
        assert any("subscribe" in f.message for f in self.hits)

    def test_weakref_pattern_is_not_flagged(self):
        leaky = [f for f in self.hits if "add_direct" in f.message
                 or ("add_fault_listener" in f.message
                     and f.line > 30)]
        assert not leaky

    def test_non_listener_collection_is_not_flagged(self):
        assert not any("record" in f.message for f in self.hits)


class TestBareSuppressionRule:
    def setup_method(self):
        self.findings = findings_for("runtime/bad_suppressions.py")
        self.hits = by_rule(self.findings, "bare-suppression")

    def test_bracketed_without_why_is_caught(self):
        assert any(f.line == 11 for f in self.hits), \
            messages(self.findings)

    def test_bare_blanket_ignore_is_caught(self):
        assert any("silences every rule" in f.message
                   for f in self.hits)

    def test_rule_is_not_self_suppressible(self):
        # Line 21 tries to suppress bare-suppression itself.
        assert any(f.line == 21 for f in self.hits)

    def test_justified_waiver_is_not_flagged(self):
        assert not any(f.line == 26 for f in self.hits)

    def test_the_waived_findings_still_count_as_suppressed(self):
        result = analyze(
            [FIXTURE_ROOT / "src" / "repro" / "runtime"
             / "bad_suppressions.py"], root=FIXTURE_ROOT)
        assert result.suppressed >= 3
