"""Tests for procedure-level recovery under churn.

Covers the retry discipline of :class:`ResilientSpaceCore`, the
edge cases of ``SpaceCoreSystem.recover_from_satellite_failure``,
replica installs when the *source* satellite of a handover is dead,
and the packet layer's bounded retransmit/reroute degradation.
"""

import math

import pytest

from repro.constants import (
    NAS_MAX_ATTEMPTS,
    NAS_RETRY_BACKOFF_BASE_S,
    NAS_RETRY_BACKOFF_CAP_S,
    NAS_T3517_S,
    RLF_DETECTION_S,
)
from repro.core import ResilientSpaceCore, SpaceCoreSystem
from repro.faults import (
    ChaosController,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)
from repro.orbits import IdealPropagator, starlink
from repro.sim import PacketSimulation, Simulator
from repro.topology import GridTopology

BEIJING_DEG = (39.9, 116.4)


@pytest.fixture()
def system():
    return SpaceCoreSystem(starlink())


@pytest.fixture()
def attached(system):
    ue = system.provision_ue(*BEIJING_DEG)
    system.register(ue)
    system.establish_session(ue, t=0.0)
    return system, ue


def _coverage(system, ue, t=0.0):
    """Every satellite index currently covering the UE."""
    from repro.orbits.snapshot import snapshot_for
    snap = snapshot_for(system.propagator, t)
    return [int(s) for s in snap.visible_satellites(ue.lat, ue.lon)]


class TestRecoverFromSatelliteFailure:
    def test_skips_to_later_live_candidate(self, attached):
        system, ue = attached
        candidates = _coverage(system, ue)
        assert len(candidates) >= 3
        # Kill the serving satellite *and* the next-nearest survivors;
        # recovery must walk the candidate list to a live one.
        for sat in candidates[:-1]:
            system.topology.fail_satellite(sat)
        new_sat = system.recover_from_satellite_failure(ue, t=0.0)
        assert new_sat == candidates[-1]
        assert system.satellite(new_sat).is_serving(str(ue.supi))

    def test_none_when_all_coverage_dead(self, attached):
        system, ue = attached
        for sat in _coverage(system, ue):
            system.topology.fail_satellite(sat)
        assert system.recover_from_satellite_failure(ue, t=0.0) is None
        assert not ue.connected

    def test_none_without_replica(self, system):
        # Never registered: no replica to piggyback, every candidate
        # raises FallbackRequired, and the walk ends empty-handed.
        ue = system.provision_ue(*BEIJING_DEG)
        assert system.recover_from_satellite_failure(ue, t=0.0) is None

    def test_skips_revoked_satellite(self, attached):
        system, ue = attached
        candidates = _coverage(system, ue)
        system.topology.fail_satellite(candidates[0])
        system.home.revoke_satellite(f"sat-{candidates[1]}")
        new_sat = system.recover_from_satellite_failure(ue, t=0.0)
        assert new_sat is not None
        assert new_sat not in (candidates[0], candidates[1])

    def test_reattach_needs_no_state_from_corpse(self, attached):
        system, ue = attached
        victim = system._ue_serving_sat[str(ue.supi)]
        served_before = system.satellite(victim).served_count
        system.topology.fail_satellite(victim)
        new_sat = system.recover_from_satellite_failure(ue, t=0.0)
        assert new_sat != victim
        # The corpse keeps its stale entry; the replica alone rebuilt
        # the session on the survivor.
        assert system.satellite(victim).served_count == served_before
        assert system.send_uplink(ue, 800, 0.0)


class TestHandoverFromDeadSource:
    def test_replica_install_succeeds_with_dead_from_sat(self, attached):
        system, ue = attached
        old_index = system._ue_serving_sat[str(ue.supi)]
        old_sat = system.satellite(old_index)
        system.topology.fail_satellite(old_index)
        target = system.satellite(_coverage(system, ue)[1])
        served = target.handover_in(ue, old_sat, now=1.0)
        # The replica is the state: nothing was pulled from the corpse,
        # and its ephemeral entry was still released.
        assert served.supi == str(ue.supi)
        assert target.is_serving(str(ue.supi))
        assert not old_sat.is_serving(str(ue.supi))

    def test_system_handover_picks_live_target(self, attached):
        system, ue = attached
        geometric = system.serving_satellite_of(ue, t=0.0)
        system.topology.fail_satellite(geometric)
        new_sat = system.handover(ue, t=0.0)
        if new_sat is not None:
            assert system.topology.is_up(new_sat)
            assert new_sat != geometric


class TestResilientRetries:
    def test_clean_register_and_establish(self, system):
        resilient = ResilientSpaceCore(system)
        ue = system.provision_ue(*BEIJING_DEG)
        reg = resilient.register(ue, t=0.0)
        est = resilient.establish_session(ue, t=0.0)
        for outcome in (reg, est):
            assert outcome.completed and not outcome.abandoned
            assert outcome.attempts == 1
            assert outcome.total_delay_s == 0.0
        assert resilient.session_alive(ue)

    def test_recovery_outcome_recorded(self, attached):
        system, ue = attached
        resilient = ResilientSpaceCore(system)
        system.topology.fail_satellite(system._ue_serving_sat[str(ue.supi)])
        outcome = resilient.recover(ue, t=5.0)
        assert outcome.procedure == "recovery"
        assert outcome.completed and outcome.attempts == 1
        assert resilient.session_alive(ue)

    def test_abandonment_accumulates_timer_and_backoff(self, attached):
        system, ue = attached
        # Kill everything that covers the UE at any point in the retry
        # window (the constellation keeps moving between attempts).
        doomed = set()
        t = 0.0
        while t <= 150.0:
            doomed.update(_coverage(system, ue, t))
            t += 5.0
        for sat in doomed:
            system.topology.fail_satellite(sat)
        resilient = ResilientSpaceCore(system)
        outcome = resilient.recover(ue, t=0.0)
        assert outcome.abandoned and not outcome.completed
        assert outcome.attempts == NAS_MAX_ATTEMPTS
        expected = sum(
            NAS_T3517_S + min(NAS_RETRY_BACKOFF_BASE_S * 2.0 ** i,
                              NAS_RETRY_BACKOFF_CAP_S)
            for i in range(NAS_MAX_ATTEMPTS))
        assert outcome.total_delay_s == pytest.approx(expected)
        assert str(ue.supi) in resilient.lost_sessions
        assert resilient.abandoned_count() == 1

    def test_chaos_fault_triggers_scheduled_recovery(self, attached):
        system, ue = attached
        victim = system._ue_serving_sat[str(ue.supi)]
        sim = Simulator()
        controller = ChaosController(sim, system.topology)
        resilient = ResilientSpaceCore(system)
        resilient.track(ue)
        resilient.attach_chaos(controller)
        controller.arm(FaultSchedule().add(
            FaultEvent(10.0, FaultKind.SAT_FAIL, (victim,))))
        sim.run()
        assert sim.now == pytest.approx(10.0 + RLF_DETECTION_S)
        assert len(resilient.outcomes) == 1
        outcome = resilient.outcomes[0]
        assert outcome.procedure == "recovery"
        assert outcome.started_at == pytest.approx(10.0 + RLF_DETECTION_S)
        assert outcome.completed
        assert resilient.session_alive(ue)

    def test_outcome_keys_reproducible(self, attached):
        system, ue = attached
        resilient = ResilientSpaceCore(system)
        system.topology.fail_satellite(system._ue_serving_sat[str(ue.supi)])
        resilient.recover(ue, t=3.0)
        keys = resilient.outcome_keys()
        assert keys == [o.key() for o in resilient.outcomes]
        assert all(isinstance(k, tuple) for k in keys)

    def test_max_attempts_validated(self, system):
        with pytest.raises(ValueError):
            ResilientSpaceCore(system, max_attempts=0)


class _AlwaysLossy:
    """Channel stub: every frame on every link is lost."""

    def frame_lost(self, a, b):
        return True


class _NeverLossy:
    def frame_lost(self, a, b):
        return False


class TestPacketDegradation:
    DEST = (math.radians(40.7), math.radians(-74.0))  # New York

    @pytest.fixture()
    def topology(self):
        return GridTopology(IdealPropagator(starlink()), [])

    def _src(self, sim):
        from repro.orbits import serving_satellite
        return serving_satellite(sim.topology.propagator, 0.0,
                                 math.radians(39.9),
                                 math.radians(116.4))

    def test_reroute_survives_mid_flight_link_failure(self, topology):
        sim = PacketSimulation(topology, max_reroutes=2)
        src = self._src(sim)
        path = sim.router.route(src, *self.DEST, 0.0).path
        record = sim.send(src, *self.DEST)
        topology.fail_isl(path[2], path[3])
        sim.run()
        assert record.delivered_at_s is not None
        assert record.reroutes >= 1

    def test_default_caps_preserve_drop_semantics(self, topology):
        sim = PacketSimulation(topology)
        src = self._src(sim)
        path = sim.router.route(src, *self.DEST, 0.0).path
        record = sim.send(src, *self.DEST)
        topology.fail_isl(path[2], path[3])
        sim.run()
        assert record.dropped and record.reroutes == 0

    def test_hopeless_link_drops_after_retransmit_cap(self, topology):
        sim = PacketSimulation(topology, channel_model=_AlwaysLossy(),
                               max_retransmits=3)
        src = self._src(sim)
        record = sim.send(src, *self.DEST)
        sim.run()
        assert record.dropped
        assert record.retransmits == 3

    def test_clean_channel_adds_no_retries(self, topology):
        sim = PacketSimulation(topology, channel_model=_NeverLossy(),
                               max_reroutes=2)
        src = self._src(sim)
        record = sim.send(src, *self.DEST)
        sim.run()
        assert record.delivered_at_s is not None
        assert record.retransmits == 0 and record.reroutes == 0

    def test_bursty_channel_outcome_reproducible(self, topology):
        from repro.faults import LinkChannelModel

        def run_once():
            sim = PacketSimulation(
                topology, channel_model=LinkChannelModel(
                    seed=7, p_good_to_bad=0.2, p_bad_to_good=0.3),
                max_retransmits=4, max_reroutes=2)
            src = self._src(sim)
            records = [sim.send(src, *self.DEST, at_s=0.002 * i)
                       for i in range(20)]
            sim.run()
            return [(r.dropped, r.retransmits, r.reroutes, r.hops)
                    for r in records]

        assert run_once() == run_once()

    def test_retry_caps_validated(self, topology):
        with pytest.raises(ValueError):
            PacketSimulation(topology, max_retransmits=-1)
        with pytest.raises(ValueError):
            PacketSimulation(topology, retransmit_timeout_s=0.0)
