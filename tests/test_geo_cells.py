"""Tests for the geospatial cell grid (S4.1 Step 1, Table 3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import GeospatialCellGrid
from repro.orbits import iridium, kuiper, oneweb, starlink


@pytest.fixture(scope="module")
def grid():
    return GeospatialCellGrid(starlink())


class TestGridShape:
    def test_dimensions_match_constellation(self, grid):
        assert grid.num_columns == 72
        assert grid.num_rows == 22
        assert grid.num_cells == 1584

    def test_cell_index_roundtrip(self, grid):
        for cell in [(0, 0), (71, 21), (35, 11)]:
            assert grid.cell_from_index(grid.cell_index(cell)) == cell

    def test_cells_enumerates_all(self, grid):
        cells = list(grid.cells())
        assert len(cells) == grid.num_cells
        assert len(set(cells)) == grid.num_cells

    def test_neighbors_wrap_torus(self, grid):
        nbrs = grid.neighbors((0, 0))
        assert (71, 0) in nbrs
        assert (1, 0) in nbrs
        assert (0, 21) in nbrs
        assert (0, 1) in nbrs


class TestPointAssignment:
    def test_assignment_is_deterministic(self, grid):
        a = grid.cell_of_degrees(39.9, 116.4)
        b = grid.cell_of_degrees(39.9, 116.4)
        assert a == b

    def test_nearby_points_often_share_cells(self, grid):
        # Cells are hundreds of km wide: points 10 km apart are almost
        # always in the same cell.
        same = 0
        for k in range(50):
            lat = -50 + 2 * k
            a = grid.cell_of_degrees(lat, 30.0)
            b = grid.cell_of_degrees(lat + 0.05, 30.0)
            same += a == b
        assert same >= 45

    def test_antipodal_points_differ(self, grid):
        assert (grid.cell_of_degrees(40.0, 116.0)
                != grid.cell_of_degrees(-40.0, -64.0))

    @given(
        st.floats(min_value=-math.radians(80), max_value=math.radians(80)),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    @settings(max_examples=150)
    def test_every_point_gets_a_valid_cell(self, lat, lon):
        grid = GeospatialCellGrid(starlink())
        col, row = grid.cell_of(lat, lon)
        assert 0 <= col < grid.num_columns
        assert 0 <= row < grid.num_rows

    @given(
        st.floats(min_value=-math.radians(85), max_value=math.radians(85)),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    @settings(max_examples=100)
    def test_star_constellation_assignment_valid(self, lat, lon):
        grid = GeospatialCellGrid(oneweb())
        col, row = grid.cell_of(lat, lon)
        assert 0 <= col < grid.num_columns
        assert 0 <= row < grid.num_rows

    def test_cell_center_maps_back_to_its_cell(self, grid):
        """Ascending-range grid nodes are the seeds of their own cells.

        Rows whose gamma falls on the descending half of the orbit are
        aliases: their ground projections canonically belong to an
        ascending-row cell, so only ascending rows are checked.
        """
        ascending_rows = [r for r in range(grid.num_rows)
                          if (r * grid.delta_gamma <= math.pi / 2 - 0.05
                              or r * grid.delta_gamma
                              >= 3 * math.pi / 2 + 0.05)]
        cells = [(c, r) for c in range(0, 72, 9) for r in ascending_rows]
        hits = sum(grid.cell_of(*grid.cell_center(cell)) == cell
                   for cell in cells)
        assert hits >= int(0.9 * len(cells))

    def test_static_point_cell_never_changes(self, grid):
        """The defining property: cells are frozen at t=0 (S4.1)."""
        cell = grid.cell_of_degrees(48.8, 2.3)
        for _ in range(10):
            assert grid.cell_of_degrees(48.8, 2.3) == cell


class TestCellAreas:
    def test_analytic_area_positive(self, grid):
        assert grid.analytic_cell_area_km2((0, 0)) > 0

    def test_analytic_area_peaks_at_equator_row(self, grid):
        areas = [grid.analytic_cell_area_km2((0, r)) for r in range(22)]
        assert areas[0] == max(areas)

    @pytest.mark.parametrize("factory,lo,hi", [
        (starlink, 1e5, 1e6),
        (kuiper, 1e5, 1e6),
        (oneweb, 5e5, 5e6),
    ])
    def test_table3_average_cell_size_band(self, factory, lo, hi):
        """Table 3: average cells of 1e5-1e6 km^2 class."""
        stats = GeospatialCellGrid(factory()).cell_size_statistics(
            samples=8000)
        assert lo < stats.avg_km2 < hi

    def test_table3_spread(self, grid):
        """Table 3 shows >10x spread between min and max cell size."""
        stats = grid.cell_size_statistics(samples=15000)
        assert stats.max_km2 / stats.min_km2 > 5.0

    def test_statistics_deterministic_for_seed(self, grid):
        a = grid.cell_size_statistics(samples=2000, seed=3)
        b = grid.cell_size_statistics(samples=2000, seed=3)
        assert a == b

    def test_ascending_half_of_cells_nonempty(self, grid):
        """Canonical (ascending-branch) tiling uses about half the torus.

        For a full-spread Walker constellation the descending rows are
        aliases, so the non-empty cell count sits between 50% and 70%
        of the grid (boundary rows catch both branches).
        """
        stats = grid.cell_size_statistics(samples=30000)
        assert 0.45 * grid.num_cells < stats.num_cells < 0.75 * grid.num_cells


class TestCrossingRate:
    def test_pedestrian_crossings_are_rare(self, grid):
        """A walking UE crosses cells less than once per day."""
        rate = grid.crossing_rate_per_user(speed_km_s=1.5e-3)  # 1.5 m/s
        assert rate < 1.0 / 86400 * 10  # well under 10/day

    def test_faster_ue_crosses_more(self, grid):
        assert (grid.crossing_rate_per_user(0.03)
                > grid.crossing_rate_per_user(0.001))

    def test_iridium_cells_smaller_higher_rate(self):
        rate_small = GeospatialCellGrid(iridium()).crossing_rate_per_user(0.01)
        rate_big = GeospatialCellGrid(starlink()).crossing_rate_per_user(0.01)
        # Iridium has 66 huge cells vs Starlink's 1584 -> lower rate.
        assert rate_small < rate_big
