"""Tests for the signaling wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fiveg.messages import (
    LEGACY_FLOWS,
    ProcedureKind,
    Role,
    SPACECORE_FLOWS,
)
from repro.fiveg.wire import (
    MESSAGE_TYPE_IDS,
    SignalingFrame,
    WireError,
    decode_frame,
    encode_flow,
    encode_frame,
    frame_from_template,
)


class TestRegistry:
    def test_every_catalog_message_has_an_id(self):
        for flows in (LEGACY_FLOWS, SPACECORE_FLOWS):
            for flow in flows.values():
                for template in flow:
                    assert template.name in MESSAGE_TYPE_IDS

    def test_ids_are_unique(self):
        ids = list(MESSAGE_TYPE_IDS.values())
        assert len(ids) == len(set(ids))

    def test_registry_is_deterministic(self):
        """Both link endpoints derive the same mapping independently."""
        from repro.fiveg.wire import _build_type_registry
        again, _ = _build_type_registry()
        assert again == MESSAGE_TYPE_IDS


class TestEncodeDecode:
    def make_frame(self, payload=b"hello"):
        return SignalingFrame(
            procedure=ProcedureKind.SESSION_ESTABLISHMENT,
            message_name="session-request",
            src=Role.RAN, dst=Role.AMF, payload=payload)

    def test_roundtrip(self):
        frame = self.make_frame()
        assert decode_frame(encode_frame(frame)) == frame

    @given(st.binary(max_size=2000))
    @settings(max_examples=50)
    def test_roundtrip_any_payload(self, payload):
        frame = self.make_frame(payload)
        assert decode_frame(encode_frame(frame)) == frame

    def test_unknown_message_name_rejected(self):
        frame = SignalingFrame(ProcedureKind.HANDOVER, "made-up-msg",
                               Role.UE, Role.RAN, b"")
        with pytest.raises(WireError):
            encode_frame(frame)

    def test_short_frame_rejected(self):
        with pytest.raises(WireError):
            decode_frame(b"\x01\x00")

    def test_bad_version_rejected(self):
        wire = bytearray(encode_frame(self.make_frame()))
        wire[0] = 99
        with pytest.raises(WireError):
            decode_frame(bytes(wire))

    def test_length_mismatch_rejected(self):
        wire = bytearray(encode_frame(self.make_frame()))
        wire[6:8] = (999).to_bytes(2, "big")
        with pytest.raises(WireError):
            decode_frame(bytes(wire))

    def test_bad_role_rejected(self):
        wire = bytearray(encode_frame(self.make_frame()))
        wire[2] = 250
        with pytest.raises(WireError):
            decode_frame(bytes(wire))


class TestFlowEncoding:
    def test_template_frames_match_catalog_sizes(self):
        kind = ProcedureKind.SESSION_ESTABLISHMENT
        for template in LEGACY_FLOWS[kind]:
            frame = frame_from_template(template, kind)
            assert frame.size_bytes == max(8, template.size_bytes)

    def test_encode_flow_whole_procedure(self):
        kind = ProcedureKind.INITIAL_REGISTRATION
        wires = encode_flow(kind, LEGACY_FLOWS[kind])
        assert len(wires) == len(LEGACY_FLOWS[kind])
        for wire, template in zip(wires, LEGACY_FLOWS[kind]):
            decoded = decode_frame(wire)
            assert decoded.message_name == template.name
            assert decoded.src == template.src

    def test_spacecore_flow_encodes(self):
        kind = ProcedureKind.SESSION_ESTABLISHMENT
        wires = encode_flow(kind, SPACECORE_FLOWS[kind])
        names = [decode_frame(w).message_name for w in wires]
        assert "rrc-setup-complete-with-replica" in names
