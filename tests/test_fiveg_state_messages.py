"""Tests for the S1-S5 state model and the Fig. 9/16 message catalog."""


from repro.fiveg import (
    BillingState,
    HANDOVER_FLOW,
    INITIAL_REGISTRATION_FLOW,
    LEGACY_FLOWS,
    MOBILITY_REGISTRATION_FLOW,
    ProcedureKind,
    Role,
    SESSION_ESTABLISHMENT_FLOW,
    SPACECORE_FLOWS,
    SessionState,
    StateCategory,
    flow_size_bytes,
    security_carrying_messages,
)
from repro.fiveg.state import (
    IdentifierState,
    LocationState,
    QosState,
    SecurityState,
)


def make_state(**overrides):
    defaults = dict(
        identifiers=IdentifierState("imsi-001", 1, 1000, "guti-1"),
        location=LocationState((3, 4), (3, 4), "2001:db8::1"),
    )
    defaults.update(overrides)
    return SessionState(**defaults)


class TestSessionState:
    def test_serialisation_roundtrip(self):
        state = make_state()
        assert SessionState.from_bytes(state.to_bytes()) == state

    def test_roundtrip_with_custom_fields(self):
        state = make_state(
            qos=QosState(five_qi=1, priority=2, forwarding_rules=("r1",)),
            billing=BillingState(quota_mb=100, used_mb=3.5),
            security=SecurityState(k_amf="aa", dh_generator=4),
        )
        assert SessionState.from_bytes(state.to_bytes()) == state

    def test_category_accessor(self):
        state = make_state()
        assert state.category(StateCategory.IDENTIFIERS).supi == "imsi-001"
        assert state.category(StateCategory.LOCATION).cell_id == (3, 4)
        assert state.category(StateCategory.QOS).five_qi == 9

    def test_version_bump(self):
        state = make_state()
        assert state.bump_version().version == state.version + 1

    def test_ttl_expiry(self):
        state = make_state()
        assert not state.expired(state.ttl_s - 1)
        assert state.expired(state.ttl_s)

    def test_billing_charge_and_throttle(self):
        billing = BillingState(quota_mb=100)
        charged = billing.charge(50.0)
        assert not charged.throttled
        assert charged.charge(60.0).throttled

    def test_serialised_size_reasonable(self):
        """The replica must fit in a piggybacked RRC message (~1 KB)."""
        assert 200 < make_state().size_bytes() < 2000


class TestLegacyFlows:
    def test_all_procedures_present(self):
        assert set(LEGACY_FLOWS) == set(ProcedureKind)

    def test_initial_registration_shape(self):
        """Fig. 9a: RRC setup, registration, AKA, policy, accept."""
        steps = [m.step for m in INITIAL_REGISTRATION_FLOW]
        assert steps[0] == "P0"
        assert "P2" in steps and "P3" in steps and "P4" in steps
        assert steps[-1] == "P5"
        # AKA is the dominant sub-exchange.
        assert steps.count("P3") >= 4

    def test_session_establishment_touches_all_core_nfs(self):
        roles = {m.src for m in SESSION_ESTABLISHMENT_FLOW} | {
            m.dst for m in SESSION_ESTABLISHMENT_FLOW}
        assert {Role.UE, Role.RAN, Role.AMF, Role.SMF, Role.UPF,
                Role.PCF, Role.UDM}.issubset(roles)

    def test_handover_migrates_security_state(self):
        """Fig. 9c annotates S5 on the handover request."""
        ho_request = next(m for m in HANDOVER_FLOW
                          if m.name == "handover-request")
        assert StateCategory.SECURITY in ho_request.carries

    def test_mobility_registration_transfers_context(self):
        transfer = next(m for m in MOBILITY_REGISTRATION_FLOW
                        if m.name == "ue-context-transfer")
        assert StateCategory.SECURITY in transfer.carries
        assert StateCategory.IDENTIFIERS in transfer.carries

    def test_flow_sizes_positive(self):
        for flow in LEGACY_FLOWS.values():
            assert flow_size_bytes(flow) > 0

    def test_security_exposure_exists_in_legacy(self):
        """Legacy flows leak S5 onto links (Fig. 19's MITM vector)."""
        assert security_carrying_messages(INITIAL_REGISTRATION_FLOW)
        assert security_carrying_messages(HANDOVER_FLOW)


class TestDownlinkTrigger:
    def test_legacy_downlink_rides_the_anchor(self):
        """S3.1: anchor -> SMF -> AMF -> RAN paging -> UE."""
        from repro.fiveg.messages import DOWNLINK_TRIGGER_FLOW
        roles = [m.src for m in DOWNLINK_TRIGGER_FLOW]
        assert roles[0] is Role.ANCHOR_UPF
        assert DOWNLINK_TRIGGER_FLOW[-1].dst is Role.UE

    def test_spacecore_downlink_is_one_page(self):
        """Fig. 16b: Algorithm 1 delivers, the satellite just pages."""
        from repro.fiveg.messages import (
            DOWNLINK_TRIGGER_FLOW,
            SPACECORE_DOWNLINK_TRIGGER_FLOW,
        )
        assert len(SPACECORE_DOWNLINK_TRIGGER_FLOW) == 1
        assert len(SPACECORE_DOWNLINK_TRIGGER_FLOW) < len(
            DOWNLINK_TRIGGER_FLOW)


class TestSpaceCoreFlows:
    def test_c4_eliminated(self):
        """Fig. 16: C4 is eliminated by geospatial mobility management."""
        assert SPACECORE_FLOWS[ProcedureKind.MOBILITY_REGISTRATION] == []

    def test_session_establishment_is_local_and_short(self):
        """Fig. 16a: four radio messages, no home round trip."""
        flow = SPACECORE_FLOWS[ProcedureKind.SESSION_ESTABLISHMENT]
        assert len(flow) == 4
        roles = {m.src for m in flow} | {m.dst for m in flow}
        assert roles == {Role.UE, Role.RAN}

    def test_handover_shorter_than_legacy(self):
        spacecore = SPACECORE_FLOWS[ProcedureKind.HANDOVER]
        assert len(spacecore) < len(HANDOVER_FLOW)
        # No AMF/SMF involvement (state-function-location decoupling).
        roles = {m.src for m in spacecore} | {m.dst for m in spacecore}
        assert Role.AMF not in roles and Role.SMF not in roles

    def test_registration_keeps_home_control(self):
        """Fig. 16a: C1 still runs through the home (AUSF/UDM/PCF)."""
        flow = SPACECORE_FLOWS[ProcedureKind.INITIAL_REGISTRATION]
        roles = {m.src for m in flow} | {m.dst for m in flow}
        assert {Role.AUSF, Role.UDM, Role.PCF}.issubset(roles)

    def test_replica_piggyback_carries_all_categories(self):
        flow = SPACECORE_FLOWS[ProcedureKind.SESSION_ESTABLISHMENT]
        piggyback = next(m for m in flow if "replica" in m.name)
        assert set(piggyback.carries) == set(StateCategory)

    def test_spacecore_flows_much_smaller(self):
        """The per-procedure message savings behind Table 4."""
        legacy_total = sum(len(f) for f in LEGACY_FLOWS.values())
        spacecore_total = sum(len(f) for f in SPACECORE_FLOWS.values())
        assert spacecore_total < legacy_total / 2
