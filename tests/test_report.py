"""Tests for the reproduction report generator."""

import pytest

from repro.experiments.report import generate_report


@pytest.fixture(scope="module")
def report():
    return generate_report(fast=True)


class TestReport:
    def test_all_sections_present(self, report):
        for section in ("Table 1", "Table 2", "Table 3", "Table 4",
                        "Fig. 5", "Fig. 17", "Fig. 18b", "Fig. 19",
                        "Fig. 20", "Fig. 21"):
            assert section in report

    def test_constellations_listed(self, report):
        for name in ("Starlink", "OneWeb", "Kuiper", "Iridium"):
            assert name in report

    def test_solutions_listed(self, report):
        for name in ("SpaceCore", "5G NTN", "SkyCore", "DPCM",
                     "Baoyun"):
            assert name in report

    def test_table2_totals_verbatim(self, report):
        assert "8,480,488" in report
        assert "971,120" in report

    def test_markdown_tables_well_formed(self, report):
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.rstrip().endswith("|")

    def test_write_report(self, tmp_path, report):
        target = tmp_path / "report.md"
        # Reuse the cached content path: write directly.
        target.write_text(report)
        assert target.read_text() == report
