"""Snapshot-backed geometry must agree with the pre-snapshot scalar path.

The perf refactor moved the coverage/routing hot path onto
epoch-keyed :mod:`repro.orbits.snapshot` bundles.  These tests pin the
refactor to the original semantics: for random (constellation, t, UE)
samples, the snapshot-backed queries return the *same decisions* --
same serving satellite, same visible sets, same Algorithm 1 hops and
routed paths -- as faithful replicas of the pre-refactor scalar code,
under both the ideal and the J4 propagators.
"""

import math

import numpy as np
import pytest

from repro.orbits import (
    clear_snapshot_cache,
    iridium,
    make_propagator,
    snapshot_for,
    starlink,
)
from repro.orbits.coordinates import central_angle, wrap_signed
from repro.orbits.coverage import (
    coverage_half_angle,
    pass_schedule,
    serving_satellite,
    visible_satellites,
)
from repro.orbits.snapshot import (
    serving_over_times,
    serving_satellites,
    visible_counts,
    visible_counts_over_times,
)
from repro.topology.grid import GridTopology
from repro.topology.routing import GeospatialRouter, RouteResult

BEIJING = (math.radians(39.9), math.radians(116.4))
NEW_YORK = (math.radians(40.7), math.radians(-74.0))


# ---------------------------------------------------------------------------
# Faithful replicas of the pre-refactor scalar implementations
# ---------------------------------------------------------------------------

def _scalar_visible(propagator, t, ue_lat, ue_lon, min_elevation_deg=None):
    """Pre-refactor coverage.visible_satellites (per-query full scan)."""
    c = propagator.constellation
    if min_elevation_deg is None:
        min_elevation_deg = c.min_elevation_deg
    theta = coverage_half_angle(c.altitude_km, min_elevation_deg)
    subs = propagator.subpoints(t)
    dlat = subs[:, 0] - ue_lat
    dlon = subs[:, 1] - ue_lon
    h = (np.sin(dlat / 2.0) ** 2
         + np.cos(subs[:, 0]) * math.cos(ue_lat) * np.sin(dlon / 2.0) ** 2)
    ang = 2.0 * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))
    return list(np.nonzero(ang <= theta)[0])


def _scalar_serving(propagator, t, ue_lat, ue_lon, min_elevation_deg=None):
    """Pre-refactor coverage.serving_satellite."""
    c = propagator.constellation
    if min_elevation_deg is None:
        min_elevation_deg = c.min_elevation_deg
    theta = coverage_half_angle(c.altitude_km, min_elevation_deg)
    subs = propagator.subpoints(t)
    dlat = subs[:, 0] - ue_lat
    dlon = subs[:, 1] - ue_lon
    h = (np.sin(dlat / 2.0) ** 2
         + np.cos(subs[:, 0]) * math.cos(ue_lat) * np.sin(dlon / 2.0) ** 2)
    ang = 2.0 * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))
    best = int(np.argmin(ang))
    if ang[best] > theta:
        return -1
    return best


def _scalar_pass_schedule(propagator, ue_lat, ue_lon, t_start, t_end,
                          step_s=5.0, min_elevation_deg=None):
    """Pre-refactor coverage.pass_schedule (per-step serving scan)."""
    passes = []
    current_sat = -2
    run_start = t_start
    t = t_start
    while t <= t_end:
        sat = _scalar_serving(propagator, t, ue_lat, ue_lon,
                              min_elevation_deg)
        if sat != current_sat:
            if current_sat >= 0:
                passes.append((run_start, t, current_sat))
            current_sat = sat
            run_start = t
        t += step_s
    if current_sat >= 0:
        passes.append((run_start, min(t, t_end), current_sat))
    return passes


class _ScalarRouter(GeospatialRouter):
    """GeospatialRouter with the pre-refactor per-hop scalar geometry.

    Every hop re-derives the satellite's subpoint and runtime
    coordinates from ``propagator.state()`` -- exactly what the code
    did before the snapshot layer.
    """

    def covers(self, sat, dest_lat, dest_lon, t):
        plane, slot = self.topology.constellation.plane_slot(sat)
        sat_lat, sat_lon = self.topology.propagator.state(
            plane, slot, t).subpoint()
        return (central_angle(sat_lat, sat_lon, dest_lat, dest_lon)
                <= self.coverage_angle)

    def _hop_offsets(self, sat, dest_lat, dest_lon, t):
        c = self.topology.constellation
        plane, slot = c.plane_slot(sat)
        state = self.topology.propagator.state(plane, slot, t)
        alpha_s = state.raan_ecef
        gamma_s = state.arg_latitude
        best = None
        best_metric = math.inf
        for alpha_d, gamma_d in self.system.both_representations(
                dest_lat, dest_lon):
            da = wrap_signed(alpha_d - alpha_s) / c.delta_raan
            dg = wrap_signed(gamma_d - gamma_s) / c.delta_phase
            metric = abs(da) + abs(dg)
            if metric < best_metric:
                best_metric = metric
                best = (da, dg)
        return best

    def next_hop(self, sat, dest_lat, dest_lon, t):
        da, dg = self._hop_offsets(sat, dest_lat, dest_lon, t)
        if abs(da) < 0.5 and abs(dg) < 0.5:
            return None
        neighbors = self.topology.directional_neighbors(sat)
        if abs(da) > abs(dg):
            direction = "right" if da > 0 else "left"
        else:
            direction = "up" if dg > 0 else "down"
        return neighbors[direction]

    def _nearly_covers(self, sat, dest_lat, dest_lon, t):
        plane, slot = self.topology.constellation.plane_slot(sat)
        sat_lat, sat_lon = self.topology.propagator.state(
            plane, slot, t).subpoint()
        return (central_angle(sat_lat, sat_lon, dest_lat, dest_lon)
                <= self.coverage_angle * self.degraded_slack)

    def _best_live_neighbor(self, sat, dest_lat, dest_lon, t, visited):
        best = None
        best_metric = math.inf
        for nbr in self.topology.isl_neighbors(sat):
            if nbr in visited:
                continue
            da, dg = self._hop_offsets(nbr, dest_lat, dest_lon, t)
            metric = abs(da) + abs(dg)
            if metric < best_metric:
                best_metric = metric
                best = nbr
        return best

    def route(self, src_sat, dest_lat, dest_lon, t):
        topo = self.topology
        path = [src_sat]
        visited = {src_sat}
        delay = 0.0
        distance = 0.0
        current = src_sat
        for _ in range(self.max_hops):
            if self.covers(current, dest_lat, dest_lon, t):
                return RouteResult(True, path, delay, distance)
            preferred = self.next_hop(current, dest_lat, dest_lon, t)
            if preferred is None:
                if self._nearly_covers(current, dest_lat, dest_lon, t):
                    return RouteResult(True, path, delay, distance,
                                       degraded=True)
                preferred = self._best_live_neighbor(current, dest_lat,
                                                     dest_lon, t, visited)
            if (preferred is None or preferred in visited
                    or not topo.isl_up(current, preferred)):
                preferred = self._best_live_neighbor(current, dest_lat,
                                                     dest_lon, t, visited)
            if preferred is None:
                return RouteResult(False, path, delay, distance)
            delay += topo.isl_delay_s(current, preferred, t)
            distance += topo.isl_distance_km(current, preferred, t)
            current = preferred
            path.append(current)
            visited.add(current)
        return RouteResult(False, path, delay, distance)


def _sample_points(rng, count):
    lats = np.radians(rng.uniform(-55.0, 55.0, count))
    lons = np.radians(rng.uniform(-180.0, 180.0, count))
    return lats, lons


PROPAGATOR_KINDS = ["ideal", "j4"]
CONSTELLATIONS = [starlink, iridium]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_snapshot_cache()
    yield
    clear_snapshot_cache()


class TestCoverageEquivalence:
    """serving/visible queries bit-match the scalar full-scan path."""

    @pytest.mark.parametrize("kind", PROPAGATOR_KINDS)
    @pytest.mark.parametrize("factory", CONSTELLATIONS)
    def test_serving_satellite_bit_match(self, factory, kind):
        prop = make_propagator(factory(), kind)
        rng = np.random.default_rng(1)
        lats, lons = _sample_points(rng, 40)
        for t, lat, lon in zip(rng.uniform(0, 7000, 40), lats, lons):
            assert (serving_satellite(prop, float(t), lat, lon)
                    == _scalar_serving(prop, float(t), lat, lon))

    @pytest.mark.parametrize("kind", PROPAGATOR_KINDS)
    @pytest.mark.parametrize("factory", CONSTELLATIONS)
    def test_visible_satellites_bit_match(self, factory, kind):
        prop = make_propagator(factory(), kind)
        rng = np.random.default_rng(2)
        lats, lons = _sample_points(rng, 40)
        for t, lat, lon in zip(rng.uniform(0, 7000, 40), lats, lons):
            got = visible_satellites(prop, float(t), lat, lon)
            want = _scalar_visible(prop, float(t), lat, lon)
            assert list(map(int, got)) == list(map(int, want))

    @pytest.mark.parametrize("kind", PROPAGATOR_KINDS)
    def test_snapshot_arrays_bit_match_scalar_state(self, kind):
        c = starlink()
        prop = make_propagator(c, kind)
        rng = np.random.default_rng(3)
        for t in rng.uniform(0, 7000, 10):
            snap = snapshot_for(prop, float(t))
            assert np.array_equal(snap.subpoints, prop.subpoints(float(t)))
            assert np.array_equal(snap.positions_ecef,
                                  prop.positions_ecef(float(t)))
            for sat in rng.integers(0, c.total_satellites, 25):
                plane, slot = c.plane_slot(int(sat))
                state = prop.state(plane, slot, float(t))
                assert snap.raan_ecef[sat] == state.raan_ecef
                assert snap.arg_latitude[sat] == state.arg_latitude


class TestBatchEquivalence:
    """Batch (M users x N sats) APIs match per-user scalar queries."""

    @pytest.mark.parametrize("kind", PROPAGATOR_KINDS)
    def test_serving_batch(self, kind):
        prop = make_propagator(starlink(), kind)
        rng = np.random.default_rng(4)
        lats, lons = _sample_points(rng, 100)
        t = 1234.5
        batch = serving_satellites(prop, t, lats, lons)
        for i in range(len(lats)):
            assert int(batch[i]) == _scalar_serving(
                prop, t, float(lats[i]), float(lons[i]))

    @pytest.mark.parametrize("kind", PROPAGATOR_KINDS)
    def test_visible_counts_batch(self, kind):
        prop = make_propagator(starlink(), kind)
        rng = np.random.default_rng(5)
        lats, lons = _sample_points(rng, 100)
        t = 987.0
        batch = visible_counts(prop, t, lats, lons)
        for i in range(len(lats)):
            assert int(batch[i]) == len(_scalar_visible(
                prop, t, float(lats[i]), float(lons[i])))


class TestTimeGridEquivalence:
    """The O(T + N)-trig time-grid kernels pick the same satellites."""

    @pytest.mark.parametrize("kind", PROPAGATOR_KINDS)
    @pytest.mark.parametrize("factory", CONSTELLATIONS)
    def test_serving_over_times(self, factory, kind):
        prop = make_propagator(factory(), kind)
        rng = np.random.default_rng(6)
        times = [float(t) for t in rng.uniform(0, 7000, 120)]
        lat, lon = BEIJING
        fast = serving_over_times(prop, times, lat, lon)
        for t, sat in zip(times, fast):
            assert int(sat) == _scalar_serving(prop, t, lat, lon)

    @pytest.mark.parametrize("kind", PROPAGATOR_KINDS)
    @pytest.mark.parametrize("factory", CONSTELLATIONS)
    def test_visible_counts_over_times(self, factory, kind):
        prop = make_propagator(factory(), kind)
        rng = np.random.default_rng(7)
        times = [float(t) for t in rng.uniform(0, 7000, 120)]
        lat, lon = NEW_YORK
        fast = visible_counts_over_times(prop, times, lat, lon)
        for t, count in zip(times, fast):
            assert int(count) == len(_scalar_visible(prop, t, lat, lon))

    @pytest.mark.parametrize("kind", PROPAGATOR_KINDS)
    def test_pass_schedule_equivalence(self, kind):
        prop = make_propagator(starlink(), kind)
        lat, lon = BEIJING
        got = pass_schedule(prop, lat, lon, 0.0, 3000.0, step_s=5.0)
        want = _scalar_pass_schedule(prop, lat, lon, 0.0, 3000.0,
                                     step_s=5.0)
        assert got == want


class TestRouterEquivalence:
    """Algorithm 1 hop decisions and full paths match the scalar router."""

    @pytest.mark.parametrize("kind", PROPAGATOR_KINDS)
    @pytest.mark.parametrize("factory", CONSTELLATIONS)
    def test_routed_paths_match(self, factory, kind):
        prop = make_propagator(factory(), kind)
        topology = GridTopology(prop, [])
        fast = GeospatialRouter(topology, max_hops=512)
        slow = _ScalarRouter(topology, max_hops=512)
        rng = np.random.default_rng(8)
        lats, lons = _sample_points(rng, 12)
        for t, lat, lon in zip(rng.uniform(0, 6000, 12), lats, lons):
            src = _scalar_serving(prop, float(t), *BEIJING)
            if src < 0:
                continue
            a = fast.route(src, float(lat), float(lon), float(t))
            b = slow.route(src, float(lat), float(lon), float(t))
            assert a.delivered == b.delivered
            assert a.path == b.path
            assert a.degraded == b.degraded
            assert a.delay_s == pytest.approx(b.delay_s, rel=1e-9)

    @pytest.mark.parametrize("kind", PROPAGATOR_KINDS)
    def test_per_hop_decisions_match(self, kind):
        prop = make_propagator(starlink(), kind)
        topology = GridTopology(prop, [])
        fast = GeospatialRouter(topology)
        slow = _ScalarRouter(topology)
        rng = np.random.default_rng(9)
        c = prop.constellation
        for _ in range(60):
            t = float(rng.uniform(0, 6000))
            sat = int(rng.integers(0, c.total_satellites))
            lat = float(np.radians(rng.uniform(-55, 55)))
            lon = float(np.radians(rng.uniform(-180, 180)))
            assert (fast.covers(sat, lat, lon, t)
                    == slow.covers(sat, lat, lon, t))
            assert (fast.next_hop(sat, lat, lon, t)
                    == slow.next_hop(sat, lat, lon, t))
            fa, fg = fast._hop_offsets(sat, lat, lon, t)
            sa, sg = slow._hop_offsets(sat, lat, lon, t)
            assert fa == sa and fg == sg

    def test_routes_under_failures_match(self):
        prop = make_propagator(starlink(), "ideal")
        topology = GridTopology(prop, [])
        rng = np.random.default_rng(10)
        for sat in rng.integers(0, prop.constellation.total_satellites, 30):
            topology.fail_satellite(int(sat))
        fast = GeospatialRouter(topology, max_hops=512)
        slow = _ScalarRouter(topology, max_hops=512)
        t = 500.0
        src = _scalar_serving(prop, t, *BEIJING)
        assert src >= 0
        a = fast.route(src, *NEW_YORK, t)
        b = slow.route(src, *NEW_YORK, t)
        assert a.delivered == b.delivered
        assert a.path == b.path


class TestCacheBehaviour:
    """Snapshot identity and immutability invariants."""

    def test_snapshot_is_cached_per_epoch(self):
        prop = make_propagator(starlink(), "ideal")
        assert snapshot_for(prop, 10.0) is snapshot_for(prop, 10.0)
        assert snapshot_for(prop, 10.0) is not snapshot_for(prop, 20.0)

    def test_distinct_propagators_do_not_alias(self):
        a = make_propagator(starlink(), "ideal")
        b = make_propagator(starlink(), "j4")
        assert snapshot_for(a, 10.0) is not snapshot_for(b, 10.0)

    def test_arrays_are_immutable(self):
        prop = make_propagator(starlink(), "ideal")
        snap = snapshot_for(prop, 0.0)
        with pytest.raises(ValueError):
            snap.subpoints[0, 0] = 0.0
        with pytest.raises(ValueError):
            snap.positions_ecef[0, 0] = 0.0

    def test_failure_injection_does_not_touch_geometry(self):
        prop = make_propagator(starlink(), "ideal")
        topology = GridTopology(prop, [])
        before = snapshot_for(prop, 42.0)
        topology.fail_satellite(7)
        assert snapshot_for(prop, 42.0) is before
