"""Tests for orbit propagation, coverage, and ground stations."""

import math

import numpy as np
import pytest

from repro.constants import STARLINK_DWELL_S
from repro.orbits import (
    IdealPropagator,
    J4Propagator,
    by_name,
    default_ground_stations,
    make_propagator,
    mean_dwell_time_s,
    nearest_station,
    serving_satellite,
    starlink,
    visible_satellites,
)
from repro.orbits.coverage import (
    coverage_half_angle,
    elevation_angle,
    footprint_area_km2,
    footprint_radius_km,
    handover_rate_per_user,
    pass_schedule,
    slant_range_km,
)
from repro.orbits.groundstations import station_load_shares


class TestIdealPropagator:
    def setup_method(self):
        self.c = starlink()
        self.prop = IdealPropagator(self.c)

    def test_radius_is_constant(self):
        for t in (0.0, 100.0, 5000.0):
            pos = self.prop.positions_ecef(t)
            radii = np.linalg.norm(pos, axis=1)
            assert np.allclose(radii, self.c.semi_major_axis_km)

    def test_period_returns_to_start(self):
        s0 = self.prop.state(3, 5, 0.0)
        s1 = self.prop.state(3, 5, self.c.period_s)
        assert s1.arg_latitude == pytest.approx(s0.arg_latitude, abs=1e-6)
        assert s1.raan == pytest.approx(s0.raan)  # no drift when ideal

    def test_all_states_matches_scalar_state(self):
        raan, u = self.prop.all_states(1234.0)
        for plane, slot in [(0, 0), (3, 7), (71, 21)]:
            idx = self.c.sat_index(plane, slot)
            st = self.prop.state(plane, slot, 1234.0)
            assert raan[idx] == pytest.approx(st.raan)
            assert u[idx] == pytest.approx(st.arg_latitude)

    def test_latitude_bounded_by_inclination(self):
        subs = self.prop.subpoints(777.0)
        assert np.max(np.abs(subs[:, 0])) <= self.c.inclination_rad + 1e-9

    def test_subpoint_moves(self):
        a = self.prop.state(0, 0, 0.0).subpoint()
        b = self.prop.state(0, 0, 60.0).subpoint()
        assert a != b

    def test_ecef_accounts_for_earth_rotation(self):
        # After one orbital period the ECEF position differs (Earth turned).
        p0 = self.prop.state(0, 0, 0.0).position_ecef()
        p1 = self.prop.state(0, 0, self.c.period_s).position_ecef()
        assert not np.allclose(p0, p1, atol=1.0)


class TestJ4Propagator:
    def setup_method(self):
        self.c = starlink()
        self.j4 = J4Propagator(self.c)

    def test_nodal_regression_westward(self):
        """Prograde orbits regress westward: negative RAAN rate."""
        assert self.j4.raan_rate() < 0

    def test_starlink_drift_magnitude(self):
        """Starlink's shell drifts about 4-5 deg/day."""
        deg_per_day = math.degrees(self.j4.raan_rate()) * 86400.0
        assert -6.0 < deg_per_day < -3.5

    def test_polar_orbit_drifts_slowly(self):
        polar = J4Propagator(by_name("OneWeb"))
        assert abs(polar.raan_rate()) < abs(self.j4.raan_rate())

    def test_draconitic_rate_close_to_keplerian(self):
        rel = abs(self.j4.arg_latitude_rate() - self.c.mean_motion)
        assert rel / self.c.mean_motion < 5e-3

    def test_diverges_from_ideal_over_time(self):
        ideal = IdealPropagator(self.c)
        t = 6 * 3600.0
        d_ideal = ideal.state(0, 0, t)
        d_j4 = self.j4.state(0, 0, t)
        assert d_ideal.raan != pytest.approx(d_j4.raan)

    def test_factory(self):
        assert isinstance(make_propagator(self.c, "ideal"), IdealPropagator)
        assert isinstance(make_propagator(self.c, "j4"), J4Propagator)
        with pytest.raises(ValueError):
            make_propagator(self.c, "sgp4")


class TestCoverage:
    def test_half_angle_grows_with_altitude(self):
        assert coverage_half_angle(1200, 25) > coverage_half_angle(550, 25)

    def test_half_angle_shrinks_with_elevation(self):
        assert coverage_half_angle(550, 40) < coverage_half_angle(550, 25)

    def test_footprint_radius_reasonable(self):
        # Starlink with a 25 degree mask serves a ~940 km radius.
        assert footprint_radius_km(550, 25) == pytest.approx(940, abs=30)

    def test_footprint_area_consistent_with_radius(self):
        r = footprint_radius_km(550, 25)
        area = footprint_area_km2(550, 25)
        flat = math.pi * r * r
        # The spherical cap is slightly smaller than the flat disc of
        # the same great-circle radius... no: slightly larger chord, the
        # cap area exceeds pi*r_chord^2 but is close to pi*(R*theta)^2.
        assert area == pytest.approx(flat, rel=0.05)

    def test_slant_range_bounds(self):
        # At zenith the slant range equals the altitude.
        assert slant_range_km(550, math.pi / 2) == pytest.approx(550.0)
        # At lower elevations it grows.
        assert slant_range_km(550, math.radians(25)) > 550.0

    def test_elevation_angle_inverts_slant_range(self):
        for el_deg in (10, 25, 45, 80):
            el = math.radians(el_deg)
            d = slant_range_km(550, el)
            assert elevation_angle(d, 550) == pytest.approx(el, abs=1e-9)

    def test_starlink_dwell_matches_paper(self):
        """S3.2: ~165.8 s transient coverage per Starlink satellite."""
        dwell = mean_dwell_time_s(starlink())
        assert dwell == pytest.approx(STARLINK_DWELL_S, rel=0.05)

    def test_handover_rate_is_inverse_dwell(self):
        c = starlink()
        assert handover_rate_per_user(c) == pytest.approx(
            1.0 / mean_dwell_time_s(c))

    def test_visible_satellites_nonempty_midlatitude(self):
        prop = IdealPropagator(starlink())
        sats = visible_satellites(prop, 0.0, math.radians(40),
                                  math.radians(-74))
        assert len(sats) >= 1

    def test_serving_satellite_is_visible(self):
        prop = IdealPropagator(starlink())
        lat, lon = math.radians(40), math.radians(-74)
        best = serving_satellite(prop, 0.0, lat, lon)
        assert best in visible_satellites(prop, 0.0, lat, lon)

    def test_no_server_over_pole_for_inclined_shell(self):
        prop = IdealPropagator(starlink())
        assert serving_satellite(prop, 0.0, math.radians(89), 0.0) == -1

    def test_pass_schedule_produces_consecutive_passes(self):
        prop = IdealPropagator(starlink())
        lat, lon = math.radians(30), math.radians(10)
        passes = pass_schedule(prop, lat, lon, 0.0, 1800.0, step_s=10.0)
        assert passes, "expected at least one pass in 30 minutes"
        for start, end, sat in passes:
            assert end > start
            assert 0 <= sat < starlink().total_satellites
        # Pass durations should be near the analytic dwell time.
        durations = [end - start for start, end, _ in passes[1:-1]]
        if durations:
            assert max(durations) < 4 * STARLINK_DWELL_S


class TestGroundStations:
    def test_default_catalog_size(self):
        stations = default_ground_stations()
        assert len(stations) >= 20

    def test_truncation(self):
        assert len(default_ground_stations(5)) == 5
        with pytest.raises(ValueError):
            default_ground_stations(0)

    def test_nearest_station(self):
        stations = default_ground_stations()
        # A point in Tokyo bay should map to the Tokyo gateway.
        gs = nearest_station(math.radians(35.6), math.radians(139.8),
                             stations)
        assert gs.name == "tokyo-jp"

    def test_nearest_station_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_station(0.0, 0.0, [])

    def test_load_shares_sum_to_satellites(self):
        prop = IdealPropagator(starlink())
        subs = [tuple(row) for row in prop.subpoints(0.0)[:200]]
        stations = default_ground_stations()
        shares = station_load_shares(subs, stations)
        assert sum(shares) == 200

    def test_asymmetry_exists(self):
        """Fig 5a: some gateways serve far more satellites than others."""
        prop = IdealPropagator(starlink())
        subs = [tuple(row) for row in prop.subpoints(0.0)]
        shares = station_load_shares(subs, default_ground_stations())
        assert max(shares) > 2 * (sum(shares) / len(shares))
