"""Tests for the Solution abstraction, the five systems, and options."""

import pytest

from repro.baselines import (
    ACTIVE_FRACTION,
    ALL_OPTIONS,
    ALL_SOLUTIONS,
    Side,
    StateResidency,
    baoyun,
    dpcm,
    fiveg_ntn,
    option1_radio_only,
    option3_session_mobility,
    option4_all_functions,
    skycore,
    solution_by_name,
    spacecore,
)
from repro.fiveg.messages import ProcedureKind, Role


class TestSolutionClassification:
    def test_ntn_sides(self):
        ntn = fiveg_ntn()
        assert ntn.side_of(Role.RAN) is Side.SPACE
        assert ntn.side_of(Role.AMF) is Side.GROUND
        assert ntn.side_of(Role.UE) is Side.DEVICE

    def test_skycore_everything_on_board(self):
        sky = skycore()
        for role in (Role.AMF, Role.SMF, Role.UPF, Role.AUSF, Role.UDM,
                     Role.PCF):
            assert sky.side_of(role) is Side.SPACE

    def test_crossing_detection(self):
        ntn = fiveg_ntn()
        flow = ntn.flow(ProcedureKind.SESSION_ESTABLISHMENT)
        rrc = next(m for m in flow if m.name == "rrc-connection-request")
        to_core = next(m for m in flow if m.name == "session-request")
        assert not ntn.crosses_boundary(rrc)       # UE <-> satellite
        assert ntn.crosses_boundary(to_core)       # satellite -> ground

    def test_skycore_never_crosses(self):
        sky = skycore()
        for kind in ProcedureKind:
            assert sky.crossing_messages(sky.flow(kind)) == 0

    def test_spacecore_session_never_crosses(self):
        sc = spacecore()
        flow = sc.flow(ProcedureKind.SESSION_ESTABLISHMENT)
        assert sc.crossing_messages(flow) == 0
        assert sc.satellite_messages(flow) == len(flow)

    def test_spacecore_registration_crosses(self):
        """C1 keeps the home in the loop (root of trust)."""
        sc = spacecore()
        flow = sc.flow(ProcedureKind.INITIAL_REGISTRATION)
        assert sc.crossing_messages(flow) > 0

    def test_ground_messages_subset_relation(self):
        for factory in ALL_SOLUTIONS:
            solution = factory()
            for kind in ProcedureKind:
                flow = solution.flow(kind)
                assert (solution.crossing_messages(flow)
                        <= solution.ground_messages(flow))


class TestProcedureRates:
    DWELL = 165.8

    def test_session_rate_universal(self):
        for factory in ALL_SOLUTIONS:
            rates = factory().procedure_rates_per_user(self.DWELL)
            assert rates[ProcedureKind.SESSION_ESTABLISHMENT] == \
                pytest.approx(1.0 / 106.9)

    def test_spacecore_no_mobility_registrations(self):
        rates = spacecore().procedure_rates_per_user(self.DWELL)
        assert rates[ProcedureKind.MOBILITY_REGISTRATION] == 0.0

    def test_legacy_mobility_registration_every_pass(self):
        for factory in (skycore, baoyun, dpcm):
            rates = factory().procedure_rates_per_user(self.DWELL)
            assert rates[ProcedureKind.MOBILITY_REGISTRATION] == \
                pytest.approx(1.0 / self.DWELL)

    def test_spacecore_handover_only_active_users(self):
        sc_rates = spacecore().procedure_rates_per_user(self.DWELL)
        ntn_rates = fiveg_ntn().procedure_rates_per_user(self.DWELL)
        assert sc_rates[ProcedureKind.HANDOVER] == pytest.approx(
            ntn_rates[ProcedureKind.HANDOVER] * ACTIVE_FRACTION)

    def test_active_fraction_sensible(self):
        assert 0.05 < ACTIVE_FRACTION < 0.3


class TestStateResidency:
    def test_residency_assignments(self):
        assert spacecore().state_residency is StateResidency.NONE
        assert skycore().state_residency is StateResidency.ALL_SUBSCRIBERS
        assert baoyun().state_residency is StateResidency.ACTIVE_CONTEXTS
        assert fiveg_ntn().state_residency is StateResidency.RELAY_ONLY

    def test_only_skycore_syncs(self):
        assert skycore().sync_fanout > 0
        for factory in (spacecore, fiveg_ntn, baoyun, dpcm):
            assert factory().sync_fanout == 0

    def test_only_dpcm_refreshes_replicas(self):
        assert dpcm().replica_update_messages > 0
        assert spacecore().replica_update_messages == 0

    def test_ip_stability(self):
        """Fig. 21: who survives satellite mobility at the IP layer."""
        assert spacecore().ip_stable_under_satellite_mobility
        assert fiveg_ntn().ip_stable_under_satellite_mobility
        for factory in (skycore, baoyun, dpcm):
            assert not factory().ip_stable_under_satellite_mobility


class TestLookup:
    def test_by_name(self):
        assert solution_by_name("spacecore").name == "SpaceCore"
        assert solution_by_name("5g ntn").name == "5G NTN"

    def test_unknown(self):
        with pytest.raises(KeyError):
            solution_by_name("StarlinkCore")

    def test_all_solutions_unique_names(self):
        names = [f().name for f in ALL_SOLUTIONS]
        assert len(names) == len(set(names)) == 5


class TestOptions:
    def test_option_progression(self):
        """Fig. 6: each option strictly adds on-board functions."""
        sizes = [len(factory().on_board) for factory in ALL_OPTIONS]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_option1_matches_ntn_placement(self):
        assert option1_radio_only().on_board == fiveg_ntn().on_board

    def test_option3_matches_baoyun_placement(self):
        assert option3_session_mobility().on_board == baoyun().on_board

    def test_option4_no_ground_crossing_for_sessions(self):
        opt4 = option4_all_functions()
        flow = opt4.flow(ProcedureKind.SESSION_ESTABLISHMENT)
        assert opt4.crossing_messages(flow) == 0

    def test_mobility_registration_only_with_mobility_functions(self):
        """S3: Options 1-2 lack on-board AMF, so satellite motion shows
        up as handovers, not registrations (Fig. 10 caption)."""
        assert not ALL_OPTIONS[0]().mobility_registration_per_pass
        assert not ALL_OPTIONS[1]().mobility_registration_per_pass
        assert ALL_OPTIONS[2]().mobility_registration_per_pass
        assert ALL_OPTIONS[3]().mobility_registration_per_pass
