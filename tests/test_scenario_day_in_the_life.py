"""Scenario test: a day in the life of the system.

One long integration scenario exercising registration, localized
sessions, handovers, failures, jamming, revocation, billing, UE
mobility, and downlink delivery against a single live SpaceCoreSystem
-- the kind of sequence a real deployment sees, with invariants
checked at every stage.
"""

import math

import pytest

from repro.core import FallbackRequired, SpaceCoreSystem
from repro.core.mobility import MobilityAction
from repro.faults import JammingAttack
from repro.orbits import starlink


@pytest.fixture(scope="module")
def world():
    system = SpaceCoreSystem(starlink())
    subscribers = {}
    for name, lat, lon in (("beijing", 39.9, 116.4),
                           ("nairobi", -1.3, 36.8),
                           ("new-york", 40.7, -74.0)):
        ue = system.provision_ue(lat, lon)
        system.register(ue, t=0.0)
        subscribers[name] = ue
    return system, subscribers


class TestDayInTheLife:
    def test_stage1_everyone_registers(self, world):
        system, subs = world
        for ue in subs.values():
            assert ue.has_replica
            assert ue.ip_address is not None
        assert system.home.core.amf.registered_count == 3

    def test_stage2_morning_sessions(self, world):
        system, subs = world
        for ue in subs.values():
            served = system.establish_session(ue, t=100.0)
            assert served.session_key
            assert system.send_uplink(ue, 1200, 100.0)

    def test_stage3_cross_continent_traffic(self, world):
        system, subs = world
        src_sat = system.serving_satellite_of(subs["beijing"], 100.0)
        subs["new-york"].connected = False
        result = system.deliver_downlink(src_sat, subs["new-york"],
                                         100.0)
        assert result.route.delivered
        assert result.paged

    def test_stage4_satellite_passes_no_registrations(self, world):
        system, subs = world
        registrations_before = system.home.core.amf.mobility_updates
        for t in (300.0, 500.0, 700.0):
            for ue in subs.values():
                system.handover(ue, t)
        # Passes churned the serving satellites but never touched the
        # home's mobility machinery.
        assert (system.home.core.amf.mobility_updates
                == registrations_before)

    def test_stage5_jamming_incident(self, world):
        system, subs = world
        jammer = JammingAttack(math.radians(20.0), math.radians(60.0),
                               radius_km=1000.0)
        affected = jammer.apply(system.topology, 700.0)
        assert affected >= 1
        # Cross-continent delivery still works around the hole.
        src_sat = system.serving_satellite_of(subs["beijing"], 700.0)
        subs["nairobi"].connected = False
        result = system.deliver_downlink(src_sat, subs["nairobi"],
                                         700.0)
        assert result.route.delivered
        jammer.lift(system.topology, 700.0)

    def test_stage6_serving_satellite_dies(self, world):
        system, subs = world
        ue = subs["beijing"]
        if not ue.connected:
            system.establish_session(ue, t=900.0)
        victim = system._ue_serving_sat[str(ue.supi)]
        system.topology.fail_satellite(victim)
        recovered = system.recover_from_satellite_failure(ue, 900.0)
        assert recovered is not None
        assert system.send_uplink(ue, 900, 900.0)
        system.topology.recover_satellite(victim)

    def test_stage7_hijack_and_revocation(self, world):
        system, subs = world
        ue = subs["nairobi"]
        sat_index = system.serving_satellite_of(ue, 1000.0)
        hijacked = system.satellite(sat_index)
        exposure = hijacked.exposed_states()
        # Blast radius: at most the sessions this satellite serves.
        assert len(exposure) <= hijacked.served_count
        system.home.revoke_satellite(f"sat-{sat_index}")
        probe = system.provision_ue(-1.2, 36.9)
        system.register(probe, t=1000.0)
        with pytest.raises(FallbackRequired):
            hijacked.establish_session_locally(probe, 1000.0,
                                               system.home.verify_key)

    def test_stage8_traveler_crosses_cells(self, world):
        system, subs = world
        ue = subs["new-york"]
        old_ip = ue.ip_address
        decision = system.ue_moved(ue, 51.5, -0.1, t=1200.0)  # London
        assert decision.action is MobilityAction.HOME_REGISTRATION
        assert ue.ip_address != old_ip
        # The refreshed replica still works on the new continent.
        ue.connected = False
        served = system.establish_session(ue, t=1200.0)
        assert served.state.location.ip_address == ue.ip_address

    def test_stage9_billing_carries_through(self, world):
        system, subs = world
        ue = subs["beijing"]
        supi = str(ue.supi)
        sat = system._ue_serving_sat.get(supi)
        if sat is None:
            system.establish_session(ue, t=1400.0)
            sat = system._ue_serving_sat[supi]
        satellite = system.satellite(sat)
        served = satellite.served_session(supi)
        bytes_up, bytes_down = satellite.usage_report(supi)
        updated = system.home.apply_usage_report(
            ue, served.state, bytes_up, bytes_down, 1400.0)
        assert updated.version > served.state.version
        assert ue.replica.version == updated.version

    def test_stage10_invariants_hold(self, world):
        """Global invariants after the whole day."""
        system, subs = world
        # No satellite holds state for a UE it is not serving.
        for index, satellite in system._satellites.items():
            for session in satellite.exposed_states():
                assert satellite.is_serving(session.supi)
        # Every UE's replica verifies against the home.
        for ue in subs.values():
            ue_key = system.home.ue_abe_key(ue)
            from repro.crypto import decrypt
            blob = decrypt(ue_key, ue.replica.ciphertext)
            assert system.home.verify_key.verify(blob,
                                                 ue.replica.signature)
