"""Tests for the command-line harness."""

import pytest

from repro.cli import main


class TestParser:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "SpaceCore" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "fig18b" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure999"])


class TestTableCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Starlink" in out and "1584" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "8480488" in capsys.readouterr().out.replace(",", "")

    def test_table3_small_sample(self, capsys):
        assert main(["table3", "--samples", "2000"]) == 0
        assert "km^2" in capsys.readouterr().out


class TestFigureCommands:
    def test_fig20_iridium(self, capsys):
        assert main(["fig20", "--constellation", "Iridium",
                     "--capacity", "2000"]) == 0
        out = capsys.readouterr().out
        assert "SpaceCore" in out and "Iridium" in out

    def test_fig18b_fast(self, capsys):
        assert main(["fig18b", "--samples", "4"]) == 0
        assert "Beijing" in capsys.readouterr().out

    def test_fig21(self, capsys):
        assert main(["fig21"]) == 0
        out = capsys.readouterr().out
        assert "RESET" in out and "survives" in out


class TestHeavierCommands:
    def test_fig10_small_constellation(self, capsys):
        assert main(["fig10", "--constellation", "Iridium",
                     "--capacity", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Option 1" in out and "Option 4" in out

    def test_fig17(self, capsys):
        assert main(["fig17"]) == 0
        out = capsys.readouterr().out
        assert "C1" in out and "SATURATED" in out

    def test_fig19(self, capsys):
        assert main(["fig19"]) == 0
        out = capsys.readouterr().out
        assert "hijack" in out and "MITM" in out

    def test_table1_table2(self, capsys):
        assert main(["table1"]) == 0
        assert main(["table2"]) == 0


class TestEmulateCommand:
    def test_emulate_short_run(self, capsys):
        assert main(["emulate", "--ues", "4", "--duration", "120",
                     "--interval", "40"]) == 0
        out = capsys.readouterr().out
        assert "sessions:" in out
        assert "fallbacks: 0" in out
