"""Tests for NAS security, coverage statistics, and availability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    availability_gap,
    availability_sweep,
    gateway_reachability,
)
from repro.fiveg.nas_security import NasSecurityError, establish_pair
from repro.orbits import (
    coverage_by_latitude,
    coverage_statistics,
    densest_latitude_deg,
    iridium,
    starlink,
)

K_AMF = b"k" * 32


class TestNasSecurity:
    def test_protect_unprotect_roundtrip(self):
        ue, amf = establish_pair(K_AMF)
        wire = ue.protect(b"registration request", uplink=True)
        assert amf.unprotect(wire, uplink=True) == \
            b"registration request"

    def test_ciphering_hides_plaintext(self):
        ue, _ = establish_pair(K_AMF)
        wire = ue.protect(b"SECRET-IDENTITY", uplink=True)
        assert b"SECRET-IDENTITY" not in wire

    def test_counts_increment_per_message(self):
        ue, amf = establish_pair(K_AMF)
        for i in range(5):
            wire = ue.protect(f"msg-{i}".encode(), uplink=True)
            assert amf.unprotect(wire, uplink=True) == \
                f"msg-{i}".encode()
        assert ue.uplink_count == 5
        assert amf.uplink_count == 5

    def test_tamper_detected(self):
        ue, amf = establish_pair(K_AMF)
        wire = bytearray(ue.protect(b"payload", uplink=True))
        wire[-1] ^= 0x01
        with pytest.raises(NasSecurityError):
            amf.unprotect(bytes(wire), uplink=True)

    def test_replay_detected(self):
        """A captured NAS message cannot be replayed (Appendix B)."""
        ue, amf = establish_pair(K_AMF)
        wire = ue.protect(b"first", uplink=True)
        amf.unprotect(wire, uplink=True)
        with pytest.raises(NasSecurityError):
            amf.unprotect(wire, uplink=True)

    def test_wrong_key_rejected(self):
        ue, _ = establish_pair(K_AMF)
        _, wrong_amf = establish_pair(b"x" * 32)
        wire = ue.protect(b"hello", uplink=True)
        with pytest.raises(NasSecurityError):
            wrong_amf.unprotect(wire, uplink=True)

    def test_directions_independent(self):
        ue, amf = establish_pair(K_AMF)
        up = ue.protect(b"up", uplink=True)
        down = amf.protect(b"down", uplink=False)
        assert amf.unprotect(up, uplink=True) == b"up"
        assert ue.unprotect(down, uplink=False) == b"down"

    def test_short_message_rejected(self):
        _, amf = establish_pair(K_AMF)
        with pytest.raises(NasSecurityError):
            amf.unprotect(b"tiny", uplink=True)

    @given(st.binary(min_size=0, max_size=512))
    @settings(max_examples=40)
    def test_roundtrip_property(self, payload):
        ue, amf = establish_pair(K_AMF)
        assert amf.unprotect(ue.protect(payload, uplink=True),
                             uplink=True) == payload


class TestCoverageStatistics:
    def test_starlink_midlatitude_continuous(self):
        stats = coverage_statistics(starlink(), 40.0,
                                    duration_s=1800.0)
        assert stats.continuous
        assert stats.mean_visible >= 1.0

    def test_starlink_polar_uncovered(self):
        stats = coverage_statistics(starlink(), 85.0,
                                    duration_s=600.0)
        assert stats.coverage_fraction == 0.0

    def test_iridium_polar_covered(self):
        stats = coverage_statistics(iridium(), 85.0, duration_s=1200.0)
        assert stats.coverage_fraction > 0.9

    def test_coverage_by_latitude_profile(self):
        profile = coverage_by_latitude(starlink(),
                                       latitudes_deg=(0.0, 45.0, 70.0),
                                       duration_s=900.0)
        by_lat = {p.lat_deg: p for p in profile}
        # Mid-latitudes see more satellites than the equator (turn-
        # point bunching), and 70 deg is outside the 53 deg band.
        assert by_lat[45.0].mean_visible > by_lat[0.0].mean_visible
        assert by_lat[70.0].coverage_fraction < 0.5

    def test_densest_latitude_near_inclination(self):
        assert densest_latitude_deg(starlink()) == pytest.approx(50.0)


class TestAvailability:
    def test_reachability_full_when_healthy(self):
        assert gateway_reachability(starlink(), 0.0) == 1.0

    def test_reachability_degrades_gracefully(self):
        """The +Grid is redundant: 20% failures barely partition it."""
        reach = gateway_reachability(starlink(), 0.2, seed=1)
        assert 0.9 < reach <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gateway_reachability(starlink(), 1.0)

    def test_spacecore_availability_advantage(self):
        points = availability_sweep(starlink(),
                                    failure_fractions=(0.0, 0.1))
        gaps = availability_gap(points)
        for level, gap in gaps.items():
            assert gap > 0.2, f"no advantage at {level}"

    def test_spacecore_immune_to_gateway_partition(self):
        points = availability_sweep(starlink(),
                                    failure_fractions=(0.2,))
        spacecore_point = next(p for p in points
                               if p.solution == "SpaceCore")
        assert spacecore_point.reachability == 1.0
