"""Documentation gates: every public item carries a doc comment.

Deliverable (e) requires doc comments on every public item; this test
walks the entire package and fails on any undocumented public module,
class, function, or method.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(item):
            for member_name, member in vars(item).items():
                if member_name.startswith("_"):
                    continue
                if not inspect.isfunction(member):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(f"{name}.{member_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public items: "
        f"{sorted(undocumented)}")


def test_package_inventory_nontrivial():
    """The walk really covers the whole library."""
    names = {m.__name__ for m in ALL_MODULES}
    for expected in ("repro.core.spacecore", "repro.fiveg.procedures",
                     "repro.topology.routing", "repro.crypto.abe",
                     "repro.experiments.signaling"):
        assert expected in names
    assert len(names) > 50
