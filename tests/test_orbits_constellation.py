"""Tests for the Walker constellation model (Table 1)."""

import math

import pytest

from repro.constants import TWO_PI
from repro.orbits import TABLE1, Constellation, by_name, starlink, oneweb
from repro.orbits import iridium, kuiper


class TestTable1Presets:
    """The presets must match Table 1 of the paper."""

    @pytest.mark.parametrize(
        "name,n,m,total,alt,incl",
        [
            ("Starlink", 22, 72, 1584, 550, 53.0),
            ("OneWeb", 40, 18, 720, 1200, 87.9),
            ("Kuiper", 34, 34, 1156, 630, 51.9),
            ("Iridium", 11, 6, 66, 780, 86.4),
        ],
    )
    def test_parameters(self, name, n, m, total, alt, incl):
        c = by_name(name)
        assert c.sats_per_plane == n
        assert c.num_planes == m
        assert c.total_satellites == total
        assert c.altitude_km == alt
        assert c.inclination_deg == incl

    @pytest.mark.parametrize(
        "name,speed",
        [("Starlink", 7.6), ("OneWeb", 7.3), ("Kuiper", 7.5),
         ("Iridium", 7.4)],
    )
    def test_orbital_speed_matches_table1(self, name, speed):
        """Table 1 quotes the orbital speed of each shell."""
        assert by_name(name).speed_km_s == pytest.approx(speed, abs=0.08)

    def test_by_name_is_case_insensitive(self):
        assert by_name("starlink").name == "Starlink"
        assert by_name("IRIDIUM").name == "Iridium"

    def test_by_name_unknown_raises(self):
        with pytest.raises(KeyError):
            by_name("Telesat")

    def test_table1_registry_is_complete(self):
        assert set(TABLE1) == {"Starlink", "OneWeb", "Kuiper", "Iridium"}


class TestGeometry:
    def test_total_satellites(self):
        c = Constellation("t", 4, 3, 550.0, 53.0)
        assert c.total_satellites == 12

    def test_delta_raan_spans_spread(self):
        c = Constellation("t", 4, 8, 550.0, 53.0)
        assert c.delta_raan == pytest.approx(TWO_PI / 8)
        polar = Constellation("t", 4, 8, 550.0, 87.0, raan_spread=math.pi)
        assert polar.delta_raan == pytest.approx(math.pi / 8)

    def test_delta_phase(self):
        c = Constellation("t", 10, 3, 550.0, 53.0)
        assert c.delta_phase == pytest.approx(TWO_PI / 10)

    def test_period_above_earth(self):
        c = starlink()
        # LEO periods are between 90 and 130 minutes.
        assert 90 * 60 < c.period_s < 130 * 60
        assert oneweb().period_s > c.period_s  # higher orbit, longer period

    def test_raan_of_plane_uniform(self):
        c = Constellation("t", 4, 6, 550.0, 53.0)
        raans = [c.raan_of_plane(p) for p in range(6)]
        diffs = [raans[i + 1] - raans[i] for i in range(5)]
        for d in diffs:
            assert d == pytest.approx(c.delta_raan)

    def test_phase_includes_walker_offset(self):
        c = Constellation("t", 4, 6, 550.0, 53.0, phasing_factor=2)
        base = c.phase_of_slot(0, 0)
        shifted = c.phase_of_slot(1, 0)
        expected = TWO_PI * 2 * 1 / c.total_satellites
        assert (shifted - base) % TWO_PI == pytest.approx(expected)


class TestIndexing:
    def test_sat_index_roundtrip(self):
        c = Constellation("t", 7, 5, 550.0, 53.0)
        for plane in range(5):
            for slot in range(7):
                idx = c.sat_index(plane, slot)
                assert c.plane_slot(idx) == (plane, slot)

    def test_sat_index_wraps(self):
        c = Constellation("t", 7, 5, 550.0, 53.0)
        assert c.sat_index(5, 0) == c.sat_index(0, 0)
        assert c.sat_index(0, 7) == c.sat_index(0, 0)
        assert c.sat_index(-1, -1) == c.sat_index(4, 6)

    def test_satellites_enumerates_all(self):
        c = Constellation("t", 3, 4, 550.0, 53.0)
        sats = list(c.satellites())
        assert len(sats) == 12
        assert len(set(sats)) == 12

    def test_neighbors_are_adjacent(self):
        c = Constellation("t", 7, 5, 550.0, 53.0)
        up, down = c.intra_plane_neighbors(2, 3)
        assert up == c.sat_index(2, 4)
        assert down == c.sat_index(2, 2)
        left, right = c.inter_plane_neighbors(2, 3)
        assert left == c.sat_index(1, 3)
        assert right == c.sat_index(3, 3)

    def test_neighbors_wrap_at_seams(self):
        c = Constellation("t", 7, 5, 550.0, 53.0)
        up, down = c.intra_plane_neighbors(0, 6)
        assert up == c.sat_index(0, 0)
        left, right = c.inter_plane_neighbors(4, 0)
        assert right == c.sat_index(0, 0)


class TestValidation:
    def test_rejects_zero_planes(self):
        with pytest.raises(ValueError):
            Constellation("t", 4, 0, 550.0, 53.0)

    def test_rejects_bad_inclination(self):
        with pytest.raises(ValueError):
            Constellation("t", 4, 4, 550.0, 0.0)
        with pytest.raises(ValueError):
            Constellation("t", 4, 4, 550.0, 190.0)

    def test_rejects_negative_altitude(self):
        with pytest.raises(ValueError):
            Constellation("t", 4, 4, -1.0, 53.0)

    def test_polar_presets_use_half_spread(self):
        assert oneweb().raan_spread == pytest.approx(math.pi)
        assert iridium().raan_spread == pytest.approx(math.pi)
        assert starlink().raan_spread == pytest.approx(TWO_PI)
        assert kuiper().raan_spread == pytest.approx(TWO_PI)
