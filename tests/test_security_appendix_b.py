"""Appendix B security analysis, claim by claim.

The paper's security argument is a checklist; each test class below
verifies one bullet against the real implementation: authenticity,
authorization, confidentiality, state integrity, man-in-the-middle,
replay, and UE-side state manipulation.
"""

import dataclasses

import pytest

from repro.core import FallbackRequired, SpaceCoreSatellite, SpaceCoreHome
from repro.crypto import (
    Initiator,
    KeyAgreementError,
    Responder,
    decrypt,
    generate_keypair,
    issue_certificate,
    keygen,
)
from repro.crypto.abe import AbeDecryptionError
from repro.fiveg import SessionState


@pytest.fixture()
def deployment():
    home = SpaceCoreHome()
    creds = home.enroll_satellite("sat-1")
    satellite = SpaceCoreSatellite("sat-1", creds)
    ue = home.provision_subscriber(1)
    home.register(ue, (1, 1), (1, 1))
    return home, satellite, ue


class TestAuthenticity:
    """Mutual authentication in C1 and Algorithm 2."""

    def test_satellite_proves_home_authorization(self, deployment):
        home, satellite, ue = deployment
        served = satellite.establish_session_locally(ue, 0.0,
                                                     home.verify_key)
        assert served.session_key

    def test_fake_satellite_rejected_by_ue(self, deployment):
        """A 3rd-party satellite with a self-signed cert fails."""
        home, _, ue = deployment
        rogue_sk, rogue_vk = generate_keypair()
        rogue_cert = issue_certificate("evil-home", rogue_sk,
                                       "sat-evil", rogue_vk)
        ue_side = Initiator(home.verify_key)
        rogue = Responder(rogue_cert, rogue_sk)
        reply, _ = rogue.respond(ue_side.hello)
        with pytest.raises(KeyAgreementError):
            ue_side.finish(reply)

    def test_hijacked_satellite_invalidated(self, deployment):
        """"The home network detects it and invalidates its
        authenticity by updating the access structure A."""
        home, satellite, ue = deployment
        home.revoke_satellite("sat-1")
        fresh = home.provision_subscriber(2)
        home.register(fresh, (1, 1), (1, 1))
        with pytest.raises(FallbackRequired):
            satellite.establish_session_locally(fresh, 0.0,
                                                home.verify_key)


class TestAuthorization:
    """Attribute-based access control over the delegated states."""

    def test_policy_gates_on_attributes(self, deployment):
        home, _, ue = deployment
        weak_key = keygen(home.core.abe_master,
                          ["role:satellite", "cap:qos"])  # no epoch
        with pytest.raises(AbeDecryptionError):
            decrypt(weak_key, ue.replica.ciphertext)

    def test_ue_authorized_for_own_states_only(self, deployment):
        home, _, ue = deployment
        other = home.provision_subscriber(3)
        home.register(other, (1, 1), (1, 1))
        own_key = home.ue_abe_key(ue)
        assert decrypt(own_key, ue.replica.ciphertext)
        with pytest.raises(AbeDecryptionError):
            decrypt(own_key, other.replica.ciphertext)


class TestConfidentiality:
    """Per-session keys, refreshed every establishment."""

    def test_key_rotates_per_establishment(self, deployment):
        home, satellite, ue = deployment
        k1 = satellite.establish_session_locally(
            ue, 0.0, home.verify_key).session_key
        satellite.release_session(str(ue.supi))
        k2 = satellite.establish_session_locally(
            ue, 1.0, home.verify_key).session_key
        assert k1 != k2

    def test_passive_listener_cannot_read_replica(self, deployment):
        """The replica on the air is ABE ciphertext: without an
        authorized key the payload is opaque."""
        home, _, ue = deployment
        wire = ue.replica.to_bytes()
        # The serialized S1-S5 bundle never appears in the wire blob.
        assert b"ip_address" not in wire or b'"payload"' in wire


class TestStateIntegrity:
    """"Without the home network's key pair, neither the UE nor
    satellite can fake or modify the states."""

    def test_payload_tamper_detected(self, deployment):
        home, satellite, ue = deployment
        real = ue.replica
        flipped = bytes([real.ciphertext.payload[0] ^ 0x01]) + \
            real.ciphertext.payload[1:]
        ue.replica = dataclasses.replace(
            real, ciphertext=dataclasses.replace(real.ciphertext,
                                                 payload=flipped))
        with pytest.raises(FallbackRequired):
            satellite.establish_session_locally(ue, 0.0,
                                                home.verify_key)

    def test_signature_substitution_detected(self, deployment):
        """A forged signature from a non-home key is rejected."""
        home, satellite, ue = deployment
        mallory_sk, _ = generate_keypair()
        forged = mallory_sk.sign(b"whatever")
        ue.replica = dataclasses.replace(ue.replica, signature=forged)
        with pytest.raises(FallbackRequired):
            satellite.establish_session_locally(ue, 0.0,
                                                home.verify_key)


class TestReplayAndFreshness:
    def test_ttl_expiry_forces_home_refresh(self, deployment):
        """"On TTL expiry, the edge satellite will update states from
        the terrestrial home instead of using UE-side states."""
        home, satellite, ue = deployment
        long_after = ue.replica.issued_at + 10 * 86400.0
        with pytest.raises(FallbackRequired):
            satellite.establish_session_locally(ue, long_after,
                                                home.verify_key)

    def test_version_downgrade_refused_by_ue(self, deployment):
        home, _, ue = deployment
        from repro.fiveg.procedures import build_state_bundle
        session = home.core.smf.sessions_for(ue.supi)[0]
        bundle = build_state_bundle(session,
                                    home.core.amf.context(ue.supi),
                                    (1, 1))
        old = ue.replica
        home.apply_usage_report(ue, bundle, 1000, 1000)
        with pytest.raises(ValueError):
            ue.store_replica(old)

    def test_replayed_hello_yields_unlinkable_keys(self, deployment):
        home, satellite, ue = deployment
        creds = satellite.credentials
        responder = Responder(creds.certificate, creds.signing_key)
        initiator = Initiator(home.verify_key)
        _, s1 = responder.respond(initiator.hello)
        _, s2 = responder.respond(initiator.hello)  # replay X
        assert s1.key != s2.key


class TestUeManipulation:
    """"Any illegal local state manipulations will thus be detected."""

    def test_ue_cannot_upgrade_its_own_qos(self, deployment):
        """A selfish UE re-encrypting a modified bundle fails: it has
        no authority key, so its forgery cannot carry a valid home
        signature."""
        home, satellite, ue = deployment
        own_key = home.ue_abe_key(ue)
        blob = decrypt(own_key, ue.replica.ciphertext)
        state = SessionState.from_bytes(blob)
        upgraded = dataclasses.replace(
            state, qos=dataclasses.replace(
                state.qos, max_bitrate_down_kbps=10_000_000))
        # The UE cannot produce a home signature for the new bytes;
        # the best it can do is reuse the old signature.
        from repro.crypto import abe as abe_module
        _, fake_master = abe_module.setup(b"ue-forged-authority")
        forged_ct = abe_module.encrypt(fake_master, upgraded.to_bytes(),
                                       home.state_policy(str(ue.supi)))
        ue.replica = dataclasses.replace(ue.replica,
                                         ciphertext=forged_ct)
        with pytest.raises(FallbackRequired):
            satellite.establish_session_locally(ue, 0.0,
                                                home.verify_key)

    def test_detection_falls_back_to_home_procedures(self, deployment):
        """Fallbacks are counted, mirroring the roll-back-to-legacy
        guarantee (same security as legacy 5G)."""
        home, satellite, ue = deployment
        before = satellite.fallbacks
        ue.replica = dataclasses.replace(
            ue.replica,
            ciphertext=dataclasses.replace(
                ue.replica.ciphertext,
                payload=b"\x00" * len(ue.replica.ciphertext.payload)))
        with pytest.raises(FallbackRequired):
            satellite.establish_session_locally(ue, 0.0,
                                                home.verify_key)
        assert satellite.fallbacks == before + 1
