"""Serial-vs-sharded bit-equivalence: workers change wall-clock only.

The acceptance property of the parallel runtime: for the same base
seed, every experiment artifact is bit-for-bit identical whether it
ran serially (``workers=1``, today's behaviour) or sharded across any
number of worker processes, in any shard completion order.

Every ``workers > 1`` call here runs under ``REPRO_PLANNER=sharded``
(module-wide fixture below): the auto planner would correctly judge
these deliberately small workloads below break-even and fold them back
to the in-process path, which would leave the pool machinery -- the
thing this file exists to check -- untested.  Forcing the medium is
safe precisely because of the property under test: the planner may
only ever change *where* shards run, never what they produce.
"""

import json
import os

import pytest

from repro.baselines.solutions import ALL_SOLUTIONS
from repro.experiments.chaos_availability import (
    ChaosScenario,
    run_chaos_trials,
)
from repro.experiments.cpu import fig8_latency_sweep
from repro.experiments.observability import (
    chaos_observability,
    cohort_observability,
)
from repro.experiments.sensitivity import (
    constellation_scaling,
    sensitivity_sweep,
)
from repro.experiments.signaling import sweep
from repro.orbits import iridium, oneweb
from repro.runtime import PLANNER_ENV_VAR, shutdown_worker_pools

#: Small but non-trivial chaos scenario so a 3-trial Monte Carlo stays
#: test-suite friendly while still injecting dozens of faults.
_SCENARIO = ChaosScenario(horizon_s=600.0, n_ues=6,
                          jam_start_s=120.0, jam_stop_s=300.0)


@pytest.fixture(scope="module", autouse=True)
def _force_pool_path():
    """Pin the pool medium for the whole module; tear the pool down."""
    previous = os.environ.get(PLANNER_ENV_VAR)
    os.environ[PLANNER_ENV_VAR] = "sharded"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(PLANNER_ENV_VAR, None)
        else:
            os.environ[PLANNER_ENV_VAR] = previous
        shutdown_worker_pools()


@pytest.fixture(scope="module")
def serial_monte_carlo():
    return run_chaos_trials(n_trials=3, base_seed=5, scenario=_SCENARIO,
                            workers=1)


class TestChaosEquivalence:
    def test_sharded_artifact_bit_identical(self, serial_monte_carlo):
        sharded = run_chaos_trials(n_trials=3, base_seed=5,
                                   scenario=_SCENARIO, workers=2)
        assert json.dumps(sharded.to_json(), sort_keys=True) == \
            json.dumps(serial_monte_carlo.to_json(), sort_keys=True)

    def test_worker_count_beyond_trials(self, serial_monte_carlo):
        oversubscribed = run_chaos_trials(n_trials=3, base_seed=5,
                                          scenario=_SCENARIO, workers=8)
        assert oversubscribed.to_json() == serial_monte_carlo.to_json()

    def test_fault_logs_identical_per_trial(self, serial_monte_carlo):
        sharded = run_chaos_trials(n_trials=3, base_seed=5,
                                   scenario=_SCENARIO, workers=3)
        for serial_trial, sharded_trial in zip(serial_monte_carlo.trials,
                                               sharded.trials):
            assert serial_trial["fault_log"] == sharded_trial["fault_log"]
            assert serial_trial["spacecore_outcomes"] == \
                sharded_trial["spacecore_outcomes"]

    def test_distinct_base_seeds_diverge(self, serial_monte_carlo):
        other = run_chaos_trials(n_trials=3, base_seed=6,
                                 scenario=_SCENARIO, workers=1)
        assert other.to_json() != serial_monte_carlo.to_json()

    def test_trial_seeds_are_derived_not_sequential(self,
                                                    serial_monte_carlo):
        seeds = [t["scenario"]["seed"]
                 for t in serial_monte_carlo.trials]
        assert len(set(seeds)) == 3
        assert seeds != [5, 6, 7]


class TestMetricsEquivalence:
    """ISSUE 5: merged observability snapshots are bit-identical for
    any worker count -- per-shard registries fold in trial order."""

    @pytest.fixture(scope="class")
    def serial_chaos_metrics(self):
        return chaos_observability(n_trials=3, base_seed=5,
                                   scenario=_SCENARIO, workers=1)

    def test_chaos_snapshot_bit_identical(self, serial_chaos_metrics):
        sharded = chaos_observability(n_trials=3, base_seed=5,
                                      scenario=_SCENARIO, workers=2)
        assert json.dumps(sharded["snapshot"], sort_keys=True) == \
            json.dumps(serial_chaos_metrics["snapshot"], sort_keys=True)

    def test_chaos_trace_bit_identical(self, serial_chaos_metrics):
        sharded = chaos_observability(n_trials=3, base_seed=5,
                                      scenario=_SCENARIO, workers=3)
        assert json.dumps(sharded["trace"], sort_keys=True) == \
            json.dumps(serial_chaos_metrics["trace"], sort_keys=True)

    def test_chaos_snapshot_is_sum_of_trials(self, serial_chaos_metrics):
        merged = serial_chaos_metrics["snapshot"]["counters"]
        per_trial = [t["snapshot"]["counters"]
                     for t in serial_chaos_metrics["per_trial"]]
        for key, total in merged.items():
            assert total == sum(c.get(key, 0) for c in per_trial)

    def test_cohort_snapshot_bit_identical(self):
        kwargs = dict(constellation=iridium(), n_ues=2_000,
                      duration_s=300.0, base_seed=5, n_cohorts=8)
        serial = cohort_observability(workers=1, **kwargs)
        sharded = cohort_observability(workers=2, **kwargs)
        assert json.dumps(serial["snapshot"], sort_keys=True) == \
            json.dumps(sharded["snapshot"], sort_keys=True)
        assert serial["per_point"] == sharded["per_point"]


class TestSweepEquivalence:
    def test_signaling_sweep_identical_across_worker_counts(self):
        constellations = [iridium(), oneweb()]
        serial = sweep(ALL_SOLUTIONS, constellations)
        for workers in (2, 3):
            assert sweep(ALL_SOLUTIONS, constellations,
                         workers=workers) == serial

    def test_sensitivity_grid_identical(self):
        serial = sensitivity_sweep(iridium())
        assert sensitivity_sweep(iridium(), workers=2) == serial

    def test_constellation_scaling_identical(self):
        sizes = ((6, 11), (12, 12))
        serial = constellation_scaling(sizes=sizes)
        assert constellation_scaling(sizes=sizes, workers=2) == serial

    def test_fig8_latency_identical(self):
        serial = fig8_latency_sweep(rates=(10, 100, 300))
        assert fig8_latency_sweep(rates=(10, 100, 300),
                                  workers=2) == serial


class TestPlannerAutoEquivalence:
    """With no forced mode the planner picks the medium itself; the
    artifact must not depend on which way the break-even call went."""

    def test_auto_mode_matches_serial(self, monkeypatch):
        monkeypatch.delenv(PLANNER_ENV_VAR, raising=False)
        constellations = [iridium(), oneweb()]
        serial = sweep(ALL_SOLUTIONS, constellations, workers=1)
        assert sweep(ALL_SOLUTIONS, constellations, workers=2) == serial

    def test_auto_mode_chaos_matches_serial(self, monkeypatch):
        monkeypatch.delenv(PLANNER_ENV_VAR, raising=False)
        serial = run_chaos_trials(n_trials=2, base_seed=5,
                                  scenario=_SCENARIO, workers=1)
        sharded = run_chaos_trials(n_trials=2, base_seed=5,
                                   scenario=_SCENARIO, workers=2)
        assert sharded.to_json() == serial.to_json()
