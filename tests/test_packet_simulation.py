"""Tests for the packet-level discrete-event forwarding."""

import math

import pytest

from repro.orbits import IdealPropagator, serving_satellite, starlink
from repro.sim.packets import PacketSimulation
from repro.topology import GeospatialRouter, GridTopology

BEIJING = (math.radians(39.9), math.radians(116.4))
NEW_YORK = (math.radians(40.7), math.radians(-74.0))


@pytest.fixture()
def topology():
    return GridTopology(IdealPropagator(starlink()), [])


@pytest.fixture()
def src_sat(topology):
    return serving_satellite(topology.propagator, 0.0, *BEIJING)


class TestDelivery:
    def test_single_packet_delivered(self, topology, src_sat):
        sim = PacketSimulation(topology)
        record = sim.send(src_sat, *NEW_YORK)
        sim.run()
        assert record.delivered_at_s is not None
        assert record.hops > 5
        assert not record.dropped

    def test_matches_static_route_delay(self, topology, src_sat):
        """Cross-validation: DES latency == static propagation plus
        per-hop serialisation on an unloaded network."""
        sim = PacketSimulation(topology, link_rate_mbps=1000.0)
        static = GeospatialRouter(topology).route(src_sat, *NEW_YORK,
                                                  0.0)
        record = sim.send(src_sat, *NEW_YORK, size_bytes=1500)
        sim.run()
        serialization = static.hops * 1500 * 8 / 1e9
        assert record.latency_s == pytest.approx(
            static.delay_s + serialization, rel=1e-9)

    def test_local_delivery_instant(self, topology, src_sat):
        sim = PacketSimulation(topology)
        record = sim.send(src_sat, *BEIJING)
        sim.run()
        assert record.latency_s == 0.0
        assert record.hops == 0

    def test_many_packets_statistics(self, topology, src_sat):
        sim = PacketSimulation(topology)
        for i in range(20):
            sim.send(src_sat, *NEW_YORK, at_s=i * 0.01)
        sim.run()
        low, mean, high = sim.latency_stats()
        assert 0.02 < low <= mean <= high < 0.2
        assert len(sim.delivered()) == 20


class TestQueueing:
    def test_burst_into_one_link_queues(self, topology, src_sat):
        """Simultaneous packets share the first ISL: later ones wait."""
        sim = PacketSimulation(topology, link_rate_mbps=1.0)  # slow
        records = [sim.send(src_sat, *NEW_YORK, size_bytes=1500,
                            at_s=0.0) for _ in range(5)]
        sim.run()
        latencies = [r.latency_s for r in records]
        assert latencies == sorted(latencies)
        # Each 1500B packet serialises in 12 ms at 1 Mbps; the 5th
        # packet waits 4 serialisation slots at the first hop alone.
        assert latencies[-1] - latencies[0] > 0.04

    def test_fast_links_no_spread(self, topology, src_sat):
        sim = PacketSimulation(topology, link_rate_mbps=10_000.0)
        records = [sim.send(src_sat, *NEW_YORK, at_s=0.0)
                   for _ in range(5)]
        sim.run()
        spread = (max(r.latency_s for r in records)
                  - min(r.latency_s for r in records))
        assert spread < 0.001


class TestLossAndFailures:
    def test_random_loss_drops_some(self, topology, src_sat):
        sim = PacketSimulation(topology, loss_probability=0.2, seed=1)
        for _ in range(40):
            sim.send(src_sat, *NEW_YORK)
        sim.run()
        assert sim.drop_count() > 0
        assert len(sim.delivered()) > 0

    def test_mid_flight_link_failure_drops(self, topology, src_sat):
        sim = PacketSimulation(topology)
        static = GeospatialRouter(topology).route(src_sat, *NEW_YORK,
                                                  0.0)
        record = sim.send(src_sat, *NEW_YORK)
        # Fail a link on the pinned path before the packet gets there.
        mid = len(static.path) // 2
        topology.fail_isl(static.path[mid], static.path[mid + 1])
        sim.run()
        assert record.dropped

    def test_unroutable_destination_dropped_immediately(self, topology,
                                                        src_sat):
        # Kill the source's entire neighbourhood: nothing can leave.
        for nbr in list(topology.isl_neighbors(src_sat)):
            topology.fail_isl(src_sat, nbr)
        sim = PacketSimulation(topology)
        record = sim.send(src_sat, *NEW_YORK)
        sim.run()
        assert record.dropped

    def test_validation(self, topology):
        with pytest.raises(ValueError):
            PacketSimulation(topology, link_rate_mbps=0.0)
        with pytest.raises(ValueError):
            PacketSimulation(topology, loss_probability=1.0)

    def test_latency_stats_requires_deliveries(self, topology):
        sim = PacketSimulation(topology)
        with pytest.raises(RuntimeError):
            sim.latency_stats()


class TestInjectionClamping:
    def test_past_injection_does_not_inflate_latency(self, topology,
                                                     src_sat):
        """ISSUE 5 regression: ``at_s`` in the simulated past is
        clamped for *both* the first hop and ``sent_at_s``.

        Before the fix the first hop was clamped to ``sim.now`` but
        ``sent_at_s`` kept the stale request time, so the packet
        reported ``latency_s`` inflated by however far the clock had
        already advanced -- poisoning ``latency_stats()``.
        """
        sim = PacketSimulation(topology)
        reference = sim.send(src_sat, *NEW_YORK, at_s=0.0)
        sim.run()
        advanced_to = sim.sim.now
        assert advanced_to > 0.0

        late = sim.send(src_sat, *NEW_YORK, at_s=0.0)
        sim.run()
        assert late.sent_at_s == advanced_to
        assert late.latency_s == pytest.approx(reference.latency_s)

    def test_past_injection_keeps_latency_stats_clean(self, topology,
                                                      src_sat):
        sim = PacketSimulation(topology)
        first = sim.send(src_sat, *NEW_YORK)
        sim.run()
        sim.send(src_sat, *NEW_YORK, at_s=0.0)
        sim.run()
        lo, mean, hi = sim.latency_stats()
        assert hi == pytest.approx(first.latency_s)
        assert hi - lo < 1e-9

    def test_future_injection_waits_and_counts_from_request(
            self, topology, src_sat):
        sim = PacketSimulation(topology)
        record = sim.send(src_sat, *NEW_YORK, at_s=5.0)
        sim.run()
        assert record.sent_at_s == 5.0
        assert record.delivered_at_s is not None
        assert record.delivered_at_s >= 5.0


class TestBatchInjection:
    def test_send_batch_matches_per_packet_sends(self, topology):
        import numpy as np
        rng = np.random.default_rng(3)
        n = 64
        total = topology.constellation.total_satellites
        src = rng.integers(0, total, n)
        lats = rng.uniform(-0.9, 0.9, n)
        lons = rng.uniform(-math.pi, math.pi, n)

        batch_sim = PacketSimulation(topology)
        batch = batch_sim.send_batch(src, lats, lons)
        batch_sim.run()

        scalar_sim = PacketSimulation(topology)
        scalar = [scalar_sim.send(int(s), float(la), float(lo))
                  for s, la, lo in zip(src, lats, lons)]
        scalar_sim.run()

        assert len(batch) == n
        for a, b in zip(batch, scalar):
            assert a.dropped == b.dropped
            assert a.delivered_at_s == b.delivered_at_s
            assert a.hops == b.hops

    def test_send_batch_counts_metrics(self, topology):
        from repro.obs.metrics import MetricsRegistry
        metrics = MetricsRegistry()
        sim = PacketSimulation(topology, metrics=metrics)
        sim.send_batch([0, 1, 2], [0.1, 0.2, 0.3], [0.0, 0.1, 0.2])
        sim.run()
        counters = metrics.snapshot()["counters"]
        assert counters["packet.sent"] == 3
        assert counters["routing.batches"] == 1
