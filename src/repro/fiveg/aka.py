"""Simplified 5G-AKA: authentication and key agreement (TS 33.501).

The P3 box of Fig. 9a.  The UE and the home UDM share a permanent key
K (in the SIM); the home generates an authentication vector, the UE
proves possession of K and verifies the network, and both sides derive
the key hierarchy K_AUSF -> K_SEAF -> K_AMF.

The derivation functions are HMAC-SHA256 with role labels standing in
for the MILENAGE f1-f5 family -- the protocol *shape* (who computes
what from what, and what travels where) matches the standard, which is
what the state-migration and leakage analyses need.
"""

from __future__ import annotations

import hmac
import hashlib
import secrets
from dataclasses import dataclass
from typing import Optional, Tuple


def _kdf(key: bytes, label: bytes, *context: bytes) -> bytes:
    mac = hmac.new(key, label, hashlib.sha256)
    for part in context:
        mac.update(b"|" + part)
    return mac.digest()


@dataclass(frozen=True)
class AuthenticationVector:
    """The home-generated 5G HE AV: (RAND, AUTN, XRES*, K_AUSF).

    This object is the "sensitive state" whose exposure on satellites
    the paper warns about: anyone holding it can impersonate the
    network to this UE.
    """

    rand: bytes
    autn: bytes
    xres_star: bytes
    k_ausf: bytes

    def serialize(self) -> bytes:
        """Concatenated byte encoding (for sizing and hashing)."""
        return b"".join((self.rand, self.autn, self.xres_star,
                         self.k_ausf))


def generate_vector(permanent_key: bytes,
                    serving_network: str,
                    rand: Optional[bytes] = None) -> AuthenticationVector:
    """UDM/ARPF side: derive a fresh AV for one authentication run."""
    rand = rand if rand is not None else secrets.token_bytes(16)
    sn = serving_network.encode()
    autn = _kdf(permanent_key, b"autn", rand)[:16]
    res = _kdf(permanent_key, b"res", rand, sn)[:16]
    xres_star = hashlib.sha256(rand + res).digest()[:16]
    k_ausf = _kdf(permanent_key, b"kausf", rand, sn)
    return AuthenticationVector(rand, autn, xres_star, k_ausf)


def ue_response(permanent_key: bytes, serving_network: str,
                rand: bytes, autn: bytes) -> Tuple[bytes, bytes]:
    """UE/SIM side: verify AUTN (network authenticity), compute RES*.

    Raises ``ValueError`` when AUTN fails -- a fake base station that
    does not know K cannot produce a valid AUTN.
    """
    expected_autn = _kdf(permanent_key, b"autn", rand)[:16]
    if not hmac.compare_digest(expected_autn, autn):
        raise ValueError("network authentication failed (bad AUTN)")
    sn = serving_network.encode()
    res = _kdf(permanent_key, b"res", rand, sn)[:16]
    res_star = hashlib.sha256(rand + res).digest()[:16]
    k_ausf = _kdf(permanent_key, b"kausf", rand, sn)
    return res_star, k_ausf


def confirm_response(vector: AuthenticationVector, res_star: bytes) -> bool:
    """AUSF side: check the UE's RES* against the vector."""
    return hmac.compare_digest(vector.xres_star, res_star)


def derive_k_seaf(k_ausf: bytes, serving_network: str) -> bytes:
    """K_SEAF: the serving-network anchor key."""
    return _kdf(k_ausf, b"kseaf", serving_network.encode())


def derive_k_amf(k_seaf: bytes, supi: str) -> bytes:
    """K_AMF: the AMF's NAS security key."""
    return _kdf(k_seaf, b"kamf", supi.encode())
