"""User equipment: SIM credentials, AKA client, and the state replica.

The UE is SpaceCore's state repository ("device-as-the-repository",
S4): after initial registration it stores the home-signed, ABE-wrapped
session state bundle and piggybacks it to serving satellites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..crypto.abe import AbeCiphertext
from ..crypto.signatures import VerifyKey
from .aka import ue_response
from .identifiers import Suci, Supi


@dataclass
class StateReplica:
    """The UE-held copy of its session states (S4.1 Step 3).

    ``ciphertext`` is the home-encrypted bundle only authorized
    satellites can open; ``signature`` is the home's signature over
    the serialized states, letting satellites detect UE-side
    manipulation (Appendix B).
    """

    ciphertext: AbeCiphertext
    signature: Tuple[int, int]
    version: int
    issued_at: float = 0.0

    def size_bytes(self) -> int:
        """Approximate wire size of the replica blob."""
        return self.ciphertext.size_bytes() + 128

    def to_bytes(self) -> bytes:
        """Wire encoding for piggybacking over AT commands / GTP-U."""
        import json
        document = {
            "ciphertext": self.ciphertext.to_bytes().hex(),
            "signature": list(self.signature),
            "version": self.version,
            "issued_at": self.issued_at,
        }
        return json.dumps(document, sort_keys=True,
                          separators=(",", ":")).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "StateReplica":
        import json
        from ..crypto.abe import AbeCiphertext
        document = json.loads(data.decode())
        return cls(
            ciphertext=AbeCiphertext.from_bytes(
                bytes.fromhex(document["ciphertext"])),
            signature=tuple(document["signature"]),
            version=document["version"],
            issued_at=document["issued_at"],
        )


class UserEquipment:
    """A terminal with a SIM and an optional SpaceCore proxy."""

    def __init__(self, supi: Supi, permanent_key: bytes,
                 home_public: VerifyKey,
                 lat: float = 0.0, lon: float = 0.0):
        self.supi = supi
        self._permanent_key = permanent_key
        self.home_public = home_public
        self.lat = lat
        self.lon = lon
        # Session state visible to the UE after registration.
        self.guti: Optional[str] = None
        self.ip_address: Optional[str] = None
        self.replica: Optional[StateReplica] = None
        self.k_ausf: Optional[bytes] = None
        self.connected = False

    # -- identity ----------------------------------------------------------------

    def conceal_identity(self, rng=None) -> Suci:
        """Build the SUCI for over-the-air registration."""
        return Suci.conceal(self.supi, self.home_public, rng)

    # -- authentication -------------------------------------------------------------

    def authenticate(self, serving_network: str, rand: bytes,
                     autn: bytes) -> bytes:
        """Answer a NAS authentication request; returns RES*.

        Raises ``ValueError`` when the network's AUTN is invalid (a
        satellite that cannot prove home authorisation).
        """
        res_star, k_ausf = ue_response(self._permanent_key,
                                       serving_network, rand, autn)
        self.k_ausf = k_ausf
        return res_star

    # -- state repository ------------------------------------------------------------

    def store_replica(self, replica: StateReplica) -> None:
        """Accept the home-delegated state bundle (end of C1)."""
        if self.replica is not None and replica.version < self.replica.version:
            raise ValueError("refusing to downgrade the state replica")
        self.replica = replica

    def piggyback_replica(self) -> StateReplica:
        """Hand the replica to a serving satellite (P1' of Fig. 16).

        The UE cannot read or alter the ciphertext; it only carries it.
        """
        if self.replica is None:
            raise RuntimeError(
                f"{self.supi} holds no state replica; register first")
        return self.replica

    @property
    def has_replica(self) -> bool:
        return self.replica is not None

    def move_to(self, lat: float, lon: float) -> None:
        """UE mobility (rare cell crossings are handled by the home)."""
        self.lat = lat
        self.lon = lon
