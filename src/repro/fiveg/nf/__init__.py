"""5G network functions: AMF, SMF, UPF, AUSF, UDM, PCF."""

from .amf import Amf, UeContext
from .ausf import Ausf
from .pcf import Pcf, THROTTLED_KBPS
from .smf import SessionContext, Smf
from .udm import SubscriberProfile, Udm
from .upf import ForwardingEntry, Upf

__all__ = [
    "Amf", "UeContext", "Ausf", "Pcf", "THROTTLED_KBPS",
    "SessionContext", "Smf", "SubscriberProfile", "Udm",
    "ForwardingEntry", "Upf",
]
