"""AMF: access and mobility management function.

Owns UE registration contexts: identity, current tracking area, the
NAS security context, and paging.  In the legacy architecture the AMF
also anchors the logical tracking area -- which is exactly what breaks
when the AMF rides a satellite (S3.2, "moving service areas").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..aka import derive_k_amf
from ..identifiers import Guti, GutiAllocator, Plmn, Supi
from .ausf import Ausf


@dataclass
class UeContext:
    """The AMF's per-UE registration state."""

    supi: Supi
    guti: Guti
    tracking_area: Tuple[int, int]
    k_amf: bytes
    registered: bool = True
    connected: bool = False
    session_ids: List[int] = field(default_factory=list)


class Amf:
    """Mobility anchor and NAS terminator."""

    def __init__(self, name: str, plmn: Plmn, ausf: Ausf,
                 amf_id: int = 1, rng=None):
        self.name = name
        self.plmn = plmn
        self.ausf = ausf
        self._guti_allocator = GutiAllocator(plmn, amf_id, rng)
        self._contexts: Dict[str, UeContext] = {}
        self._by_tmsi: Dict[int, str] = {}
        self.registrations = 0
        self.mobility_updates = 0
        self.paging_requests = 0

    # -- registration (C1) ---------------------------------------------------

    def register(self, supi: Supi, tracking_area: Tuple[int, int],
                 k_seaf: bytes) -> UeContext:
        """Create (or refresh) a UE context after successful AKA."""
        guti = self._guti_allocator.allocate()
        context = UeContext(
            supi=supi,
            guti=guti,
            tracking_area=tracking_area,
            k_amf=derive_k_amf(k_seaf, str(supi)),
        )
        old = self._contexts.get(str(supi))
        if old is not None:
            self._by_tmsi.pop(old.guti.tmsi, None)
            self._guti_allocator.release(old.guti)
        self._contexts[str(supi)] = context
        self._by_tmsi[guti.tmsi] = str(supi)
        self.registrations += 1
        return context

    def deregister(self, supi: Supi) -> None:
        """Drop a UE's registration context and recycle its GUTI."""
        context = self._contexts.pop(str(supi), None)
        if context is not None:
            self._by_tmsi.pop(context.guti.tmsi, None)
            self._guti_allocator.release(context.guti)

    def context(self, supi: Supi) -> Optional[UeContext]:
        """The registration context for a SUPI, if registered."""
        return self._contexts.get(str(supi))

    def context_by_tmsi(self, tmsi: int) -> Optional[UeContext]:
        """Resolve a 5G-TMSI to its registration context."""
        supi_str = self._by_tmsi.get(tmsi)
        return self._contexts.get(supi_str) if supi_str else None

    @property
    def registered_count(self) -> int:
        return len(self._contexts)

    # -- mobility (C3/C4) ----------------------------------------------------------

    def update_tracking_area(self, supi: Supi,
                             tracking_area: Tuple[int, int]) -> UeContext:
        """C4: mobility registration update into this AMF's area."""
        context = self._require(supi)
        context.tracking_area = tracking_area
        self.mobility_updates += 1
        return context

    def transfer_context_from(self, other: "Amf", supi: Supi) -> UeContext:
        """P16: pull the UE context from the old AMF, which deletes it."""
        source = other.context(supi)
        if source is None:
            raise KeyError(f"{other.name} has no context for {supi}")
        migrated = UeContext(
            supi=source.supi,
            guti=self._guti_allocator.allocate(),
            tracking_area=source.tracking_area,
            k_amf=source.k_amf,
            session_ids=list(source.session_ids),
        )
        other.deregister(supi)
        self._contexts[str(supi)] = migrated
        self._by_tmsi[migrated.guti.tmsi] = str(supi)
        self.mobility_updates += 1
        return migrated

    # -- connection management -------------------------------------------------------

    def connect(self, supi: Supi) -> None:
        """Mark the UE's signaling connection active."""
        self._require(supi).connected = True

    def release(self, supi: Supi) -> None:
        """Mark the UE's signaling connection idle."""
        context = self._contexts.get(str(supi))
        if context is not None:
            context.connected = False

    def page(self, supi: Supi) -> bool:
        """Downlink-data paging trigger; True when the UE is known."""
        self.paging_requests += 1
        return str(supi) in self._contexts

    def _require(self, supi: Supi) -> UeContext:
        context = self._contexts.get(str(supi))
        if context is None:
            raise KeyError(f"no registered context for {supi}")
        return context
