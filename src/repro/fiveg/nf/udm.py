"""UDM: unified data management (the subscriber database).

Holds every subscriber's permanent key and service profile, generates
authentication vectors, and de-conceals SUCIs.  In SpaceCore the UDM
always stays at the terrestrial home (S4.4: the home is the root of
trust); Option 4 of Fig. 6 is the configuration that dangerously puts
it on satellites.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, Optional

from ...crypto.signatures import SigningKey
from ..aka import AuthenticationVector, generate_vector
from ..identifiers import Suci, Supi


@dataclass
class SubscriberProfile:
    """One subscription record."""

    supi: Supi
    permanent_key: bytes
    five_qi: int = 9
    priority: int = 8
    quota_mb: int = 15_000
    max_bitrate_up_kbps: int = 512
    max_bitrate_down_kbps: int = 896


class Udm:
    """The subscriber database and authentication-credential source."""

    def __init__(self, network_name: str, home_key: SigningKey):
        self.network_name = network_name
        self._home_key = home_key
        self._subscribers: Dict[str, SubscriberProfile] = {}
        self.vectors_generated = 0

    # -- provisioning -------------------------------------------------------

    def provision(self, supi: Supi,
                  permanent_key: Optional[bytes] = None,
                  **profile_overrides) -> SubscriberProfile:
        """Add a subscriber (what a SIM-provisioning system would do)."""
        key = permanent_key or secrets.token_bytes(32)
        profile = SubscriberProfile(supi, key, **profile_overrides)
        self._subscribers[str(supi)] = profile
        return profile

    def profile(self, supi: Supi) -> SubscriberProfile:
        """The subscription record for a SUPI; KeyError when unknown."""
        try:
            return self._subscribers[str(supi)]
        except KeyError:
            raise KeyError(f"unknown subscriber {supi}") from None

    def knows(self, supi: Supi) -> bool:
        """Whether this subscriber is provisioned here."""
        return str(supi) in self._subscribers

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- identity ----------------------------------------------------------

    def deconceal(self, suci: Suci) -> Supi:
        """SIDF role: recover the SUPI from a concealed identity."""
        supi = suci.deconceal(self._home_key)
        if not self.knows(supi):
            raise KeyError("SUCI resolves to an unknown subscriber")
        return supi

    # -- authentication -------------------------------------------------------

    def authentication_vector(self, supi: Supi,
                              serving_network: str
                              ) -> AuthenticationVector:
        """Generate a fresh 5G HE AV for one authentication run."""
        profile = self.profile(supi)
        self.vectors_generated += 1
        return generate_vector(profile.permanent_key, serving_network)
