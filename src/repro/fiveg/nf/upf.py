"""UPF: user-plane function (packet gateway).

Holds per-session forwarding rules keyed by tunnel id, forwards user
traffic, and accumulates the usage counters the billing chain needs.
The *anchor* UPF (PSA-UPF) role of the legacy architecture is the
single-point bottleneck SpaceCore removes (S3.1, Fig. 5a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..qos import QosShaper
from ..state import QosState


@dataclass
class ForwardingEntry:
    """One installed packet-forwarding rule set."""

    tunnel_id: int
    ue_address: str
    qos: QosState
    bytes_up: int = 0
    bytes_down: int = 0
    shaper: Optional[QosShaper] = None

    @property
    def total_mb(self) -> float:
        return (self.bytes_up + self.bytes_down) / 1e6


class Upf:
    """A user-plane gateway (satellite-local or terrestrial anchor).

    With ``enforce_qos=True`` each forwarding rule carries a token-
    bucket shaper parameterised from the session's S3 state, and
    forwarding calls must supply the current time.
    """

    def __init__(self, name: str, is_anchor: bool = False,
                 enforce_qos: bool = False):
        self.name = name
        self.is_anchor = is_anchor
        self.enforce_qos = enforce_qos
        self._entries: Dict[int, ForwardingEntry] = {}
        self._by_address: Dict[str, int] = {}
        self.packets_forwarded = 0
        self.packets_dropped = 0

    # -- rule management (P8) -------------------------------------------------

    def install_rule(self, tunnel_id: int, ue_address: str,
                     qos: QosState) -> ForwardingEntry:
        """Install a forwarding rule (P8), with a shaper when enforcing."""
        shaper = QosShaper(qos) if self.enforce_qos else None
        entry = ForwardingEntry(tunnel_id, ue_address, qos,
                                shaper=shaper)
        self._entries[tunnel_id] = entry
        self._by_address[ue_address] = tunnel_id
        return entry

    def update_qos(self, tunnel_id: int, qos: QosState) -> None:
        """Apply a home-pushed QoS change (S4.4 session modification)."""
        entry = self._entries.get(tunnel_id)
        if entry is None:
            raise KeyError(f"no rule for tunnel {tunnel_id}")
        entry.qos = qos
        if entry.shaper is not None:
            entry.shaper.reconfigure(qos)

    def remove_rule(self, tunnel_id: int) -> None:
        """Tear down a session's forwarding rule (no-op if absent)."""
        entry = self._entries.pop(tunnel_id, None)
        if entry is not None:
            self._by_address.pop(entry.ue_address, None)

    def has_rule(self, tunnel_id: int) -> bool:
        """Whether a tunnel has an installed rule."""
        return tunnel_id in self._entries

    def rule_for_address(self, ue_address: str
                         ) -> Optional[ForwardingEntry]:
        """The forwarding entry serving a UE address, if any."""
        tunnel = self._by_address.get(ue_address)
        return self._entries.get(tunnel) if tunnel is not None else None

    @property
    def session_count(self) -> int:
        return len(self._entries)

    # -- data plane -----------------------------------------------------------

    def forward_uplink(self, tunnel_id: int, size_bytes: int,
                       now_s: Optional[float] = None) -> bool:
        """Forward one uplink packet; False when dropped.

        Drops happen when no rule matches or (with enforcement on and
        a timestamp supplied) when the session's shaper rejects it.
        """
        entry = self._entries.get(tunnel_id)
        if entry is None:
            self.packets_dropped += 1
            return False
        if (entry.shaper is not None and now_s is not None
                and not entry.shaper.admit_uplink(size_bytes, now_s)):
            self.packets_dropped += 1
            return False
        entry.bytes_up += size_bytes
        self.packets_forwarded += 1
        return True

    def forward_downlink(self, ue_address: str, size_bytes: int,
                         now_s: Optional[float] = None) -> bool:
        """Forward one downlink packet addressed to a UE."""
        entry = self.rule_for_address(ue_address)
        if entry is None:
            self.packets_dropped += 1
            return False
        if (entry.shaper is not None and now_s is not None
                and not entry.shaper.admit_downlink(size_bytes, now_s)):
            self.packets_dropped += 1
            return False
        entry.bytes_down += size_bytes
        self.packets_forwarded += 1
        return True

    # -- billing support ---------------------------------------------------------

    def usage_report(self, tunnel_id: int) -> Tuple[int, int]:
        """(bytes_up, bytes_down) for the billing chain (S4)."""
        entry = self._entries.get(tunnel_id)
        if entry is None:
            return 0, 0
        return entry.bytes_up, entry.bytes_down
