"""AUSF: authentication server function.

Fronts the UDM during 5G-AKA: fetches vectors, confirms the UE's
RES*, and hands the anchor key K_SEAF to the AMF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..aka import (
    AuthenticationVector,
    confirm_response,
    derive_k_seaf,
)
from ..identifiers import Supi
from .udm import Udm


@dataclass
class PendingAuthentication:
    """An AKA run awaiting the UE's response."""

    supi: Supi
    vector: AuthenticationVector
    serving_network: str


class Ausf:
    """Authentication orchestration between AMF and UDM."""

    def __init__(self, udm: Udm):
        self.udm = udm
        self._pending: Dict[str, PendingAuthentication] = {}
        self.authentications_succeeded = 0
        self.authentications_failed = 0

    def start_authentication(self, supi: Supi, serving_network: str
                             ) -> Tuple[bytes, bytes]:
        """Fetch an AV from UDM; return (RAND, AUTN) for the UE."""
        vector = self.udm.authentication_vector(supi, serving_network)
        self._pending[str(supi)] = PendingAuthentication(
            supi, vector, serving_network)
        return vector.rand, vector.autn

    def confirm(self, supi: Supi, res_star: bytes) -> Optional[bytes]:
        """Check RES*; on success return K_SEAF for the AMF."""
        pending = self._pending.pop(str(supi), None)
        if pending is None:
            self.authentications_failed += 1
            return None
        if not confirm_response(pending.vector, res_star):
            self.authentications_failed += 1
            return None
        self.authentications_succeeded += 1
        return derive_k_seaf(pending.vector.k_ausf,
                             pending.serving_network)

    @property
    def pending_count(self) -> int:
        return len(self._pending)
