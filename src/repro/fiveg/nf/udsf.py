"""UDSF: the infrastructure-side unstructured data storage function.

Footnote 3 of the paper: "5G also has an infrastructure-side state
repository (UDSF [91, 92]), which is slow [93] and suffers from issues
in S3 in satellites."  We implement it as the natural alternative to
device-as-the-repository so the ablation benchmarks can compare the
two: a UDSF lookup from a satellite costs a network round trip to
wherever the UDSF lives (the remote home, or a peer satellite), plus a
store-access latency measured for stateless 5G NFs by [93].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Store access latency (s) for an external state repository; [93]
#: measures hundreds of microseconds to milliseconds per operation for
#: stateless NF state externalisation.
UDSF_ACCESS_LATENCY_S = 0.002


@dataclass
class UdsfRecord:
    """One stored state blob with optimistic-concurrency versioning."""

    key: str
    blob: bytes
    version: int = 1


class Udsf:
    """A key-value state store with version checks.

    ``location_rtt_s`` is the round trip between a client NF and this
    store; for a ground-hosted UDSF serving satellites this is the
    multi-hop ISL + gateway path that makes the design slow in space.
    """

    def __init__(self, name: str, location_rtt_s: float = 0.0):
        self.name = name
        self.location_rtt_s = location_rtt_s
        self._records: Dict[str, UdsfRecord] = {}
        self.reads = 0
        self.writes = 0
        self.conflicts = 0

    # -- operations -----------------------------------------------------------

    def put(self, key: str, blob: bytes,
            expected_version: Optional[int] = None) -> UdsfRecord:
        """Store a blob; optimistic concurrency via expected_version."""
        self.writes += 1
        existing = self._records.get(key)
        if existing is None:
            record = UdsfRecord(key, blob)
        else:
            if (expected_version is not None
                    and existing.version != expected_version):
                self.conflicts += 1
                raise ConflictError(
                    f"{key}: expected v{expected_version}, "
                    f"store has v{existing.version}")
            record = UdsfRecord(key, blob, existing.version + 1)
        self._records[key] = record
        return record

    def get(self, key: str) -> Optional[UdsfRecord]:
        """Fetch a record by key; None when absent."""
        self.reads += 1
        return self._records.get(key)

    def delete(self, key: str) -> bool:
        """Remove a record; True when something was deleted."""
        self.writes += 1
        return self._records.pop(key, None) is not None

    @property
    def record_count(self) -> int:
        return len(self._records)

    # -- latency accounting ------------------------------------------------------

    def read_latency_s(self) -> float:
        """Wall-clock cost of one state retrieval from a client NF."""
        return self.location_rtt_s + UDSF_ACCESS_LATENCY_S

    def write_latency_s(self) -> float:
        """Wall-clock cost of one state write from a client NF."""
        return self.location_rtt_s + UDSF_ACCESS_LATENCY_S


class ConflictError(Exception):
    """Optimistic-concurrency conflict on a UDSF write."""


def compare_state_retrieval(udsf_rtt_s: float,
                            local_crypto_s: float) -> Tuple[float, float]:
    """(UDSF retrieval, device-replica retrieval) latencies in seconds.

    The footnote-3 comparison: fetching a session state from a remote
    UDSF costs its RTT plus store access; SpaceCore's device replica
    costs only the local decryption/verification (the radio leg is
    already part of the session setup either way).
    """
    udsf = udsf_rtt_s + UDSF_ACCESS_LATENCY_S
    device = local_crypto_s
    return udsf, device
