"""PCF: policy and charging function.

Turns subscription profiles into per-session QoS and billing states
(S3, S4) and applies dynamic policy -- the paper's running example is
"unlimited data speed for the first 15GB, throttled to 128Kbps
afterward" (S4.4).
"""

from __future__ import annotations

from typing import Tuple

from ..state import BillingState, QosState
from .udm import SubscriberProfile

#: Bitrate applied once the quota is exhausted (the paper's example).
THROTTLED_KBPS = 128


class Pcf:
    """Policy decisions for sessions."""

    def __init__(self):
        self.decisions = 0

    def establish(self, profile: SubscriberProfile
                  ) -> Tuple[QosState, BillingState]:
        """Initial policy for a new registration/session (P4)."""
        self.decisions += 1
        qos = QosState(
            five_qi=profile.five_qi,
            priority=profile.priority,
            max_bitrate_up_kbps=profile.max_bitrate_up_kbps,
            max_bitrate_down_kbps=profile.max_bitrate_down_kbps,
            forwarding_rules=("default-route",),
        )
        billing = BillingState(quota_mb=profile.quota_mb)
        return qos, billing

    def reevaluate(self, qos: QosState,
                   billing: BillingState) -> Tuple[QosState, BillingState]:
        """Dynamic policy on a usage report (the 15GB/128Kbps example).

        Only the home runs this in SpaceCore -- satellites report usage
        up, the PCF decides, and the home pushes updated (signed)
        states back down (S4.4).
        """
        self.decisions += 1
        if billing.throttled and qos.max_bitrate_down_kbps > THROTTLED_KBPS:
            import dataclasses
            qos = dataclasses.replace(
                qos,
                max_bitrate_up_kbps=THROTTLED_KBPS,
                max_bitrate_down_kbps=THROTTLED_KBPS,
            )
        return qos, billing
