"""SMF: session management function.

Creates PDU sessions: selects a UPF, allocates the UE's (geospatial)
IP address, installs forwarding rules, and keeps the session context
that handovers and mobility registrations update.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...geo.addressing import AddressAllocator, GeospatialAddress
from ..identifiers import Supi
from ..state import BillingState, QosState
from .upf import Upf


@dataclass
class SessionContext:
    """The SMF's per-PDU-session state."""

    session_id: int
    supi: Supi
    tunnel_id: int
    address: GeospatialAddress
    upf_name: str
    qos: QosState
    billing: BillingState
    active: bool = True


class Smf:
    """PDU session orchestration."""

    def __init__(self, name: str, address_allocator: AddressAllocator):
        self.name = name
        self._allocator = address_allocator
        self._upfs: Dict[str, Upf] = {}
        self._sessions: Dict[int, SessionContext] = {}
        self._session_ids = itertools.count(1)
        self._tunnel_ids = itertools.count(1000)
        self.sessions_created = 0

    # -- UPF pool -----------------------------------------------------------

    def attach_upf(self, upf: Upf) -> None:
        """Add a user-plane gateway to this SMF's pool."""
        self._upfs[upf.name] = upf

    def select_upf(self, prefer_anchor: bool = True) -> Upf:
        """Pick a gateway: the anchor when one exists (legacy mode)."""
        if not self._upfs:
            raise RuntimeError("no UPF attached to this SMF")
        if prefer_anchor:
            for upf in self._upfs.values():
                if upf.is_anchor:
                    return upf
        return min(self._upfs.values(), key=lambda u: u.session_count)

    # -- session lifecycle (C2) ------------------------------------------------

    def create_session(self, supi: Supi, home_cell: Tuple[int, int],
                       ue_cell: Tuple[int, int], qos: QosState,
                       billing: BillingState,
                       prefer_anchor: bool = True) -> SessionContext:
        """P7/P8: create the session and install forwarding rules."""
        upf = self.select_upf(prefer_anchor)
        address = self._allocator.allocate(home_cell, ue_cell)
        context = SessionContext(
            session_id=next(self._session_ids),
            supi=supi,
            tunnel_id=next(self._tunnel_ids),
            address=address,
            upf_name=upf.name,
            qos=qos,
            billing=billing,
        )
        upf.install_rule(context.tunnel_id, address.to_ipv6(), qos)
        self._sessions[context.session_id] = context
        self.sessions_created += 1
        return context

    def release_session(self, session_id: int) -> None:
        """Release a PDU session and its forwarding rule (idempotent)."""
        context = self._sessions.pop(session_id, None)
        if context is None:
            return
        upf = self._upfs.get(context.upf_name)
        if upf is not None:
            upf.remove_rule(context.tunnel_id)

    def session(self, session_id: int) -> Optional[SessionContext]:
        """The session context by id, if it exists."""
        return self._sessions.get(session_id)

    def sessions_for(self, supi: Supi) -> List[SessionContext]:
        """All live sessions belonging to one subscriber."""
        return [s for s in self._sessions.values()
                if str(s.supi) == str(supi)]

    @property
    def session_count(self) -> int:
        return len(self._sessions)

    # -- mobility support (C3/C4) ---------------------------------------------------

    def switch_path(self, session_id: int, new_upf_name: str
                    ) -> SessionContext:
        """P10: move a session's user plane to another UPF."""
        context = self._sessions.get(session_id)
        if context is None:
            raise KeyError(f"unknown session {session_id}")
        old_upf = self._upfs.get(context.upf_name)
        new_upf = self._upfs.get(new_upf_name)
        if new_upf is None:
            raise KeyError(f"unknown UPF {new_upf_name}")
        if old_upf is not None:
            old_upf.remove_rule(context.tunnel_id)
        new_upf.install_rule(context.tunnel_id, context.address.to_ipv6(),
                             context.qos)
        context.upf_name = new_upf_name
        return context

    def reallocate_address(self, session_id: int,
                           new_cell: Tuple[int, int]) -> SessionContext:
        """C4 with logical addressing: the IP changes with the area.

        This is the operation that kills TCP connections in the
        baselines (Fig. 21); SpaceCore avoids it for satellite
        mobility because geospatial cells never move.
        """
        context = self._sessions.get(session_id)
        if context is None:
            raise KeyError(f"unknown session {session_id}")
        upf = self._upfs.get(context.upf_name)
        if upf is not None:
            upf.remove_rule(context.tunnel_id)
        context.address = self._allocator.reallocate(context.address,
                                                     new_cell)
        if upf is not None:
            upf.install_rule(context.tunnel_id, context.address.to_ipv6(),
                             context.qos)
        return context
