"""5G core network substrate.

A from-scratch, in-process 5G core: identifiers, the S1-S5 session
state model, the C1-C4 signaling flows of Fig. 9, 5G-AKA, and the
network functions (AMF, SMF, UPF, AUSF, UDM, PCF) assembled into a
:class:`CoreNetwork` home.
"""

from .bus import SentMessage, SignalingBus
from .core import CoreNetwork, SatelliteCredentials
from .identifiers import Guti, GutiAllocator, Plmn, Suci, Supi
from .messages import (
    HANDOVER_FLOW,
    INITIAL_REGISTRATION_FLOW,
    LEGACY_FLOWS,
    MOBILITY_REGISTRATION_FLOW,
    MessageTemplate,
    ProcedureKind,
    Role,
    SESSION_ESTABLISHMENT_FLOW,
    SPACECORE_FLOWS,
    flow_size_bytes,
    security_carrying_messages,
)
from .procedures import (
    ProcedureError,
    ProcedureRunner,
    SpaceCoreRegistrar,
    build_state_bundle,
    delegate_states,
)
from .state import (
    BillingState,
    IdentifierState,
    LocationState,
    QosState,
    SecurityState,
    SessionState,
    StateCategory,
)
from .ue import StateReplica, UserEquipment

__all__ = [
    "SentMessage", "SignalingBus",
    "CoreNetwork", "SatelliteCredentials",
    "Guti", "GutiAllocator", "Plmn", "Suci", "Supi",
    "LEGACY_FLOWS", "SPACECORE_FLOWS", "MessageTemplate", "ProcedureKind",
    "Role", "flow_size_bytes", "security_carrying_messages",
    "INITIAL_REGISTRATION_FLOW", "SESSION_ESTABLISHMENT_FLOW",
    "HANDOVER_FLOW", "MOBILITY_REGISTRATION_FLOW",
    "ProcedureError", "ProcedureRunner", "SpaceCoreRegistrar",
    "build_state_bundle", "delegate_states",
    "BillingState", "IdentifierState", "LocationState", "QosState",
    "SecurityState", "SessionState", "StateCategory",
    "StateReplica", "UserEquipment",
]
