"""Session state: the five categories of S3.1.

"Each session has five categories of states according to standards
[46-51]": S1 identifiers, S2 locations, S3 QoS, S4 billing, S5
security.  This module models them as explicit dataclasses so every
procedure can record exactly which states it creates, copies, or
migrates -- the bookkeeping behind the signaling-cost and leakage
experiments.

The bundle serialises to bytes so the home can sign it and wrap it in
ABE for delegation to the UE (S4.4).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from enum import Enum
from typing import Optional, Tuple


class StateCategory(Enum):
    """The paper's S1-S5 taxonomy."""

    IDENTIFIERS = "S1"
    LOCATION = "S2"
    QOS = "S3"
    BILLING = "S4"
    SECURITY = "S5"


@dataclass(frozen=True)
class IdentifierState:
    """S1: UE and session identity."""

    supi: str
    session_id: int
    tunnel_id: int
    guti: Optional[str] = None


@dataclass(frozen=True)
class LocationState:
    """S2: serving cell, tracking area, and IP address."""

    cell_id: Tuple[int, int]
    tracking_area_id: Tuple[int, int]
    ip_address: str


@dataclass(frozen=True)
class QosState:
    """S3: QoS class, priority, and forwarding rules."""

    five_qi: int = 9
    priority: int = 8
    max_bitrate_up_kbps: int = 512
    max_bitrate_down_kbps: int = 896
    forwarding_rules: Tuple[str, ...] = ()


@dataclass(frozen=True)
class BillingState:
    """S4: usage-reporting rules and counters."""

    report_rules: Tuple[str, ...] = ("volume-per-hour",)
    quota_mb: int = 15_000
    used_mb: float = 0.0

    def charge(self, megabytes: float) -> "BillingState":
        """A copy with ``megabytes`` added to the usage counter."""
        return replace(self, used_mb=self.used_mb + megabytes)

    @property
    def throttled(self) -> bool:
        """The paper's example: throttle after the quota is burnt."""
        return self.used_mb >= self.quota_mb


@dataclass(frozen=True)
class SecurityState:
    """S5: keys, authentication vectors, and access policies.

    These are the states whose leakage Fig. 19 counts; they must
    never be stored long-term on satellites in SpaceCore.
    """

    k_amf: str = ""
    k_seaf: str = ""
    authentication_vector: str = ""
    access_policy: str = ""
    dh_prime_hex: str = ""
    dh_generator: int = 0


@dataclass(frozen=True)
class SessionState:
    """The full per-session bundle the core tracks for one UE."""

    identifiers: IdentifierState
    location: LocationState
    qos: QosState = field(default_factory=QosState)
    billing: BillingState = field(default_factory=BillingState)
    security: SecurityState = field(default_factory=SecurityState)
    version: int = 1
    ttl_s: float = 86400.0

    # -- category access ---------------------------------------------------------

    def category(self, which: StateCategory):
        """Access one of the S1-S5 sub-states by category."""
        return {
            StateCategory.IDENTIFIERS: self.identifiers,
            StateCategory.LOCATION: self.location,
            StateCategory.QOS: self.qos,
            StateCategory.BILLING: self.billing,
            StateCategory.SECURITY: self.security,
        }[which]

    def bump_version(self) -> "SessionState":
        """A home-controlled update produces a strictly newer version."""
        return replace(self, version=self.version + 1)

    def with_location(self, location: LocationState) -> "SessionState":
        """A copy with the S2 location replaced."""
        return replace(self, location=location)

    def with_billing(self, billing: BillingState) -> "SessionState":
        """A copy with the S4 billing state replaced."""
        return replace(self, billing=billing)

    def with_security(self, security: SecurityState) -> "SessionState":
        """A copy with the S5 security state replaced."""
        return replace(self, security=security)

    def expired(self, age_s: float) -> bool:
        """TTL expiry forces a refresh from the home (Appendix B)."""
        return age_s >= self.ttl_s

    # -- serialisation ------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical encoding signed by the home and wrapped in ABE."""
        payload = asdict(self)
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "SessionState":
        raw = json.loads(data.decode())
        return cls(
            identifiers=IdentifierState(
                supi=raw["identifiers"]["supi"],
                session_id=raw["identifiers"]["session_id"],
                tunnel_id=raw["identifiers"]["tunnel_id"],
                guti=raw["identifiers"]["guti"],
            ),
            location=LocationState(
                cell_id=tuple(raw["location"]["cell_id"]),
                tracking_area_id=tuple(raw["location"]["tracking_area_id"]),
                ip_address=raw["location"]["ip_address"],
            ),
            qos=QosState(
                five_qi=raw["qos"]["five_qi"],
                priority=raw["qos"]["priority"],
                max_bitrate_up_kbps=raw["qos"]["max_bitrate_up_kbps"],
                max_bitrate_down_kbps=raw["qos"]["max_bitrate_down_kbps"],
                forwarding_rules=tuple(raw["qos"]["forwarding_rules"]),
            ),
            billing=BillingState(
                report_rules=tuple(raw["billing"]["report_rules"]),
                quota_mb=raw["billing"]["quota_mb"],
                used_mb=raw["billing"]["used_mb"],
            ),
            security=SecurityState(**raw["security"]),
            version=raw["version"],
            ttl_s=raw["ttl_s"],
        )

    def size_bytes(self) -> int:
        """Serialized size of the bundle (wire/pigback accounting)."""
        return len(self.to_bytes())
