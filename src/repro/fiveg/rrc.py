"""RRC connection state machine (TS 38.331 subset).

The paper's workload model hinges on RRC behaviour: "inactive
connections will be released after 10-15 s for power saving [82]"
(S3.1), which is why sessions re-establish every ~107 s and why the
active fraction of UEs at any instant is small.  This module gives the
UE a faithful three-state machine:

* IDLE       -- camped, no context at the RAN; paging reaches the UE;
* CONNECTED  -- active radio bearer; data flows;
* INACTIVE   -- RAN keeps a suspended context (5G's RRC_INACTIVE),
               resume is cheaper than a full setup.

Transitions are driven by explicit events (data arrival, inactivity
timer, release, radio-link failure) so emulations can replay exactly
the lifecycle the datasets show (Trace 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from ..constants import RRC_INACTIVITY_TIMEOUT_S


class RrcState(Enum):
    """RrcState."""
    IDLE = "rrc-idle"
    CONNECTED = "rrc-connected"
    INACTIVE = "rrc-inactive"


class RrcEvent(Enum):
    """RrcEvent."""
    SETUP = "setup"                  # UE-originated connection
    PAGE = "page"                    # network-originated (downlink)
    INACTIVITY_EXPIRED = "inactivity"
    SUSPEND = "suspend"              # move to RRC_INACTIVE
    RESUME = "resume"
    RELEASE = "release"
    RADIO_LINK_FAILURE = "rlf"


class RrcError(Exception):
    """An event that is illegal in the current state."""


@dataclass
class RrcTransition:
    """One recorded state transition."""

    time_s: float
    event: RrcEvent
    from_state: RrcState
    to_state: RrcState


#: Legal transitions: (state, event) -> new state.
_TRANSITIONS = {
    (RrcState.IDLE, RrcEvent.SETUP): RrcState.CONNECTED,
    (RrcState.IDLE, RrcEvent.PAGE): RrcState.CONNECTED,
    (RrcState.CONNECTED, RrcEvent.INACTIVITY_EXPIRED): RrcState.IDLE,
    (RrcState.CONNECTED, RrcEvent.SUSPEND): RrcState.INACTIVE,
    (RrcState.CONNECTED, RrcEvent.RELEASE): RrcState.IDLE,
    (RrcState.CONNECTED, RrcEvent.RADIO_LINK_FAILURE): RrcState.IDLE,
    (RrcState.INACTIVE, RrcEvent.RESUME): RrcState.CONNECTED,
    (RrcState.INACTIVE, RrcEvent.PAGE): RrcState.CONNECTED,
    (RrcState.INACTIVE, RrcEvent.RELEASE): RrcState.IDLE,
    (RrcState.INACTIVE, RrcEvent.RADIO_LINK_FAILURE): RrcState.IDLE,
}


class RrcConnection:
    """Per-UE RRC state with an inactivity timer.

    The timer is *polled*: callers advance time with :meth:`tick` (or
    let an event carry its timestamp) and the machine applies the
    inactivity release when due -- this keeps the class independent of
    any particular event loop.
    """

    def __init__(self,
                 inactivity_timeout_s: float = RRC_INACTIVITY_TIMEOUT_S):
        if inactivity_timeout_s <= 0:
            raise ValueError("inactivity timeout must be positive")
        self.state = RrcState.IDLE
        self.inactivity_timeout_s = inactivity_timeout_s
        self.last_activity_s = 0.0
        self.history: List[RrcTransition] = []
        self.setups = 0
        self.resumes = 0

    # -- events -------------------------------------------------------------------

    def handle(self, event: RrcEvent, time_s: float) -> RrcState:
        """Apply one event; raises :class:`RrcError` when illegal."""
        key = (self.state, event)
        if key not in _TRANSITIONS:
            raise RrcError(f"{event.value} is illegal in "
                           f"{self.state.value}")
        new_state = _TRANSITIONS[key]
        self.history.append(RrcTransition(time_s, event, self.state,
                                          new_state))
        self.state = new_state
        if event is RrcEvent.SETUP or event is RrcEvent.PAGE:
            self.setups += 1
        if event is RrcEvent.RESUME:
            self.resumes += 1
        if new_state is RrcState.CONNECTED:
            self.last_activity_s = time_s
        return new_state

    def data_activity(self, time_s: float) -> None:
        """Uplink/downlink traffic refreshes the inactivity timer."""
        if self.state is not RrcState.CONNECTED:
            raise RrcError("data activity requires RRC connected")
        self.last_activity_s = time_s

    def tick(self, time_s: float) -> Optional[RrcTransition]:
        """Advance the clock; fires the inactivity release when due.

        Returns the transition if one fired, else None.
        """
        if (self.state is RrcState.CONNECTED
                and time_s - self.last_activity_s
                >= self.inactivity_timeout_s):
            self.handle(RrcEvent.INACTIVITY_EXPIRED, time_s)
            return self.history[-1]
        return None

    # -- queries -------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self.state is RrcState.CONNECTED

    @property
    def reachable_by_paging(self) -> bool:
        """IDLE and INACTIVE UEs listen to paging occasions."""
        return self.state in (RrcState.IDLE, RrcState.INACTIVE)

    def connected_time_fraction(self, horizon_s: float) -> float:
        """Fraction of the horizon spent CONNECTED (from history)."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        connected_since: Optional[float] = None
        total = 0.0
        for transition in self.history:
            if transition.to_state is RrcState.CONNECTED:
                connected_since = transition.time_s
            elif (transition.from_state is RrcState.CONNECTED
                    and connected_since is not None):
                total += transition.time_s - connected_since
                connected_since = None
        if connected_since is not None:
            total += horizon_s - connected_since
        return min(1.0, total / horizon_s)
