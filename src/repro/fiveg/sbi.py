"""Service-based interface (SBI): how 5G core NFs actually talk.

TS 23.501 organises the core as producer/consumer services
(Nudm_UEAuthentication, Nsmf_PDUSession, ...) over a service mesh.
This module implements that layer in-process: NFs register service
operations, consumers invoke them through the mesh, and the mesh
records per-service invocation counts and latencies -- which is how a
real deployment would observe exactly the signaling loads the paper's
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..obs.metrics import MetricsRegistry

#: The standard service operations the procedures use.
KNOWN_SERVICES = (
    "Nudm_UEAuthentication_Get",
    "Nudm_SDM_Get",
    "Nudm_UECM_Registration",
    "Nausf_UEAuthentication_Authenticate",
    "Nsmf_PDUSession_CreateSMContext",
    "Nsmf_PDUSession_UpdateSMContext",
    "Nsmf_PDUSession_ReleaseSMContext",
    "Npcf_SMPolicyControl_Create",
    "Npcf_AMPolicyControl_Create",
    "Namf_Communication_UEContextTransfer",
)


class SbiError(Exception):
    """Service invocation failure."""


@dataclass(frozen=True)
class SbiRequest:
    """One service invocation."""

    service: str
    consumer: str
    payload: Dict[str, Any]


@dataclass(frozen=True)
class SbiResponse:
    """The producer's answer."""

    status: int
    body: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[SbiRequest], SbiResponse]


@dataclass
class ServiceRecord:
    """One registered service operation (who produces it, and how)."""

    producer: str
    handler: Handler


class ServiceMesh:
    """In-process SBI dispatch with observability.

    ``transport_latency`` optionally charges a per-call delay (e.g.
    the satellite-to-ground RTT when producer and consumer straddle
    the boundary); callers pass a function of (consumer, producer).

    Invocation/failure totals and handler latency live in a
    :class:`~repro.obs.metrics.MetricsRegistry` (pass one to share it
    with the rest of an instrumented run; the mesh creates a private
    one otherwise).  Handler latency is stamped by the injectable
    ``clock`` -- a zero-argument callable such as ``lambda: sim.now``.
    With no clock, latency is simply not measured: the mesh never
    falls back to the wall clock, which would poison the deterministic
    artifacts with non-reproducible timings.
    """

    def __init__(self, transport_latency: Optional[
            Callable[[str, str], float]] = None,
            clock: Optional[Callable[[], float]] = None,
            metrics: Optional[MetricsRegistry] = None):
        self._services: Dict[str, ServiceRecord] = {}
        self._transport_latency = transport_latency
        self._clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.simulated_latency_s = 0.0

    # -- registration -------------------------------------------------------------

    def register(self, service: str, producer: str,
                 handler: Handler) -> None:
        """Bind a service operation to its producer NF."""
        if service in self._services:
            raise SbiError(f"{service} already registered by "
                           f"{self._services[service].producer}")
        self._services[service] = ServiceRecord(producer, handler)

    def deregister(self, service: str) -> None:
        """Remove a service binding (idempotent)."""
        self._services.pop(service, None)

    def is_registered(self, service: str) -> bool:
        """Whether a producer currently serves this operation."""
        return service in self._services

    def producer_of(self, service: str) -> str:
        """The NF producing a service; SbiError when unknown."""
        record = self._services.get(service)
        if record is None:
            raise SbiError(f"no producer for {service}")
        return record.producer

    # -- invocation --------------------------------------------------------------

    def invoke(self, service: str, consumer: str,
               **payload: Any) -> SbiResponse:
        """Call a service; raises :class:`SbiError` when unknown."""
        record = self._services.get(service)
        if record is None:
            raise SbiError(f"service {service} not registered")
        if self._transport_latency is not None:
            self.simulated_latency_s += self._transport_latency(
                consumer, record.producer)
        request = SbiRequest(service, consumer, dict(payload))
        self.metrics.counter("sbi.invocations", service=service).inc()
        start = self._clock() if self._clock is not None else None
        try:
            response = record.handler(request)
        except Exception as exc:  # producer bug -> 500
            response = SbiResponse(500, {"error": str(exc)})
        if start is not None and self._clock is not None:
            self.metrics.histogram(
                "sbi.latency_s", service=service).observe(
                    self._clock() - start)
        if not response.ok:
            self.metrics.counter("sbi.failures", service=service).inc()
        return response

    # -- observability ---------------------------------------------------------------

    def invocation_counts(self) -> Dict[str, int]:
        """Per-service invocation totals (observability)."""
        return {name: int(self.metrics.counter_value(
                    "sbi.invocations", service=name))
                for name in self._services}

    def total_invocations(self) -> int:
        """All invocations across every registered service."""
        return sum(self.invocation_counts().values())

    def failure_counts(self) -> Dict[str, int]:
        """Per-service failure totals, omitting clean services."""
        counts = {name: int(self.metrics.counter_value(
                      "sbi.failures", service=name))
                  for name in self._services}
        return {name: count for name, count in counts.items() if count}


def build_core_mesh(core, transport_latency: Optional[
        Callable[[str, str], float]] = None,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None) -> ServiceMesh:
    """Wire a :class:`~repro.fiveg.core.CoreNetwork`'s NFs to a mesh.

    Exposes the subset of operations the C1/C2 procedures consume, each
    handler delegating to the real NF object.
    """
    from .identifiers import Supi

    mesh = ServiceMesh(transport_latency, clock=clock, metrics=metrics)

    def _supi(request: SbiRequest) -> Supi:
        raw = request.payload["supi"]
        if isinstance(raw, Supi):
            return raw
        raise SbiError("supi payload must be a Supi instance")

    def auth_get(request: SbiRequest) -> SbiResponse:
        vector = core.udm.authentication_vector(
            _supi(request), request.payload["serving_network"])
        return SbiResponse(200, {"vector": vector})

    def sdm_get(request: SbiRequest) -> SbiResponse:
        profile = core.udm.profile(_supi(request))
        return SbiResponse(200, {"profile": profile})

    def ausf_authenticate(request: SbiRequest) -> SbiResponse:
        rand, autn = core.ausf.start_authentication(
            _supi(request), request.payload["serving_network"])
        return SbiResponse(200, {"rand": rand, "autn": autn})

    def policy_create(request: SbiRequest) -> SbiResponse:
        qos, billing = core.pcf.establish(
            core.udm.profile(_supi(request)))
        return SbiResponse(201, {"qos": qos, "billing": billing})

    def sm_create(request: SbiRequest) -> SbiResponse:
        qos, billing = core.pcf.establish(
            core.udm.profile(_supi(request)))
        session = core.smf.create_session(
            _supi(request), request.payload["home_cell"],
            request.payload["ue_cell"], qos, billing,
            prefer_anchor=request.payload.get("prefer_anchor", True))
        return SbiResponse(201, {"session": session})

    def sm_release(request: SbiRequest) -> SbiResponse:
        core.smf.release_session(request.payload["session_id"])
        return SbiResponse(204)

    mesh.register("Nudm_UEAuthentication_Get", "udm", auth_get)
    mesh.register("Nudm_SDM_Get", "udm", sdm_get)
    mesh.register("Nausf_UEAuthentication_Authenticate", "ausf",
                  ausf_authenticate)
    mesh.register("Npcf_SMPolicyControl_Create", "pcf", policy_create)
    mesh.register("Nsmf_PDUSession_CreateSMContext", "smf", sm_create)
    mesh.register("Nsmf_PDUSession_ReleaseSMContext", "smf",
                  sm_release)
    return mesh
