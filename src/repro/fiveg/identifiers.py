"""5G identifiers: SUPI, SUCI, GUTI/TMSI, PLMN.

The subset of TS 23.003 identity machinery the procedures need:

* SUPI -- the permanent subscriber identity (IMSI-shaped);
* SUCI -- the concealed SUPI sent over the air during registration
  (5G encrypts it under the home network's public key; we model the
  concealment with the same hybrid pattern over our Schnorr group);
* 5G-GUTI / 5G-TMSI -- the temporary identity the AMF assigns.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from ..crypto.signatures import SigningKey, VerifyKey


@dataclass(frozen=True)
class Plmn:
    """Public land mobile network: (MCC, MNC)."""

    mcc: int
    mnc: int

    def __post_init__(self) -> None:
        if not 0 <= self.mcc <= 999 or not 0 <= self.mnc <= 999:
            raise ValueError("MCC/MNC must be 3-digit codes")

    def encode(self) -> int:
        """32-bit encoding used as the address prefix (Fig. 15c)."""
        return self.mcc * 1000 + self.mnc

    @classmethod
    def decode(cls, value: int) -> "Plmn":
        return cls(value // 1000, value % 1000)


@dataclass(frozen=True)
class Supi:
    """Subscription permanent identifier (IMSI format)."""

    plmn: Plmn
    msin: int  # subscriber number within the PLMN

    def __post_init__(self) -> None:
        if not 0 <= self.msin < 10**10:
            raise ValueError("MSIN must be at most 10 digits")

    def __str__(self) -> str:
        return f"imsi-{self.plmn.mcc:03d}{self.plmn.mnc:03d}{self.msin:010d}"


@dataclass(frozen=True)
class Suci:
    """Subscription concealed identifier.

    The UE encrypts its MSIN under the home network's public key so
    passive listeners can never learn the permanent identity.  We use
    an ElGamal-style hybrid over the Schnorr group: the ciphertext
    carries an ephemeral exponential and the XOR-masked MSIN.
    """

    plmn: Plmn
    ephemeral: int
    masked_msin: bytes

    @classmethod
    def conceal(cls, supi: Supi, home_public: VerifyKey,
                rng=None) -> "Suci":
        group = home_public.group
        r = group.random_scalar(rng)
        ephemeral = group.generate(r)
        shared = group.power(home_public.y, r)
        mask = hashlib.sha256(
            b"suci" + group.element_bytes(shared)).digest()[:8]
        msin_bytes = supi.msin.to_bytes(8, "big")
        masked = bytes(a ^ b for a, b in zip(msin_bytes, mask))
        return cls(supi.plmn, ephemeral, masked)

    def deconceal(self, home_secret: SigningKey) -> Supi:
        """Only the home (UDM/SIDF) can recover the SUPI."""
        group = home_secret.group
        shared = group.power(self.ephemeral, home_secret.x)
        mask = hashlib.sha256(
            b"suci" + group.element_bytes(shared)).digest()[:8]
        msin = int.from_bytes(
            bytes(a ^ b for a, b in zip(self.masked_msin, mask)), "big")
        return Supi(self.plmn, msin)


@dataclass(frozen=True)
class Guti:
    """5G globally unique temporary identity.

    ``tmsi`` doubles as the UE-suffix field of the geospatial address
    (Fig. 15c labels the last 32 bits "5G-TMSI").
    """

    plmn: Plmn
    amf_id: int
    tmsi: int

    def __post_init__(self) -> None:
        if not 0 <= self.tmsi < 2**32:
            raise ValueError("5G-TMSI is a 32-bit value")

    def __str__(self) -> str:
        return (f"guti-{self.plmn.mcc:03d}{self.plmn.mnc:03d}"
                f"-{self.amf_id:x}-{self.tmsi:08x}")


class GutiAllocator:
    """AMF-side TMSI allocation with reuse avoidance."""

    def __init__(self, plmn: Plmn, amf_id: int, rng=None):
        self.plmn = plmn
        self.amf_id = amf_id
        self._used: set = set()
        self._rng = rng

    def allocate(self) -> Guti:
        """Hand out a fresh, unused 5G-GUTI."""
        for _ in range(64):
            tmsi = (self._rng.randrange(2**32) if self._rng is not None
                    else secrets.randbelow(2**32))
            if tmsi not in self._used:
                self._used.add(tmsi)
                return Guti(self.plmn, self.amf_id, tmsi)
        raise RuntimeError("TMSI space exhausted (implausible)")

    def release(self, guti: Guti) -> None:
        """Return a GUTI's TMSI to the pool."""
        self._used.discard(guti.tmsi)
