"""GTP-U user-plane tunneling with the SpaceCore extension header.

S5 (Implementation): "the SpaceCore proxy ... piggybacks UE states in
the FutureExtensionField (FEF) in the 5G GTP-U tunnel header for
packets to the next-hop UPFs in the same session".

This module implements the GTP-U v1 wire format (TS 29.281) to the
fidelity the system needs: the fixed 8-byte header, TEID addressing,
sequence numbers, and the extension-header chain through which the
state replica rides.  Encode/decode round-trips byte-exactly, and the
UPF chain helper shows a replica crossing UPFs inside the tunnel.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: GTP-U version 1, protocol type GTP (TS 29.281 5.1).
_GTP_VERSION = 1

#: Message type for encapsulated user data (G-PDU).
GPDU_MESSAGE_TYPE = 0xFF

#: Extension header type we use for the SpaceCore state replica.  Real
#: deployments would take a type from the reserved-for-future-use
#: space; the paper calls this the FutureExtensionField.
SPACECORE_FEF_TYPE = 0xC0

#: No-more-extension-headers marker.
_NO_MORE_EXTENSIONS = 0x00

#: Largest content one extension header can carry: the unit-length
#: octet caps the header at 255 * 4 = 1020 bytes, minus the length
#: byte, the 2-byte content-length prefix, and the next-type byte.
MAX_EXTENSION_CONTENT = 255 * 4 - 4


class GtpError(Exception):
    """Malformed GTP-U data."""


@dataclass(frozen=True)
class ExtensionHeader:
    """One GTP-U extension header.

    The on-wire content length must pad the whole header (length byte +
    content + next-type byte) to a multiple of 4 octets; the codec
    handles padding transparently.
    """

    ext_type: int
    content: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.ext_type <= 0xFF:
            raise ValueError("extension type is one octet")
        if len(self.content) > MAX_EXTENSION_CONTENT:
            raise ValueError("extension content exceeds the one-octet "
                             "unit-length format; fragment it")


@dataclass(frozen=True)
class GtpPacket:
    """A decoded GTP-U packet."""

    teid: int
    payload: bytes
    sequence: Optional[int] = None
    extensions: Tuple[ExtensionHeader, ...] = ()

    def spacecore_replica(self) -> Optional[bytes]:
        """The piggybacked state replica, if any (the paper's FEF).

        Replicas larger than one extension header are fragmented over
        several FEF headers; fragments are reassembled in chain order.
        """
        fragments = [ext.content for ext in self.extensions
                     if ext.ext_type == SPACECORE_FEF_TYPE]
        if not fragments:
            return None
        return b"".join(fragments)


def _encode_extension(ext: ExtensionHeader, next_type: int) -> bytes:
    # Total length (in 4-octet units) covers the length byte, a 2-byte
    # content-length prefix (so padding never corrupts binary
    # replicas), the content, padding, and the next-type byte.
    raw = struct.pack("!H", len(ext.content)) + ext.content
    total = 2 + len(raw)  # length byte + raw + next byte
    padded_units = (total + 3) // 4
    padding = padded_units * 4 - total
    return (bytes([padded_units]) + raw + b"\x00" * padding
            + bytes([next_type]))


def encode(packet: GtpPacket) -> bytes:
    """Serialize a GTP-U packet (TS 29.281 framing)."""
    if not 0 <= packet.teid < 2**32:
        raise ValueError("TEID is 32 bits")
    has_seq = packet.sequence is not None
    has_ext = bool(packet.extensions)
    flags = (_GTP_VERSION << 5) | (1 << 4)  # version, PT=GTP
    if has_seq:
        flags |= 0x02
    if has_ext:
        flags |= 0x04

    body = b""
    if has_seq or has_ext:
        # The optional 4-octet field block is present when any of
        # S/E/PN is set.
        seq = packet.sequence or 0
        first_ext = (packet.extensions[0].ext_type if has_ext
                     else _NO_MORE_EXTENSIONS)
        body += struct.pack("!HBB", seq & 0xFFFF, 0, first_ext)
        for i, ext in enumerate(packet.extensions):
            next_type = (packet.extensions[i + 1].ext_type
                         if i + 1 < len(packet.extensions)
                         else _NO_MORE_EXTENSIONS)
            body += _encode_extension(ext, next_type)
    body += packet.payload

    header = struct.pack("!BBHI", flags, GPDU_MESSAGE_TYPE, len(body),
                         packet.teid)
    return header + body


def decode(data: bytes) -> GtpPacket:
    """Parse a GTP-U packet; raises :class:`GtpError` when malformed."""
    if len(data) < 8:
        raise GtpError("truncated GTP-U header")
    flags, msg_type, length, teid = struct.unpack("!BBHI", data[:8])
    if (flags >> 5) != _GTP_VERSION:
        raise GtpError(f"unsupported GTP version {flags >> 5}")
    if msg_type != GPDU_MESSAGE_TYPE:
        raise GtpError(f"unexpected message type {msg_type:#x}")
    body = data[8:]
    if len(body) != length:
        raise GtpError(f"length field {length} != body {len(body)}")

    sequence: Optional[int] = None
    extensions: List[ExtensionHeader] = []
    offset = 0
    if flags & 0x07:
        if len(body) < 4:
            raise GtpError("missing optional field block")
        seq, _, next_type = struct.unpack("!HBB", body[:4])
        if flags & 0x02:
            sequence = seq
        offset = 4
        while next_type != _NO_MORE_EXTENSIONS:
            if offset >= len(body):
                raise GtpError("extension chain runs past the packet")
            units = body[offset]
            if units == 0:
                raise GtpError("zero-length extension header")
            total = units * 4
            if offset + total > len(body):
                raise GtpError("truncated extension header")
            raw = body[offset + 1: offset + total - 1]
            if len(raw) < 2:
                raise GtpError("extension too short for length prefix")
            (content_len,) = struct.unpack("!H", raw[:2])
            if content_len > len(raw) - 2:
                raise GtpError("extension content length out of range")
            ext_type = next_type
            next_type = body[offset + total - 1]
            extensions.append(ExtensionHeader(
                ext_type, raw[2:2 + content_len]))
            offset += total
    return GtpPacket(teid=teid, payload=body[offset:],
                     sequence=sequence, extensions=tuple(extensions))


def encapsulate_with_replica(teid: int, user_payload: bytes,
                             replica_bytes: bytes,
                             sequence: Optional[int] = None) -> bytes:
    """Build the paper's piggybacked data packet: user data + FEF.

    Replicas exceeding one extension header (ABE blobs run ~1.1 kB)
    are fragmented over a chain of FEF headers.
    """
    fragments = [replica_bytes[i:i + MAX_EXTENSION_CONTENT]
                 for i in range(0, len(replica_bytes),
                                MAX_EXTENSION_CONTENT)] or [b""]
    packet = GtpPacket(
        teid=teid,
        payload=user_payload,
        sequence=sequence,
        extensions=tuple(ExtensionHeader(SPACECORE_FEF_TYPE, frag)
                         for frag in fragments),
    )
    return encode(packet)


class TunnelChain:
    """A chain of UPF hops sharing one session's tunnel.

    Models the S5 data path: each hop decodes the packet, learns the
    piggybacked replica (so the next-hop UPF can enforce QoS without a
    control-plane exchange), and forwards.
    """

    def __init__(self, hop_names: List[str]):
        if not hop_names:
            raise ValueError("a tunnel chain needs at least one hop")
        self.hop_names = list(hop_names)
        self.replicas_seen: dict = {name: None for name in hop_names}

    def forward(self, wire: bytes) -> bytes:
        """Pass a packet through every hop; returns the egress bytes."""
        for name in self.hop_names:
            packet = decode(wire)
            replica = packet.spacecore_replica()
            if replica is not None:
                self.replicas_seen[name] = replica
            wire = encode(packet)  # re-serialise (byte-identical)
        return wire

    def hops_with_replica(self) -> List[str]:
        """Hop names that saw a piggybacked replica."""
        return [name for name, replica in self.replicas_seen.items()
                if replica is not None]
