"""The assembled 5G core network (the terrestrial home).

Bundles UDM/AUSF/AMF/SMF/UPF/PCF into one home network with the PKI
and ABE authority SpaceCore layers on top.  The legacy baselines run
this core either on the ground (Options 1-2) or on satellites
(Options 3-4); SpaceCore always keeps it on the ground as the root of
trust.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..crypto import abe
from ..crypto.access_tree import PolicyNode, serving_satellite_policy
from ..crypto.signatures import (
    Certificate,
    SigningKey,
    generate_keypair,
    issue_certificate,
)
from ..geo.addressing import AddressAllocator
from .identifiers import Plmn, Supi
from .nf import Amf, Ausf, Pcf, Smf, Udm, Upf
from .ue import UserEquipment


@dataclass
class SatelliteCredentials:
    """What the home installs on a satellite before launch."""

    certificate: Certificate
    signing_key: SigningKey
    abe_key: abe.AbePrivateKey


class CoreNetwork:
    """The terrestrial home network: all control functions + PKI."""

    def __init__(self, name: str = "home", plmn: Plmn = Plmn(460, 0),
                 rng=None):
        self.name = name
        self.plmn = plmn
        # Home PKI (Algorithm 2 initialisation).
        self.home_signing_key, self.home_verify_key = generate_keypair(rng)
        self.abe_params, self.abe_master = abe.setup()
        # Network functions.
        self.udm = Udm(name, self.home_signing_key)
        self.ausf = Ausf(self.udm)
        self.amf = Amf(f"{name}-amf", plmn, self.ausf, rng=rng)
        self.address_allocator = AddressAllocator(plmn.encode())
        self.smf = Smf(f"{name}-smf", self.address_allocator)
        self.pcf = Pcf()
        self.anchor_upf = Upf(f"{name}-anchor-upf", is_anchor=True)
        self.smf.attach_upf(self.anchor_upf)
        self._satellite_credentials: Dict[str, SatelliteCredentials] = {}
        self._revoked_satellites: set = set()

    # -- subscriber management ------------------------------------------------

    def provision_subscriber(self, msin: int,
                             lat: float = 0.0, lon: float = 0.0,
                             **profile_overrides) -> UserEquipment:
        """Provision a SIM and hand back the matching UE."""
        supi = Supi(self.plmn, msin)
        key = secrets.token_bytes(32)
        self.udm.provision(supi, key, **profile_overrides)
        return UserEquipment(supi, key, self.home_verify_key, lat, lon)

    # -- satellite onboarding (Algorithm 2 initialisation) -------------------------

    def enroll_satellite(self, satellite_id: str,
                         attributes: Optional[Tuple[str, ...]] = None
                         ) -> SatelliteCredentials:
        """Issue launch credentials: certificate + ABE attribute key."""
        if attributes is None:
            attributes = ("role:satellite", "cap:qos",
                          "bandwidth>=10gbps")
        sat_sk, sat_vk = generate_keypair()
        certificate = issue_certificate(self.name, self.home_signing_key,
                                        satellite_id, sat_vk)
        credentials = SatelliteCredentials(
            certificate=certificate,
            signing_key=sat_sk,
            abe_key=abe.keygen(self.abe_master, attributes),
        )
        self._satellite_credentials[satellite_id] = credentials
        return credentials

    def revoke_satellite(self, satellite_id: str) -> None:
        """Hijack response: invalidate the satellite (Appendix B).

        Subsequent state encryptions use a policy the revoked satellite
        cannot satisfy, and its certificate is blacklisted.
        """
        self._revoked_satellites.add(satellite_id)

    def is_revoked(self, satellite_id: str) -> bool:
        """Whether a satellite has been revoked by the home."""
        return satellite_id in self._revoked_satellites

    def state_policy(self, supi: Supi) -> PolicyNode:
        """The access tree A for one UE's delegated states (S4.4)."""
        return serving_satellite_policy()

    # -- convenience ------------------------------------------------------------

    @property
    def serving_network_name(self) -> str:
        return f"5G:{self.plmn.mcc:03d}{self.plmn.mnc:03d}"
