"""Signaling message catalog: the C1-C4 flows of Fig. 9 and Fig. 16.

Every procedure is transcribed as an ordered list of message templates
with source/destination network-function roles and the state operations
(create/copy/update S1-S5) the paper annotates on each arrow.  These
templates are the single source of truth for:

* the signaling-storm arithmetic of Fig. 10/20 (how many messages a
  procedure costs, and which ones cross the space-ground boundary);
* the CPU model of Fig. 7 (which NF processes each message);
* the leakage accounting of Fig. 19 (which messages carry S5).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

from .state import StateCategory


class Role(Enum):
    """Network-function roles (Appendix A acronyms)."""

    UE = "UE"
    RAN = "RAN"          # base station / satellite radio
    RAN2 = "RAN2"        # target base station in handovers
    AMF = "AMF"
    SMF = "SMF"
    UPF = "UPF"
    ANCHOR_UPF = "PSA-UPF"
    AUSF = "AUSF"
    UDM = "UDM"
    PCF = "PCF"


class ProcedureKind(Enum):
    """The four control-plane procedures the paper analyses (Fig. 9)."""

    INITIAL_REGISTRATION = "C1"
    SESSION_ESTABLISHMENT = "C2"
    HANDOVER = "C3"
    MOBILITY_REGISTRATION = "C4"


@dataclass(frozen=True)
class MessageTemplate:
    """One signaling arrow in a procedure diagram."""

    step: str                     # the paper's P-label
    name: str
    src: Role
    dst: Role
    size_bytes: int = 200
    carries: Tuple[StateCategory, ...] = ()
    creates: Tuple[StateCategory, ...] = ()

    @property
    def carries_security(self) -> bool:
        """Messages carrying S5 are the leakage vector of Fig. 19."""
        return StateCategory.SECURITY in self.carries


def _msg(step, name, src, dst, size=200, carries=(), creates=()):
    return MessageTemplate(step, name, src, dst, size,
                           tuple(carries), tuple(creates))


S1 = StateCategory.IDENTIFIERS
S2 = StateCategory.LOCATION
S3 = StateCategory.QOS
S4 = StateCategory.BILLING
S5 = StateCategory.SECURITY


# ---------------------------------------------------------------------------
# Legacy 5G flows (Fig. 9)
# ---------------------------------------------------------------------------

#: C1 -- initial registration (Fig. 9a).
INITIAL_REGISTRATION_FLOW: List[MessageTemplate] = [
    _msg("P0", "rrc-connection-request", Role.UE, Role.RAN, 88),
    _msg("P0", "rrc-connection-setup", Role.RAN, Role.UE, 120),
    _msg("P1", "rrc-setup-complete", Role.UE, Role.RAN, 96),
    _msg("P2", "registration-request", Role.RAN, Role.AMF, 256,
         carries=(S1, S2)),
    _msg("P3", "authenticate-request", Role.AMF, Role.AUSF, 180,
         carries=(S1,)),
    _msg("P3", "auth-vector-request", Role.AUSF, Role.UDM, 180,
         carries=(S1,)),
    _msg("P3", "auth-vector-response", Role.UDM, Role.AUSF, 320,
         carries=(S5,), creates=(S5,)),
    _msg("P3", "authenticate-response", Role.AUSF, Role.AMF, 280,
         carries=(S5,)),
    _msg("P3", "nas-authentication-request", Role.AMF, Role.UE, 160,
         carries=(S5,)),
    _msg("P3", "nas-authentication-response", Role.UE, Role.AMF, 120,
         creates=(S5,)),
    _msg("P4", "policy-establishment", Role.AMF, Role.PCF, 220,
         carries=(S1,)),
    _msg("P4", "policy-response", Role.PCF, Role.AMF, 260,
         creates=(S3, S4)),
    _msg("P5", "registration-accept", Role.AMF, Role.UE, 240,
         carries=(S1,)),
    _msg("P5", "registration-complete", Role.UE, Role.AMF, 96),
]

#: C2 -- session establishment (Fig. 9b).  Includes the NAS service
#: request and security-mode exchange that Trace 1 shows riding along
#: with every session activation on operational terminals.
SESSION_ESTABLISHMENT_FLOW: List[MessageTemplate] = [
    _msg("P0", "rrc-connection-request", Role.UE, Role.RAN, 88),
    _msg("P0", "rrc-connection-setup", Role.RAN, Role.UE, 120),
    _msg("P1", "rrc-setup-complete", Role.UE, Role.RAN, 96),
    _msg("P1", "service-request", Role.UE, Role.AMF, 140,
         carries=(S1,)),
    _msg("P1", "security-mode-command", Role.AMF, Role.UE, 160,
         carries=(S5,)),
    _msg("P1", "security-mode-complete", Role.UE, Role.AMF, 120),
    _msg("P6", "session-request", Role.RAN, Role.AMF, 200,
         carries=(S1,)),
    _msg("P7", "session-context-create", Role.AMF, Role.SMF, 260,
         carries=(S1,)),
    _msg("P7", "session-context-create-response", Role.SMF, Role.AMF, 180),
    _msg("P7", "udm-register-subscribe", Role.SMF, Role.UDM, 180,
         carries=(S1,)),
    _msg("P7", "udm-subscription-data", Role.UDM, Role.SMF, 240),
    _msg("P4", "policy-establishment", Role.SMF, Role.PCF, 220,
         carries=(S1,)),
    _msg("P4", "policy-response", Role.PCF, Role.SMF, 260,
         creates=(S3, S4)),
    _msg("P8", "forwarding-rule-establishment", Role.SMF, Role.UPF, 300,
         carries=(S2, S3, S4), creates=(S2,)),
    _msg("P8", "forwarding-rule-response", Role.UPF, Role.SMF, 140),
    _msg("P9", "session-accept", Role.AMF, Role.UE, 280,
         carries=(S1, S2, S3)),
    _msg("P10", "session-context-update-request", Role.SMF,
         Role.ANCHOR_UPF, 220, carries=(S1,)),
    _msg("P11", "session-context-update-response", Role.ANCHOR_UPF,
         Role.SMF, 140),
]

#: C3 -- handover between base stations / satellites (Fig. 9c).
HANDOVER_FLOW: List[MessageTemplate] = [
    _msg("P12", "measurement-report", Role.UE, Role.RAN, 120),
    _msg("P12", "handover-request", Role.RAN, Role.RAN2, 420,
         carries=(S2, S4, S5)),
    _msg("P12", "handover-command", Role.RAN, Role.UE, 160),
    _msg("P12", "handover-confirm", Role.UE, Role.RAN2, 120),
    _msg("P13", "path-switch-request", Role.RAN2, Role.AMF, 260,
         carries=(S2, S5)),
    _msg("P10", "session-context-update", Role.AMF, Role.SMF, 220,
         carries=(S2, S3)),
    _msg("P10", "forwarding-rule-modification", Role.SMF, Role.UPF, 240,
         carries=(S2, S3)),
    _msg("P14", "path-switch-response", Role.AMF, Role.RAN2, 180),
    _msg("P15", "session-release", Role.AMF, Role.RAN, 140),
]

#: C4 -- mobility registration update (Fig. 9d).  The paper's Option 3/4
#: satellites trigger this for *static* users at every pass.
MOBILITY_REGISTRATION_FLOW: List[MessageTemplate] = [
    _msg("P0", "rrc-connection-request", Role.UE, Role.RAN, 88),
    _msg("P0", "rrc-connection-setup", Role.RAN, Role.UE, 120),
    _msg("P1", "rrc-setup-complete", Role.UE, Role.RAN, 96),
    _msg("P12", "registration-request", Role.RAN, Role.AMF, 256,
         carries=(S1, S2)),
    _msg("P16", "ue-context-transfer-request", Role.AMF, Role.SMF, 200,
         carries=(S1,)),
    _msg("P16", "ue-context-transfer", Role.SMF, Role.AMF, 460,
         carries=(S1, S2, S3, S5)),
    _msg("P1-7", "udm-register-subscribe", Role.AMF, Role.UDM, 180,
         carries=(S1,)),
    _msg("P1-7", "udm-subscription-data", Role.UDM, Role.AMF, 240),
    _msg("P10", "session-context-update", Role.AMF, Role.SMF, 220,
         carries=(S1,)),
    _msg("P10", "session-context-update-ack", Role.SMF, Role.AMF, 140),
    _msg("P5", "registration-accept", Role.AMF, Role.UE, 240,
         carries=(S1,)),
    _msg("P5", "registration-complete", Role.UE, Role.AMF, 96),
    _msg("P15", "old-context-release", Role.AMF, Role.SMF, 140),
]

#: Downlink-data trigger (S3.1's prose: "To deliver downlink traffic,
#: the anchor gateway should notify AMF of the data arrival.  Then AMF
#: notifies the base station to run paging for the UE.  If successful,
#: the device repeats the above procedure").  Counted on top of the C2
#: flow for network-originated sessions.
DOWNLINK_TRIGGER_FLOW: List[MessageTemplate] = [
    _msg("DL", "downlink-data-notification", Role.ANCHOR_UPF, Role.SMF,
         140),
    _msg("DL", "data-notification-forward", Role.SMF, Role.AMF, 140,
         carries=(S1,)),
    _msg("DL", "paging-request", Role.AMF, Role.RAN, 120,
         carries=(S1,)),
    _msg("DL", "paging-broadcast", Role.RAN, Role.UE, 64),
]

#: SpaceCore's downlink trigger: Algorithm 1 delivers the packet to
#: the covering satellite, which pages the destination cell directly
#: -- no anchor, no AMF round trip (Fig. 16b).
SPACECORE_DOWNLINK_TRIGGER_FLOW: List[MessageTemplate] = [
    _msg("DL", "geospatial-paging", Role.RAN, Role.UE, 64),
]

LEGACY_FLOWS: Dict[ProcedureKind, List[MessageTemplate]] = {
    ProcedureKind.INITIAL_REGISTRATION: INITIAL_REGISTRATION_FLOW,
    ProcedureKind.SESSION_ESTABLISHMENT: SESSION_ESTABLISHMENT_FLOW,
    ProcedureKind.HANDOVER: HANDOVER_FLOW,
    ProcedureKind.MOBILITY_REGISTRATION: MOBILITY_REGISTRATION_FLOW,
}


# ---------------------------------------------------------------------------
# SpaceCore flows (Fig. 16)
# ---------------------------------------------------------------------------

#: C1 -- unchanged from legacy, but the accept carries the encrypted
#: state replica delegated to the UE (S4.2 "initial registration").
SPACECORE_INITIAL_REGISTRATION_FLOW: List[MessageTemplate] = (
    INITIAL_REGISTRATION_FLOW[:-2] + [
        _msg("P7'", "registration-accept-with-replica", Role.AMF, Role.UE,
             1100, carries=(S1, S2, S3, S4, S5)),
        _msg("P5", "registration-complete", Role.UE, Role.AMF, 96),
    ])

#: C2 -- localized session establishment (Fig. 16a): the replica is
#: piggybacked on the RRC setup complete, the satellite installs it
#: locally, and the session accept closes the exchange.  Four radio
#: messages, no home round trip.
SPACECORE_SESSION_ESTABLISHMENT_FLOW: List[MessageTemplate] = [
    _msg("P0", "rrc-connection-request", Role.UE, Role.RAN, 88),
    _msg("P0", "rrc-connection-setup", Role.RAN, Role.UE, 120),
    _msg("P1'", "rrc-setup-complete-with-replica", Role.UE, Role.RAN, 1100,
         carries=(S1, S2, S3, S4, S5)),
    _msg("P9", "session-accept", Role.RAN, Role.UE, 280,
         carries=(S1, S2, S3)),
]

#: C3 -- handover with the replica piggybacked in the confirm
#: (Fig. 16c): the path through AMF/SMF/home is bypassed entirely.
SPACECORE_HANDOVER_FLOW: List[MessageTemplate] = [
    _msg("P12", "measurement-report", Role.UE, Role.RAN, 120),
    _msg("P12", "handover-command", Role.RAN, Role.UE, 160),
    _msg("P12", "handover-confirm-with-replica", Role.UE, Role.RAN2, 1100,
         carries=(S1, S2, S3, S4, S5)),
    _msg("P15", "session-release", Role.RAN2, Role.RAN, 140),
]

#: C4 -- eliminated for satellite mobility (S4.3): geospatial tracking
#: areas never move, so a static UE performs no mobility registration.
SPACECORE_MOBILITY_REGISTRATION_FLOW: List[MessageTemplate] = []

SPACECORE_FLOWS: Dict[ProcedureKind, List[MessageTemplate]] = {
    ProcedureKind.INITIAL_REGISTRATION: SPACECORE_INITIAL_REGISTRATION_FLOW,
    ProcedureKind.SESSION_ESTABLISHMENT:
        SPACECORE_SESSION_ESTABLISHMENT_FLOW,
    ProcedureKind.HANDOVER: SPACECORE_HANDOVER_FLOW,
    ProcedureKind.MOBILITY_REGISTRATION:
        SPACECORE_MOBILITY_REGISTRATION_FLOW,
}


def flow_size_bytes(flow: List[MessageTemplate]) -> int:
    """Total bytes a procedure moves."""
    return sum(m.size_bytes for m in flow)


def security_carrying_messages(flow: List[MessageTemplate]
                               ) -> List[MessageTemplate]:
    """Messages exposing S5 in flight (Fig. 19's MITM vector)."""
    return [m for m in flow if m.carries_security]
