"""Executable signaling procedures: C1-C4 of Fig. 9, plus SpaceCore C1.

Each procedure both *performs* the state operations on live network
functions (so functional tests can verify carrier-grade behaviour) and
*emits* its message templates on a :class:`SignalingBus` (so the
signaling-cost experiments count exactly what the flow diagrams show).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..crypto import abe
from ..crypto.group import SCHNORR_GROUP
from .bus import SignalingBus
from .core import CoreNetwork
from .messages import (
    HANDOVER_FLOW,
    INITIAL_REGISTRATION_FLOW,
    MOBILITY_REGISTRATION_FLOW,
    SESSION_ESTABLISHMENT_FLOW,
    SPACECORE_INITIAL_REGISTRATION_FLOW,
    ProcedureKind,
)
from .nf.smf import SessionContext
from .nf.amf import UeContext
from .state import (
    IdentifierState,
    LocationState,
    SecurityState,
    SessionState,
)
from .ue import StateReplica, UserEquipment

CellId = Tuple[int, int]


class ProcedureError(Exception):
    """A signaling procedure could not complete."""


class ProcedureRunner:
    """Runs the legacy 5G procedures against a home core network."""

    def __init__(self, core: CoreNetwork, bus: Optional[SignalingBus] = None):
        self.core = core
        self.bus = bus if bus is not None else SignalingBus()

    def _emit(self, flow, kind: ProcedureKind) -> None:
        for template in flow:
            self.bus.send(template, kind.value)

    # -- C1: initial registration (Fig. 9a) ---------------------------------------

    def initial_registration(self, ue: UserEquipment,
                             tracking_area: CellId) -> UeContext:
        """Authenticate the UE and create its registration context."""
        core = self.core
        suci = ue.conceal_identity()
        supi = core.udm.deconceal(suci)
        rand, autn = core.ausf.start_authentication(
            supi, core.serving_network_name)
        try:
            res_star = ue.authenticate(core.serving_network_name, rand,
                                       autn)
        except ValueError as exc:
            raise ProcedureError(f"UE rejected the network: {exc}") from exc
        k_seaf = core.ausf.confirm(supi, res_star)
        if k_seaf is None:
            raise ProcedureError("home rejected the UE's RES*")
        context = core.amf.register(supi, tracking_area, k_seaf)
        core.pcf.establish(core.udm.profile(supi))
        ue.guti = str(context.guti)
        self._emit(INITIAL_REGISTRATION_FLOW,
                   ProcedureKind.INITIAL_REGISTRATION)
        return context

    # -- C2: session establishment (Fig. 9b) -----------------------------------------

    def establish_session(self, ue: UserEquipment, home_cell: CellId,
                          ue_cell: CellId,
                          prefer_anchor: bool = True) -> SessionContext:
        """Create a PDU session through the (remote) home core."""
        core = self.core
        context = core.amf.context(ue.supi)
        if context is None or not context.registered:
            raise ProcedureError(f"{ue.supi} is not registered")
        qos, billing = core.pcf.establish(core.udm.profile(ue.supi))
        session = core.smf.create_session(ue.supi, home_cell, ue_cell,
                                          qos, billing,
                                          prefer_anchor=prefer_anchor)
        context.session_ids.append(session.session_id)
        core.amf.connect(ue.supi)
        ue.ip_address = session.address.to_ipv6()
        ue.connected = True
        self._emit(SESSION_ESTABLISHMENT_FLOW,
                   ProcedureKind.SESSION_ESTABLISHMENT)
        return session

    # -- C3: handover (Fig. 9c) ---------------------------------------------------------

    def handover(self, ue: UserEquipment, session_id: int,
                 target_upf_name: str) -> SessionContext:
        """Move the user plane of one session to the target node."""
        session = self.core.smf.session(session_id)
        if session is None:
            raise ProcedureError(f"unknown session {session_id}")
        moved = self.core.smf.switch_path(session_id, target_upf_name)
        self._emit(HANDOVER_FLOW, ProcedureKind.HANDOVER)
        return moved

    # -- C4: mobility registration update (Fig. 9d) -----------------------------------------

    def mobility_registration(self, ue: UserEquipment,
                              new_tracking_area: CellId,
                              reallocate_ip: bool = True) -> UeContext:
        """The UE reports arrival in a new tracking area.

        With logical addressing the IP follows the area, which resets
        transport connections (Fig. 21); SpaceCore never invokes this
        for satellite mobility.
        """
        core = self.core
        context = core.amf.update_tracking_area(ue.supi, new_tracking_area)
        if reallocate_ip:
            for session in core.smf.sessions_for(ue.supi):
                updated = core.smf.reallocate_address(session.session_id,
                                                      new_tracking_area)
                ue.ip_address = updated.address.to_ipv6()
        self._emit(MOBILITY_REGISTRATION_FLOW,
                   ProcedureKind.MOBILITY_REGISTRATION)
        return context


class SpaceCoreRegistrar(ProcedureRunner):
    """C1 as SpaceCore extends it: same flow, plus state delegation.

    After the standard registration the home builds the full S1-S5
    bundle, signs it, encrypts it under the UE's access policy, and
    delegates it to the UE (S4.2 "initial registration", Fig. 16a).
    """

    def register_and_delegate(self, ue: UserEquipment, home_cell: CellId,
                              ue_cell: CellId,
                              now: float = 0.0) -> SessionContext:
        """Full C1 plus state delegation: the SpaceCore onboarding path."""
        core = self.core
        # Standard authentication and registration, without re-emitting
        # the legacy template list (the SpaceCore flow replaces it).
        suci = ue.conceal_identity()
        supi = core.udm.deconceal(suci)
        rand, autn = core.ausf.start_authentication(
            supi, core.serving_network_name)
        res_star = ue.authenticate(core.serving_network_name, rand, autn)
        k_seaf = core.ausf.confirm(supi, res_star)
        if k_seaf is None:
            raise ProcedureError("home rejected the UE's RES*")
        context = core.amf.register(supi, ue_cell, k_seaf)
        ue.guti = str(context.guti)
        # The home creates the session state up front: geospatial IP,
        # QoS/billing policy, security material, DH parameters.
        qos, billing = core.pcf.establish(core.udm.profile(supi))
        session = core.smf.create_session(supi, home_cell, ue_cell, qos,
                                          billing, prefer_anchor=False)
        context.session_ids.append(session.session_id)
        ue.ip_address = session.address.to_ipv6()
        bundle = build_state_bundle(session, context, ue_cell)
        replica = delegate_states(core, bundle, now)
        ue.store_replica(replica)
        self._emit(SPACECORE_INITIAL_REGISTRATION_FLOW,
                   ProcedureKind.INITIAL_REGISTRATION)
        return session


def build_state_bundle(session: SessionContext, context: UeContext,
                       ue_cell: CellId) -> SessionState:
    """Assemble the S1-S5 bundle the home delegates to the UE."""
    security = SecurityState(
        k_amf=context.k_amf.hex(),
        k_seaf="",  # never delegated: stays in the home (S4.4)
        authentication_vector="",
        access_policy="serving-satellite-policy",
        dh_prime_hex=hex(SCHNORR_GROUP.p),
        dh_generator=SCHNORR_GROUP.g,
    )
    return SessionState(
        identifiers=IdentifierState(
            supi=str(session.supi),
            session_id=session.session_id,
            tunnel_id=session.tunnel_id,
            guti=str(context.guti),
        ),
        location=LocationState(
            cell_id=ue_cell,
            tracking_area_id=ue_cell,
            ip_address=session.address.to_ipv6(),
        ),
        qos=session.qos,
        billing=session.billing,
        security=security,
    )


def delegate_states(core: CoreNetwork, bundle: SessionState,
                    now: float = 0.0) -> StateReplica:
    """Sign and ABE-encrypt a state bundle for UE storage (S4.4)."""
    serialized = bundle.to_bytes()
    signature = core.home_signing_key.sign(serialized)
    policy = core.state_policy(bundle.identifiers.supi)
    ciphertext = abe.encrypt(core.abe_master, serialized, policy)
    return StateReplica(ciphertext=ciphertext, signature=signature,
                        version=bundle.version, issued_at=now)
