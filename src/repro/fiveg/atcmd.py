"""AT-command UE proxy (S5, Implementation).

"The proxy initiates this procedure with local UE states via the
AT+CGQREQ command [102], which is piggybacked in the RRC connection
setup complete message (thus saving signaling and round trips)."

This module implements the small slice of TS 27.007 the SpaceCore UE
proxy needs: a command codec (AT+CGQREQ with a state-blob parameter,
AT+CGATT, AT+COPS) and the baseband-side parser that the satellite
agent re-intercepts.  State blobs are base64-armoured so they survive
the 7-bit command channel.
"""

from __future__ import annotations

import base64
import binascii
from dataclasses import dataclass
from typing import List, Optional, Tuple


class AtCommandError(Exception):
    """Malformed AT command or response."""


@dataclass(frozen=True)
class AtCommand:
    """One parsed AT command."""

    name: str
    parameters: Tuple[str, ...] = ()

    def render(self) -> str:
        """Serialize back to the AT command line."""
        if not self.parameters:
            return f"AT+{self.name}"
        return f"AT+{self.name}=" + ",".join(self.parameters)


def parse(line: str) -> AtCommand:
    """Parse one AT command line."""
    stripped = line.strip()
    if not stripped.upper().startswith("AT+"):
        raise AtCommandError(f"not an extended AT command: {line!r}")
    body = stripped[3:]
    if "=" in body:
        name, _, args = body.partition("=")
        parameters = tuple(part.strip() for part in args.split(","))
    else:
        name, parameters = body, ()
    if not name:
        raise AtCommandError("empty command name")
    return AtCommand(name.upper(), parameters)


# ---------------------------------------------------------------------------
# SpaceCore's CGQREQ piggyback
# ---------------------------------------------------------------------------

#: QoS profile fields of the classic +CGQREQ (precedence, delay,
#: reliability, peak, mean) -- kept for compatibility; SpaceCore
#: appends the armoured state blob as a sixth parameter.
_DEFAULT_QOS = ("1", "1", "1", "1", "1")


def build_session_request(context_id: int,
                          replica_bytes: bytes) -> AtCommand:
    """The UE proxy's session-setup command with the state replica."""
    if context_id < 1:
        raise ValueError("PDP context ids are positive")
    armoured = base64.b64encode(replica_bytes).decode("ascii")
    return AtCommand("CGQREQ",
                     (str(context_id),) + _DEFAULT_QOS + (armoured,))


def extract_session_request(command: AtCommand) -> Tuple[int, bytes]:
    """Satellite-agent side: recover (context id, replica bytes).

    Raises :class:`AtCommandError` for anything that is not a
    SpaceCore-extended CGQREQ -- the agent then falls back to legacy
    handling (S5: "If unsuccessful ... rolls back").
    """
    if command.name != "CGQREQ":
        raise AtCommandError(f"not a CGQREQ: {command.name}")
    if len(command.parameters) < 7:
        raise AtCommandError("no piggybacked state blob present")
    try:
        context_id = int(command.parameters[0])
    except ValueError as exc:
        raise AtCommandError("bad context id") from exc
    try:
        replica = base64.b64decode(command.parameters[6],
                                   validate=True)
    except (binascii.Error, ValueError) as exc:
        raise AtCommandError("state blob is not valid base64") from exc
    return context_id, replica


class UeModemProxy:
    """The system-app proxy running on a commodity UE (S5).

    Stores the armoured replica at registration time and emits the
    piggybacked CGQREQ at every session setup; tracks the context-id
    space like a real modem would.
    """

    def __init__(self):
        self._replica: Optional[bytes] = None
        self._next_context = 1
        self.commands_sent: List[AtCommand] = []

    def install_replica(self, replica_bytes: bytes) -> None:
        """Store the armoured state replica received at registration."""
        if not replica_bytes:
            raise ValueError("refusing to install an empty replica")
        self._replica = replica_bytes

    @property
    def has_replica(self) -> bool:
        return self._replica is not None

    def request_session(self) -> AtCommand:
        """Emit the piggybacked session request (P1' in Fig. 16a)."""
        if self._replica is None:
            raise AtCommandError(
                "no replica installed; register with the home first")
        command = build_session_request(self._next_context,
                                        self._replica)
        self._next_context += 1
        self.commands_sent.append(command)
        return command

    def attach(self) -> AtCommand:
        """Emit AT+CGATT=1 (PS attach)."""
        command = AtCommand("CGATT", ("1",))
        self.commands_sent.append(command)
        return command

    def detach(self) -> AtCommand:
        """Emit AT+CGATT=0 (PS detach)."""
        command = AtCommand("CGATT", ("0",))
        self.commands_sent.append(command)
        return command


class SatelliteAtAgent:
    """The satellite-side agent that re-intercepts UE commands (S5)."""

    def __init__(self):
        self.legacy_fallbacks = 0
        self.replicas_received: List[bytes] = []

    def handle(self, line: str) -> Optional[bytes]:
        """Process one command line; returns the replica when present.

        Non-SpaceCore commands (or blobs that fail to parse) return
        None and count as legacy fallbacks.
        """
        try:
            command = parse(line)
            _, replica = extract_session_request(command)
        except AtCommandError:
            self.legacy_fallbacks += 1
            return None
        self.replicas_received.append(replica)
        return replica
