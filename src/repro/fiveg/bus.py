"""Signaling bus: records every message a procedure exchanges.

Procedures send all signaling through a bus so experiments can count
messages, bytes, and S5 exposure without instrumenting each NF.  The
optional per-hop latency callback lets the emulation charge
propagation delays for messages that cross the space-ground boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .messages import MessageTemplate, Role


@dataclass(frozen=True)
class SentMessage:
    """One message instance observed on the bus."""

    template: MessageTemplate
    procedure: str
    timestamp: float

    @property
    def src(self) -> Role:
        return self.template.src

    @property
    def dst(self) -> Role:
        return self.template.dst

    @property
    def size_bytes(self) -> int:
        return self.template.size_bytes

    @property
    def carries_security(self) -> bool:
        return self.template.carries_security


class SignalingBus:
    """Collects :class:`SentMessage` records and accumulates latency."""

    def __init__(self, latency_fn: Optional[Callable[[Role, Role], float]]
                 = None):
        self.messages: List[SentMessage] = []
        self._latency_fn = latency_fn
        self.elapsed_s = 0.0

    def send(self, template: MessageTemplate, procedure: str) -> None:
        """Record one message and charge its path latency."""
        self.messages.append(SentMessage(template, procedure,
                                         self.elapsed_s))
        if self._latency_fn is not None:
            self.elapsed_s += self._latency_fn(template.src, template.dst)

    def count(self, procedure: Optional[str] = None) -> int:
        """Messages observed, optionally filtered by procedure id."""
        if procedure is None:
            return len(self.messages)
        return sum(1 for m in self.messages if m.procedure == procedure)

    def bytes_sent(self) -> int:
        """Total bytes of all recorded messages."""
        return sum(m.size_bytes for m in self.messages)

    def security_exposures(self) -> List[SentMessage]:
        """Messages that carried S5 over any link (Fig. 19 MITM)."""
        return [m for m in self.messages if m.carries_security]

    def reset(self) -> None:
        """Clear the message log and the accumulated latency."""
        self.messages.clear()
        self.elapsed_s = 0.0
