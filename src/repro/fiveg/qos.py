"""QoS enforcement: token-bucket rate limiting per session (S3).

The S3 QoS state is not just bookkeeping -- the UPF must *enforce* it.
This module implements the enforcement path: a token bucket per
direction, parameterised from :class:`~repro.fiveg.state.QosState`,
so the paper's "throttled to 128Kbps afterward" policy actually slows
packets down when the home pushes the updated state (S4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .state import QosState


class TokenBucket:
    """A standard token bucket: ``rate`` bytes/s, ``burst`` bytes."""

    def __init__(self, rate_bytes_s: float, burst_bytes: float):
        if rate_bytes_s <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate_bytes_s = rate_bytes_s
        self.burst_bytes = burst_bytes
        self._tokens = burst_bytes
        self._last_refill_s = 0.0

    def _refill(self, now_s: float) -> None:
        if now_s < self._last_refill_s:
            raise ValueError("time went backwards")
        elapsed = now_s - self._last_refill_s
        self._tokens = min(self.burst_bytes,
                           self._tokens + elapsed * self.rate_bytes_s)
        self._last_refill_s = now_s

    def admit(self, size_bytes: int, now_s: float) -> bool:
        """Admit or drop one packet at ``now_s``."""
        if size_bytes < 0:
            raise ValueError("packet size cannot be negative")
        self._refill(now_s)
        if size_bytes <= self._tokens:
            self._tokens -= size_bytes
            return True
        return False

    def available_tokens(self, now_s: float) -> float:
        """Tokens in the bucket after refilling to ``now_s``."""
        self._refill(now_s)
        return self._tokens


@dataclass
class ShaperCounters:
    admitted: int = 0
    dropped: int = 0
    admitted_bytes: int = 0

    @property
    def drop_ratio(self) -> float:
        total = self.admitted + self.dropped
        return self.dropped / total if total else 0.0


class QosShaper:
    """Bidirectional per-session shaper derived from a QosState.

    The burst allowance is one second of line rate (a common default),
    floored at one MTU so a single full-size packet always fits.
    """

    MTU_BYTES = 1500

    def __init__(self, qos: QosState):
        self.qos = qos
        self._up = TokenBucket(*self._bucket_params(
            qos.max_bitrate_up_kbps))
        self._down = TokenBucket(*self._bucket_params(
            qos.max_bitrate_down_kbps))
        self.uplink = ShaperCounters()
        self.downlink = ShaperCounters()

    @classmethod
    def _bucket_params(cls, kbps: int) -> Tuple[float, float]:
        rate = kbps * 1000.0 / 8.0
        burst = max(float(cls.MTU_BYTES), rate)
        return rate, burst

    def admit_uplink(self, size_bytes: int, now_s: float) -> bool:
        """Shape one uplink packet; True when admitted."""
        ok = self._up.admit(size_bytes, now_s)
        self._count(self.uplink, ok, size_bytes)
        return ok

    def admit_downlink(self, size_bytes: int, now_s: float) -> bool:
        """Shape one downlink packet; True when admitted."""
        ok = self._down.admit(size_bytes, now_s)
        self._count(self.downlink, ok, size_bytes)
        return ok

    @staticmethod
    def _count(counters: ShaperCounters, admitted: bool,
               size_bytes: int) -> None:
        if admitted:
            counters.admitted += 1
            counters.admitted_bytes += size_bytes
        else:
            counters.dropped += 1

    def reconfigure(self, qos: QosState) -> None:
        """Apply a home-pushed QoS update (e.g. the 128 Kbps throttle).

        Buckets are rebuilt so the new rate takes effect immediately;
        accumulated counters survive for billing.
        """
        self.qos = qos
        self._up = TokenBucket(*self._bucket_params(
            qos.max_bitrate_up_kbps))
        self._down = TokenBucket(*self._bucket_params(
            qos.max_bitrate_down_kbps))

    def achievable_throughput_kbps(self, direction: str,
                                   duration_s: float,
                                   packet_bytes: int = MTU_BYTES
                                   ) -> float:
        """Saturating throughput over ``duration_s`` (for tests/benches).

        Simulates back-to-back offered load at 1 ms granularity and
        reports what the shaper admitted.
        """
        if direction not in ("up", "down"):
            raise ValueError("direction is 'up' or 'down'")
        bucket = TokenBucket(*self._bucket_params(
            self.qos.max_bitrate_up_kbps if direction == "up"
            else self.qos.max_bitrate_down_kbps))
        admitted_bytes = 0
        t = 0.0
        while t < duration_s:
            while bucket.admit(packet_bytes, t):
                admitted_bytes += packet_bytes
            t += 0.001
        return admitted_bytes * 8.0 / 1000.0 / duration_s
