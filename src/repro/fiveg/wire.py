"""Wire codec for signaling messages.

Gives the Fig. 9/16 message catalog a concrete byte format so
emulations can move real frames across links (and so the size fields
in the catalog mean something testable)::

      0      1      2      3      4          6          8
      +------+------+------+------+----------+----------+----
      | ver  | kind | src  | dst  | type id  | length   | payload
      +------+------+------+------+----------+----------+----

Message type ids are assigned deterministically from the catalog, so
both ends of a link agree without negotiation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .messages import (
    LEGACY_FLOWS,
    MessageTemplate,
    ProcedureKind,
    Role,
    SPACECORE_FLOWS,
)

_WIRE_VERSION = 1

_ROLE_IDS: Dict[Role, int] = {role: i for i, role in enumerate(Role)}
_ROLES_BY_ID: Dict[int, Role] = {i: role for role, i in _ROLE_IDS.items()}

_KIND_IDS: Dict[ProcedureKind, int] = {
    kind: i for i, kind in enumerate(ProcedureKind)}
_KINDS_BY_ID: Dict[int, ProcedureKind] = {
    i: kind for kind, i in _KIND_IDS.items()}


def _build_type_registry() -> Tuple[Dict[str, int], Dict[int, str]]:
    """Deterministic name <-> id mapping across both flow catalogs."""
    names: List[str] = []
    seen = set()
    for flows in (LEGACY_FLOWS, SPACECORE_FLOWS):
        for kind in ProcedureKind:
            for template in flows[kind]:
                if template.name not in seen:
                    seen.add(template.name)
                    names.append(template.name)
    by_name = {name: i for i, name in enumerate(sorted(names))}
    by_id = {i: name for name, i in by_name.items()}
    return by_name, by_id


MESSAGE_TYPE_IDS, MESSAGE_NAMES_BY_ID = _build_type_registry()


class WireError(Exception):
    """Malformed signaling frame."""


@dataclass(frozen=True)
class SignalingFrame:
    """One decoded signaling frame."""

    procedure: ProcedureKind
    message_name: str
    src: Role
    dst: Role
    payload: bytes

    @property
    def size_bytes(self) -> int:
        return 8 + len(self.payload)


def encode_frame(frame: SignalingFrame) -> bytes:
    """Serialize a signaling frame."""
    try:
        type_id = MESSAGE_TYPE_IDS[frame.message_name]
    except KeyError:
        raise WireError(
            f"{frame.message_name!r} is not in the message catalog"
        ) from None
    header = struct.pack(
        "!BBBBHH",
        _WIRE_VERSION,
        _KIND_IDS[frame.procedure],
        _ROLE_IDS[frame.src],
        _ROLE_IDS[frame.dst],
        type_id,
        len(frame.payload),
    )
    return header + frame.payload


def decode_frame(data: bytes) -> SignalingFrame:
    """Parse a signaling frame; raises :class:`WireError` if invalid."""
    if len(data) < 8:
        raise WireError("frame shorter than the fixed header")
    version, kind_id, src_id, dst_id, type_id, length = struct.unpack(
        "!BBBBHH", data[:8])
    if version != _WIRE_VERSION:
        raise WireError(f"unsupported wire version {version}")
    if kind_id not in _KINDS_BY_ID:
        raise WireError(f"unknown procedure id {kind_id}")
    if src_id not in _ROLES_BY_ID or dst_id not in _ROLES_BY_ID:
        raise WireError("unknown role id")
    if type_id not in MESSAGE_NAMES_BY_ID:
        raise WireError(f"unknown message type {type_id}")
    payload = data[8:]
    if len(payload) != length:
        raise WireError(f"length field {length} != payload "
                        f"{len(payload)}")
    return SignalingFrame(
        procedure=_KINDS_BY_ID[kind_id],
        message_name=MESSAGE_NAMES_BY_ID[type_id],
        src=_ROLES_BY_ID[src_id],
        dst=_ROLES_BY_ID[dst_id],
        payload=payload,
    )


def frame_from_template(template: MessageTemplate,
                        kind: ProcedureKind,
                        payload: Optional[bytes] = None
                        ) -> SignalingFrame:
    """Materialise a catalog template as a sendable frame.

    Without an explicit payload, the frame is padded to the template's
    catalog size so emulated link loads match the size accounting.
    """
    if payload is None:
        body = max(0, template.size_bytes - 8)
        payload = b"\x00" * body
    return SignalingFrame(
        procedure=kind,
        message_name=template.name,
        src=template.src,
        dst=template.dst,
        payload=payload,
    )


def encode_flow(kind: ProcedureKind,
                flow: List[MessageTemplate]) -> List[bytes]:
    """Serialize a whole procedure's message sequence."""
    return [encode_frame(frame_from_template(t, kind)) for t in flow]
