"""NAS security context: integrity and ciphering (TS 33.501 subset).

After AKA, the security-mode-command exchange activates a NAS security
context keyed by K_AMF.  Every subsequent NAS message is ciphered and
integrity-protected with a monotonically increasing COUNT, which is
what makes replay and tampering detectable.  The SpaceCore relevance:
this context is part of S5, it travels in the handover context
transfer (the Fig. 19 leak vector), and its keys are exactly what a
hijacked stateful satellite coughs up.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Tuple


class NasSecurityError(Exception):
    """Integrity failure or replay."""


def _derive(key: bytes, label: bytes) -> bytes:
    return hmac.new(key, b"nas|" + label, hashlib.sha256).digest()


def _keystream(key: bytes, count: int, length: int) -> bytes:
    out = bytearray()
    block = 0
    while len(out) < length:
        out.extend(hashlib.sha256(
            key + count.to_bytes(4, "big")
            + block.to_bytes(4, "big")).digest())
        block += 1
    return bytes(out[:length])


@dataclass
class NasSecurityContext:
    """One direction-aware NAS security association.

    Both ends construct it from K_AMF after the security-mode
    exchange; uplink and downlink keep independent COUNTs.
    """

    k_nas_int: bytes
    k_nas_enc: bytes
    uplink_count: int = 0
    downlink_count: int = 0

    @classmethod
    def from_k_amf(cls, k_amf: bytes) -> "NasSecurityContext":
        return cls(k_nas_int=_derive(k_amf, b"int"),
                   k_nas_enc=_derive(k_amf, b"enc"))

    # -- sender side -----------------------------------------------------------

    def protect(self, plaintext: bytes, uplink: bool = True) -> bytes:
        """Cipher + MAC one NAS message; bumps the COUNT."""
        count = self.uplink_count if uplink else self.downlink_count
        ciphered = bytes(a ^ b for a, b in zip(
            plaintext, _keystream(self.k_nas_enc, count,
                                  len(plaintext))))
        mac = hmac.new(self.k_nas_int,
                       count.to_bytes(4, "big") + ciphered,
                       hashlib.sha256).digest()[:8]
        if uplink:
            self.uplink_count += 1
        else:
            self.downlink_count += 1
        return count.to_bytes(4, "big") + mac + ciphered

    # -- receiver side -----------------------------------------------------------

    def unprotect(self, protected: bytes, uplink: bool = True) -> bytes:
        """Verify + decipher; enforces strictly increasing COUNTs."""
        if len(protected) < 12:
            raise NasSecurityError("protected NAS message too short")
        count = int.from_bytes(protected[:4], "big")
        mac = protected[4:12]
        ciphered = protected[12:]
        expected = hmac.new(self.k_nas_int,
                            protected[:4] + ciphered,
                            hashlib.sha256).digest()[:8]
        if not hmac.compare_digest(mac, expected):
            raise NasSecurityError("NAS integrity check failed")
        floor = self.uplink_count if uplink else self.downlink_count
        if count < floor:
            raise NasSecurityError(
                f"replayed NAS COUNT {count} (expected >= {floor})")
        plaintext = bytes(a ^ b for a, b in zip(
            ciphered, _keystream(self.k_nas_enc, count,
                                 len(ciphered))))
        if uplink:
            self.uplink_count = count + 1
        else:
            self.downlink_count = count + 1
        return plaintext


def establish_pair(k_amf: bytes) -> Tuple[NasSecurityContext,
                                          NasSecurityContext]:
    """UE-side and AMF-side contexts from the same K_AMF."""
    return (NasSecurityContext.from_k_amf(k_amf),
            NasSecurityContext.from_k_amf(k_amf))
