"""Coverage and revisit statistics per latitude.

Supporting analysis for the S2.2/S3.2 claims: how continuously a shell
covers a given latitude, how many satellites are simultaneously
visible, and how long the gaps between passes are.  These quantities
explain the constellation-dependent differences in the evaluation
(Iridium's thin coverage vs Starlink's dense multi-coverage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .constellation import Constellation
from .propagator import IdealPropagator
from .snapshot import sample_times, visible_counts_over_times


@dataclass(frozen=True)
class CoverageStatistics:
    """Sampled coverage behaviour at one latitude."""

    lat_deg: float
    coverage_fraction: float     # fraction of time >=1 satellite
    mean_visible: float          # average simultaneously visible sats
    max_gap_s: float             # longest outage observed

    @property
    def continuous(self) -> bool:
        return self.coverage_fraction >= 0.999


def coverage_statistics(constellation: Constellation, lat_deg: float,
                        lon_deg: float = 0.0,
                        duration_s: float = 5700.0,
                        step_s: float = 30.0,
                        min_elevation_deg: Optional[float] = None
                        ) -> CoverageStatistics:
    """Sample visibility at a fixed point over ``duration_s``.

    The whole (timesteps x satellites) visibility sweep is one
    vectorised time-grid kernel; only the cheap gap bookkeeping stays
    in Python.
    """
    propagator = IdealPropagator(constellation)
    lat = math.radians(lat_deg)
    lon = math.radians(lon_deg)
    times = sample_times(0.0, duration_s, step_s)
    counts = visible_counts_over_times(propagator, times, lat, lon,
                                       min_elevation_deg)
    covered_samples = 0
    visible_total = 0
    samples = 0
    gap = 0.0
    max_gap = 0.0
    for count in counts:
        samples += 1
        visible_total += int(count)
        if count > 0:
            covered_samples += 1
            gap = 0.0
        else:
            gap += step_s
            max_gap = max(max_gap, gap)
    return CoverageStatistics(
        lat_deg=lat_deg,
        coverage_fraction=covered_samples / samples,
        mean_visible=visible_total / samples,
        max_gap_s=max_gap,
    )


def coverage_by_latitude(constellation: Constellation,
                         latitudes_deg: Tuple[float, ...] = (
                             0.0, 25.0, 45.0, 53.0, 70.0),
                         duration_s: float = 3000.0
                         ) -> List[CoverageStatistics]:
    """Coverage profile across latitudes (the shell's service band)."""
    return [coverage_statistics(constellation, lat,
                                duration_s=duration_s)
            for lat in latitudes_deg]


def densest_latitude_deg(constellation: Constellation) -> float:
    """Where ground tracks bunch up: just below the inclination.

    Walker shells spend disproportionate time near their turn-point
    latitude, which is why mid-latitude users see the most satellites
    (and why the paper's Starlink cells pinch there).
    """
    return max(0.0, constellation.inclination_deg - 3.0)
