"""Walker constellation model and the Table 1 presets.

The paper's evaluation runs on four operational LEO mega-constellations
(Table 1).  All four are *uniform* Walker constellations: ``num_planes``
circular orbits with a common inclination, spread uniformly in right
ascension, each holding ``sats_per_plane`` evenly spaced satellites.

A satellite is identified by ``(plane, slot)`` or by a flat index
``plane * sats_per_plane + slot``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from ..constants import (
    EARTH_RADIUS_KM,
    TWO_PI,
    mean_motion_rad_s,
    orbital_period_s,
    orbital_speed_km_s,
)


@dataclass(frozen=True)
class Constellation:
    """A uniform Walker constellation (Table 1 of the paper).

    Parameters
    ----------
    name:
        Human-readable constellation name.
    sats_per_plane:
        ``n`` in the paper: satellites per orbit.
    num_planes:
        ``m`` in the paper: number of orbital planes.
    altitude_km:
        ``H`` in the paper.
    inclination_deg:
        Inclination angle of every plane.
    raan_spread:
        Angular span (radians) over which plane RAANs are distributed.
        Inclined constellations (Starlink, Kuiper) use a full ``2*pi``
        Walker-delta spread; near-polar "star" constellations (OneWeb,
        Iridium) spread ascending nodes over ``pi`` so ascending and
        descending half-orbits interleave.
    phasing_factor:
        Walker phasing factor ``F``: slot ``k`` of plane ``p`` is offset
        by ``2*pi*F*p/(n*m)`` along the orbit.
    min_elevation_deg:
        Minimum elevation angle for a user to be served; controls the
        coverage footprint.
    """

    name: str
    sats_per_plane: int
    num_planes: int
    altitude_km: float
    inclination_deg: float
    raan_spread: float = TWO_PI
    phasing_factor: int = 1
    min_elevation_deg: float = 25.0

    def __post_init__(self) -> None:
        if self.sats_per_plane < 1 or self.num_planes < 1:
            raise ValueError("constellation must have >=1 plane and >=1 slot")
        if not 0.0 < self.inclination_deg <= 180.0:
            raise ValueError("inclination must be in (0, 180] degrees")
        if self.altitude_km <= 0:
            raise ValueError("altitude must be positive")

    # -- derived geometry ---------------------------------------------------

    @property
    def total_satellites(self) -> int:
        """``n * m`` in the paper."""
        return self.sats_per_plane * self.num_planes

    @property
    def inclination_rad(self) -> float:
        return math.radians(self.inclination_deg)

    @property
    def semi_major_axis_km(self) -> float:
        return EARTH_RADIUS_KM + self.altitude_km

    @property
    def period_s(self) -> float:
        return orbital_period_s(self.altitude_km)

    @property
    def mean_motion(self) -> float:
        """Mean motion (rad/s)."""
        return mean_motion_rad_s(self.altitude_km)

    @property
    def speed_km_s(self) -> float:
        """Orbital speed; Table 1 quotes 7.3-7.6 km/s for these shells."""
        return orbital_speed_km_s(self.altitude_km)

    @property
    def delta_raan(self) -> float:
        """RAAN spacing between adjacent planes (rad): the paper's d-alpha."""
        return self.raan_spread / self.num_planes

    @property
    def delta_phase(self) -> float:
        """In-plane spacing between adjacent satellites (rad): d-gamma."""
        return TWO_PI / self.sats_per_plane

    # -- satellite enumeration ----------------------------------------------

    def raan_of_plane(self, plane: int) -> float:
        """Right ascension of the ascending node of ``plane`` at epoch."""
        return (plane % self.num_planes) * self.delta_raan

    def phase_of_slot(self, plane: int, slot: int) -> float:
        """Argument of latitude of ``(plane, slot)`` at epoch (t=0)."""
        base = (slot % self.sats_per_plane) * self.delta_phase
        walker = TWO_PI * self.phasing_factor * plane / self.total_satellites
        return (base + walker) % TWO_PI

    def sat_index(self, plane: int, slot: int) -> int:
        """Flat identifier of satellite ``(plane, slot)``."""
        return (plane % self.num_planes) * self.sats_per_plane + (
            slot % self.sats_per_plane
        )

    def plane_slot(self, index: int) -> Tuple[int, int]:
        """Inverse of :meth:`sat_index`."""
        index %= self.total_satellites
        return divmod(index, self.sats_per_plane)[0], index % self.sats_per_plane

    def satellites(self) -> Iterator[Tuple[int, int]]:
        """Iterate all ``(plane, slot)`` pairs in flat-index order."""
        for plane in range(self.num_planes):
            for slot in range(self.sats_per_plane):
                yield plane, slot

    # -- grid neighbourhood (the +Grid ISL topology, §3/§6) -----------------

    def intra_plane_neighbors(self, plane: int, slot: int) -> Tuple[int, int]:
        """Flat indices of the up/down neighbours in the same orbit."""
        up = self.sat_index(plane, slot + 1)
        down = self.sat_index(plane, slot - 1)
        return up, down

    def inter_plane_neighbors(self, plane: int, slot: int) -> Tuple[int, int]:
        """Flat indices of the left/right neighbours in adjacent planes."""
        right = self.sat_index(plane + 1, slot)
        left = self.sat_index(plane - 1, slot)
        return left, right


# ---------------------------------------------------------------------------
# Table 1 presets
# ---------------------------------------------------------------------------

def starlink() -> Constellation:
    """Starlink shell 1: 22 satellites x 72 planes at 550 km, 53 deg."""
    return Constellation(
        name="Starlink",
        sats_per_plane=22,
        num_planes=72,
        altitude_km=550.0,
        inclination_deg=53.0,
        # A ~32 degree mask reproduces the paper's 165.8 s transient
        # coverage per satellite (S3.2).
        min_elevation_deg=32.0,
    )


def oneweb() -> Constellation:
    """OneWeb: 40 satellites x 18 planes at 1200 km, 87.9 deg (near-polar)."""
    return Constellation(
        name="OneWeb",
        sats_per_plane=40,
        num_planes=18,
        altitude_km=1200.0,
        inclination_deg=87.9,
        raan_spread=math.pi,
    )


def kuiper() -> Constellation:
    """Amazon Kuiper: 34 satellites x 34 planes at 630 km, 51.9 deg."""
    return Constellation(
        name="Kuiper",
        sats_per_plane=34,
        num_planes=34,
        altitude_km=630.0,
        inclination_deg=51.9,
    )


def iridium() -> Constellation:
    """Iridium: 11 satellites x 6 planes at 780 km, 86.4 deg (polar star)."""
    return Constellation(
        name="Iridium",
        sats_per_plane=11,
        num_planes=6,
        altitude_km=780.0,
        inclination_deg=86.4,
        raan_spread=math.pi,
        # Iridium serves down to ~8.2 degrees elevation; with only 66
        # satellites that mask is what makes coverage continuous.
        min_elevation_deg=8.2,
    )


#: The Table 1 line-up, in the order the paper's figures use.
TABLE1 = {
    "Starlink": starlink,
    "OneWeb": oneweb,
    "Kuiper": kuiper,
    "Iridium": iridium,
}


def by_name(name: str) -> Constellation:
    """Look up a Table 1 constellation by (case-insensitive) name."""
    for key, factory in TABLE1.items():
        if key.lower() == name.lower():
            return factory()
    raise KeyError(f"unknown constellation {name!r}; know {sorted(TABLE1)}")
