"""Epoch-keyed constellation snapshots and batch geometry kernels.

Every evaluation in the paper reduces to two geometry questions asked
millions of times -- "which satellite serves this ground point at time
``t``" and "what are this satellite's runtime (alpha, gamma)
coordinates" -- across UEs, hops and timesteps.  Asking them one at a
time forces an O(N_sats) recomputation per query.  This module
amortises the cost the way LRSIM snapshots topology per epoch: all
per-``(propagator, t)`` geometry is materialised **once** into an
immutable :class:`ConstellationSnapshot` of vectorised arrays, kept in
a small LRU cache, and every hot caller (coverage, Algorithm 1 routing,
traffic/attack sweeps) does indexed reads or single numpy broadcasts
against it.

Two query tiers are exposed:

* **per-epoch, bit-compatible** -- :meth:`ConstellationSnapshot.
  central_angles`, :meth:`serving_satellite`, :meth:`visible_satellites`
  and the batch (M users x N sats) variants replicate the pre-snapshot
  haversine element-for-element, so single-epoch answers are
  bit-identical to the scalar code they replace;
* **time-grid kernels** -- :func:`serving_over_times` and
  :func:`visible_counts_over_times` evaluate a whole (T times x N sats)
  sweep with only O(T + N) trigonometric evaluations, using the
  angle-addition decomposition of the circular-orbit motion (all
  time dependence enters through per-plane phase terms, so the
  (T, N) part of the computation is pure multiply-add).

Failure injection never touches these arrays: a snapshot is pure
geometry, valid no matter which satellites or ISLs are currently
marked dead, which is what lets routing under faults share the cache.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..constants import EARTH_ROTATION_RAD_S, TWO_PI
from .constellation import Constellation
from .propagator import IdealPropagator

__all__ = [
    "ConstellationSnapshot",
    "snapshot_for",
    "snapshots_for",
    "clear_snapshot_cache",
    "snapshot_cache_info",
    "serving_satellites",
    "visible_counts",
    "central_angles",
    "serving_over_times",
    "visible_counts_over_times",
    "grid_neighbor_table",
]

#: Maximum number of cached snapshots; one Starlink-shell snapshot is
#: ~60 KB, so the cache tops out at a few MB.
SNAPSHOT_CACHE_SIZE = 128


def _cap_angle(constellation: Constellation,
               min_elevation_deg: Optional[float]) -> float:
    """Coverage half angle, defaulting to the constellation's mask."""
    from .coverage import coverage_half_angle
    if min_elevation_deg is None:
        min_elevation_deg = constellation.min_elevation_deg
    return coverage_half_angle(constellation.altitude_km, min_elevation_deg)


def _wrap_array(angles: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.orbits.coordinates.wrap_angle`.

    Mirrors the scalar guard against the floating-point corner where a
    tiny negative input maps to exactly ``2*pi`` under the modulo.
    """
    wrapped = angles % TWO_PI
    wrapped[wrapped >= TWO_PI] = 0.0
    return wrapped


class ConstellationSnapshot:
    """Immutable vectorised geometry of one constellation at one epoch.

    Arrays (all indexed by flat satellite index):

    * ``positions_ecef`` -- ``(N, 3)`` Earth-fixed Cartesian km;
    * ``subpoints`` -- ``(N, 2)`` sub-satellite (lat, lon) radians;
    * ``raan_ecef`` -- ``(N,)`` Earth-fixed ascending-node longitude
      (the runtime ``alpha_s`` of S4.1);
    * ``arg_latitude`` -- ``(N,)`` argument of latitude (the runtime
      ``gamma_s``).

    ``raan_ecef``/``arg_latitude`` mirror :meth:`OrbitState` scalar
    arithmetic operation-for-operation, and ``positions_ecef``/
    ``subpoints`` delegate to the propagator's vectorised methods, so
    both the coverage path and the Algorithm 1 runtime-coordinate path
    read exactly the numbers the scalar code produced.
    """

    __slots__ = ("propagator", "constellation", "t", "positions_ecef",
                 "subpoints", "raan_ecef", "arg_latitude", "_hop_km")

    def __init__(self, propagator: IdealPropagator, t: float):
        self.propagator = propagator
        c = propagator.constellation
        self.constellation = c
        self.t = float(t)

        planes = np.repeat(np.arange(c.num_planes), c.sats_per_plane)
        slots = np.tile(np.arange(c.sats_per_plane), c.num_planes)
        # Mirrors Constellation.raan_of_plane + wrap_angle in
        # IdealPropagator.state.
        raan = _wrap_array(planes * c.delta_raan
                           + propagator.raan_rate() * self.t)
        # Mirrors Constellation.phase_of_slot (modulo *before* adding
        # the rate term, exactly like the scalar path).
        phase0 = (slots * c.delta_phase
                  + TWO_PI * c.phasing_factor * planes
                  / c.total_satellites) % TWO_PI
        self.arg_latitude = _wrap_array(
            phase0 + propagator.arg_latitude_rate() * self.t)
        self.raan_ecef = _wrap_array(raan - EARTH_ROTATION_RAD_S * self.t)

        self.positions_ecef = propagator.positions_ecef(self.t)
        pos = self.positions_ecef
        hyp = np.hypot(pos[:, 0], pos[:, 1])
        lat = np.arctan2(pos[:, 2], hyp)
        lon = np.arctan2(pos[:, 1], pos[:, 0])
        self.subpoints = np.stack([lat, lon], axis=1)

        for arr in (self.positions_ecef, self.subpoints,
                    self.raan_ecef, self.arg_latitude):
            arr.setflags(write=False)
        self._hop_km: Optional[np.ndarray] = None

    # -- single ground point -------------------------------------------------

    def central_angles(self, lat: float, lon: float) -> np.ndarray:
        """Central angle from every satellite's subpoint to a ground
        point, shape ``(N,)`` radians (one haversine broadcast)."""
        subs = self.subpoints
        dlat = subs[:, 0] - lat
        dlon = subs[:, 1] - lon
        h = (np.sin(dlat / 2.0) ** 2
             + np.cos(subs[:, 0]) * math.cos(lat)
             * np.sin(dlon / 2.0) ** 2)
        return 2.0 * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))

    def visible_satellites(self, lat: float, lon: float,
                           min_elevation_deg: Optional[float] = None
                           ) -> np.ndarray:
        """Flat indices of every satellite covering ``(lat, lon)``."""
        theta = _cap_angle(self.constellation, min_elevation_deg)
        return np.nonzero(self.central_angles(lat, lon) <= theta)[0]

    def serving_satellite(self, lat: float, lon: float,
                          min_elevation_deg: Optional[float] = None) -> int:
        """Closest covering satellite, or -1 when none covers."""
        theta = _cap_angle(self.constellation, min_elevation_deg)
        ang = self.central_angles(lat, lon)
        best = int(np.argmin(ang))
        if ang[best] > theta:
            return -1
        return best

    # -- batch of ground points (M users x N satellites) ---------------------

    def central_angle_matrix(self, lats: np.ndarray,
                             lons: np.ndarray) -> np.ndarray:
        """Haversine matrix, shape ``(M, N)``, in one broadcast."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        subs = self.subpoints
        dlat = subs[None, :, 0] - lats[:, None]
        dlon = subs[None, :, 1] - lons[:, None]
        h = (np.sin(dlat / 2.0) ** 2
             + np.cos(subs[None, :, 0]) * np.cos(lats)[:, None]
             * np.sin(dlon / 2.0) ** 2)
        return 2.0 * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))

    def serving_satellites(self, lats: np.ndarray, lons: np.ndarray,
                           min_elevation_deg: Optional[float] = None
                           ) -> np.ndarray:
        """Serving satellite per user, shape ``(M,)`` (-1 = uncovered)."""
        theta = _cap_angle(self.constellation, min_elevation_deg)
        ang = self.central_angle_matrix(lats, lons)
        best = np.argmin(ang, axis=1)
        covered = ang[np.arange(ang.shape[0]), best] <= theta
        return np.where(covered, best, -1)

    def visible_counts(self, lats: np.ndarray, lons: np.ndarray,
                       min_elevation_deg: Optional[float] = None
                       ) -> np.ndarray:
        """Simultaneously visible satellites per user, shape ``(M,)``."""
        theta = _cap_angle(self.constellation, min_elevation_deg)
        ang = self.central_angle_matrix(lats, lons)
        return (ang <= theta).sum(axis=1)

    # -- +Grid edge geometry -------------------------------------------------

    def hop_lengths_km(self) -> np.ndarray:
        """ISL length to each +Grid neighbour, shape ``(N, 4)`` km.

        Column ``j`` pairs with column ``j`` of
        :func:`grid_neighbor_table` (up, down, left, right).  Each
        element computes ``sqrt(dx*dx + dy*dy + dz*dz)`` exactly like
        the scalar per-edge memo in the geospatial router, so batched
        delay accumulation is bit-identical.  Built lazily, cached on
        the snapshot (pure geometry -- never depends on liveness).
        """
        if self._hop_km is None:
            nbr = grid_neighbor_table(self.constellation)
            pos = self.positions_ecef
            px, py, pz = pos[:, 0], pos[:, 1], pos[:, 2]
            dx = px[:, None] - px[nbr]
            dy = py[:, None] - py[nbr]
            dz = pz[:, None] - pz[nbr]
            hop = np.sqrt(dx * dx + dy * dy + dz * dz)
            hop.setflags(write=False)
            self._hop_km = hop
        return self._hop_km


# ---------------------------------------------------------------------------
# The +Grid neighbour table (pure wiring, constellation-shape keyed)
# ---------------------------------------------------------------------------

#: Direction-name -> column index of :func:`grid_neighbor_table`.
GRID_DIRECTIONS: Tuple[str, str, str, str] = ("up", "down", "left", "right")

_NEIGHBOR_TABLES: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()
_NEIGHBOR_TABLE_CACHE_SIZE = 16


def grid_neighbor_table(constellation: Constellation) -> np.ndarray:
    """The +Grid wiring as an ``(N, 4)`` int32 table.

    Columns are ``(up, down, left, right)`` in the Algorithm 1
    direction order (:data:`GRID_DIRECTIONS`), matching
    ``GridTopology.directional_neighbors`` element-for-element:
    up/down are the intra-plane ring, left/right the adjacent planes.
    The wiring depends only on the grid shape ``(num_planes,
    sats_per_plane)``, so tables are memoised per shape.
    """
    key = (constellation.num_planes, constellation.sats_per_plane)
    table = _NEIGHBOR_TABLES.get(key)
    if table is not None:
        _NEIGHBOR_TABLES.move_to_end(key)
        return table
    num_planes, sats_per_plane = key
    planes = np.repeat(np.arange(num_planes), sats_per_plane)
    slots = np.tile(np.arange(sats_per_plane), num_planes)
    base = planes * sats_per_plane
    table = np.empty((num_planes * sats_per_plane, 4), dtype=np.int32)
    table[:, 0] = base + (slots + 1) % sats_per_plane           # up
    table[:, 1] = base + (slots - 1) % sats_per_plane           # down
    table[:, 2] = ((planes - 1) % num_planes) * sats_per_plane + slots
    table[:, 3] = ((planes + 1) % num_planes) * sats_per_plane + slots
    table.setflags(write=False)
    _NEIGHBOR_TABLES[key] = table
    while len(_NEIGHBOR_TABLES) > _NEIGHBOR_TABLE_CACHE_SIZE:
        _NEIGHBOR_TABLES.popitem(last=False)
    return table


# ---------------------------------------------------------------------------
# The epoch-keyed LRU cache
# ---------------------------------------------------------------------------

_cache: "OrderedDict[Tuple[int, float], ConstellationSnapshot]" = OrderedDict()
_hits = 0
_misses = 0
#: Effective cache capacity.  Starts at :data:`SNAPSHOT_CACHE_SIZE`
#: and only ever grows: epoch sweeps wider than the default capacity
#: (see :func:`snapshots_for`) raise it so a sweep's second pass hits
#: instead of rebuilding every epoch it just visited.
_capacity = SNAPSHOT_CACHE_SIZE


def snapshot_for(propagator: IdealPropagator,
                 t: float) -> ConstellationSnapshot:
    """The (cached) snapshot of ``propagator``'s constellation at ``t``.

    Keyed by ``(id(propagator), t)``; the propagator identity check on
    hits guards against ``id()`` reuse after garbage collection.
    Geometry depends only on the propagator and the epoch -- never on
    failure injection -- so the cache needs no invalidation hooks.
    """
    global _hits, _misses  # repro: ignore[shard-purity] -- hit/miss stats are observability-only, never read by results
    key = (id(propagator), float(t))
    snap = _cache.get(key)
    if snap is not None and snap.propagator is propagator:
        _cache.move_to_end(key)
        _hits += 1
        return snap
    snap = ConstellationSnapshot(propagator, t)
    _cache[key] = snap
    _cache.move_to_end(key)
    while len(_cache) > _capacity:
        _cache.popitem(last=False)
    _misses += 1
    return snap


def snapshots_for(propagator: IdealPropagator,
                  times: Sequence[float]) -> List[ConstellationSnapshot]:
    """Sweep-friendly prefetch: the snapshot of every epoch in ``times``.

    Functionally just ``[snapshot_for(propagator, t) for t in times]``
    -- every snapshot comes from (and lands in) the same LRU -- but a
    sweep wider than the cache capacity first *grows* the capacity to
    cover itself, so routing an orbital period in one pass can never
    evict the epochs it is about to revisit.  The capacity only grows
    (snapshots are ~60 KB; a sweep-sized cache is a few MB at worst).
    """
    global _capacity  # repro: ignore[shard-purity] -- monotone capacity bump; cache contents stay bit-identical
    if len(times) > _capacity:
        _capacity = len(times)
    return [snapshot_for(propagator, t) for t in times]


def clear_snapshot_cache() -> None:
    """Drop every cached snapshot (mainly for tests and benchmarks)."""
    global _hits, _misses, _capacity  # repro: ignore[shard-purity] -- hit/miss stats are observability-only, never read by results
    _cache.clear()
    _hits = 0
    _misses = 0
    _capacity = SNAPSHOT_CACHE_SIZE


def snapshot_cache_info() -> Tuple[int, int, int]:
    """``(hits, misses, current_size)`` of the snapshot cache."""
    return _hits, _misses, len(_cache)


# -- module-level batch API (the issue's entry points) -----------------------

def central_angles(propagator: IdealPropagator, t: float,
                   lat: float, lon: float) -> np.ndarray:
    """Central angles from all satellites to one ground point at t."""
    return snapshot_for(propagator, t).central_angles(lat, lon)


def serving_satellites(propagator: IdealPropagator, t: float,
                       lats: np.ndarray, lons: np.ndarray,
                       min_elevation_deg: Optional[float] = None
                       ) -> np.ndarray:
    """Serving satellite for a batch of users at one epoch."""
    return snapshot_for(propagator, t).serving_satellites(
        lats, lons, min_elevation_deg)


def visible_counts(propagator: IdealPropagator, t: float,
                   lats: np.ndarray, lons: np.ndarray,
                   min_elevation_deg: Optional[float] = None) -> np.ndarray:
    """Visible-satellite counts for a batch of users at one epoch."""
    return snapshot_for(propagator, t).visible_counts(
        lats, lons, min_elevation_deg)


# ---------------------------------------------------------------------------
# Time-grid kernels (T timesteps x N satellites in one pass)
# ---------------------------------------------------------------------------

def _cos_angles_over_times(propagator: IdealPropagator,
                           times: Sequence[float],
                           lat: float, lon: float) -> np.ndarray:
    """``cos(central angle)`` between every satellite and a ground
    point over a time grid, shape ``(T, N)``.

    The central angle between a subpoint and the ground point equals
    the angle between the satellite's position vector and the ground
    point's radial (spherical Earth), so ``cos(angle)`` is a dot
    product of unit vectors -- no per-(t, sat) trigonometry.  With
    circular orbits the Earth-fixed node longitude is
    ``o(t) = o0[plane] + (raan_rate - earth_rate) * t`` and the phase
    is ``u(t) = u0[sat] + u_rate * t``, so angle-addition folds all
    time dependence into per-plane coefficients::

        cos(angle)[t, n] = cos(u0[n]) * C[t, plane(n)]
                         + sin(u0[n]) * D[t, plane(n)]

    leaving the (T, N) stage as two multiplies and one add.
    """
    c = propagator.constellation
    t = np.asarray(times, dtype=float)
    if t.size == 0:
        return np.zeros((0, c.total_satellites))

    # Ground-point unit radial.
    cos_lat = math.cos(lat)
    wx = cos_lat * math.cos(lon)
    wy = cos_lat * math.sin(lon)
    wz = math.sin(lat)

    # Per-plane Earth-fixed node longitude over the grid.
    o0 = np.arange(c.num_planes) * c.delta_raan
    o_rate = propagator.raan_rate() - EARTH_ROTATION_RAD_S
    cot = np.cos(o_rate * t)[:, None]
    sot = np.sin(o_rate * t)[:, None]
    co0, so0 = np.cos(o0)[None, :], np.sin(o0)[None, :]
    cos_o = cot * co0 - sot * so0                       # (T, P)
    sin_o = sot * co0 + cot * so0

    cos_i = math.cos(c.inclination_rad)
    sin_i = math.sin(c.inclination_rad)
    # dot/r = cos(u) * P + sin(u) * Q with plane-level P, Q.
    p_term = wx * cos_o + wy * sin_o                    # (T, P)
    q_term = cos_i * (wy * cos_o - wx * sin_o) + wz * sin_i

    u_rate = propagator.arg_latitude_rate()
    ct = np.cos(u_rate * t)[:, None]
    st = np.sin(u_rate * t)[:, None]
    c_coef = p_term * ct + q_term * st                  # (T, P)
    d_coef = q_term * ct - p_term * st

    # Epoch phases laid out (plane, slot) so the (T, N) stage is a
    # single broadcast over the plane axis -- no gather copies.
    slots = np.arange(c.sats_per_plane)[None, :]
    planes = np.arange(c.num_planes)[:, None]
    u0 = (slots * c.delta_phase
          + TWO_PI * c.phasing_factor * planes / c.total_satellites)
    cu0, su0 = np.cos(u0), np.sin(u0)                   # (P, n)

    dots = (c_coef[:, :, None] * cu0[None, :, :]
            + d_coef[:, :, None] * su0[None, :, :])     # (T, P, n)
    return dots.reshape(t.size, c.total_satellites)


def serving_over_times(propagator: IdealPropagator,
                       times: Sequence[float], lat: float, lon: float,
                       min_elevation_deg: Optional[float] = None
                       ) -> np.ndarray:
    """Serving satellite (or -1) at each sampled time, shape ``(T,)``.

    The vectorised core of :func:`repro.orbits.coverage.pass_schedule`
    and the moving-service-area sweeps.
    """
    theta = _cap_angle(propagator.constellation, min_elevation_deg)
    dots = _cos_angles_over_times(propagator, times, lat, lon)
    if dots.shape[0] == 0:
        return np.zeros(0, dtype=int)
    best = np.argmax(dots, axis=1)
    covered = dots[np.arange(dots.shape[0]), best] >= math.cos(theta)
    return np.where(covered, best, -1)


def visible_counts_over_times(propagator: IdealPropagator,
                              times: Sequence[float],
                              lat: float, lon: float,
                              min_elevation_deg: Optional[float] = None
                              ) -> np.ndarray:
    """Simultaneously visible satellites at each sampled time, ``(T,)``.

    The vectorised core of
    :func:`repro.orbits.visibility.coverage_statistics`.
    """
    theta = _cap_angle(propagator.constellation, min_elevation_deg)
    dots = _cos_angles_over_times(propagator, times, lat, lon)
    if dots.shape[0] == 0:
        return np.zeros(0, dtype=int)
    return (dots >= math.cos(theta)).sum(axis=1)


def sample_times(t_start: float, t_end: float,
                 step_s: float) -> List[float]:
    """The exact time sequence a ``while t <= t_end: t += step`` loop
    visits, so vectorised sweeps reproduce scalar sampling bit-for-bit
    (repeated float addition is not ``arange``)."""
    times: List[float] = []
    t = t_start
    while t <= t_end:
        times.append(t)
        t += step_s
    return times
