"""Ground-station (gateway) catalog.

The paper's emulation places ground stations following the published
Starlink gateway map ([78]).  That map is a proprietary crowd-sourced
dataset; we ship a representative catalog of real gateway cities with
the same qualitative distribution -- clustered in North America and
Europe, sparse over oceans, Africa and high latitudes -- which is the
property that produces the space-terrestrial asymmetry the paper
studies (few ground stations aggregating the traffic of many
satellites).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .coordinates import central_angle


@dataclass(frozen=True)
class GroundStation:
    """A terrestrial gateway that hosts (or fronts) home core functions."""

    name: str
    lat_deg: float
    lon_deg: float

    @property
    def lat(self) -> float:
        return math.radians(self.lat_deg)

    @property
    def lon(self) -> float:
        return math.radians(self.lon_deg)


#: Representative gateway sites (name, lat, lon).  The skew towards
#: North America / Europe mirrors the operational deployments in [78].
_DEFAULT_SITES: Sequence[Tuple[str, float, float]] = (
    ("north-bend-wa", 47.5, -121.8),
    ("merrillan-wi", 44.4, -90.8),
    ("hawthorne-ca", 33.9, -118.3),
    ("boca-chica-tx", 25.9, -97.2),
    ("gaffney-sc", 35.1, -81.6),
    ("conrad-mt", 48.2, -111.9),
    ("kalama-wa", 46.0, -122.8),
    ("st-johns-ca", 53.0, -60.0),
    ("chalfont-uk", 51.6, -0.6),
    ("fawley-uk", 50.8, -1.4),
    ("aubergenville-fr", 48.9, 1.9),
    ("frankfurt-de", 50.1, 8.7),
    ("turin-it", 45.1, 7.7),
    ("madrid-es", 40.4, -3.7),
    ("warsaw-pl", 52.2, 21.0),
    ("sydney-au", -33.9, 151.2),
    ("merredin-au", -31.5, 118.3),
    ("auckland-nz", -36.8, 174.8),
    ("santiago-cl", -33.4, -70.7),
    ("sao-paulo-br", -23.5, -46.6),
    ("lagos-ng", 6.5, 3.4),
    ("nairobi-ke", -1.3, 36.8),
    ("tokyo-jp", 35.7, 139.7),
    ("beijing-cn", 39.9, 116.4),
    ("mumbai-in", 19.1, 72.9),
    ("anchorage-ak", 61.2, -149.9),
)


def default_ground_stations(count: Optional[int] = None
                            ) -> List[GroundStation]:
    """The default gateway catalog; optionally truncated to ``count``."""
    stations = [GroundStation(name, lat, lon)
                for name, lat, lon in _DEFAULT_SITES]
    if count is not None:
        if count < 1:
            raise ValueError("need at least one ground station")
        stations = stations[:count]
    return stations


def nearest_station(lat: float, lon: float,
                    stations: Sequence[GroundStation]) -> GroundStation:
    """Ground station closest (great circle) to ``(lat, lon)`` radians."""
    if not stations:
        raise ValueError("empty ground-station list")
    return min(stations,
               key=lambda gs: central_angle(lat, lon, gs.lat, gs.lon))


def station_load_shares(sat_subpoints: Sequence[Tuple[float, float]],
                        stations: Sequence[GroundStation]) -> List[int]:
    """How many satellites each station serves (nearest-gateway rule).

    Returns a per-station satellite count aligned with ``stations``;
    the max/mean ratio of this vector quantifies the space-terrestrial
    asymmetry that turns gateways into bottlenecks (Fig. 5a).
    """
    counts = [0] * len(stations)
    index = {id(gs): i for i, gs in enumerate(stations)}
    for lat, lon in sat_subpoints:
        gs = nearest_station(lat, lon, stations)
        counts[index[id(gs)]] += 1
    return counts
