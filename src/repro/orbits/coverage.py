"""Satellite coverage geometry: footprints, elevation, dwell times.

A satellite at altitude ``H`` serves ground users that see it above a
minimum elevation angle ``el``.  On a spherical Earth the footprint is
a cap of Earth-central half angle

    theta = acos(Re * cos(el) / (Re + H)) - el

These formulas drive per-satellite user counts (and hence signaling
rates) and the dwell-time analysis behind the paper's 165.8 s Starlink
coverage figure (S3.2).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..constants import EARTH_RADIUS_KM
from .constellation import Constellation
from .coordinates import central_angle
from .propagator import IdealPropagator
from .snapshot import sample_times, serving_over_times, snapshot_for


def coverage_half_angle(altitude_km: float, min_elevation_deg: float) -> float:
    """Earth-central half angle of the coverage cap (radians)."""
    el = math.radians(min_elevation_deg)
    ratio = EARTH_RADIUS_KM * math.cos(el) / (EARTH_RADIUS_KM + altitude_km)
    return math.acos(ratio) - el


def footprint_radius_km(altitude_km: float, min_elevation_deg: float) -> float:
    """Great-circle radius of the coverage footprint on the ground (km)."""
    return EARTH_RADIUS_KM * coverage_half_angle(altitude_km,
                                                 min_elevation_deg)


def footprint_area_km2(altitude_km: float, min_elevation_deg: float) -> float:
    """Spherical-cap area of one satellite footprint (km^2)."""
    theta = coverage_half_angle(altitude_km, min_elevation_deg)
    return 2.0 * math.pi * EARTH_RADIUS_KM**2 * (1.0 - math.cos(theta))


def slant_range_km(altitude_km: float, elevation_rad: float) -> float:
    """Distance from a ground user to the satellite at a given elevation."""
    re = EARTH_RADIUS_KM
    r = re + altitude_km
    return (math.sqrt(r * r - (re * math.cos(elevation_rad)) ** 2)
            - re * math.sin(elevation_rad))


def elevation_angle(sat_distance_km: float, altitude_km: float) -> float:
    """Elevation (radians) of a satellite given its slant range."""
    re = EARTH_RADIUS_KM
    r = re + altitude_km
    cos_zenith = (sat_distance_km**2 + re**2 - r**2) / (
        2.0 * sat_distance_km * re)
    cos_zenith = max(-1.0, min(1.0, cos_zenith))
    return math.acos(cos_zenith) - math.pi / 2.0


def is_visible(sat_lat: float, sat_lon: float, ue_lat: float, ue_lon: float,
               altitude_km: float, min_elevation_deg: float) -> bool:
    """Whether a ground point is inside the satellite's footprint."""
    theta = coverage_half_angle(altitude_km, min_elevation_deg)
    return central_angle(sat_lat, sat_lon, ue_lat, ue_lon) <= theta


def mean_dwell_time_s(constellation: Constellation,
                      min_elevation_deg: Optional[float] = None) -> float:
    """Mean single-satellite pass duration over a static user (s).

    A chord through a cap of half angle ``theta``, traversed at the
    ground-track angular rate, lasts on average ``(pi/4) * 2*theta``
    over uniformly offset passes; the Starlink parameters with a ~25
    degree mask reproduce the paper's ~165.8 s coverage transient.
    """
    if min_elevation_deg is None:
        min_elevation_deg = constellation.min_elevation_deg
    theta = coverage_half_angle(constellation.altitude_km, min_elevation_deg)
    # Ground-track angular rate relative to the Earth-fixed user: the
    # satellite's mean motion dominates; Earth rotation contributes a
    # second-order correction we fold in via the inclination projection.
    track_rate = constellation.mean_motion
    max_pass = 2.0 * theta / track_rate
    return (math.pi / 4.0) * max_pass


def visible_satellites(propagator: IdealPropagator, t: float,
                       ue_lat: float, ue_lon: float,
                       min_elevation_deg: Optional[float] = None
                       ) -> List[int]:
    """Flat indices of all satellites covering ``(ue_lat, ue_lon)`` at t."""
    return list(snapshot_for(propagator, t).visible_satellites(
        ue_lat, ue_lon, min_elevation_deg))


def serving_satellite(propagator: IdealPropagator, t: float,
                      ue_lat: float, ue_lon: float,
                      min_elevation_deg: Optional[float] = None) -> int:
    """The closest covering satellite, or -1 when none covers the UE."""
    return snapshot_for(propagator, t).serving_satellite(
        ue_lat, ue_lon, min_elevation_deg)


def pass_schedule(propagator: IdealPropagator, ue_lat: float, ue_lon: float,
                  t_start: float, t_end: float, step_s: float = 5.0,
                  min_elevation_deg: Optional[float] = None
                  ) -> List[Tuple[float, float, int]]:
    """Serving-satellite passes over a static UE.

    Returns ``[(t_acquire, t_lose, sat_index), ...]`` covering
    ``[t_start, t_end]``, by sampling the best server every ``step_s``
    seconds and merging runs.  Gaps (no coverage) are omitted.  The
    whole (timesteps x satellites) sweep runs as one vectorised
    time-grid kernel instead of a per-step constellation scan.
    """
    times = sample_times(t_start, t_end, step_s)
    servers = serving_over_times(propagator, times, ue_lat, ue_lon,
                                 min_elevation_deg)
    passes: List[Tuple[float, float, int]] = []
    current_sat = -2
    run_start = t_start
    for i, sat in enumerate(servers):
        sat = int(sat)
        if sat != current_sat:
            if current_sat >= 0:
                passes.append((run_start, times[i], current_sat))
            current_sat = sat
            run_start = times[i]
    if current_sat >= 0:
        t_past_end = (times[-1] + step_s) if times else t_start
        passes.append((run_start, min(t_past_end, t_end), current_sat))
    return passes


def handover_rate_per_user(constellation: Constellation,
                           min_elevation_deg: Optional[float] = None
                           ) -> float:
    """Expected serving-satellite changes per second for a static user.

    The inverse of the mean dwell time: each pass ends in exactly one
    inter-satellite handover (or idle reselection).
    """
    return 1.0 / mean_dwell_time_s(constellation, min_elevation_deg)
