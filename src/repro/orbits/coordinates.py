"""Coordinate systems: ECI, ECEF, geodetic, and the paper's (alpha, gamma).

The SpaceCore paper (S4.1, Fig. 15a) defines an *affine spherical
coordinate system* per constellation: every terrestrial point is
identified by ``(alpha, gamma)`` where

* ``alpha`` locates the ascending node (on the Equator) of the unique
  *ascending* great circle with the constellation's inclination that
  passes through the point, and
* ``gamma`` is the angular distance from that node to the point, along
  the great circle ("generalized inclined latitude").

The satellites of a uniform constellation form a rigid torus in
``(alpha, gamma)`` space: planes sit ``delta_raan`` apart in alpha and
slots ``delta_phase`` apart in gamma, which is exactly what makes the
stateless geospatial relaying of Algorithm 1 work.

All functions use a spherical Earth (the paper does too).
"""

from __future__ import annotations

import math
from typing import Tuple

from ..constants import EARTH_ROTATION_RAD_S, TWO_PI

Vec3 = Tuple[float, float, float]


# ---------------------------------------------------------------------------
# Basic frames
# ---------------------------------------------------------------------------

def wrap_angle(angle: float) -> float:
    """Wrap an angle to ``[0, 2*pi)``.

    Guards against the floating-point corner where a tiny negative
    input maps to exactly ``2*pi`` under Python's modulo.
    """
    wrapped = angle % TWO_PI
    if wrapped >= TWO_PI:
        wrapped = 0.0
    return wrapped


def wrap_signed(angle: float) -> float:
    """Wrap an angle to ``(-pi, pi]`` (shortest signed difference)."""
    wrapped = angle % TWO_PI
    if wrapped > math.pi:
        wrapped -= TWO_PI
    return wrapped


def orbital_to_eci(raan: float, inclination: float, arg_latitude: float,
                   radius: float) -> Vec3:
    """Position of a circular-orbit satellite in the inertial frame.

    Standard rotation of the in-plane position by inclination and RAAN.
    """
    cos_u, sin_u = math.cos(arg_latitude), math.sin(arg_latitude)
    cos_i, sin_i = math.cos(inclination), math.sin(inclination)
    cos_o, sin_o = math.cos(raan), math.sin(raan)
    x = radius * (cos_o * cos_u - sin_o * sin_u * cos_i)
    y = radius * (sin_o * cos_u + cos_o * sin_u * cos_i)
    z = radius * (sin_u * sin_i)
    return (x, y, z)


def eci_to_ecef(position: Vec3, t: float) -> Vec3:
    """Rotate an inertial position into the Earth-fixed frame at time t.

    The frames are aligned at ``t = 0``; the Earth rotates eastward at
    the sidereal rate.
    """
    theta = EARTH_ROTATION_RAD_S * t
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    x, y, z = position
    return (cos_t * x + sin_t * y, -sin_t * x + cos_t * y, z)


def ecef_to_eci(position: Vec3, t: float) -> Vec3:
    """Inverse of :func:`eci_to_ecef`."""
    theta = EARTH_ROTATION_RAD_S * t
    cos_t, sin_t = math.cos(theta), math.sin(theta)
    x, y, z = position
    return (cos_t * x - sin_t * y, sin_t * x + cos_t * y, z)


def ecef_to_geodetic(position: Vec3) -> Tuple[float, float]:
    """Earth-fixed Cartesian -> (latitude, longitude) in radians.

    Spherical Earth: latitude is geocentric.
    """
    x, y, z = position
    hyp = math.hypot(x, y)
    lat = math.atan2(z, hyp)
    lon = math.atan2(y, x)
    return lat, lon


def geodetic_to_ecef(lat: float, lon: float, radius: float) -> Vec3:
    """(latitude, longitude) in radians -> Earth-fixed Cartesian."""
    cos_lat = math.cos(lat)
    return (
        radius * cos_lat * math.cos(lon),
        radius * cos_lat * math.sin(lon),
        radius * math.sin(lat),
    )


def great_circle_distance(lat1: float, lon1: float, lat2: float, lon2: float,
                          radius: float) -> float:
    """Great-circle distance between two (lat, lon) points (radians in)."""
    central = central_angle(lat1, lon1, lat2, lon2)
    return radius * central


def central_angle(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Central angle between two points on the sphere (haversine form)."""
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (math.sin(dlat / 2.0) ** 2
         + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2)
    h = min(1.0, max(0.0, h))
    return 2.0 * math.asin(math.sqrt(h))


def norm3(v: Vec3) -> float:
    """Norm3."""
    return math.sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2])


def sub3(a: Vec3, b: Vec3) -> Vec3:
    """Sub3."""
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def distance3(a: Vec3, b: Vec3) -> float:
    """Distance3."""
    return norm3(sub3(a, b))


# ---------------------------------------------------------------------------
# The (alpha, gamma) inclined spherical system (Fig. 15a)
# ---------------------------------------------------------------------------

class InclinedCoordinateSystem:
    """The paper's affine spherical coordinate system for one constellation.

    ``alpha`` is the Earth-fixed longitude of the ascending node of the
    inclined great circle through a point; ``gamma`` is the argument of
    latitude along that circle.  Instantiated with the constellation's
    inclination; the system is frozen at constellation initialisation
    (t = 0), which is what makes cells stable under satellite motion and
    resilient to later orbit perturbation (S4.1, Step 1).
    """

    def __init__(self, inclination_rad: float):
        if not 0.0 < inclination_rad <= math.pi:
            raise ValueError("inclination must be in (0, pi]")
        self.inclination = inclination_rad
        self._sin_i = math.sin(inclination_rad)
        self._cos_i = math.cos(inclination_rad)

    # -- forward mapping -----------------------------------------------------

    def from_geodetic(self, lat: float, lon: float) -> Tuple[float, float]:
        """Map (lat, lon) radians to ``(alpha, gamma)``.

        Latitudes beyond the inclination band are clamped to the band
        edge: those polar caps are outside every satellite's ground
        track, so the nearest covered cell serves them (the paper's
        near-polar constellations make the band almost global).

        Returns ``alpha`` in ``[0, 2*pi)`` and ``gamma`` in
        ``[-pi/2, pi/2]`` (the ascending branch).
        """
        band = min(self.inclination, math.pi - self.inclination)
        clamped = max(-band, min(band, lat))
        sin_ratio = math.sin(clamped) / self._sin_i
        sin_ratio = max(-1.0, min(1.0, sin_ratio))
        gamma = math.asin(sin_ratio)
        # Longitude offset from the ascending node to the point, along
        # the inclined circle: dlon = atan2(cos(i) sin(g), cos(g)).
        dlon = math.atan2(self._cos_i * math.sin(gamma), math.cos(gamma))
        alpha = wrap_angle(lon - dlon)
        return alpha, gamma

    def to_geodetic(self, alpha: float, gamma: float) -> Tuple[float, float]:
        """Inverse mapping: ``(alpha, gamma)`` -> (lat, lon) radians.

        Accepts any ``gamma``; points on the descending branch
        (``|gamma| > pi/2``) land at the mirrored longitude.
        """
        lat = math.asin(self._sin_i * math.sin(gamma))
        dlon = math.atan2(self._cos_i * math.sin(gamma), math.cos(gamma))
        lon = wrap_signed(alpha + dlon)
        return lat, lon

    # -- satellite runtime coordinates ---------------------------------------

    def satellite_coordinates(self, raan_ecef: float,
                              arg_latitude: float) -> Tuple[float, float]:
        """Runtime ``(alpha_s(t), gamma_s(t))`` of a satellite.

        ``raan_ecef`` is the ascending-node longitude measured in the
        Earth-fixed frame (i.e. RAAN minus the accumulated Earth
        rotation); ``arg_latitude`` is the current argument of latitude.
        On the ascending half the satellite's own coordinates coincide
        with the projection of its sub-satellite point; on the
        descending half ``gamma`` keeps increasing past ``pi/2`` so the
        torus structure (used by Algorithm 1) is preserved.
        """
        return wrap_angle(raan_ecef), wrap_angle(arg_latitude)

    def descending_representation(
            self, lat: float, lon: float) -> Tuple[float, float]:
        """Map (lat, lon) to the *descending*-branch ``(alpha, gamma)``.

        Every point inside the inclination band lies on exactly two
        inclined great circles: one crossing it while ascending
        (``gamma`` in ``[-pi/2, pi/2]``, see :meth:`from_geodetic`) and
        one while descending (``gamma`` in ``[pi/2, 3*pi/2]``).  Both
        representations matter to routing: a satellite on the
        descending half of its orbit covers the point too.
        """
        _, gamma_asc = self.from_geodetic(lat, lon)
        gamma = math.pi - gamma_asc
        dlon = math.atan2(self._cos_i * math.sin(gamma), math.cos(gamma))
        alpha = wrap_angle(lon - dlon)
        return alpha, gamma

    def both_representations(self, lat: float, lon: float):
        """Both torus representations of a ground point.

        Returns ``[(alpha_asc, gamma_asc), (alpha_desc, gamma_desc)]``.
        """
        return [self.from_geodetic(lat, lon),
                self.descending_representation(lat, lon)]

    def both_representations_batch(self, lats, lons):
        """Vectorised :meth:`both_representations` for ``(M,)`` arrays.

        Returns ``(alpha_asc, gamma_asc, alpha_desc, gamma_desc)`` as
        four ``(M,)`` float arrays.  Element-for-element this replays
        the scalar arithmetic of :meth:`from_geodetic` and
        :meth:`descending_representation` (same operations, same
        order), so batch routing sees bit-identical coordinates.
        """
        import numpy as np
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        band = min(self.inclination, math.pi - self.inclination)
        clamped = np.minimum(band, lats)
        clamped = np.maximum(-band, clamped)
        sin_ratio = np.sin(clamped) / self._sin_i
        sin_ratio = np.minimum(1.0, sin_ratio)
        sin_ratio = np.maximum(-1.0, sin_ratio)
        gamma_asc = np.arcsin(sin_ratio)
        dlon = np.arctan2(self._cos_i * np.sin(gamma_asc),
                          np.cos(gamma_asc))
        alpha_asc = (lons - dlon) % TWO_PI
        alpha_asc[alpha_asc >= TWO_PI] = 0.0
        gamma_desc = math.pi - gamma_asc
        dlon_d = np.arctan2(self._cos_i * np.sin(gamma_desc),
                            np.cos(gamma_desc))
        alpha_desc = (lons - dlon_d) % TWO_PI
        alpha_desc[alpha_desc >= TWO_PI] = 0.0
        return alpha_asc, gamma_asc, alpha_desc, gamma_desc

    def angular_cell_area(self, alpha_width: float, gamma_width: float,
                          gamma_center: float, radius: float) -> float:
        """Spherical area of an (alpha, gamma) cell centred at gamma.

        The Jacobian of the (alpha, gamma) -> (lat, lon) map is
        ``|d(lat,lon)/d(alpha,gamma)| = sin(i) * cos(gamma) / cos(lat)``
        so the area element on the sphere,
        ``R^2 cos(lat) dlat dlon``, becomes
        ``dA = R^2 * sin(i) * |cos(gamma)| * dalpha dgamma``:
        cells are largest at the equator crossings and shrink towards
        the orbit's turn points.
        """
        jac = self._sin_i * abs(math.cos(gamma_center))
        return radius * radius * jac * alpha_width * gamma_width
