"""Orbital mechanics substrate: constellations, propagation, coverage.

This package is the satellite-dynamics foundation of the reproduction:
Walker constellations from Table 1, ideal and J4 propagators, the
paper's (alpha, gamma) inclined coordinate system, coverage footprints
and the ground-station catalog.
"""

from .constellation import (
    Constellation,
    TABLE1,
    by_name,
    iridium,
    kuiper,
    oneweb,
    starlink,
)
from .coordinates import InclinedCoordinateSystem, wrap_angle, wrap_signed
from .coverage import (
    coverage_half_angle,
    footprint_area_km2,
    footprint_radius_km,
    handover_rate_per_user,
    mean_dwell_time_s,
    serving_satellite,
    visible_satellites,
)
from .groundstations import (
    GroundStation,
    default_ground_stations,
    nearest_station,
)
from .propagator import (
    IdealPropagator,
    J4Propagator,
    OrbitState,
    make_propagator,
)
from .snapshot import (
    ConstellationSnapshot,
    clear_snapshot_cache,
    serving_over_times,
    serving_satellites,
    snapshot_cache_info,
    snapshot_for,
    visible_counts,
    visible_counts_over_times,
)
from .visibility import (
    CoverageStatistics,
    coverage_by_latitude,
    coverage_statistics,
    densest_latitude_deg,
)

__all__ = [
    "Constellation",
    "TABLE1",
    "by_name",
    "starlink",
    "oneweb",
    "kuiper",
    "iridium",
    "InclinedCoordinateSystem",
    "wrap_angle",
    "wrap_signed",
    "coverage_half_angle",
    "footprint_radius_km",
    "footprint_area_km2",
    "mean_dwell_time_s",
    "handover_rate_per_user",
    "serving_satellite",
    "visible_satellites",
    "GroundStation",
    "default_ground_stations",
    "nearest_station",
    "IdealPropagator",
    "J4Propagator",
    "OrbitState",
    "make_propagator",
    "ConstellationSnapshot",
    "snapshot_for",
    "clear_snapshot_cache",
    "snapshot_cache_info",
    "serving_satellites",
    "visible_counts",
    "serving_over_times",
    "visible_counts_over_times",
    "CoverageStatistics",
    "coverage_by_latitude",
    "coverage_statistics",
    "densest_latitude_deg",
]
