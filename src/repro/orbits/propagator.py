"""Orbit propagators: ideal two-body and J2/J4 secular.

The paper evaluates Algorithm 1 "under the ideal satellite orbits and
the realistic J4 orbit propagator" (S6.2, Fig. 18b).  For circular
orbits only the *secular* perturbation terms matter over the hours-long
horizons of the experiments: the ascending node drifts (westward for
prograde orbits) and the draconitic rate differs slightly from the
Keplerian mean motion.  Both are standard closed forms (Vallado,
"Fundamentals of Astrodynamics", Ch. 9), specialised here to
eccentricity zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..constants import (
    EARTH_J2,
    EARTH_J4,
    EARTH_RADIUS_KM,
    EARTH_ROTATION_RAD_S,
    TWO_PI,
)
from .constellation import Constellation
from .coordinates import (
    Vec3,
    ecef_to_geodetic,
    eci_to_ecef,
    orbital_to_eci,
    wrap_angle,
)


@dataclass(frozen=True)
class OrbitState:
    """Instantaneous state of one satellite.

    ``raan`` is inertial; ``raan_ecef`` is the ascending-node longitude
    in the rotating Earth-fixed frame, which is what the geospatial
    coordinate system of S4.1 uses at runtime.
    """

    t: float
    raan: float
    arg_latitude: float
    inclination: float
    radius_km: float

    @property
    def raan_ecef(self) -> float:
        """Ascending-node longitude in the Earth-fixed frame."""
        return wrap_angle(self.raan - EARTH_ROTATION_RAD_S * self.t)

    def position_eci(self) -> Vec3:
        """Inertial-frame Cartesian position (km)."""
        return orbital_to_eci(self.raan, self.inclination,
                              self.arg_latitude, self.radius_km)

    def position_ecef(self) -> Vec3:
        """Earth-fixed Cartesian position (km)."""
        return eci_to_ecef(self.position_eci(), self.t)

    def subpoint(self) -> Tuple[float, float]:
        """Sub-satellite point (lat, lon) in radians, Earth-fixed."""
        return ecef_to_geodetic(self.position_ecef())


class IdealPropagator:
    """Unperturbed circular two-body motion.

    The constellation's torus geometry is exact under this propagator:
    planes keep their epoch RAAN and satellites advance uniformly.
    """

    name = "ideal"

    def __init__(self, constellation: Constellation):
        self.constellation = constellation
        self._n = constellation.mean_motion

    def raan_rate(self) -> float:
        """Nodal drift rate (rad/s); zero for the ideal propagator."""
        return 0.0

    def arg_latitude_rate(self) -> float:
        """Rate of the argument of latitude (rad/s)."""
        return self._n

    def state(self, plane: int, slot: int, t: float) -> OrbitState:
        """Instantaneous orbital state of satellite (plane, slot) at t."""
        c = self.constellation
        raan = wrap_angle(c.raan_of_plane(plane) + self.raan_rate() * t)
        u = wrap_angle(c.phase_of_slot(plane, slot)
                       + self.arg_latitude_rate() * t)
        return OrbitState(t=t, raan=raan, arg_latitude=u,
                          inclination=c.inclination_rad,
                          radius_km=c.semi_major_axis_km)

    # -- vectorised interface ------------------------------------------------

    def all_states(self, t: float) -> Tuple[np.ndarray, np.ndarray]:
        """RAAN and argument-of-latitude arrays for all satellites.

        Returns two arrays of shape ``(total_satellites,)`` indexed by
        flat satellite index.
        """
        c = self.constellation
        planes = np.repeat(np.arange(c.num_planes), c.sats_per_plane)
        slots = np.tile(np.arange(c.sats_per_plane), c.num_planes)
        raan = (planes * c.delta_raan + self.raan_rate() * t) % TWO_PI
        phase0 = (slots * c.delta_phase
                  + TWO_PI * c.phasing_factor * planes / c.total_satellites)
        u = (phase0 + self.arg_latitude_rate() * t) % TWO_PI
        return raan, u

    def positions_ecef(self, t: float) -> np.ndarray:
        """Earth-fixed positions of every satellite, shape ``(N, 3)`` km."""
        c = self.constellation
        raan, u = self.all_states(t)
        cos_u, sin_u = np.cos(u), np.sin(u)
        cos_i = math.cos(c.inclination_rad)
        sin_i = math.sin(c.inclination_rad)
        cos_o, sin_o = np.cos(raan), np.sin(raan)
        r = c.semi_major_axis_km
        x = r * (cos_o * cos_u - sin_o * sin_u * cos_i)
        y = r * (sin_o * cos_u + cos_o * sin_u * cos_i)
        z = r * (sin_u * sin_i)
        theta = EARTH_ROTATION_RAD_S * t
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        ecef_x = cos_t * x + sin_t * y
        ecef_y = -sin_t * x + cos_t * y
        return np.stack([ecef_x, ecef_y, z], axis=1)

    def subpoints(self, t: float) -> np.ndarray:
        """(lat, lon) radians of every satellite, shape ``(N, 2)``."""
        pos = self.positions_ecef(t)
        hyp = np.hypot(pos[:, 0], pos[:, 1])
        lat = np.arctan2(pos[:, 2], hyp)
        lon = np.arctan2(pos[:, 1], pos[:, 0])
        return np.stack([lat, lon], axis=1)


class J4Propagator(IdealPropagator):
    """Secular J2 + J4 perturbations on a circular orbit.

    Closed-form secular rates (e = 0):

    * nodal regression
      ``dRAAN/dt = -1.5 n J2 (Re/a)^2 cos i``
      plus the J2^2 and J4 corrections of order ``(Re/a)^4``;
    * draconitic rate
      ``du/dt = n [1 + 0.75 J2 (Re/a)^2 (6 - 8 sin^2 i)]``
      plus an order-``(Re/a)^4`` J4 correction.

    These shift every plane's node and phase away from the epoch grid,
    which is exactly the perturbation Fig. 18b studies.  Because all
    planes share a, i, the *relative* torus spacing survives -- the
    paper notes Algorithm 1 self-calibrates via runtime coordinates.
    """

    name = "j4"

    def __init__(self, constellation: Constellation):
        super().__init__(constellation)
        c = constellation
        n = self._n
        ratio2 = (EARTH_RADIUS_KM / c.semi_major_axis_km) ** 2
        ratio4 = ratio2 * ratio2
        sin_i = math.sin(c.inclination_rad)
        cos_i = math.cos(c.inclination_rad)
        sin2 = sin_i * sin_i

        raan_j2 = -1.5 * n * EARTH_J2 * ratio2 * cos_i
        raan_j2sq = (-1.5 * n * EARTH_J2 * ratio2 * cos_i
                     * 1.5 * EARTH_J2 * ratio2 * (1.5 - (5.0 / 3.0) * sin2))
        raan_j4 = ((15.0 / 32.0) * n * EARTH_J4 * ratio4 * cos_i
                   * (8.0 - 36.0 * sin2))
        self._raan_rate = raan_j2 + raan_j2sq + raan_j4

        u_j2 = 0.75 * n * EARTH_J2 * ratio2 * (6.0 - 8.0 * sin2)
        u_j4 = (-(15.0 / 32.0) * n * EARTH_J4 * ratio4
                * (8.0 - 40.0 * sin2 + 35.0 * sin2 * sin2))
        self._u_rate = n + u_j2 + u_j4

    def raan_rate(self) -> float:
        """Secular nodal drift rate (rad/s)."""
        return self._raan_rate

    def arg_latitude_rate(self) -> float:
        """Secular draconitic rate of the argument of latitude (rad/s)."""
        return self._u_rate


def make_propagator(constellation: Constellation,
                    kind: str = "ideal") -> IdealPropagator:
    """Factory for the two propagators used by the evaluation."""
    if kind == "ideal":
        return IdealPropagator(constellation)
    if kind == "j4":
        return J4Propagator(constellation)
    raise ValueError(f"unknown propagator kind {kind!r}")
