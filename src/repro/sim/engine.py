"""A small deterministic discrete-event simulation engine.

Drives the packet-level and signaling-level experiments.  Events are
ordered by (time, sequence) so same-time events fire in scheduling
order, which keeps every run bit-reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry


@dataclass(order=True)
class _QueuedEvent:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled event; cancellable until it fires."""

    __slots__ = ("callback", "args", "cancelled", "time", "fired", "_sim")

    def __init__(self, time: float, callback: Callable, args: Tuple,
                 sim: "Optional[Simulator]" = None):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1
            if self._sim._metrics is not None:
                self._sim._metrics.counter("sim.events_cancelled").inc()


class PeriodicHandle:
    """Cancellation handle for a periodic event chain."""

    __slots__ = ("current", "cancelled")

    def __init__(self):
        self.current: Optional[EventHandle] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the periodic chain (no-op when never armed).

        Safe to call from inside the periodic callback itself: the
        currently-firing event has already fired (so cancelling it is
        a no-op), but the chain-level flag stops ``fire`` from
        re-arming afterwards.
        """
        self.cancelled = True
        if self.current is not None:
            self.current.cancel()


class Simulator:
    """Event loop with a simulated clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: List[_QueuedEvent] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0
        # Live (scheduled, not yet fired or cancelled) event count,
        # maintained incrementally so pending() is O(1).
        self._live = 0
        # Optional observability sink; None keeps the hot loop free of
        # instrumentation overhead.
        self._metrics: Optional[MetricsRegistry] = None

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Instrument the event loop with ``sim.*`` series.

        Counters track scheduled / processed / cancelled events and
        the ``sim.time_s`` gauge follows the simulated clock -- all
        derived from simulated quantities, never the wall clock, so
        snapshots stay bit-reproducible.
        """
        self._metrics = registry

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    # -- scheduling --------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable,
                 *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable,
                    *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now={self._now}")
        handle = EventHandle(time, callback, args, self)
        heapq.heappush(self._queue,
                       _QueuedEvent(time, next(self._seq), handle))
        self._live += 1
        if self._metrics is not None:
            self._metrics.counter("sim.events_scheduled").inc()
        return handle

    def schedule_periodic(self, interval: float, callback: Callable,
                          *args: Any,
                          jitter: Optional[Callable[[], float]] = None,
                          first_delay: Optional[float] = None
                          ) -> "PeriodicHandle":
        """Re-arm ``callback`` every ``interval`` (+ optional jitter()).

        ``jitter`` is a zero-argument callable added to each interval,
        letting callers model Poisson-ish processes.  Cancel the
        returned handle to stop the chain.
        """
        if interval <= 0:
            raise ValueError("periodic interval must be positive")
        chain = PeriodicHandle()

        def fire():
            callback(*args)
            if chain.cancelled:
                return
            delay = interval + (jitter() if jitter else 0.0)
            chain.current = self.schedule(max(1e-9, delay), fire)

        delay0 = first_delay if first_delay is not None else interval
        chain.current = self.schedule(delay0, fire)
        return chain

    # -- execution ---------------------------------------------------------------

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.handle.cancelled:
                continue
            entry.handle.fired = True
            self._live -= 1
            self._now = entry.time
            entry.handle.callback(*entry.handle.args)
            self.events_processed += 1
            if self._metrics is not None:
                self._metrics.counter("sim.events_processed").inc()
                self._metrics.gauge("sim.time_s").set(self._now)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` passes, or the budget ends."""
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                return
            head = self._queue[0]
            if head.handle.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = until
                return
            if not self.step():
                break
            processed += 1
        if until is not None and self._now < until:
            self._now = until

    def pending(self) -> int:
        """Number of not-yet-cancelled queued events (O(1))."""
        return self._live
