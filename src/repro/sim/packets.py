"""Packet-level discrete-event forwarding over the constellation.

The routing layer computes paths and sums propagation delays
statically; this module *plays them out* on the event engine: each
packet is an event chain hopping satellite to satellite, with per-hop
propagation plus serialisation, per-satellite FIFO egress queues, and
optional loss.  Its purpose is twofold:

* cross-validate the static delay arithmetic (an unloaded network must
  reproduce ``RouteResult.delay_s`` exactly up to serialisation), and
* expose queueing effects the static model cannot see (bursts into a
  single ISL).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry
from ..topology.batch_routing import BatchGeoRouter
from ..topology.grid import GridTopology
from .engine import Simulator


@dataclass
class PacketRecord:
    """Fate of one simulated packet."""

    packet_id: int
    src_sat: int
    sent_at_s: float
    delivered_at_s: Optional[float] = None
    dropped: bool = False
    hops: int = 0
    #: Frames re-sent after Gilbert-Elliott losses (bounded by the
    #: simulation's max_retransmits).
    retransmits: int = 0
    #: Mid-flight path recomputations after a dead or hopeless link.
    reroutes: int = 0

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end latency, or None while in flight / dropped."""
        if self.delivered_at_s is None:
            return None
        return self.delivered_at_s - self.sent_at_s


class PacketSimulation:
    """Event-driven packet forwarding along Algorithm 1 paths.

    Each satellite has one egress queue per neighbour; a packet
    occupies the link for its serialisation time and arrives after the
    propagation delay.  Paths are pinned at send time (the topology
    barely moves over packet timescales).
    """

    def __init__(self, topology: GridTopology,
                 link_rate_mbps: float = 1000.0,
                 loss_probability: float = 0.0,
                 seed: int = 0,
                 channel_model=None,
                 max_retransmits: int = 2,
                 max_reroutes: int = 0,
                 retransmit_timeout_s: float = 0.03,
                 metrics: Optional[MetricsRegistry] = None):
        if link_rate_mbps <= 0:
            raise ValueError("link rate must be positive")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if max_retransmits < 0 or max_reroutes < 0:
            raise ValueError("retry caps must be non-negative")
        if retransmit_timeout_s <= 0:
            raise ValueError("retransmit timeout must be positive")
        self.topology = topology
        #: The batch routing plane.  Single-packet sends delegate to
        #: its scalar reference walk (identical results); bulk
        #: injections (:meth:`send_batch`) route the whole wave in one
        #: vectorized call before any event is scheduled.
        self.router = BatchGeoRouter(topology, metrics=metrics)
        self.sim = Simulator()
        self.link_rate_mbps = link_rate_mbps
        self.loss_probability = loss_probability
        #: Optional :class:`repro.faults.chaos.LinkChannelModel`; when
        #: set, every hop samples the link's Gilbert-Elliott burst
        #: process and lost frames are re-queued (bounded) instead of
        #: silently vanishing.
        self.channel_model = channel_model
        self.max_retransmits = max_retransmits
        #: Mid-flight reroutes around dead/hopeless links; 0 keeps the
        #: legacy drop-on-failure behaviour.
        self.max_reroutes = max_reroutes
        self.retransmit_timeout_s = retransmit_timeout_s
        self._rng = random.Random(seed)
        #: Optional observability sink; per-link queueing histograms
        #: plus retransmit/reroute/drop counters land here, and the
        #: event engine itself is instrumented through it.
        self.metrics = metrics
        if metrics is not None:
            self.sim.attach_metrics(metrics)
        #: When each directed link (a, b) next becomes free.
        self._link_free_at: Dict[Tuple[int, int], float] = {}
        self.records: List[PacketRecord] = []
        self._next_id = 0

    # -- sending ------------------------------------------------------------------

    def send(self, src_sat: int, dest_lat: float, dest_lon: float,
             size_bytes: int = 1500, at_s: float = 0.0,
             route_t: float = 0.0) -> PacketRecord:
        """Inject one packet; its delivery unfolds on the event queue.

        ``at_s`` earlier than the simulated clock is clamped to *now*
        for both the first hop and ``sent_at_s``: a packet cannot be
        injected into the past, and its reported latency must measure
        from when it actually entered the network, not from the stale
        request time.
        """
        route = self.router.route(src_sat, dest_lat, dest_lon, route_t)
        injected_at_s = max(at_s, self.sim.now)
        record = PacketRecord(self._next_id, src_sat, injected_at_s)
        self._next_id += 1
        self.records.append(record)
        if self.metrics is not None:
            self.metrics.counter("packet.sent").inc()
        if not route.delivered:
            self._drop(record, "unroutable")
            return record
        self.sim.schedule_at(injected_at_s, self._hop,
                             record, route.path, 0, size_bytes, route_t,
                             (dest_lat, dest_lon))
        return record

    def send_batch(self, src_sats, dest_lats, dest_lons,
                   size_bytes: int = 1500, at_s: float = 0.0,
                   route_t: float = 0.0) -> List[PacketRecord]:
        """Inject a wave of packets, routed in one vectorized call.

        Equivalent to calling :meth:`send` per packet (the batch plane
        is bit-identical to the scalar walk), but the path computation
        for the whole wave happens in a single ``route_batch`` before
        any event is scheduled -- at Monte Carlo sizes that is the
        difference between routing dominating the run and the event
        engine dominating it.
        """
        batch = self.router.route_batch(src_sats, dest_lats, dest_lons,
                                        route_t)
        injected_at_s = max(at_s, self.sim.now)
        records: List[PacketRecord] = []
        for i, src_sat in enumerate(src_sats):
            record = PacketRecord(self._next_id, int(src_sat),
                                  injected_at_s)
            self._next_id += 1
            self.records.append(record)
            records.append(record)
            if self.metrics is not None:
                self.metrics.counter("packet.sent").inc()
            if not batch.delivered[i]:
                self._drop(record, "unroutable")
                continue
            self.sim.schedule_at(
                injected_at_s, self._hop, record, batch.path(i), 0,
                size_bytes, route_t,
                (float(dest_lats[i]), float(dest_lons[i])))
        return records

    def _serialization_s(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / (self.link_rate_mbps * 1e6)

    def _drop(self, record: PacketRecord, reason: str) -> None:
        record.dropped = True
        if self.metrics is not None:
            self.metrics.counter("packet.dropped", reason=reason).inc()

    def _hop(self, record: PacketRecord, path: List[int], index: int,
             size_bytes: int, route_t: float,
             dest: Optional[Tuple[float, float]] = None) -> None:
        """Process the packet's arrival at ``path[index]``."""
        if index == len(path) - 1:
            record.delivered_at_s = self.sim.now
            if self.metrics is not None:
                self.metrics.counter("packet.delivered").inc()
                self.metrics.histogram("packet.latency_s").observe(
                    record.latency_s or 0.0)
                self.metrics.histogram(
                    "packet.hops",
                    buckets=DEFAULT_COUNT_BUCKETS).observe(record.hops)
            return
        current, nxt = path[index], path[index + 1]
        if not self.topology.isl_up(current, nxt):
            self._reroute_or_drop(record, current, size_bytes, route_t,
                                  dest)
            return
        if (self.loss_probability
                and self._rng.random() < self.loss_probability):
            self._drop(record, "random-loss")
            return
        if (self.channel_model is not None
                and self.channel_model.frame_lost(current, nxt)):
            if record.retransmits < self.max_retransmits:
                # Re-queue the frame on the same link after an ARQ
                # timeout; the burst process keeps advancing, so a
                # short burst usually clears before the cap.
                record.retransmits += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "packet.retransmits",
                        link=f"{current}-{nxt}").inc()
                self.sim.schedule_at(
                    self.sim.now + self.retransmit_timeout_s,
                    self._hop, record, path, index, size_bytes, route_t,
                    dest)
                return
            # Retransmit budget exhausted: treat the link as hopeless
            # for this packet and route around it.
            self._reroute_or_drop(record, current, size_bytes, route_t,
                                  dest,
                                  avoid={frozenset((current, nxt))})
            return
        link = (current, nxt)
        serialization = self._serialization_s(size_bytes)
        start = max(self.sim.now, self._link_free_at.get(link,
                                                         self.sim.now))
        if self.metrics is not None:
            self.metrics.histogram(
                "packet.queue_wait_s",
                link=f"{current}-{nxt}").observe(start - self.sim.now)
        self._link_free_at[link] = start + serialization
        propagation = self.topology.isl_delay_s(current, nxt, route_t)
        arrival = start + serialization + propagation
        # Hops are counted as frames leave links so the tally stays
        # correct across mid-flight reroutes.
        record.hops += 1
        self.sim.schedule_at(arrival, self._hop, record, path,
                             index + 1, size_bytes, route_t, dest)

    def _reroute_or_drop(self, record: PacketRecord, current: int,
                         size_bytes: int, route_t: float,
                         dest: Optional[Tuple[float, float]],
                         avoid=None) -> None:
        """Graceful degradation: recompute the path from here, bounded.

        With ``max_reroutes=0`` (the default) this preserves the
        legacy semantics -- a failed link mid-flight drops the packet.
        """
        if (dest is None or record.reroutes >= self.max_reroutes):
            self._drop(record, "link-failed")
            return
        record.reroutes += 1
        if self.metrics is not None:
            self.metrics.counter("packet.reroutes",
                                 at_sat=current).inc()
        route = self.router.route(current, dest[0], dest[1], route_t,
                                  avoid_links=avoid)
        if not route.delivered:
            self._drop(record, "no-alternate-route")
            return
        self.sim.schedule_at(self.sim.now, self._hop, record,
                             route.path, 0, size_bytes, route_t, dest)

    # -- running & results ------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Drain the event queue (deliver everything in flight)."""
        self.sim.run(until=until)

    def delivered(self) -> List[PacketRecord]:
        """All delivered packets."""
        return [r for r in self.records if r.delivered_at_s is not None]

    def drop_count(self) -> int:
        """Packets lost to failed links or random loss."""
        return sum(1 for r in self.records if r.dropped)

    def latency_stats(self) -> Tuple[float, float, float]:
        """(min, mean, max) delivered latency in seconds."""
        latencies = [r.latency_s for r in self.delivered()]
        if not latencies:
            raise RuntimeError("no packets delivered yet")
        return (min(latencies), sum(latencies) / len(latencies),
                max(latencies))
