"""Event-driven emulation of a satellite neighbourhood.

Drives the *real* SpaceCore stack (live crypto, live NF state) with
the paper's workload processes on the discrete-event engine: session
arrivals every ~106.9 s per UE, RRC inactivity releases, and
serving-satellite passes every dwell period.  This is the executable
counterpart of the analytic models in ``repro.experiments`` -- the
cross-validation tests check that what the emulation *measures*
matches what the arithmetic *predicts*.

A full constellation with 30 K users per satellite is deliberately out
of scope for an in-process emulation; a neighbourhood of O(100) UEs
with rate-scaling gives the same per-UE statistics.  For
population-scale load points (10K .. 1M+ UEs) use
:class:`CohortEmulation`, which swaps the per-UE event chains for the
vectorized cohort engine (:mod:`repro.runtime.cohort`) -- O(cohorts)
instead of O(users), same arrival processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..constants import (
    RRC_INACTIVITY_TIMEOUT_S,
    SESSION_INTERARRIVAL_S,
)
from ..core.satellite import FallbackRequired
from ..core.spacecore import SpaceCoreSystem
from ..fiveg.ue import UserEquipment
from ..orbits.constellation import Constellation
from ..orbits.coverage import mean_dwell_time_s
from .engine import Simulator


@dataclass
class EmulationStats:
    """Counters accumulated over one emulation run."""

    duration_s: float = 0.0
    ue_count: int = 0
    sessions_attempted: int = 0
    sessions_established: int = 0
    fallbacks: int = 0
    releases: int = 0
    handovers: int = 0
    uplink_packets: int = 0
    signaling_messages: int = 0
    usage_reports: int = 0
    state_updates_pushed: int = 0

    @property
    def session_rate_per_ue(self) -> float:
        """Measured establishments per UE-second."""
        if not self.duration_s or not self.ue_count:
            return 0.0
        return self.sessions_established / (self.duration_s
                                            * self.ue_count)

    @property
    def success_ratio(self) -> float:
        if not self.sessions_attempted:
            return 1.0
        return self.sessions_established / self.sessions_attempted


class NeighborhoodEmulation:
    """One geographic neighbourhood of UEs under live SpaceCore."""

    def __init__(self, constellation: Constellation, num_ues: int = 25,
                 center_lat_deg: float = 39.9,
                 center_lon_deg: float = 116.4,
                 seed: int = 0,
                 session_interval_s: float = SESSION_INTERARRIVAL_S):
        if num_ues < 1:
            raise ValueError("need at least one UE")
        self.system = SpaceCoreSystem(constellation)
        self.sim = Simulator()
        self.stats = EmulationStats(ue_count=num_ues)
        self.rng = random.Random(seed)
        self.session_interval_s = session_interval_s
        self.dwell_s = mean_dwell_time_s(constellation)
        self.ues: List[UserEquipment] = []
        for _ in range(num_ues):
            lat = center_lat_deg + self.rng.uniform(-1.5, 1.5)
            lon = center_lon_deg + self.rng.uniform(-1.5, 1.5)
            ue = self.system.provision_ue(lat, lon)
            self.system.register(ue, t=0.0)
            self.ues.append(ue)

    # -- event handlers -----------------------------------------------------------

    def _establish(self, ue: UserEquipment) -> None:
        self.stats.sessions_attempted += 1
        before = self.system.bus.count()
        try:
            self.system.establish_session(ue, t=self.sim.now)
        except FallbackRequired:
            self.stats.fallbacks += 1
        else:
            self.stats.sessions_established += 1
            if self.system.send_uplink(ue, 1200, self.sim.now):
                self.stats.uplink_packets += 1
            # Inactivity release after the paper's 10-15 s window.
            self.sim.schedule(RRC_INACTIVITY_TIMEOUT_S, self._release,
                              ue)
        self.stats.signaling_messages += self.system.bus.count() - before

    def _release(self, ue: UserEquipment) -> None:
        if ue.connected:
            self._report_usage(ue)
            self.system.release(ue)
            self.stats.releases += 1

    def _report_usage(self, ue: UserEquipment) -> None:
        """S4.4 loop: satellite reports usage, home refreshes states."""
        supi = str(ue.supi)
        sat_index = self.system._ue_serving_sat.get(supi)
        if sat_index is None:
            return
        satellite = self.system.satellite(sat_index)
        bytes_up, bytes_down = satellite.usage_report(supi)
        if bytes_up == 0 and bytes_down == 0:
            return
        served = satellite.served_session(supi)
        if served is None:
            return
        self.system.home.apply_usage_report(
            ue, served.state, bytes_up, bytes_down, self.sim.now)
        self.stats.usage_reports += 1
        self.stats.state_updates_pushed = \
            self.system.home.state_updates_pushed

    def _session_loop(self, ue: UserEquipment) -> None:
        self._establish(ue)
        delay = self.rng.expovariate(1.0 / self.session_interval_s)
        self.sim.schedule(max(1e-3, delay), self._session_loop, ue)

    def _pass_sweep(self) -> None:
        """Coverage moves: hand over connected UEs, leave idle alone.

        This is where SpaceCore's S4.3 behaviour shows: idle UEs cost
        nothing; active UEs run the short local handover.
        """
        before = self.system.bus.count()
        for ue in self.ues:
            if not ue.connected:
                continue
            try:
                moved = self.system.handover(ue, self.sim.now)
            except FallbackRequired:
                self.stats.fallbacks += 1
                continue
            if moved is not None:
                self.stats.handovers += 1
        self.stats.signaling_messages += self.system.bus.count() - before
        # Check well within a dwell so active sessions catch their
        # pass boundary promptly (a real UE reacts to measurements).
        self.sim.schedule(self.dwell_s / 8.0, self._pass_sweep)

    # -- driving --------------------------------------------------------------------

    def run(self, duration_s: float) -> EmulationStats:
        """Run the emulation for ``duration_s`` simulated seconds."""
        for ue in self.ues:
            first = self.rng.uniform(0.0, self.session_interval_s)
            self.sim.schedule(first, self._session_loop, ue)
        self.sim.schedule(self.dwell_s / 8.0, self._pass_sweep)
        self.sim.run(until=duration_s)
        self.stats.duration_s = duration_s
        return self.stats

    # -- cross-validation -----------------------------------------------------------

    def predicted_session_rate_per_ue(self) -> float:
        """The analytic counterpart of ``session_rate_per_ue``."""
        return 1.0 / self.session_interval_s


class CohortEmulation:
    """Population-scale emulation on the vectorized cohort engine.

    Same knobs as :class:`NeighborhoodEmulation` where they overlap
    (constellation, UE count, seed, session interval) but no per-UE
    simulator events: arrivals are sampled per cohort and message
    costs applied in batch, so ``num_ues`` can be millions.  The
    signaling model is the solution's message flows (SpaceCore by
    default) rather than the live NF stack -- cross-validation tests
    hold the two within sampling noise of each other on the rates
    both report.
    """

    def __init__(self, constellation: Constellation,
                 num_ues: int = 100_000, seed: int = 0,
                 session_interval_s: float = SESSION_INTERARRIVAL_S,
                 n_cohorts: int = 256, solution=None):
        from ..runtime.cohort import UECohortEngine
        self.engine = UECohortEngine(
            constellation, n_ues=num_ues, solution=solution, seed=seed,
            n_cohorts=n_cohorts, session_interval_s=session_interval_s)

    def run(self, duration_s: float):
        """Sample the load point; returns ``CohortStats``."""
        return self.engine.run(duration_s)

    def predicted_session_rate_per_ue(self) -> float:
        """The analytic counterpart of ``session_rate_per_ue``."""
        return self.engine.predicted_session_rate_per_ue()
