"""Discrete-event simulation: engine, live emulation, packet forwarding."""

from .emulation import CohortEmulation, EmulationStats, NeighborhoodEmulation
from .engine import EventHandle, PeriodicHandle, Simulator
from .packets import PacketRecord, PacketSimulation

__all__ = ["CohortEmulation", "EmulationStats", "NeighborhoodEmulation",
           "EventHandle", "PeriodicHandle", "Simulator", "PacketRecord",
           "PacketSimulation"]
