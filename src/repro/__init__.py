"""SpaceCore reproduction: stateless mobile core network functions in space.

A from-scratch Python implementation of the system described in
"A Case for Stateless Mobile Core Network Functions in Space"
(SIGCOMM 2022), including every substrate the paper depends on:
orbital mechanics, geospatial cells and addressing, the +Grid ISL
topology with Algorithm 1 stateless routing, a 5G core (AMF/SMF/UPF/
AUSF/UDM/PCF with the C1-C4 procedures), attribute-based encryption
with station-to-station key agreement, the four baselines, and the
full experiment harness for every table and figure.

Quickstart::

    from repro.core import SpaceCoreSystem
    from repro.orbits import starlink

    system = SpaceCoreSystem(starlink())
    ue = system.provision_ue(39.9, 116.4)   # Beijing
    system.register(ue)                     # C1 through the home
    session = system.establish_session(ue)  # localized C2 (Fig. 16a)
"""

__version__ = "1.0.0"

from . import constants

__all__ = ["constants", "__version__"]
