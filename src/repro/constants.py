"""Physical and protocol constants used across the reproduction.

All distances are kilometres, all times seconds, all angles radians
unless a name says otherwise.  Values follow standard astrodynamics
references (WGS-84 / Vallado) and the SpaceCore paper (SIGCOMM 2022).
"""

import math

# ---------------------------------------------------------------------------
# Earth and astrodynamics
# ---------------------------------------------------------------------------

#: Mean Earth radius (km).  The paper's coverage/cell math uses a sphere.
EARTH_RADIUS_KM = 6371.0

#: Earth gravitational parameter GM (km^3/s^2).
EARTH_MU_KM3_S2 = 398600.4418

#: Earth rotation rate (rad/s), sidereal.
EARTH_ROTATION_RAD_S = 7.2921159e-5

#: Second zonal harmonic of the geopotential (oblateness).
EARTH_J2 = 1.08262668e-3

#: Fourth zonal harmonic of the geopotential.
EARTH_J4 = -1.61098761e-6

#: Speed of light in vacuum (km/s); ISL and radio propagation delay.
SPEED_OF_LIGHT_KM_S = 299792.458

#: Sidereal day (s).
SIDEREAL_DAY_S = 86164.0905

#: GEO altitude quoted by the paper (km).
GEO_ALTITUDE_KM = 35786.0

# ---------------------------------------------------------------------------
# Mobile-network timing constants from the paper
# ---------------------------------------------------------------------------

#: Mean interval between session establishments per active UE (s), §3.1,
#: citing [44]: "Session establishment is frequent for each UE (every
#: 106.9s)".
SESSION_INTERARRIVAL_S = 106.9

#: Inactivity timeout after which the RRC connection is released (s);
#: the paper quotes 10-15 s, we use the midpoint.
RRC_INACTIVITY_TIMEOUT_S = 12.5

#: Transient coverage time of one Starlink satellite over a fixed user (s),
#: §3.2: "each LEO satellite only has transient coverage (~165.8s in
#: Starlink)".
STARLINK_DWELL_S = 165.8

#: Registration delays measured on operational GEO terminals (s), §2.2.
INMARSAT_REGISTRATION_DELAY_S = 9.5
TIANTONG_REGISTRATION_DELAY_S = 13.5

#: 5G radio baseband processing deadline (s), §2.2 ("<10 ms").
BASEBAND_DEADLINE_S = 0.010

#: Fraction of Starlink satellites estimated to have failed (§1, §3.3).
STARLINK_FAILURE_FRACTION = 1.0 / 40.0

# ---------------------------------------------------------------------------
# NAS procedure guard timers and retry discipline (TS 24.501 analogues)
# ---------------------------------------------------------------------------

#: Registration guard timer T3510 (s): how long a UE waits for the
#: Registration Accept before retrying.
NAS_T3510_S = 15.0

#: PDU session establishment guard timer T3580 (s).
NAS_T3580_S = 16.0

#: Service request / handover guard timer T3517 (s).
NAS_T3517_S = 15.0

#: NAS retry counters expire after five attempts (the TS 24.501
#: "abort the procedure" threshold); we abandon after this many.
NAS_MAX_ATTEMPTS = 5

#: Base delay of the bounded exponential backoff between procedure
#: attempts (s); attempt k waits base * 2**k, capped below.
NAS_RETRY_BACKOFF_BASE_S = 2.0

#: Upper bound on a single backoff interval (s).
NAS_RETRY_BACKOFF_CAP_S = 30.0

#: Radio-link-failure detection delay (s): the gap between a serving
#: satellite dying and the UE declaring RLF and re-attaching (T310-ish).
RLF_DETECTION_S = 1.0

#: Satellite user-capacity sweep used throughout the evaluation (Fig. 10/20).
SATELLITE_CAPACITIES = (2_000, 10_000, 20_000, 30_000)

# ---------------------------------------------------------------------------
# Misc helpers
# ---------------------------------------------------------------------------

TWO_PI = 2.0 * math.pi


def orbital_period_s(altitude_km: float) -> float:
    """Keplerian period of a circular orbit at ``altitude_km`` (s)."""
    a = EARTH_RADIUS_KM + altitude_km
    return TWO_PI * math.sqrt(a**3 / EARTH_MU_KM3_S2)


def mean_motion_rad_s(altitude_km: float) -> float:
    """Mean motion n = sqrt(mu/a^3) of a circular orbit (rad/s)."""
    a = EARTH_RADIUS_KM + altitude_km
    return math.sqrt(EARTH_MU_KM3_S2 / a**3)


def orbital_speed_km_s(altitude_km: float) -> float:
    """Circular orbital speed (km/s); Table 1 quotes 7.3-7.6 km/s."""
    a = EARTH_RADIUS_KM + altitude_km
    return math.sqrt(EARTH_MU_KM3_S2 / a)
