"""Declarative scenario catalog + SLO-gated resilience harness.

``ScenarioSpec`` (what to stress) -> ``run_scenario`` (seeded sharded
trials) -> canonical golden artifact -> ``SLOBudget`` verdict.  The
shipped catalog lives in :mod:`.catalog`; golden plumbing in
:mod:`.golden`; the ``repro scenario`` CLI fronts all of it.
"""

from .catalog import CATALOG, get_scenario, scenario_names
from .engine import ScenarioResult, build_schedule, run_scenario
from .golden import (
    CheckOutcome,
    check_catalog,
    check_scenario,
    golden_dir,
    golden_path,
    write_golden,
)
from .slo import DEGRADED, FAIL, PASS, SLOBudget, SLOReport, evaluate_slos
from .spec import ChaosSpec, PopulationSpec, ScenarioSpec

__all__ = [
    "CATALOG",
    "ChaosSpec",
    "CheckOutcome",
    "DEGRADED",
    "FAIL",
    "PASS",
    "PopulationSpec",
    "SLOBudget",
    "SLOReport",
    "ScenarioResult",
    "ScenarioSpec",
    "build_schedule",
    "check_catalog",
    "check_scenario",
    "evaluate_slos",
    "get_scenario",
    "golden_dir",
    "golden_path",
    "run_scenario",
    "scenario_names",
    "write_golden",
]
