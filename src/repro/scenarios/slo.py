"""SLO budgets and verdicts for scenario runs.

A :class:`SLOBudget` states what a scenario is *allowed* to cost in
availability terms; :func:`evaluate_slos` holds a run summary to that
budget and returns a :class:`SLOReport` with one verdict per check and
an overall worst-of verdict:

* ``pass`` -- the check clears its threshold with headroom;
* ``degraded`` -- the check clears the threshold but sits inside the
  ``degraded_margin`` band (including *exactly at* the threshold): the
  scenario still meets its SLO, with no headroom left -- the early-
  warning state CI surfaces without failing the build;
* ``fail`` -- the threshold is violated.

Checks come in two shapes: **floors** (observed must be >= threshold:
availability, the SpaceCore-vs-stateful survival margin) and
**ceilings** (observed must be <= threshold: p99 recovery latency,
retries per recovery, lost sessions).  All inputs are simulated-time
aggregates, so verdicts are bit-reproducible along with the artifacts
they ride in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

PASS = "pass"
DEGRADED = "degraded"
FAIL = "fail"

_SEVERITY = {PASS: 0, DEGRADED: 1, FAIL: 2}


@dataclass(frozen=True)
class SLOBudget:
    """What one scenario is allowed to cost.

    ``None`` disables a check.  ``degraded_margin`` is the relative
    width of the no-headroom band around each threshold (absolute for
    thresholds at zero).
    """

    #: Floor on SpaceCore mean final session survival across trials.
    availability_floor: Optional[float] = 0.9
    #: Ceiling on the pooled p99 SpaceCore recovery latency (seconds).
    p99_latency_ceiling_s: Optional[float] = 60.0
    #: Ceiling on mean NAS attempts per completed SpaceCore recovery.
    retry_budget_attempts: Optional[float] = 2.0
    #: Ceiling on total SpaceCore sessions lost across all trials.
    max_lost_sessions: Optional[int] = 0
    #: Floor on mean (SpaceCore - stateful baseline) final survival:
    #: the paper's availability gap, required to stay non-negative.
    survival_margin_floor: Optional[float] = 0.0
    #: Relative headroom band; within it a passing check is "degraded".
    degraded_margin: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.degraded_margin < 1.0:
            raise ValueError("degraded margin must be in [0, 1)")

    def describe(self) -> Dict:
        """JSON-ready view of every budget knob (for the artifact)."""
        return {
            "availability_floor": self.availability_floor,
            "p99_latency_ceiling_s": self.p99_latency_ceiling_s,
            "retry_budget_attempts": self.retry_budget_attempts,
            "max_lost_sessions": self.max_lost_sessions,
            "survival_margin_floor": self.survival_margin_floor,
            "degraded_margin": self.degraded_margin,
        }


@dataclass(frozen=True)
class SLOCheck:
    """One budget line held against one observed aggregate."""

    name: str
    kind: str              # "floor" | "ceiling"
    threshold: float
    observed: float
    verdict: str

    def to_json(self) -> Dict:
        """JSON-ready record: name, kind, threshold, observed, verdict."""
        return {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "observed": self.observed,
            "verdict": self.verdict,
        }


@dataclass
class SLOReport:
    """All checks of one scenario run, plus the worst-of verdict."""

    checks: List[SLOCheck] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        if not self.checks:
            return PASS
        return max((c.verdict for c in self.checks),
                   key=lambda v: _SEVERITY[v])

    @property
    def failed(self) -> List[SLOCheck]:
        return [c for c in self.checks if c.verdict == FAIL]

    @property
    def degraded(self) -> List[SLOCheck]:
        return [c for c in self.checks if c.verdict == DEGRADED]

    def to_json(self) -> Dict:
        """JSON-ready report: overall verdict plus every check."""
        return {
            "verdict": self.verdict,
            "checks": [c.to_json() for c in self.checks],
        }


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Empty input yields 0.0: a run with no recovery samples has no
    latency to budget.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _band(threshold: float, margin: float) -> float:
    """Absolute width of the degraded band around one threshold."""
    return margin * (abs(threshold) if threshold != 0.0 else 1.0)


def _floor_check(name: str, threshold: Optional[float], observed: float,
                 margin: float) -> Optional[SLOCheck]:
    if threshold is None:
        return None
    if observed < threshold:
        verdict = FAIL
    elif observed <= threshold + _band(threshold, margin):
        verdict = DEGRADED
    else:
        verdict = PASS
    return SLOCheck(name, "floor", float(threshold), float(observed),
                    verdict)


def _ceiling_check(name: str, threshold: Optional[float], observed: float,
                   margin: float) -> Optional[SLOCheck]:
    if threshold is None:
        return None
    if observed > threshold:
        verdict = FAIL
    elif observed >= threshold - _band(threshold, margin):
        verdict = DEGRADED
    else:
        verdict = PASS
    return SLOCheck(name, "ceiling", float(threshold), float(observed),
                    verdict)


def evaluate_slos(budget: SLOBudget, summary: Mapping) -> SLOReport:
    """Hold one scenario-run summary to its budget.

    ``summary`` is the engine's across-trial aggregate (see
    :meth:`~repro.scenarios.engine.ScenarioResult.summary`); missing
    keys read as their natural zero, so an empty snapshot evaluates
    instead of crashing -- and fails the availability floor, which is
    the right answer for "the scenario produced nothing".
    """
    margin = budget.degraded_margin
    checks = [
        _floor_check("availability", budget.availability_floor,
                     float(summary.get("spacecore_mean_survival", 0.0)),
                     margin),
        _ceiling_check("p99_recovery_latency_s",
                       budget.p99_latency_ceiling_s,
                       float(summary.get("spacecore_p99_recovery_s", 0.0)),
                       margin),
        _ceiling_check("retries_per_recovery",
                       budget.retry_budget_attempts,
                       float(summary.get("spacecore_mean_attempts", 0.0)),
                       margin),
        _ceiling_check("lost_sessions",
                       (None if budget.max_lost_sessions is None
                        else float(budget.max_lost_sessions)),
                       float(summary.get("spacecore_lost", 0)),
                       margin),
        _floor_check("survival_margin", budget.survival_margin_floor,
                     float(summary.get("survival_margin", 0.0)),
                     margin),
    ]
    return SLOReport([c for c in checks if c is not None])
