"""Golden-artifact plumbing: write, check, and diff catalog runs.

Each catalog scenario commits its canonical artifact (sorted JSON,
trailing newline) under ``artifacts/scenarios/<name>.json``.  A check
re-runs the scenario and compares **bytes**: any drift -- a changed
fault log, a shifted latency, a new metric series -- fails loudly with
a unified diff, exactly like a golden-file test.  Because artifacts
contain nothing about the execution medium, the same check passing at
``REPRO_WORKERS=1`` and ``2`` certifies the sharded runtime's
bit-reproducibility contract end to end.

``REPRO_SCENARIO_GOLDEN_DIR`` points checks at an alternate directory
(tests use a tmpdir; CI uses the committed tree).
"""

from __future__ import annotations

import difflib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .engine import ScenarioResult, run_scenario
from .slo import FAIL
from .spec import ScenarioSpec

#: Environment override for the golden-artifact directory.
GOLDEN_DIR_ENV = "REPRO_SCENARIO_GOLDEN_DIR"


def golden_dir() -> Path:
    """Where golden artifacts live (env-overridable for tests)."""
    override = os.environ.get(GOLDEN_DIR_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "artifacts" / "scenarios"


def golden_path(name: str) -> Path:
    """Path of the committed golden artifact for scenario ``name``."""
    return golden_dir() / f"{name}.json"


def write_golden(result: ScenarioResult) -> Path:
    """(Re)commit one scenario's canonical artifact."""
    path = golden_path(result.spec.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(result.artifact_json(), encoding="utf-8")
    return path


def diff_lines(expected: str, actual: str, name: str,
               limit: int = 40) -> List[str]:
    """A truncated unified diff of golden vs freshly-run artifact."""
    lines = list(difflib.unified_diff(
        expected.splitlines(), actual.splitlines(),
        fromfile=f"golden/{name}.json", tofile=f"run/{name}.json",
        lineterm=""))
    if len(lines) > limit:
        lines = lines[:limit] + [f"... ({len(lines) - limit} more lines)"]
    return lines


@dataclass
class CheckOutcome:
    """One scenario's check verdict: SLOs plus golden-byte drift."""

    name: str
    slo_verdict: str
    drift: bool
    missing_golden: bool = False
    diff: List[str] = field(default_factory=list)
    result: Optional[ScenarioResult] = None

    @property
    def ok(self) -> bool:
        """Check passes: SLOs not failing, golden present and byte-equal.

        A ``degraded`` SLO verdict still passes -- it is the early
        warning, not the gate.
        """
        return (not self.drift and not self.missing_golden
                and self.slo_verdict != FAIL)


def check_scenario(spec: ScenarioSpec,
                   workers: Optional[int] = None,
                   update: bool = False) -> CheckOutcome:
    """Re-run one scenario and hold it to its golden bytes + SLOs.

    ``update=True`` rewrites the golden instead of diffing against it
    (the ``repro scenario run --update`` path).
    """
    result = run_scenario(spec, workers=workers)
    actual = result.artifact_json()
    verdict = result.slo_report().verdict
    path = golden_path(spec.name)
    if update:
        write_golden(result)
        return CheckOutcome(spec.name, verdict, drift=False, result=result)
    if not path.exists():
        return CheckOutcome(spec.name, verdict, drift=True,
                            missing_golden=True, result=result)
    expected = path.read_text(encoding="utf-8")
    if expected == actual:
        return CheckOutcome(spec.name, verdict, drift=False, result=result)
    return CheckOutcome(spec.name, verdict, drift=True,
                        diff=diff_lines(expected, actual, spec.name),
                        result=result)


def check_catalog(specs: Dict[str, ScenarioSpec],
                  workers: Optional[int] = None,
                  update: bool = False) -> List[CheckOutcome]:
    """Check every given scenario, in sorted-name order."""
    return [check_scenario(specs[name], workers=workers, update=update)
            for name in sorted(specs)]
