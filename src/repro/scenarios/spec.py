"""Declarative resilience scenarios: what to stress, never how to run.

A :class:`ScenarioSpec` names one reproducible resilience run: a
constellation, a subscriber population, a seeded chaos composition,
and the SLO budget the run is held to.  Specs are frozen, purely
declarative data -- the execution engine (:mod:`.engine`) turns one
into seeded :class:`~repro.experiments.chaos_availability.ChaosScenario`
trials and a :class:`~repro.faults.chaos.FaultSchedule`, and nothing
about the execution medium (worker count, host, wall time) can leak
back into the spec or its artifact.

The declarative split mirrors chaos-engineering practice: the catalog
(:mod:`.catalog`) is a reviewable inventory of *named* failure
hypotheses, each pinned by a golden artifact, instead of one-off
experiment scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

from ..experiments.chaos_availability import ChaosScenario, PacketProbeSpec
from .slo import SLOBudget


@dataclass(frozen=True)
class PopulationSpec:
    """Who is attached when the faults start."""

    n_ues: int = 12
    #: (lat, lon) degree sites cycled over, jittered; None = the
    #: chaos experiment's default hemisphere-ish spread.
    sites: Optional[Tuple[Tuple[float, float], ...]] = None
    jitter_deg: float = 2.0
    #: Signaling load (procedures/s) the serving processor sees during
    #: recovery churn -- where COMPUTE_DEGRADE events bite.
    compute_load_per_s: float = 150.0

    def __post_init__(self) -> None:
        if self.n_ues < 1:
            raise ValueError("population needs at least one UE")
        if self.jitter_deg < 0:
            raise ValueError("jitter cannot be negative")


@dataclass(frozen=True)
class ChaosSpec:
    """Which fault processes run, composed from seeded primitives.

    Every window is ``[start_s, stop_s)`` in simulated seconds; a
    degenerate window (``stop <= start``) disables that fault source,
    so the zero-valued default spec injects nothing.
    """

    # -- background decay churn (Fig. 13a hazard, accelerated) -------------
    decay_acceleration: float = 0.0      # 0 = no decay process
    repair_delay_s: Optional[float] = 1500.0

    # -- Gilbert-Elliott ISL weather (Fig. 13b) ----------------------------
    link_bursts: bool = False
    link_p_good_to_bad: float = 0.01
    link_p_bad_to_good: float = 0.2

    # -- regional jamming --------------------------------------------------
    jam_start_s: float = 0.0
    jam_stop_s: float = 0.0
    jam_radius_km: float = 0.0

    # -- mass handover storm (terminator crossing) -------------------------
    storm_start_s: float = 0.0
    storm_stop_s: float = 0.0
    storm_repair_delay_s: float = 120.0

    # -- regional ground-station outage ------------------------------------
    gs_outage_start_s: float = 0.0
    gs_outage_stop_s: float = 0.0
    gs_outage_fraction: float = 0.0      # fraction of gateways, by proximity

    # -- onboard-compute degradation ---------------------------------------
    compute_start_s: float = 0.0
    compute_stop_s: float = 0.0
    compute_factor: float = 1.0          # remaining capacity (1.0 = none)
    compute_fraction: float = 1.0        # fraction of serving satellites

    def __post_init__(self) -> None:
        if self.decay_acceleration < 0:
            raise ValueError("decay acceleration cannot be negative")
        if not 0.0 <= self.gs_outage_fraction <= 1.0:
            raise ValueError("gs outage fraction must be in [0, 1]")
        if not 0.0 < self.compute_factor <= 1.0:
            raise ValueError("compute factor must be in (0, 1]")
        if not 0.0 < self.compute_fraction <= 1.0:
            raise ValueError("compute fraction must be in (0, 1]")

    @property
    def storms(self) -> bool:
        return self.storm_stop_s > self.storm_start_s

    @property
    def jams(self) -> bool:
        return self.jam_radius_km > 0 and self.jam_stop_s > self.jam_start_s

    @property
    def downs_ground_stations(self) -> bool:
        return (self.gs_outage_fraction > 0
                and self.gs_outage_stop_s > self.gs_outage_start_s)

    @property
    def degrades_compute(self) -> bool:
        return (self.compute_factor < 1.0
                and self.compute_stop_s > self.compute_start_s)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, reproducible resilience run with an SLO budget."""

    name: str
    title: str
    description: str
    constellation: str = "Starlink"      # Table 1 name (orbits.by_name)
    horizon_s: float = 1800.0
    sample_interval_s: float = 120.0
    population: PopulationSpec = field(default_factory=PopulationSpec)
    chaos: ChaosSpec = field(default_factory=ChaosSpec)
    slo: SLOBudget = field(default_factory=SLOBudget)
    n_trials: int = 2
    base_seed: int = 0
    #: Optional post-churn routability probe: a seeded bulk packet
    #: wave through the batch routing plane over whatever topology the
    #: fault schedule left standing.  ``None`` (the default) keeps the
    #: trial payload -- and every committed golden -- byte-identical.
    packet_probe: Optional[PacketProbeSpec] = None

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError("scenario name must be a non-empty slug")
        if self.horizon_s <= 0 or self.sample_interval_s <= 0:
            raise ValueError("horizon and sample interval must be positive")
        if self.n_trials < 1:
            raise ValueError("scenario needs at least one trial")

    def chaos_scenario(self, seed: int) -> ChaosScenario:
        """The seeded per-trial knob set the chaos experiment runs.

        Fault *composition* does not ride here -- the engine builds the
        :class:`~repro.faults.chaos.FaultSchedule` from :attr:`chaos`
        via its ``schedule_builder`` hook -- but the baseline's loss
        model reacts to the jamming window, so those knobs carry over.
        """
        return ChaosScenario(
            horizon_s=self.horizon_s,
            sample_interval_s=self.sample_interval_s,
            n_ues=self.population.n_ues,
            decay_acceleration=self.chaos.decay_acceleration,
            repair_delay_s=self.chaos.repair_delay_s,
            jam_start_s=self.chaos.jam_start_s,
            jam_stop_s=self.chaos.jam_stop_s,
            jam_radius_km=self.chaos.jam_radius_km,
            ue_sites=self.population.sites,
            ue_jitter_deg=self.population.jitter_deg,
            compute_load_per_s=self.population.compute_load_per_s,
            seed=seed)

    def describe(self) -> Dict:
        """The spec echo embedded in artifacts (pure data, sortable)."""
        chaos = {f.name: getattr(self.chaos, f.name)
                 for f in fields(self.chaos)}
        payload = self._base_describe(chaos)
        if self.packet_probe is not None:
            payload["packet_probe"] = {
                f.name: getattr(self.packet_probe, f.name)
                for f in fields(self.packet_probe)}
        return payload

    def _base_describe(self, chaos: Dict) -> Dict:
        return {
            "name": self.name,
            "title": self.title,
            "constellation": self.constellation,
            "horizon_s": self.horizon_s,
            "sample_interval_s": self.sample_interval_s,
            "population": {
                "n_ues": self.population.n_ues,
                "sites": ([list(site) for site in self.population.sites]
                          if self.population.sites else None),
                "jitter_deg": self.population.jitter_deg,
                "compute_load_per_s": self.population.compute_load_per_s,
            },
            "chaos": chaos,
            "slo": self.slo.describe(),
            "n_trials": self.n_trials,
            "base_seed": self.base_seed,
        }
