"""Scenario execution: spec -> sharded trials -> canonical artifact.

One :class:`~repro.scenarios.spec.ScenarioSpec` runs as a seeded
Monte Carlo on the sharded runtime: trial ``k`` derives its seed with
:func:`~repro.runtime.parallel.seed_for` from the spec's base seed, so
the derivation is identical whether trials execute serially or across
a process pool.  Each trial carries its own
:class:`~repro.obs.metrics.MetricsRegistry`; the parent merges the
per-trial snapshots **in trial order** with
:func:`~repro.obs.metrics.merge_snapshots` and evaluates the SLO
budget over across-trial aggregates.  The resulting artifact is
canonical sorted JSON with no trace of the execution medium -- the
byte-for-byte golden contract the catalog CI replays at 1 and 2
workers.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.chaos_availability import (
    ChaosScenario,
    run_chaos_availability,
    serving_blast_radius,
)
from ..core import SpaceCoreSystem
from ..faults.chaos import FaultSchedule
from ..fiveg.ue import UserEquipment
from ..obs import MetricsRegistry, merge_snapshots
from ..orbits.constellation import by_name
from ..runtime.parallel import get_shared, run_sharded, seed_for
from .slo import SLOReport, evaluate_slos, percentile
from .spec import ScenarioSpec

__all__ = [
    "ScenarioResult",
    "build_schedule",
    "run_scenario",
]


def _central_angle(lat1: float, lon1: float,
                   lat2: float, lon2: float) -> float:
    """Great-circle angle between two (radian) terrestrial points."""
    cosine = (math.sin(lat1) * math.sin(lat2)
              + math.cos(lat1) * math.cos(lat2) * math.cos(lon1 - lon2))
    return math.acos(min(1.0, max(-1.0, cosine)))


def build_schedule(spec: ScenarioSpec, system: SpaceCoreSystem,
                   ues: Sequence[UserEquipment],
                   scenario: ChaosScenario) -> FaultSchedule:
    """Compose the spec's declared fault processes into one schedule.

    Deterministic in (spec, scenario.seed): target selection uses only
    sorted topology-derived sets and the trial seed, never iteration
    order of hashes.  The :class:`~repro.faults.chaos.ChaosController`
    dedupes by event key, so overlapping windows compose safely.
    """
    chaos = spec.chaos
    serving, blast_radius = serving_blast_radius(system, ues)
    targets = sorted(serving)
    schedule = FaultSchedule()

    if chaos.decay_acceleration > 0:
        schedule.add_satellite_decay(
            sorted(blast_radius), scenario.horizon_s,
            acceleration=chaos.decay_acceleration,
            repair_delay_s=chaos.repair_delay_s, seed=scenario.seed)

    if chaos.link_bursts:
        links = {frozenset((sat, nbr)) for sat in serving
                 for nbr in system.topology.directional_neighbors(
                     sat).values()}
        schedule.add_link_bursts(
            [tuple(sorted(link)) for link in sorted(links, key=sorted)],
            scenario.horizon_s,
            p_good_to_bad=chaos.link_p_good_to_bad,
            p_bad_to_good=chaos.link_p_bad_to_good,
            seed=scenario.seed + 1)

    if chaos.storms and targets:
        schedule.add_handover_storm(
            targets, chaos.storm_start_s,
            min(chaos.storm_stop_s, scenario.horizon_s),
            repair_delay_s=chaos.storm_repair_delay_s)

    if chaos.jams:
        from ..faults.attacks import JammingAttack
        jammer = JammingAttack(
            sum(ue.lat for ue in ues) / len(ues),
            sum(ue.lon for ue in ues) / len(ues),
            radius_km=chaos.jam_radius_km)
        schedule.add_jamming_window(jammer, chaos.jam_start_s,
                                    chaos.jam_stop_s)

    if chaos.downs_ground_stations:
        lat = sum(ue.lat for ue in ues) / len(ues)
        lon = sum(ue.lon for ue in ues) / len(ues)
        stations = system.topology.ground_stations
        by_proximity = sorted(
            range(len(stations)),
            key=lambda i: (_central_angle(lat, lon, stations[i].lat,
                                          stations[i].lon), i))
        count = max(1, math.ceil(chaos.gs_outage_fraction * len(stations)))
        schedule.add_ground_station_outage(
            sorted(by_proximity[:count]),
            chaos.gs_outage_start_s, chaos.gs_outage_stop_s)

    if chaos.degrades_compute and targets:
        count = max(1, math.ceil(chaos.compute_fraction * len(targets)))
        schedule.add_compute_degradation(
            targets[:count], chaos.compute_start_s,
            min(chaos.compute_stop_s, scenario.horizon_s),
            factor=chaos.compute_factor)

    return schedule


# ---------------------------------------------------------------------------
# Sharded trial execution
# ---------------------------------------------------------------------------

def _fault_digest(fault_keys: List[Tuple]) -> str:
    """SHA-256 of the canonical fault log -- pins the event sequence
    without shipping hundreds of raw tuples in every artifact."""
    canonical = json.dumps([list(key) for key in fault_keys],
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _scenario_trial(work: int) -> Dict:
    """One seeded scenario trial (module-level: workers unpickle it).

    The spec and pre-built constellation ship once per worker through
    the shared-object registry; the task itself pickles one integer.
    """
    trial = work
    spec: ScenarioSpec = get_shared("scenario:spec")
    constellation = get_shared("scenario:constellation")
    seed = seed_for(spec.base_seed, f"scenario:{spec.name}:trial:{trial}")
    trial_scenario = spec.chaos_scenario(seed)
    metrics = MetricsRegistry()
    result = run_chaos_availability(
        constellation=constellation, scenario=trial_scenario,
        metrics=metrics,
        schedule_builder=lambda system, ues, scn: build_schedule(
            spec, system, ues, scn),
        packet_probe=spec.packet_probe)

    fault_kinds: Dict[str, int] = {}
    for key in result.fault_log:
        kind = key[1]
        fault_kinds[kind] = fault_kinds.get(kind, 0) + 1
    # Outcome keys: (procedure, supi, started_at, attempts,
    #                total_delay_s, completed, abandoned).
    recovery_attempts = [key[3] for key in result.spacecore_outcomes
                         if key[0] == "recovery" and key[5]]

    payload = {
        "trial": trial,
        "seed": seed,
        "final_survival": {
            "spacecore": result.final_spacecore_survival,
            "baseline": result.final_baseline_survival,
        },
        "lost_sessions": {
            "spacecore": result.spacecore_lost,
            "baseline": result.baseline_lost,
        },
        "n_sessions": result.n_sessions,
        "recovery_latency_s": {
            "spacecore": [round(v, 9)
                          for v in result.spacecore_recovery_latencies],
            "baseline": [round(v, 9)
                         for v in result.baseline_recovery_latencies],
        },
        "recovery_attempts": recovery_attempts,
        "faults": {
            "total": len(result.fault_log),
            "by_kind": fault_kinds,
            "digest": _fault_digest(result.fault_log),
        },
        "snapshot": metrics.snapshot(),
    }
    # Conditional so probe-free scenarios (every committed golden)
    # keep their artifact bytes.
    if result.packet_probe is not None:
        payload["packet_probe"] = result.packet_probe
    return payload


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, artifact-ready."""

    spec: ScenarioSpec
    trials: List[Dict] = field(default_factory=list)

    @property
    def merged_snapshot(self) -> Dict:
        """Per-trial metrics folded in trial order (worker-count free)."""
        return merge_snapshots([t["snapshot"] for t in self.trials])

    def summary(self) -> Dict:
        """Across-trial aggregates the SLO layer budgets."""
        survivals = [t["final_survival"]["spacecore"] for t in self.trials]
        baselines = [t["final_survival"]["baseline"] for t in self.trials]
        latencies = [v for t in self.trials
                     for v in t["recovery_latency_s"]["spacecore"]]
        attempts = [a for t in self.trials for a in t["recovery_attempts"]]
        n = len(self.trials)
        return {
            "n_trials": n,
            "spacecore_mean_survival": (sum(survivals) / n if n else 0.0),
            "spacecore_min_survival": min(survivals) if survivals else 0.0,
            "baseline_mean_survival": (sum(baselines) / n if n else 0.0),
            "survival_margin": ((sum(survivals) - sum(baselines)) / n
                                if n else 0.0),
            "min_trial_margin": (min(s - b for s, b
                                     in zip(survivals, baselines))
                                 if n else 0.0),
            "spacecore_p99_recovery_s": round(percentile(latencies, 99.0),
                                              9),
            "spacecore_recoveries": len(latencies),
            "spacecore_mean_attempts": (sum(attempts) / len(attempts)
                                        if attempts else 0.0),
            "spacecore_lost": sum(t["lost_sessions"]["spacecore"]
                                  for t in self.trials),
            "baseline_lost": sum(t["lost_sessions"]["baseline"]
                                 for t in self.trials),
            "faults_injected": sum(t["faults"]["total"]
                                   for t in self.trials),
        }

    def slo_report(self) -> SLOReport:
        """Judge the run's summary against the spec's SLO budget."""
        return evaluate_slos(self.spec.slo, self.summary())

    def artifact(self) -> Dict:
        """The golden payload: spec echo, aggregates, verdicts, trials."""
        return {
            "scenario": self.spec.describe(),
            "summary": self.summary(),
            "slo_report": self.slo_report().to_json(),
            "merged_snapshot": self.merged_snapshot,
            "trials": self.trials,
        }

    def artifact_json(self) -> str:
        """Canonical bytes: sorted keys, two-space indent, newline EOF."""
        return json.dumps(self.artifact(), indent=2, sort_keys=True) + "\n"


def run_scenario(spec: ScenarioSpec,
                 workers: Optional[int] = None) -> ScenarioResult:
    """Execute one catalog scenario: seeded trials, sharded, merged.

    The trial list is assembled by trial index whatever the worker
    count, so ``run_scenario(spec, 1)`` and ``run_scenario(spec, 8)``
    produce byte-identical artifacts.
    """
    constellation = by_name(spec.constellation)
    trials = run_sharded(
        _scenario_trial, list(range(spec.n_trials)), workers=workers,
        shared={"scenario:spec": spec,
                "scenario:constellation": constellation},
        label=f"scenario.{spec.name}")
    return ScenarioResult(spec=spec, trials=trials)
