"""The shipped scenario catalog: named failure hypotheses, budgeted.

Six resilience stories the paper's statelessness claim must survive,
each a frozen :class:`~repro.scenarios.spec.ScenarioSpec` with a
committed golden artifact under ``artifacts/scenarios/``:

* **handover-storm** -- a terminator crossing drops every serving
  satellite in a staggered wave, forcing the whole population through
  the recovery path nearly at once (the "2040 Blueprint" mass-handover
  stress);
* **ground-outage** -- the gateways nearest the population go dark
  while background churn keeps killing serving satellites: SpaceCore
  recovers locally, the home-routed baseline cannot reach its core;
* **compute-degradation** -- radiation/thermal derating halves the
  serving satellites' compute mid-churn ("From Earth to Space"),
  stretching recovery latency through the M/M/1 queueing model rather
  than dropping sessions;
* **link-weather** -- aggressive Gilbert-Elliott ISL bursts plus decay
  churn shred the mesh around the population;
* **urban-hotspot** -- a dense metropolitan D2D cluster under a
  regional jammer and a serving-satellite storm;
* **routing-survival** -- permanent decay churn, then a seeded bulk
  packet wave probes the surviving +Grid through the batch routing
  plane (the stateless data plane's half of the story).

Budgets are deliberately tight-but-clearing: each scenario passes its
SLOs with measured headroom, so a regression anywhere in the recovery
path flips a verdict before it flips an artifact byte.
"""

from __future__ import annotations

from typing import Dict, List

from ..experiments.chaos_availability import PacketProbeSpec
from .slo import SLOBudget
from .spec import ChaosSpec, PopulationSpec, ScenarioSpec

#: One dense metropolitan cluster (degrees) for the hotspot surge.
_HOTSPOT_SITES = ((35.68, 139.69),)   # Tokyo metro

#: A compact regional spread sharing nearby gateways, so a fractional
#: ground-station outage plausibly isolates the whole population.
_REGIONAL_SITES = ((39.9, 116.4), (31.2, 121.5), (37.6, 127.0),
                   (35.7, 139.7))


CATALOG: Dict[str, ScenarioSpec] = {
    spec.name: spec for spec in (
        ScenarioSpec(
            name="handover-storm",
            title="Mass handover storm at a terminator crossing",
            description=(
                "Every serving satellite blacks out once in a staggered "
                "wave; the entire attached population re-attaches nearly "
                "simultaneously."),
            horizon_s=1800.0,
            population=PopulationSpec(n_ues=12),
            chaos=ChaosSpec(storm_start_s=120.0, storm_stop_s=900.0,
                            storm_repair_delay_s=180.0),
            slo=SLOBudget(availability_floor=0.95,
                          p99_latency_ceiling_s=20.0,
                          retry_budget_attempts=2.0,
                          max_lost_sessions=2,
                          survival_margin_floor=0.0),
            n_trials=2,
        ),
        ScenarioSpec(
            name="ground-outage",
            title="Regional ground-station outage under churn",
            description=(
                "The gateways nearest the population go dark for fifteen "
                "minutes while decay churn keeps killing serving "
                "satellites; home-routed recovery needs exactly what the "
                "outage removed."),
            horizon_s=1800.0,
            population=PopulationSpec(n_ues=12, sites=_REGIONAL_SITES),
            chaos=ChaosSpec(decay_acceleration=5.0e5,
                            repair_delay_s=1200.0,
                            gs_outage_start_s=300.0,
                            gs_outage_stop_s=1200.0,
                            gs_outage_fraction=0.5),
            slo=SLOBudget(availability_floor=0.9,
                          p99_latency_ceiling_s=20.0,
                          retry_budget_attempts=2.0,
                          max_lost_sessions=2,
                          survival_margin_floor=0.0),
            n_trials=2,
        ),
        ScenarioSpec(
            name="compute-degradation",
            title="Onboard compute derated to half capacity mid-churn",
            description=(
                "Radiation upsets throttle every serving satellite to "
                "50% compute while decay churn forces recoveries at a "
                "mass re-attach signaling load; the derated platform "
                "saturates in the M/M/1 model, so every recovery inside "
                "the window pays the Fig. 8 blow-up."),
            horizon_s=1800.0,
            # A neighbor satellite inheriting a failed cell's population
            # sees re-attach signaling at thousands of procedures/s; at
            # half compute, the RPi4-class platform is past saturation.
            population=PopulationSpec(n_ues=12, compute_load_per_s=1500.0),
            chaos=ChaosSpec(decay_acceleration=5.0e5,
                            repair_delay_s=1200.0,
                            compute_start_s=200.0,
                            compute_stop_s=1600.0,
                            compute_factor=0.5),
            slo=SLOBudget(availability_floor=0.9,
                          p99_latency_ceiling_s=45.0,
                          retry_budget_attempts=2.0,
                          max_lost_sessions=2,
                          survival_margin_floor=0.0),
            n_trials=2,
        ),
        ScenarioSpec(
            name="link-weather",
            title="Gilbert-Elliott burst weather on the serving mesh",
            description=(
                "Aggressive GE bursts flap every ISL around the "
                "population while decay churn removes satellites; the "
                "mesh the home-routed flow depends on keeps tearing."),
            horizon_s=1800.0,
            population=PopulationSpec(n_ues=12),
            chaos=ChaosSpec(decay_acceleration=5.0e5,
                            repair_delay_s=1200.0,
                            link_bursts=True,
                            link_p_good_to_bad=0.05,
                            link_p_bad_to_good=0.15),
            slo=SLOBudget(availability_floor=0.9,
                          p99_latency_ceiling_s=20.0,
                          retry_budget_attempts=2.0,
                          max_lost_sessions=2,
                          survival_margin_floor=0.0),
            n_trials=2,
        ),
        ScenarioSpec(
            name="urban-hotspot",
            title="Urban D2D hotspot surge under jamming",
            description=(
                "A dense metropolitan cluster concentrates the whole "
                "population on a handful of satellites; a regional "
                "jammer opens over the city while a storm drops the "
                "serving satellites."),
            horizon_s=1800.0,
            population=PopulationSpec(n_ues=16, sites=_HOTSPOT_SITES,
                                      jitter_deg=0.5),
            chaos=ChaosSpec(storm_start_s=200.0, storm_stop_s=1000.0,
                            storm_repair_delay_s=150.0,
                            jam_start_s=300.0, jam_stop_s=900.0,
                            jam_radius_km=800.0),
            slo=SLOBudget(availability_floor=0.95,
                          p99_latency_ceiling_s=20.0,
                          retry_budget_attempts=2.0,
                          max_lost_sessions=2,
                          survival_margin_floor=0.0),
            n_trials=2,
        ),
        ScenarioSpec(
            name="routing-survival",
            title="Bulk routability of the grid the churn leaves behind",
            description=(
                "Decay churn kills satellites around the population for "
                "half an hour, then a seeded bulk packet wave probes the "
                "surviving +Grid through the batch routing plane: the "
                "stateless data plane must keep delivering (via scalar "
                "deflection fallbacks where the walk hits dead links) "
                "even as the session plane is recovering."),
            horizon_s=1800.0,
            population=PopulationSpec(n_ues=12),
            chaos=ChaosSpec(decay_acceleration=5.0e5,
                            repair_delay_s=None),
            slo=SLOBudget(availability_floor=0.9,
                          p99_latency_ceiling_s=20.0,
                          retry_budget_attempts=2.0,
                          max_lost_sessions=2,
                          survival_margin_floor=0.0),
            n_trials=2,
            packet_probe=PacketProbeSpec(packets=512),
        ),
    )
}


def scenario_names() -> List[str]:
    """Catalog names in stable (sorted) order."""
    return sorted(CATALOG)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one catalog scenario by exact name."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"know {scenario_names()}") from None
