"""UE mobility trace generation.

S4.3 claims UE-driven mobility registrations are rare because
geospatial cells are enormous (Table 3).  These generators create
realistic terrestrial movement so tests and experiments can measure
actual crossing rates instead of trusting the closed form:

* random-waypoint -- the classic mobility model (walkers, vehicles);
* commuter -- oscillates between two fixed points (home/work);
* transoceanic -- a great-circle cruise (ships, aircraft), the only
  user class that crosses cells at a meaningful rate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..constants import EARTH_RADIUS_KM
from .cells import GeospatialCellGrid
from .population import _destination_point


@dataclass(frozen=True)
class TracePoint:
    """One timestamped position (radians)."""

    t_s: float
    lat: float
    lon: float


def random_waypoint_trace(start_lat: float, start_lon: float,
                          speed_km_s: float, duration_s: float,
                          step_s: float = 60.0,
                          max_leg_km: float = 20.0,
                          rng: Optional[random.Random] = None
                          ) -> List[TracePoint]:
    """Random-waypoint movement around a start position."""
    if speed_km_s < 0 or duration_s <= 0 or step_s <= 0:
        raise ValueError("speed/duration/step must be positive")
    rng = rng or random.Random(0)
    points = [TracePoint(0.0, start_lat, start_lon)]
    lat, lon = start_lat, start_lon
    t = 0.0
    target: Optional[Tuple[float, float]] = None
    while t < duration_s:
        t += step_s
        if target is None:
            bearing = rng.uniform(0.0, 2.0 * math.pi)
            leg = rng.uniform(0.1, max_leg_km) / EARTH_RADIUS_KM
            target = _destination_point(lat, lon, leg, bearing)
        # Move toward the target at the configured speed.
        step_angle = speed_km_s * step_s / EARTH_RADIUS_KM
        remaining = _angle_between(lat, lon, *target)
        if remaining <= step_angle:
            lat, lon = target
            target = None
        else:
            bearing = _initial_bearing(lat, lon, *target)
            lat, lon = _destination_point(lat, lon, step_angle, bearing)
        points.append(TracePoint(t, lat, lon))
    return points


def commuter_trace(home_lat: float, home_lon: float,
                   work_lat: float, work_lon: float,
                   speed_km_s: float, duration_s: float,
                   step_s: float = 60.0) -> List[TracePoint]:
    """Oscillate between two points (daily commute)."""
    points = [TracePoint(0.0, home_lat, home_lon)]
    lat, lon = home_lat, home_lon
    heading_to_work = True
    t = 0.0
    while t < duration_s:
        t += step_s
        target = (work_lat, work_lon) if heading_to_work else \
            (home_lat, home_lon)
        step_angle = speed_km_s * step_s / EARTH_RADIUS_KM
        remaining = _angle_between(lat, lon, *target)
        if remaining <= step_angle:
            lat, lon = target
            heading_to_work = not heading_to_work
        else:
            bearing = _initial_bearing(lat, lon, *target)
            lat, lon = _destination_point(lat, lon, step_angle, bearing)
        points.append(TracePoint(t, lat, lon))
    return points


def transoceanic_trace(start_lat: float, start_lon: float,
                       end_lat: float, end_lon: float,
                       speed_km_s: float,
                       step_s: float = 60.0) -> List[TracePoint]:
    """A great-circle crossing at constant speed (aircraft/ship)."""
    total_angle = _angle_between(start_lat, start_lon, end_lat, end_lon)
    total_time = total_angle * EARTH_RADIUS_KM / speed_km_s
    points = []
    t = 0.0
    while t <= total_time:
        frac = t / total_time if total_time else 1.0
        lat, lon = _interpolate_great_circle(
            start_lat, start_lon, end_lat, end_lon, frac)
        points.append(TracePoint(t, lat, lon))
        t += step_s
    points.append(TracePoint(total_time, end_lat, end_lon))
    return points


def count_cell_crossings(grid: GeospatialCellGrid,
                         trace: List[TracePoint]) -> int:
    """Geospatial-cell boundary crossings along a trace.

    This is the number of home-routed mobility registrations a
    SpaceCore UE following the trace would trigger (S4.3).
    """
    crossings = 0
    previous = None
    for point in trace:
        cell = grid.cell_of(point.lat, point.lon)
        if previous is not None and cell != previous:
            crossings += 1
        previous = cell
    return crossings


def crossing_rate(grid: GeospatialCellGrid,
                  trace: List[TracePoint]) -> float:
    """Crossings per second over the trace."""
    if len(trace) < 2:
        return 0.0
    horizon = trace[-1].t_s - trace[0].t_s
    if horizon <= 0:
        return 0.0
    return count_cell_crossings(grid, trace) / horizon


# ---------------------------------------------------------------------------
# Spherical helpers
# ---------------------------------------------------------------------------

def _angle_between(lat1: float, lon1: float, lat2: float,
                   lon2: float) -> float:
    from ..orbits.coordinates import central_angle
    return central_angle(lat1, lon1, lat2, lon2)


def _initial_bearing(lat1: float, lon1: float, lat2: float,
                     lon2: float) -> float:
    dlon = lon2 - lon1
    y = math.sin(dlon) * math.cos(lat2)
    x = (math.cos(lat1) * math.sin(lat2)
         - math.sin(lat1) * math.cos(lat2) * math.cos(dlon))
    return math.atan2(y, x)


def _interpolate_great_circle(lat1: float, lon1: float, lat2: float,
                              lon2: float, fraction: float
                              ) -> Tuple[float, float]:
    angle = _angle_between(lat1, lon1, lat2, lon2)
    if angle == 0.0:
        return lat1, lon1
    sin_angle = math.sin(angle)
    a = math.sin((1.0 - fraction) * angle) / sin_angle
    b = math.sin(fraction * angle) / sin_angle
    x = (a * math.cos(lat1) * math.cos(lon1)
         + b * math.cos(lat2) * math.cos(lon2))
    y = (a * math.cos(lat1) * math.sin(lon1)
         + b * math.cos(lat2) * math.sin(lon2))
    z = a * math.sin(lat1) + b * math.sin(lat2)
    return math.atan2(z, math.hypot(x, y)), math.atan2(y, x)
