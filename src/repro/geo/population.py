"""Global UE population model.

The paper drives its emulation with "the global distributions of UEs
from the World Bank [80]" -- per-country mobile-cellular subscription
counts.  We model the same distribution with weighted continental
regions: each region is a (latitude, longitude) box carrying a share of
the global subscriber base proportional to the World Bank 2019 totals
(Asia dominates, then Africa/Europe/Americas, oceans empty).

The model answers the two questions the experiments ask:

* sample N UE positions (for emulation), and
* how many users fall inside a satellite footprint at a given
  sub-satellite point (for analytic signaling loads and the Fig. 12
  temporal sweep).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..constants import EARTH_RADIUS_KM


@dataclass(frozen=True)
class Region:
    """A latitude/longitude box holding a share of global subscribers."""

    name: str
    lat_min_deg: float
    lat_max_deg: float
    lon_min_deg: float
    lon_max_deg: float
    weight: float

    def contains(self, lat: float, lon: float) -> bool:
        """Whether a (lat, lon) point in radians falls in the box."""
        lat_deg, lon_deg = math.degrees(lat), math.degrees(lon)
        in_lat = self.lat_min_deg <= lat_deg <= self.lat_max_deg
        if self.lon_min_deg <= self.lon_max_deg:
            in_lon = self.lon_min_deg <= lon_deg <= self.lon_max_deg
        else:  # box crossing the antimeridian
            in_lon = lon_deg >= self.lon_min_deg or lon_deg <= self.lon_max_deg
        return in_lat and in_lon

    def area_km2(self) -> float:
        """Spherical area of the box in km^2."""
        lat1 = math.radians(self.lat_min_deg)
        lat2 = math.radians(self.lat_max_deg)
        if self.lon_min_deg <= self.lon_max_deg:
            dlon = math.radians(self.lon_max_deg - self.lon_min_deg)
        else:
            dlon = math.radians(360.0 - self.lon_min_deg + self.lon_max_deg)
        return EARTH_RADIUS_KM**2 * dlon * (math.sin(lat2) - math.sin(lat1))


#: Continental boxes with 2019-era World Bank mobile subscription shares.
#: Weights sum to 1; oceans and polar caps carry (approximately) zero.
WORLD_BANK_REGIONS: Sequence[Region] = (
    Region("east-asia", 18, 54, 95, 146, 0.300),
    Region("south-asia", 5, 37, 60, 95, 0.170),
    Region("southeast-asia", -11, 18, 92, 155, 0.090),
    Region("europe", 36, 60, -10, 60, 0.130),
    Region("africa", -35, 36, -18, 52, 0.120),
    Region("north-america", 15, 55, -130, -60, 0.080),
    Region("south-america", -55, 13, -82, -34, 0.090),
    Region("oceania", -47, -10, 112, 179, 0.012),
    Region("middle-east-extra", 12, 40, 34, 60, 0.018),
)


class PopulationGrid:
    """Sampler and density oracle over the weighted regions."""

    def __init__(self, regions: Sequence[Region] = WORLD_BANK_REGIONS,
                 total_subscribers: float = 8.0e9):
        if not regions:
            raise ValueError("need at least one region")
        total_weight = sum(r.weight for r in regions)
        if total_weight <= 0:
            raise ValueError("region weights must be positive")
        self.regions: List[Region] = list(regions)
        self.total_subscribers = total_subscribers
        self._normalized = [r.weight / total_weight for r in self.regions]

    # -- sampling ----------------------------------------------------------------

    def sample(self, count: int,
               rng: Optional[random.Random] = None
               ) -> List[Tuple[float, float]]:
        """Draw ``count`` UE positions (lat, lon in radians)."""
        rng = rng or random.Random(0)
        positions = []
        for _ in range(count):
            region = rng.choices(self.regions, weights=self._normalized)[0]
            positions.append(self._sample_in_region(region, rng))
        return positions

    @staticmethod
    def _sample_in_region(region: Region,
                          rng: random.Random) -> Tuple[float, float]:
        """Area-uniform sample inside one box (sin-latitude uniform)."""
        s1 = math.sin(math.radians(region.lat_min_deg))
        s2 = math.sin(math.radians(region.lat_max_deg))
        lat = math.asin(rng.uniform(s1, s2))
        if region.lon_min_deg <= region.lon_max_deg:
            lon = math.radians(rng.uniform(region.lon_min_deg,
                                           region.lon_max_deg))
        else:
            span = 360.0 - region.lon_min_deg + region.lon_max_deg
            lon_deg = region.lon_min_deg + rng.uniform(0.0, span)
            if lon_deg > 180.0:
                lon_deg -= 360.0
            lon = math.radians(lon_deg)
        return lat, lon

    # -- density -----------------------------------------------------------------

    def density_at(self, lat: float, lon: float) -> float:
        """Subscribers per km^2 at a point (sum over covering regions)."""
        density = 0.0
        for region, share in zip(self.regions, self._normalized):
            if region.contains(lat, lon):
                density += share * self.total_subscribers / region.area_km2()
        return density

    def region_of(self, lat: float, lon: float) -> str:
        """Name of the densest region covering the point, or 'ocean'."""
        best_name, best_density = "ocean", 0.0
        for region, share in zip(self.regions, self._normalized):
            if region.contains(lat, lon):
                d = share * self.total_subscribers / region.area_km2()
                if d > best_density:
                    best_name, best_density = region.name, d
        return best_name

    def users_in_footprint(self, sat_lat: float, sat_lon: float,
                           footprint_radius_km: float,
                           resolution: int = 6) -> float:
        """Expected subscribers inside a satellite footprint.

        Numerically integrates the density over the cap by sampling a
        small polar grid around the sub-satellite point; adequate for
        the footprint sizes at LEO (hundreds of km).
        """
        theta = footprint_radius_km / EARTH_RADIUS_KM
        total = 0.0
        cap_area = 2.0 * math.pi * EARTH_RADIUS_KM**2 * (1 - math.cos(theta))
        samples = 0
        for i in range(resolution):
            # Rings of equal area within the cap.
            frac = (i + 0.5) / resolution
            ring_theta = math.acos(1.0 - frac * (1.0 - math.cos(theta)))
            for j in range(resolution):
                bearing = 2.0 * math.pi * (j + 0.5) / resolution
                lat, lon = _destination_point(sat_lat, sat_lon, ring_theta,
                                              bearing)
                total += self.density_at(lat, lon)
                samples += 1
        mean_density = total / samples
        return mean_density * cap_area

    def capped_users(self, sat_lat: float, sat_lon: float,
                     footprint_radius_km: float, capacity: int) -> float:
        """Users served by a satellite, limited by its capacity.

        The paper sweeps per-satellite capacities {2K, 10K, 20K, 30K};
        over dense land a satellite saturates at its capacity, over
        oceans it serves whatever is there.
        """
        return min(float(capacity),
                   self.users_in_footprint(sat_lat, sat_lon,
                                           footprint_radius_km))


def _destination_point(lat: float, lon: float, angular_distance: float,
                       bearing: float) -> Tuple[float, float]:
    """Great-circle destination from (lat, lon) along a bearing."""
    sin_lat = (math.sin(lat) * math.cos(angular_distance)
               + math.cos(lat) * math.sin(angular_distance)
               * math.cos(bearing))
    new_lat = math.asin(max(-1.0, min(1.0, sin_lat)))
    y = math.sin(bearing) * math.sin(angular_distance) * math.cos(lat)
    x = math.cos(angular_distance) - math.sin(lat) * math.sin(new_lat)
    new_lon = lon + math.atan2(y, x)
    # Normalise to (-pi, pi].
    new_lon = (new_lon + math.pi) % (2.0 * math.pi) - math.pi
    return new_lat, new_lon
