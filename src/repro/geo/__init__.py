"""Geospatial state simplification: cells, addressing, population.

Implements S4.1 of the paper: the geospatial cell grid decoupled from
satellites, the 128-bit geospatial UE address, and the World-Bank-like
population model that drives per-satellite load.
"""

from .addressing import AddressAllocator, GeospatialAddress
from .cells import CellStatistics, GeospatialCellGrid
from .mobility import (
    TracePoint,
    commuter_trace,
    count_cell_crossings,
    crossing_rate,
    random_waypoint_trace,
    transoceanic_trace,
)
from .population import PopulationGrid, Region, WORLD_BANK_REGIONS

__all__ = [
    "AddressAllocator",
    "GeospatialAddress",
    "CellStatistics",
    "GeospatialCellGrid",
    "TracePoint",
    "commuter_trace",
    "count_cell_crossings",
    "crossing_rate",
    "random_waypoint_trace",
    "transoceanic_trace",
    "PopulationGrid",
    "Region",
    "WORLD_BANK_REGIONS",
]
