"""Geospatial cell division (S4.1 Step 1, Fig. 15b, Table 3).

SpaceCore redefines cells and tracking areas as *geospatial* regions
tied to the constellation's orbital geometry rather than to individual
(fast-moving) satellites.  At constellation initialisation (t = 0) the
satellites' projections form a regular grid in the (alpha, gamma)
system; the cells are the grid's Voronoi regions, frozen forever after.
A static UE therefore never changes cell as satellites sweep overhead
-- the property that eliminates the mobility-registration storms of
S3.2.

Cell identifiers are ``(column, row)``: ``column`` indexes the plane
direction (alpha), ``row`` the in-plane direction (gamma).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..constants import EARTH_RADIUS_KM, TWO_PI
from ..orbits.constellation import Constellation
from ..orbits.coordinates import InclinedCoordinateSystem, wrap_signed

CellId = Tuple[int, int]


@dataclass(frozen=True)
class CellStatistics:
    """Min/max/avg cell footprint over non-empty cells (Table 3)."""

    num_cells: int
    min_km2: float
    max_km2: float
    avg_km2: float


class GeospatialCellGrid:
    """The frozen geospatial cell grid of one constellation.

    Columns sit ``delta_raan`` apart in alpha; rows sit ``delta_phase``
    apart in gamma.  A ground point has two torus representations
    (ascending and descending great-circle branches); it belongs to the
    cell whose grid node is angularly nearest across both
    representations.  For "star" constellations whose ascending nodes
    span only half the circle, the descending branch is what covers the
    other half -- the same mechanism, no special case.
    """

    def __init__(self, constellation: Constellation):
        self.constellation = constellation
        self.system = InclinedCoordinateSystem(constellation.inclination_rad)
        self.num_columns = constellation.num_planes
        self.num_rows = constellation.sats_per_plane
        self.delta_alpha = constellation.delta_raan
        self.delta_gamma = constellation.delta_phase

    # -- identity -------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return self.num_columns * self.num_rows

    def cells(self) -> Iterator[CellId]:
        """Iterate every (column, row) cell id."""
        for col in range(self.num_columns):
            for row in range(self.num_rows):
                yield (col, row)

    def cell_index(self, cell: CellId) -> int:
        """Flat integer id of a cell (used by the address encoding)."""
        col, row = cell
        return (col % self.num_columns) * self.num_rows + (
            row % self.num_rows)

    def cell_from_index(self, index: int) -> CellId:
        """Inverse of :meth:`cell_index`."""
        index %= self.num_cells
        return index // self.num_rows, index % self.num_rows

    # -- point -> cell ----------------------------------------------------------

    def _nearest_node(self, alpha: float,
                      gamma: float) -> Tuple[CellId, float, bool]:
        """Nearest grid node to one (alpha, gamma) representation.

        Returns ``(cell, distance, is_virtual)``.  The alpha ring only
        hosts real columns over ``raan_spread``; a representation whose
        nearest column index falls beyond the populated planes (only
        possible for "star" constellations with a half-circle spread)
        is flagged *virtual* and snapped to the closest real column.
        """
        col = round(alpha / self.delta_alpha)
        alpha_err = alpha - col * self.delta_alpha
        ring_cols = int(round(TWO_PI / self.delta_alpha))
        col_wrapped = col % ring_cols
        virtual = col_wrapped >= self.num_columns
        if virtual:
            nearest_real = min(
                range(self.num_columns),
                key=lambda c: abs(wrap_signed(alpha - c * self.delta_alpha)),
            )
            alpha_err = wrap_signed(alpha - nearest_real * self.delta_alpha)
            col_wrapped = nearest_real
        row = round(gamma / self.delta_gamma) % self.num_rows
        gamma_err = wrap_signed(gamma - round(gamma / self.delta_gamma)
                                * self.delta_gamma)
        distance = math.hypot(alpha_err, gamma_err)
        return (col_wrapped, row), distance, virtual

    def cell_of(self, lat: float, lon: float) -> CellId:
        """Cell containing a ground point (radians in).

        The ascending-branch representation is authoritative whenever
        it lands on a populated plane column; this keeps the tiling
        stable (nearby points share cells) instead of flip-flopping
        between the two nearly-tied branch representations.  The
        descending branch only decides for points whose ascending node
        falls in the unpopulated half of a star constellation's ring.
        """
        ascending, descending = self.system.both_representations(lat, lon)
        asc_cell, asc_dist, asc_virtual = self._nearest_node(*ascending)
        if not asc_virtual:
            return asc_cell
        desc_cell, desc_dist, desc_virtual = self._nearest_node(*descending)
        if not desc_virtual:
            return desc_cell
        return asc_cell if asc_dist <= desc_dist else desc_cell

    def cell_of_degrees(self, lat_deg: float, lon_deg: float) -> CellId:
        """Convenience wrapper taking degrees."""
        return self.cell_of(math.radians(lat_deg), math.radians(lon_deg))

    # -- cell -> geometry --------------------------------------------------------

    def cell_center(self, cell: CellId) -> Tuple[float, float]:
        """(lat, lon) radians of a cell's grid node."""
        col, row = cell
        alpha = (col % self.num_columns) * self.delta_alpha
        gamma = (row % self.num_rows) * self.delta_gamma
        return self.system.to_geodetic(alpha, gamma)

    def cell_anchor(self, cell: CellId) -> Tuple[float, float]:
        """(alpha, gamma) of a cell's grid node on the torus."""
        col, row = cell
        return ((col % self.num_columns) * self.delta_alpha,
                (row % self.num_rows) * self.delta_gamma)

    def neighbors(self, cell: CellId) -> List[CellId]:
        """The four torus neighbours of a cell."""
        col, row = cell
        return [
            ((col + 1) % self.num_columns, row),
            ((col - 1) % self.num_columns, row),
            (col, (row + 1) % self.num_rows),
            (col, (row - 1) % self.num_rows),
        ]

    def analytic_cell_area_km2(self, cell: CellId) -> float:
        """First-order area of one cell from the coordinate Jacobian.

        ``dA = R^2 sin(i) |cos gamma| dalpha dgamma``: cells are widest
        where orbits cross the equator and pinch toward the turn
        points.  Empirical sizes (Monte Carlo over the actual
        :meth:`cell_of` assignment) differ near the band edges where
        clamped polar points are absorbed; use
        :meth:`cell_size_statistics` for Table 3.
        """
        _, row = cell
        gamma = (row % self.num_rows) * self.delta_gamma
        return self.system.angular_cell_area(
            self.delta_alpha, self.delta_gamma, gamma, EARTH_RADIUS_KM)

    def cell_size_statistics(self, samples: int = 40000,
                             seed: int = 7) -> CellStatistics:
        """Monte-Carlo estimate of min/max/avg non-empty cell footprints.

        Points are drawn uniformly on the sphere and attributed via
        :meth:`cell_of`; each sample carries an equal share of the
        Earth's surface area.  Reproduces the structure of Table 3.
        """
        rng = random.Random(seed)
        counts: dict = {}
        for _ in range(samples):
            # Uniform on the sphere: lon uniform, sin(lat) uniform.
            lat = math.asin(2.0 * rng.random() - 1.0)
            lon = rng.uniform(-math.pi, math.pi)
            cell = self.cell_of(lat, lon)
            counts[cell] = counts.get(cell, 0) + 1
        earth_area = 4.0 * math.pi * EARTH_RADIUS_KM**2
        share = earth_area / samples
        areas = [c * share for c in counts.values()]
        return CellStatistics(
            num_cells=len(areas),
            min_km2=min(areas),
            max_km2=max(areas),
            avg_km2=sum(areas) / len(areas),
        )

    def crossing_rate_per_user(self, speed_km_s: float) -> float:
        """Cell crossings per second for a UE moving at ``speed_km_s``.

        The paper's claim that UE-driven mobility registrations are
        rare rests on the cells being enormous (Table 3): a UE crossing
        a cell of typical linear size L every L / v seconds.
        """
        stats_area = (4.0 * math.pi * EARTH_RADIUS_KM**2
                      * math.sin(self.constellation.inclination_rad)
                      / self.num_cells)
        linear = math.sqrt(stats_area)
        return speed_km_s / linear
