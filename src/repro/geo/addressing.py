"""Geospatial UE addressing (S4.1 Step 2, Fig. 15c).

SpaceCore collapses the legacy location state (cell ID, tracking-area
ID, IP address) into a single 128-bit address::

      0        32        64        96       128
      +---------+---------+---------+---------+
      | PLMN-ID | home    | UE      | UE      |
      | prefix  | cell    | cell    | suffix  |
      +---------+---------+---------+---------+

* bits 96..127: the operator prefix (5G PLMN ID), used to route toward
  external networks;
* bits 64..95:  the *home* cell (column:16 | row:16) hosting the UE's
  terrestrial home network attachment;
* bits 32..63:  the UE's *current* geospatial cell (column:16 | row:16);
* bits 0..31:   a per-cell-unique UE suffix (the 5G-TMSI role).

The embedded cell is what lets any satellite derive the destination's
physical location from the packet header alone -- the key enabler of
the stateless relaying in Algorithm 1.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, replace
from typing import Tuple

CellId = Tuple[int, int]

_FIELD_BITS = 16
_FIELD_MAX = (1 << _FIELD_BITS) - 1
_WORD_MAX = (1 << 32) - 1


def _pack_cell(cell: CellId) -> int:
    col, row = cell
    if not (0 <= col <= _FIELD_MAX and 0 <= row <= _FIELD_MAX):
        raise ValueError(f"cell {cell} does not fit in 16+16 bits")
    return (col << _FIELD_BITS) | row


def _unpack_cell(word: int) -> CellId:
    return (word >> _FIELD_BITS) & _FIELD_MAX, word & _FIELD_MAX


@dataclass(frozen=True)
class GeospatialAddress:
    """A SpaceCore 128-bit geospatial address (Fig. 15c)."""

    plmn_id: int
    home_cell: CellId
    ue_cell: CellId
    ue_suffix: int

    def __post_init__(self) -> None:
        if not 0 <= self.plmn_id <= _WORD_MAX:
            raise ValueError("PLMN ID must fit in 32 bits")
        if not 0 <= self.ue_suffix <= _WORD_MAX:
            raise ValueError("UE suffix must fit in 32 bits")
        _pack_cell(self.home_cell)
        _pack_cell(self.ue_cell)

    # -- wire formats -----------------------------------------------------------

    def to_int(self) -> int:
        """The address as a 128-bit integer."""
        return ((self.plmn_id << 96)
                | (_pack_cell(self.home_cell) << 64)
                | (_pack_cell(self.ue_cell) << 32)
                | self.ue_suffix)

    def to_bytes(self) -> bytes:
        """The address as 16 big-endian bytes."""
        return self.to_int().to_bytes(16, "big")

    def to_ipv6(self) -> str:
        """Render as an IPv6 literal (the natural deployment vehicle)."""
        return str(ipaddress.IPv6Address(self.to_int()))

    @classmethod
    def from_int(cls, value: int) -> "GeospatialAddress":
        if not 0 <= value < (1 << 128):
            raise ValueError("address must be a 128-bit integer")
        return cls(
            plmn_id=(value >> 96) & _WORD_MAX,
            home_cell=_unpack_cell((value >> 64) & _WORD_MAX),
            ue_cell=_unpack_cell((value >> 32) & _WORD_MAX),
            ue_suffix=value & _WORD_MAX,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "GeospatialAddress":
        if len(data) != 16:
            raise ValueError("address must be exactly 16 bytes")
        return cls.from_int(int.from_bytes(data, "big"))

    @classmethod
    def from_ipv6(cls, literal: str) -> "GeospatialAddress":
        return cls.from_int(int(ipaddress.IPv6Address(literal)))

    # -- semantics ----------------------------------------------------------------

    def with_ue_cell(self, cell: CellId) -> "GeospatialAddress":
        """The re-allocated address after a (rare) UE cell crossing.

        Only the embedded cell changes; identity (suffix) and home stay,
        mirroring the home-controlled re-allocation of S4.3.
        """
        return replace(self, ue_cell=cell)

    def same_cell(self, other: "GeospatialAddress") -> bool:
        """Whether both UEs sit in the same geospatial cell."""
        return self.ue_cell == other.ue_cell

    def is_roaming(self) -> bool:
        """True when the UE has left its home cell."""
        return self.ue_cell != self.home_cell

    def cell_prefix(self) -> str:
        """The /96 IPv6 prefix shared by every UE in the same cell.

        The suffix occupies the low 32 bits (Fig. 15c), so a cell is
        one /96: external networks can aggregate routes per cell, and
        satellites can match a whole cell with one prefix rule.
        """
        network_bits = self.to_int() >> 32 << 32
        base = ipaddress.IPv6Address(network_bits)
        return f"{base}/96"

    def in_same_prefix(self, other: "GeospatialAddress") -> bool:
        """Whether two addresses aggregate under one cell prefix."""
        return self.cell_prefix() == other.cell_prefix()


class AddressAllocator:
    """Per-cell suffix allocation, as the home network would perform it.

    Guarantees global uniqueness: the (cell, suffix) pair is unique by
    construction, and the suffix counter is per cell.
    """

    def __init__(self, plmn_id: int):
        if not 0 <= plmn_id <= _WORD_MAX:
            raise ValueError("PLMN ID must fit in 32 bits")
        self.plmn_id = plmn_id
        self._next_suffix: dict = {}

    def allocate(self, home_cell: CellId, ue_cell: CellId
                 ) -> GeospatialAddress:
        """Allocate a fresh address for a UE registering in ``ue_cell``."""
        suffix = self._next_suffix.get(ue_cell, 0)
        if suffix > _WORD_MAX:
            raise RuntimeError(f"cell {ue_cell} exhausted its suffix space")
        self._next_suffix[ue_cell] = suffix + 1
        return GeospatialAddress(self.plmn_id, home_cell, ue_cell, suffix)

    def reallocate(self, address: GeospatialAddress,
                   new_cell: CellId) -> GeospatialAddress:
        """Move an existing UE to a new cell with a fresh suffix."""
        fresh = self.allocate(address.home_cell, new_cell)
        return replace(fresh, plmn_id=address.plmn_id)

    def allocated_in(self, cell: CellId) -> int:
        """How many suffixes have been handed out in ``cell``."""
        return self._next_suffix.get(cell, 0)
