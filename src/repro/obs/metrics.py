"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The registry is the observability contract of the whole reproduction:
every number it holds derives from *simulated* quantities (event
counts, simulated seconds, message totals), never from the wall
clock, so two runs of the same seeded experiment produce bit-identical
snapshots.  Three properties make that hold and are pinned by tests:

* **Snapshots are plain dicts** of JSON scalars -- ``json.dumps(...,
  sort_keys=True)`` of a snapshot is the canonical artifact form, and
  equality of artifacts is equality of runs.
* **Instruments are label-keyed and sorted.**  A series is identified
  by ``name`` plus a sorted ``(key, value)`` label tuple; snapshot
  keys are rendered ``name{k=v,k2=v2}`` so iteration order of the
  underlying dict never shows through.
* **Snapshots merge associatively in shard order.**  Per-shard
  registries from :mod:`repro.runtime.parallel` fold together with
  :func:`merge_snapshots` by *shard index*, never completion order:
  counters and histogram buckets add, gauges add as per-shard
  contributions.  The serial fallback folds the same list the same
  way, so worker count changes wall-clock only.

Histograms use **fixed** bucket bounds chosen at creation time
(defaults below); deriving bounds from observed data would make the
snapshot schema depend on the workload and break mergeability.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

Scalar = Union[int, float]
LabelItems = Tuple[Tuple[str, str], ...]
Snapshot = Dict[str, Dict[str, Any]]

#: Default histogram bounds (seconds): spans RTT-scale packet latencies
#: through NAS-timer recovery delays.  Geometric so one schema serves
#: every simulated-latency series.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 120.0, 300.0,
)

#: Default bounds for small non-negative integer series (attempts,
#: retransmits, reroutes, hop counts).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0,
)


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_key(name: str, labels: LabelItems) -> str:
    """Render the canonical snapshot key: ``name{k=v,...}``."""
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Scalar = 0

    def inc(self, amount: Scalar = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, simulated clock, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Scalar = 0

    def set(self, value: Scalar) -> None:
        """Replace the current level."""
        self.value = value

    def add(self, delta: Scalar) -> None:
        """Shift the current level by ``delta`` (either sign)."""
        self.value += delta


class Histogram:
    """Fixed-bucket distribution: counts per bound plus sum/count.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything above the last bound.  Bounds are frozen at creation so
    snapshots of the same series always share a schema and merge
    bucket-by-bucket.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds: Tuple[float, ...] = ordered
        self.bucket_counts: List[int] = [0] * (len(ordered) + 1)
        self.count: int = 0
        self.sum: float = 0.0

    def observe(self, value: Scalar) -> None:
        """Record one sample."""
        self.count += 1
        self.sum += float(value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1


class MetricsRegistry:
    """A namespace of instruments with deterministic snapshots.

    Instruments are created on first use (``registry.counter("x")``)
    and identified by name plus sorted labels; re-requesting returns
    the same instrument.  A name is bound to exactly one instrument
    kind -- asking for ``counter("x")`` after ``gauge("x")`` is a bug
    and raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        self._kinds: Dict[str, str] = {}

    # -- instrument access --------------------------------------------------------

    def _claim(self, name: str, kind: str) -> None:
        bound = self._kinds.setdefault(name, kind)
        if bound != kind:
            raise ValueError(
                f"metric {name!r} is already a {bound}, not a {kind}")

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for (name, labels), created on first use."""
        self._claim(name, "counter")
        key = (name, _label_items(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        self._claim(name, "gauge")
        key = (name, _label_items(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: object) -> Histogram:
        """The histogram for (name, labels), created on first use.

        ``buckets`` applies only on creation; later calls for the same
        series may omit it (and must match it when given).
        """
        self._claim(name, "histogram")
        key = (name, _label_items(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            bounds = (DEFAULT_LATENCY_BUCKETS_S if buckets is None
                      else buckets)
            instrument = self._histograms[key] = Histogram(bounds)
        elif (buckets is not None
                and tuple(float(b) for b in buckets) != instrument.bounds):
            raise ValueError(
                f"metric {name!r} already has buckets "
                f"{instrument.bounds}")
        return instrument

    # -- reading ------------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> Scalar:
        """Current counter total, 0 when the series never incremented."""
        instrument = self._counters.get((name, _label_items(labels)))
        return instrument.value if instrument is not None else 0

    def snapshot(self) -> Snapshot:
        """Everything the registry holds, as a plain sorted dict.

        The returned structure contains only JSON scalars, lists, and
        dicts -- ``json.dumps(snapshot, sort_keys=True)`` is the
        canonical artifact -- and is detached from the live
        instruments (mutating one does not change the other).
        """
        counters = {_series_key(name, labels): instrument.value
                    for (name, labels), instrument
                    in self._counters.items()}
        gauges = {_series_key(name, labels): instrument.value
                  for (name, labels), instrument in self._gauges.items()}
        histograms: Dict[str, Dict[str, Any]] = {}
        for (name, labels), instrument in self._histograms.items():
            histograms[_series_key(name, labels)] = {
                "bounds": list(instrument.bounds),
                "bucket_counts": list(instrument.bucket_counts),
                "count": instrument.count,
                "sum": instrument.sum,
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


def _empty_snapshot() -> Snapshot:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Fold per-shard snapshots (in shard order) into one total.

    Counters and gauges add; histograms add bucket-by-bucket and must
    agree on bounds (same-schema series only).  Folding is strictly
    left-to-right over the given order, so the caller's ordering --
    always shard/trial *index* order in this repo -- fully determines
    the result down to float rounding.
    """
    merged = _empty_snapshot()
    m_counters = merged["counters"]
    m_gauges = merged["gauges"]
    m_histograms = merged["histograms"]
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            m_counters[key] = m_counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            m_gauges[key] = m_gauges.get(key, 0) + value
        for key, series in snapshot.get("histograms", {}).items():
            existing = m_histograms.get(key)
            if existing is None:
                m_histograms[key] = {
                    "bounds": list(series["bounds"]),
                    "bucket_counts": list(series["bucket_counts"]),
                    "count": series["count"],
                    "sum": series["sum"],
                }
                continue
            if existing["bounds"] != list(series["bounds"]):
                raise ValueError(
                    f"histogram {key!r} bucket bounds differ between "
                    f"shards; fixed buckets are the merge contract")
            existing["bucket_counts"] = [
                a + b for a, b in zip(existing["bucket_counts"],
                                      series["bucket_counts"])]
            existing["count"] += series["count"]
            existing["sum"] += series["sum"]
    merged["counters"] = dict(sorted(m_counters.items()))
    merged["gauges"] = dict(sorted(m_gauges.items()))
    merged["histograms"] = dict(sorted(m_histograms.items()))
    return merged
