"""Deterministic observability: metrics, tracing, mergeable snapshots.

The missing pillar the first four PRs exposed: fast geometry (PR 1),
chaos (PR 2), a sharded runtime (PR 3) and a lint gate (PR 4) all
*produce* numbers, but each kept its own ad-hoc counters.  This
package gives every layer one instrument vocabulary --
:class:`MetricsRegistry` for counts/levels/distributions,
:class:`Tracer` for simulated-time spans -- with the same determinism
contract the rest of the repo obeys: no wall clock, snapshots are
plain dicts, and per-shard snapshots merge to bit-identical totals
regardless of worker count.
"""

from .metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from .tracing import SpanRecord, Tracer

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "merge_snapshots",
]
