"""Span-based tracing on the *simulated* clock.

A :class:`Tracer` stamps every record with an injected clock -- in
this repo always ``lambda: sim.now`` of a
:class:`~repro.sim.engine.Simulator` -- never the wall clock, so a
trace is as reproducible as the run that produced it: the same seeded
experiment yields a byte-identical JSONL export.

Three entry points cover the instrumented layers:

* :meth:`Tracer.event` -- an instantaneous mark (a fault firing);
* :meth:`Tracer.span` -- a context manager for work bracketed in
  simulated time (an experiment phase);
* :meth:`Tracer.record` -- an explicit interval for procedures whose
  simulated duration is known analytically (NAS timer expiries +
  backoff) rather than by clock advance.

Attribute values are normalised to JSON scalars/lists at record time
so the export never depends on repr() details of live objects.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


def _jsonable(value: Any) -> Any:
    """Normalise an attribute value to JSON-stable scalars/lists."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return str(value)


@dataclass
class SpanRecord:
    """One traced interval (or instant, when ``end_s == start_s``)."""

    name: str
    start_s: float
    end_s: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL line payload (plain dict, sorted attrs)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(sorted(self.attrs.items())),
        }


class Tracer:
    """Collects :class:`SpanRecord` entries stamped by ``clock``.

    ``clock`` is any zero-argument callable returning simulated
    seconds; pass ``lambda: sim.now`` to trace a simulator run.  The
    default clock pins every record to t=0, which keeps an unwired
    tracer harmless (and obviously wrong in exports, rather than
    silently wall-clocked).
    """

    def __init__(self,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._clock: Callable[[], float] = (
            clock if clock is not None else (lambda: 0.0))
        self.records: List[SpanRecord] = []

    @property
    def now(self) -> float:
        """What the injected clock currently reads."""
        return self._clock()

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the clock (e.g. to a freshly built simulator)."""
        self._clock = clock

    # -- recording ----------------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> SpanRecord:
        """Record an instantaneous mark at the current clock reading."""
        now = self._clock()
        return self.record(name, now, now, **attrs)

    def record(self, name: str, start_s: float, end_s: float,
               **attrs: Any) -> SpanRecord:
        """Record an explicit simulated interval."""
        if end_s < start_s:
            raise ValueError("span cannot end before it starts")
        span = SpanRecord(name, start_s, end_s,
                          {k: _jsonable(v) for k, v in attrs.items()})
        self.records.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        """Bracket a block in simulated time.

        The record is appended on *entry* (trace order follows start
        order, matching event scheduling order) and its ``end_s`` is
        stamped on exit, after any attrs the block added.
        """
        span = SpanRecord(name, self._clock(), self._clock(),
                          {k: _jsonable(v) for k, v in attrs.items()})
        self.records.append(span)
        try:
            yield span
        finally:
            span.end_s = self._clock()
            span.attrs = {k: _jsonable(v)
                          for k, v in span.attrs.items()}

    # -- reading / export ---------------------------------------------------------

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Every record as a plain dict, in recording order."""
        return [span.to_dict() for span in self.records]

    def export_jsonl(self) -> str:
        """The canonical byte-stable JSONL form (one span per line)."""
        return "".join(json.dumps(payload, sort_keys=True) + "\n"
                       for payload in self.to_dicts())

    def write_jsonl(self, path: str) -> None:
        """Write the JSONL export to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.export_jsonl())
