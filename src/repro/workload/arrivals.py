"""Arrival processes driving the signaling workload (S3.1-S3.2).

Sessions arrive per UE every 106.9 s on average [44]; radio
connections are released after 10-15 s of inactivity; LEO coverage
passes last ~165.8 s in Starlink.  The generators here produce the
event streams the emulation replays and the aggregate rates the
analytic experiments consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List

from ..constants import (
    RRC_INACTIVITY_TIMEOUT_S,
    SESSION_INTERARRIVAL_S,
)
from ..fiveg.messages import ProcedureKind
from ..orbits.constellation import Constellation
from ..orbits.coverage import mean_dwell_time_s


def poisson_arrivals(rate_per_s: float, duration_s: float,
                     rng: random.Random) -> Iterator[float]:
    """Event times of a Poisson process over ``[0, duration_s)``."""
    if rate_per_s < 0:
        raise ValueError("rate cannot be negative")
    if rate_per_s == 0:
        return
    t = 0.0
    while True:
        t += rng.expovariate(rate_per_s)
        if t >= duration_s:
            return
        yield t


@dataclass(frozen=True)
class WorkloadEvent:
    """One procedure trigger in the replay stream."""

    time_s: float
    kind: ProcedureKind
    ue_index: int


class SessionWorkload:
    """Per-UE session and mobility event stream for one satellite."""

    def __init__(self, num_ues: int, dwell_s: float,
                 mobility_registrations: bool,
                 session_interval_s: float = SESSION_INTERARRIVAL_S,
                 seed: int = 0):
        if num_ues < 0:
            raise ValueError("need a non-negative UE count")
        self.num_ues = num_ues
        self.dwell_s = dwell_s
        self.mobility_registrations = mobility_registrations
        self.session_interval_s = session_interval_s
        self.seed = seed

    def events(self, duration_s: float) -> List[WorkloadEvent]:
        """All procedure triggers in the window, time-ordered."""
        rng = random.Random(self.seed)
        events: List[WorkloadEvent] = []
        session_rate = self.num_ues / self.session_interval_s
        for t in poisson_arrivals(session_rate, duration_s, rng):
            events.append(WorkloadEvent(
                t, ProcedureKind.SESSION_ESTABLISHMENT,
                rng.randrange(self.num_ues)))
        active_fraction = (RRC_INACTIVITY_TIMEOUT_S
                           / self.session_interval_s)
        handover_rate = self.num_ues * active_fraction / self.dwell_s
        for t in poisson_arrivals(handover_rate, duration_s, rng):
            events.append(WorkloadEvent(
                t, ProcedureKind.HANDOVER, rng.randrange(self.num_ues)))
        if self.mobility_registrations:
            # Bursty, not Poisson: a pass boundary re-registers the
            # whole footprint nearly at once (Fig. 12's spikes).
            t = rng.uniform(0.0, self.dwell_s)
            while t < duration_s:
                burst_width = 10.0
                for ue in range(self.num_ues):
                    offset = rng.uniform(0.0, burst_width)
                    if t + offset < duration_s:
                        events.append(WorkloadEvent(
                            t + offset,
                            ProcedureKind.MOBILITY_REGISTRATION, ue))
                t += self.dwell_s
        events.sort(key=lambda e: e.time_s)
        return events

    def mean_rates(self) -> Dict[ProcedureKind, float]:
        """Expected events/s, the analytic counterpart of events()."""
        active_fraction = (RRC_INACTIVITY_TIMEOUT_S
                           / self.session_interval_s)
        return {
            ProcedureKind.SESSION_ESTABLISHMENT:
                self.num_ues / self.session_interval_s,
            ProcedureKind.HANDOVER:
                self.num_ues * active_fraction / self.dwell_s,
            ProcedureKind.MOBILITY_REGISTRATION:
                (self.num_ues / self.dwell_s
                 if self.mobility_registrations else 0.0),
            ProcedureKind.INITIAL_REGISTRATION: self.num_ues / 86400.0,
        }


def satellite_workload(constellation: Constellation, capacity: int,
                       mobility_registrations: bool,
                       seed: int = 0) -> SessionWorkload:
    """The workload one fully loaded satellite of this shell sees."""
    return SessionWorkload(
        num_ues=capacity,
        dwell_s=mean_dwell_time_s(constellation),
        mobility_registrations=mobility_registrations,
        seed=seed,
    )
