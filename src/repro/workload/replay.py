"""Trace 1 reconstruction and dataset replay driving.

Trace 1 of the paper shows a session establishment on the Inmarsat
Explorer 710: service request at 10:10:16, RAU, authentication, QoS
negotiation, PDP activation -- spanning ~10 seconds through the
remote GEO gateway.  :func:`trace1_timeline` synthesises timelines
with that structure (layer sequence and delay distribution), and
:func:`replay_cpu_series` feeds a Table 2 trace through the hardware
model to produce a satellite CPU time series.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..hardware.model import HardwarePlatform, RASPBERRY_PI_4
from .traces import REGISTRATION_DELAY_S, TraceMessage, synthesize


@dataclass(frozen=True)
class TimelineEvent:
    """One line of a Trace 1-style log."""

    t_s: float
    layer: str
    text: str


#: The Trace 1 event skeleton: (layer, text, share of total duration
#: elapsed when the event fires).  Shares follow the paper's
#: timestamps (10:10:16.074 ... 10:10:20.222, total ~4.1 s of listed
#: events inside a ~10 s procedure).
_TRACE1_SKELETON: Sequence[Tuple[str, str, float]] = (
    ("GMM", "Initiating service request", 0.00),
    ("GMM", "Signalling connection secured", 0.15),
    ("GMM", "Initiating RAU procedure", 0.55),
    ("MM", "MM_LOCUPDPEND", 0.555),
    ("MM", "MM_WAITRRLOCUPD", 0.556),
    ("MM", "MM_LOCUPDINIT", 0.557),
    ("SM", "AL State:DATA_CONN_ACTIVE", 0.70),
    ("GMM", "Authentication request received", 0.90),
    ("SM", "Qos: transferdelay:22, maxSDU:1500", 0.97),
    ("SM", "Qos:bitRateUp:512/896, Down:512/896", 0.975),
    ("SM-GW", "pdp new state Active", 1.00),
)


def trace1_timeline(terminal: str = "inmarsat-explorer-710",
                    seed: int = 0) -> List[TimelineEvent]:
    """One synthetic session-establishment timeline (Trace 1).

    The event order is fixed (it is the protocol); the total duration
    is drawn from the terminal's measured registration-delay model, so
    ensembles of timelines reproduce the Fig. 5b distribution.
    """
    mean = REGISTRATION_DELAY_S.get(terminal)
    if mean is None:
        raise KeyError(f"{terminal!r} has no measured delay model")
    rng = random.Random(seed)
    floor = 0.55 * mean
    duration = floor + rng.expovariate(1.0 / (mean - floor))
    return [TimelineEvent(share * duration, layer, text)
            for layer, text, share in _TRACE1_SKELETON]


def timeline_duration_s(timeline: List[TimelineEvent]) -> float:
    """Elapsed seconds from the first to the last timeline event."""
    return timeline[-1].t_s - timeline[0].t_s if timeline else 0.0


# ---------------------------------------------------------------------------
# Dataset replay -> CPU series
# ---------------------------------------------------------------------------

#: CPU weight per protocol layer, relative to a weight-1.0 message.
_LAYER_WEIGHTS: Dict[str, float] = {
    "L1/L2": 0.05,     # hardware-offloaded framing
    "RRC": 0.8,
    "MM": 1.0,
    "SM": 1.0,
    "Others": 0.3,
}


@dataclass(frozen=True)
class CpuSample:
    """CPU utilisation over one replay window."""

    window_start_s: float
    messages: int
    cpu_percent: float


def replay_cpu_series(source: str, num_messages: int,
                      duration_s: float = 600.0,
                      window_s: float = 30.0,
                      platform: HardwarePlatform = RASPBERRY_PI_4,
                      seed: int = 0) -> List[CpuSample]:
    """Feed a synthesized Table 2 trace through the CPU model.

    Returns one utilisation sample per window -- the replay-driven
    counterpart of the analytic Fig. 7 bars.
    """
    if window_s <= 0 or duration_s <= 0:
        raise ValueError("windows and duration must be positive")
    trace = synthesize(source, num_messages, duration_s, seed)
    windows: Dict[int, List[TraceMessage]] = {}
    for message in trace:
        windows.setdefault(int(message.time_s // window_s),
                           []).append(message)
    budget = platform.cores * window_s
    series: List[CpuSample] = []
    for index in range(int(duration_s // window_s)):
        batch = windows.get(index, [])
        cost = sum(_LAYER_WEIGHTS.get(m.layer, 1.0)
                   * platform.base_cost_us * 1e-6 for m in batch)
        series.append(CpuSample(
            window_start_s=index * window_s,
            messages=len(batch),
            cpu_percent=min(100.0, cost / budget * 100.0),
        ))
    return series
