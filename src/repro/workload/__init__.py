"""Workload generation: arrival processes and Table 2 trace synthesis."""

from .arrivals import (
    SessionWorkload,
    WorkloadEvent,
    poisson_arrivals,
    satellite_workload,
)
from .replay import (
    CpuSample,
    TimelineEvent,
    replay_cpu_series,
    timeline_duration_s,
    trace1_timeline,
)
from .traces import (
    REGISTRATION_DELAY_S,
    SATELLITE_SOURCES,
    TABLE2_COUNTS,
    TERRESTRIAL_SOURCES,
    TraceMessage,
    layer_mix,
    registration_delay_samples,
    synthesize,
    table2_summary,
    total_messages,
)

__all__ = [
    "SessionWorkload", "WorkloadEvent", "poisson_arrivals",
    "satellite_workload",
    "CpuSample", "TimelineEvent", "replay_cpu_series",
    "timeline_duration_s", "trace1_timeline",
    "REGISTRATION_DELAY_S", "SATELLITE_SOURCES", "TABLE2_COUNTS",
    "TERRESTRIAL_SOURCES", "TraceMessage", "layer_mix",
    "registration_delay_samples", "synthesize", "table2_summary",
    "total_messages",
]
