"""Synthetic signaling traces reproducing the Table 2 datasets.

The paper replays over-the-air signaling captured from three
operational satellite terminals (Inmarsat Explorer 710, Tiantong SC310
and T900) and three terrestrial 5G operators.  The captures themselves
are not public in raw form, so we synthesise traces with exactly the
Table 2 per-protocol message counts and the measured registration
delays (9.5 s Inmarsat, 13.5 s Tiantong; Fig. 5b) -- the two
properties every downstream experiment consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..constants import (
    INMARSAT_REGISTRATION_DELAY_S,
    TIANTONG_REGISTRATION_DELAY_S,
)

#: Table 2, verbatim: messages per protocol layer per source.
TABLE2_COUNTS: Dict[str, Dict[str, int]] = {
    "inmarsat-explorer-710": {
        "L1/L2": 56_231, "RRC": 40_800, "MM": 57_264, "SM": 53_868,
        "Others": 762_957,
    },
    "tiantong-sc310": {
        "L1/L2": 1_744_094, "RRC": 4_226, "MM": 43_555, "SM": 4_586,
        "Others": 310_455,
    },
    "tiantong-t900": {
        "L1/L2": 3_887_429, "RRC": 1_340, "MM": 12_626, "SM": 1_670,
        "Others": 376_671,
    },
    "china-telecom": {
        "L1/L2": 3_828_083, "RRC": 28_841, "MM": 605, "SM": 203,
        "Others": 0,
    },
    "china-unicom": {
        "L1/L2": 1_475_393, "RRC": 14_833, "MM": 970, "SM": 338,
        "Others": 0,
    },
    "china-mobile": {
        "L1/L2": 8_405_587, "RRC": 69_782, "MM": 4_194, "SM": 925,
        "Others": 0,
    },
}

#: Which sources are satellite terminals (vs terrestrial 5G phones).
SATELLITE_SOURCES = ("inmarsat-explorer-710", "tiantong-sc310",
                     "tiantong-t900")
TERRESTRIAL_SOURCES = ("china-telecom", "china-unicom", "china-mobile")

#: Mean registration delay per satellite terminal family (S2.2).
REGISTRATION_DELAY_S: Dict[str, float] = {
    "inmarsat-explorer-710": INMARSAT_REGISTRATION_DELAY_S,
    "tiantong-sc310": TIANTONG_REGISTRATION_DELAY_S,
    "tiantong-t900": TIANTONG_REGISTRATION_DELAY_S,
}


@dataclass(frozen=True)
class TraceMessage:
    """One replayed signaling message."""

    time_s: float
    source: str
    layer: str


def total_messages(source: str) -> int:
    """Table 2's "Total" row."""
    return sum(TABLE2_COUNTS[source].values())


def layer_mix(source: str) -> Dict[str, float]:
    """Per-layer fraction of the source's traffic."""
    counts = TABLE2_COUNTS[source]
    total = sum(counts.values())
    return {layer: count / total for layer, count in counts.items()}


def synthesize(source: str, num_messages: int,
               duration_s: float = 3600.0,
               seed: int = 0) -> List[TraceMessage]:
    """A trace with the source's exact layer mix, Poisson-timed.

    ``num_messages`` scales the replay; the *mix* always matches
    Table 2 to within sampling error.
    """
    if source not in TABLE2_COUNTS:
        raise KeyError(f"unknown source {source!r}; know "
                       f"{sorted(TABLE2_COUNTS)}")
    if num_messages < 0:
        raise ValueError("num_messages cannot be negative")
    rng = random.Random(seed)
    mix = layer_mix(source)
    layers = list(mix)
    weights = [mix[layer] for layer in layers]
    times = sorted(rng.uniform(0.0, duration_s)
                   for _ in range(num_messages))
    return [TraceMessage(t, source, rng.choices(layers, weights)[0])
            for t in times]


def registration_delay_samples(source: str, count: int,
                               seed: int = 0) -> List[float]:
    """Registration-delay samples matching the measured means (Fig. 5b).

    Modelled as a shifted exponential: a fixed GEO/processing floor
    plus an exponential queueing tail, with the documented mean.
    """
    mean = REGISTRATION_DELAY_S.get(source)
    if mean is None:
        raise KeyError(f"{source!r} is not a satellite terminal with a "
                       "measured registration delay")
    rng = random.Random(seed)
    floor = 0.55 * mean
    tail = mean - floor
    return [floor + rng.expovariate(1.0 / tail) for _ in range(count)]


def table2_summary() -> List[Tuple[str, Dict[str, int], int]]:
    """The full Table 2, one row per source, with totals."""
    return [(source, dict(counts), total_messages(source))
            for source, counts in TABLE2_COUNTS.items()]
