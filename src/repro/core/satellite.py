"""The SpaceCore satellite: a stateless core-function proxy (S5).

A satellite runs radio, a local UPF, and the SpaceCore proxy.  It
holds **no durable session state**: everything it needs to serve a UE
arrives piggybacked in the UE's encrypted state replica and is
installed only for the lifetime of the radio session.  What a hijacker
can steal from a satellite is therefore bounded by the currently
served sessions -- the resiliency property Fig. 19 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..crypto import abe
from ..crypto.sts import Initiator, KeyAgreementError, Responder
from ..fiveg.bus import SignalingBus
from ..fiveg.core import SatelliteCredentials
from ..fiveg.messages import (
    ProcedureKind,
    SPACECORE_HANDOVER_FLOW,
    SPACECORE_SESSION_ESTABLISHMENT_FLOW,
)
from ..fiveg.nf.upf import Upf
from ..fiveg.state import SessionState
from ..fiveg.ue import StateReplica, UserEquipment


class FallbackRequired(Exception):
    """Local establishment failed; roll back to the legacy home-routed
    procedure (S4.2: "Otherwise, the serving satellite ... rolls back
    to the legacy procedure")."""


@dataclass
class ServedSession:
    """Ephemeral per-UE state while a radio session is active.

    This -- and only this -- is what hijacking the satellite exposes.
    """

    supi: str
    state: SessionState
    session_key: bytes
    installed_at: float


class SpaceCoreSatellite:
    """Radio + local UPF + the stateless SpaceCore proxy."""

    def __init__(self, sat_id: str, credentials: SatelliteCredentials,
                 bus: Optional[SignalingBus] = None):
        self.sat_id = sat_id
        self.credentials = credentials
        self.bus = bus if bus is not None else SignalingBus()
        # The local UPF enforces the QoS carried in each replica, so
        # home-pushed throttles (S4.4) bite at the edge.
        self.upf = Upf(f"{sat_id}-upf", enforce_qos=True)
        # The one per-UE table a satellite may hold: sessions live on
        # the radio right now, evaporating at release.  This is exactly
        # the hijack exposure Fig. 19 measures -- nothing durable.
        self._served: Dict[str, ServedSession] = {}  # repro: ignore[stateful-nf] -- ephemeral radio-session state (Fig. 19 contract)
        self.local_establishments = 0
        self.fallbacks = 0
        self.pagings = 0

    # -- Fig. 16a: localized session establishment --------------------------------

    def establish_session_locally(self, ue: UserEquipment,
                                  now: float = 0.0,
                                  home_verify_key=None) -> ServedSession:
        """Run the localized establishment with the UE's state replica.

        Steps (S4.2 + Algorithm 2): decrypt the piggybacked replica,
        verify the home's signature, check freshness, agree on a
        session key via station-to-station DH, and install the state
        into the local radio/UPF.  Raises :class:`FallbackRequired`
        whenever any check fails.
        """
        served = self._install_from_replica(ue, now, home_verify_key)
        for template in SPACECORE_SESSION_ESTABLISHMENT_FLOW:
            self.bus.send(template,
                          ProcedureKind.SESSION_ESTABLISHMENT.value)
        return served

    def _install_from_replica(self, ue: UserEquipment, now: float,
                              home_verify_key=None) -> ServedSession:
        replica = self._take_replica(ue)
        state = self._open_replica(replica, ue, now)
        session_key = self._agree_key(ue, home_verify_key)
        served = ServedSession(state.identifiers.supi, state, session_key,
                               now)
        self._served[state.identifiers.supi] = served
        self.upf.install_rule(state.identifiers.tunnel_id,
                              state.location.ip_address, state.qos)
        ue.connected = True
        self.local_establishments += 1
        return served

    def _take_replica(self, ue: UserEquipment) -> StateReplica:
        try:
            return ue.piggyback_replica()
        except RuntimeError as exc:
            self.fallbacks += 1
            raise FallbackRequired(str(exc)) from exc

    def _open_replica(self, replica: StateReplica, ue: UserEquipment,
                      now: float) -> SessionState:
        try:
            serialized = abe.decrypt(self.credentials.abe_key,
                                     replica.ciphertext)
        except abe.AbeDecryptionError as exc:
            self.fallbacks += 1
            raise FallbackRequired(
                f"{self.sat_id} not authorized for this UE's states"
            ) from exc
        if not ue.home_public.verify(serialized, replica.signature):
            self.fallbacks += 1
            raise FallbackRequired("state replica failed home signature "
                                   "check (UE-side manipulation?)")
        state = SessionState.from_bytes(serialized)
        if state.expired(now - replica.issued_at):
            self.fallbacks += 1
            raise FallbackRequired("state replica TTL expired; refresh "
                                   "from the home")
        return state

    def _agree_key(self, ue: UserEquipment, home_verify_key) -> bytes:
        """Algorithm 2 lines 9-14: mutual auth + fresh session key K."""
        verify_key = home_verify_key or ue.home_public
        initiator = Initiator(verify_key)
        responder = Responder(self.credentials.certificate,
                              self.credentials.signing_key)
        reply, sat_session = responder.respond(initiator.hello)
        try:
            ue_session = initiator.finish(reply)
        except KeyAgreementError as exc:
            self.fallbacks += 1
            raise FallbackRequired(f"key agreement failed: {exc}") from exc
        assert ue_session.key == sat_session.key
        return sat_session.key

    # -- Fig. 16c: handover with piggybacked replica --------------------------------

    def handover_in(self, ue: UserEquipment, from_sat:
                    "SpaceCoreSatellite", now: float = 0.0) -> ServedSession:
        """Accept an active UE from another satellite.

        The UE piggybacks its replica in the handover confirm; the old
        satellite releases its ephemeral state -- an equivalent but
        shorter state-migration path than the legacy Fig. 9c.
        """
        served = self._install_from_replica(ue, now)
        for template in SPACECORE_HANDOVER_FLOW:
            self.bus.send(template, ProcedureKind.HANDOVER.value)
        from_sat.release_session(served.supi)
        return served

    # -- session lifecycle -------------------------------------------------------------

    def release_session(self, supi: str) -> None:
        """Radio inactivity release: the ephemeral state evaporates."""
        served = self._served.pop(supi, None)
        if served is not None:
            self.upf.remove_rule(served.state.identifiers.tunnel_id)

    def release_all(self) -> None:
        """Drop every served session (e.g. on decommission)."""
        for supi in list(self._served):
            self.release_session(supi)

    def is_serving(self, supi: str) -> bool:
        """Whether this satellite currently serves the subscriber."""
        return supi in self._served

    @property
    def served_count(self) -> int:
        return len(self._served)

    def served_session(self, supi: str) -> Optional[ServedSession]:
        """The ephemeral state for one served subscriber, if any."""
        return self._served.get(supi)

    # -- data plane ---------------------------------------------------------------------

    def forward_uplink(self, supi: str, size_bytes: int,
                       now_s: Optional[float] = None) -> bool:
        """Forward one uplink packet, shaped when a clock is given."""
        served = self._served.get(supi)
        if served is None:
            return False
        return self.upf.forward_uplink(
            served.state.identifiers.tunnel_id, size_bytes, now_s)

    def page(self, supi: str) -> bool:
        """Radio paging for downlink arrival (Algorithm 1 line 2)."""
        self.pagings += 1
        return True

    def usage_report(self, supi: str) -> Tuple[int, int]:
        """Bytes used, reported up to the home for billing (S4.4)."""
        served = self._served.get(supi)
        if served is None:
            return 0, 0
        return self.upf.usage_report(served.state.identifiers.tunnel_id)

    # -- attack surface (Fig. 19) ----------------------------------------------------------

    def exposed_states(self) -> List[ServedSession]:
        """Everything a hijacker can extract from this satellite.

        Stateless design: only the currently-served sessions, whose
        keys rotate every establishment.  Contrast with SkyCore's
        pre-provisioned per-subscriber vectors.
        """
        return list(self._served.values())
