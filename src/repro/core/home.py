"""The SpaceCore terrestrial home: control root + state authority (S4.4).

The home is the only entity that may update delegated states (except
S2 location reports and S5 per-session keys).  It receives usage
reports from satellites, reruns policy, re-signs and re-encrypts the
bundle, and pushes the new version to the UE.  It also owns satellite
revocation: ABE policies carry an *epoch* attribute, so rotating the
epoch (and re-keying every non-revoked satellite) instantly locks a
hijacked satellite out of all future state replicas -- the Appendix B
counter-measure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..crypto import abe
from ..crypto.access_tree import PolicyNode, and_, attr, or_
from ..fiveg.core import CoreNetwork, SatelliteCredentials
from ..fiveg.identifiers import Plmn
from ..fiveg.procedures import SpaceCoreRegistrar, build_state_bundle
from ..fiveg.state import SessionState
from ..fiveg.ue import StateReplica, UserEquipment

CellId = Tuple[int, int]


class SpaceCoreHome:
    """Wraps the legacy core with SpaceCore's state authority."""

    def __init__(self, name: str = "home", plmn: Plmn = Plmn(460, 0),
                 rng=None):
        self.core = CoreNetwork(name, plmn, rng)
        self.registrar = SpaceCoreRegistrar(self.core)
        self.epoch = 0
        self._enrolled: Dict[str, SatelliteCredentials] = {}
        self.state_updates_pushed = 0

    # -- epoch-scoped satellite enrollment ----------------------------------------

    def _epoch_attributes(self) -> Tuple[str, ...]:
        return ("role:satellite", "cap:qos", "bandwidth>=10gbps",
                f"epoch:{self.epoch}")

    def enroll_satellite(self, satellite_id: str) -> SatelliteCredentials:
        """Install launch credentials bound to the current epoch.

        A revoked satellite can never re-enroll: the whole point of
        the Appendix B counter-measure is that its keys stay dead.
        """
        if self.core.is_revoked(satellite_id):
            raise ValueError(f"{satellite_id} is revoked and cannot "
                             "be re-enrolled")
        credentials = self.core.enroll_satellite(
            satellite_id, self._epoch_attributes())
        self._enrolled[satellite_id] = credentials
        return credentials

    def revoke_satellite(self, satellite_id: str) -> None:
        """Hijack response: epoch rotation + re-key survivors.

        The revoked satellite keeps its old-epoch key, which no new
        ciphertext will ever satisfy again.
        """
        self.core.revoke_satellite(satellite_id)
        self._enrolled.pop(satellite_id, None)
        self.epoch += 1
        for sat_id in list(self._enrolled):
            self._enrolled[sat_id] = self.core.enroll_satellite(
                sat_id, self._epoch_attributes())

    def credentials_for(self, satellite_id: str
                        ) -> Optional[SatelliteCredentials]:
        """The current launch credentials of an enrolled satellite."""
        return self._enrolled.get(satellite_id)

    def state_policy(self, supi: str) -> PolicyNode:
        """Access tree A: the UE itself, or an epoch-current satellite."""
        return or_(
            and_(attr("role:ue"), attr(f"supi:{supi}")),
            and_(attr("role:satellite"), attr("cap:qos"),
                 attr("bandwidth>=10gbps"), attr(f"epoch:{self.epoch}")),
        )

    # -- registration & delegation ---------------------------------------------------

    def register(self, ue: UserEquipment, home_cell: CellId,
                 ue_cell: CellId, now: float = 0.0):
        """C1 with delegation, re-encrypting under the epoch policy."""
        session = self.registrar.register_and_delegate(
            ue, home_cell, ue_cell, now)
        # The registrar encrypts under the static paper-example policy;
        # re-delegate under the epoch-scoped one so revocation bites.
        context = self.core.amf.context(ue.supi)
        bundle = build_state_bundle(session, context, ue_cell)
        ue.replica = self._wrap(bundle, ue, now)
        return session

    def ue_abe_key(self, ue: UserEquipment) -> abe.AbePrivateKey:
        """The UE's own attribute key (pre-stored in the SIM)."""
        return abe.keygen(self.core.abe_master,
                          ("role:ue", f"supi:{ue.supi}"))

    def _wrap(self, bundle: SessionState, ue: UserEquipment,
              now: float) -> StateReplica:
        serialized = bundle.to_bytes()
        signature = self.core.home_signing_key.sign(serialized)
        ciphertext = abe.encrypt(self.core.abe_master, serialized,
                                 self.state_policy(str(ue.supi)))
        return StateReplica(ciphertext=ciphertext, signature=signature,
                            version=bundle.version, issued_at=now)

    # -- home-controlled updates (S4.4) ------------------------------------------------

    def apply_usage_report(self, ue: UserEquipment, bundle: SessionState,
                           bytes_up: int, bytes_down: int,
                           now: float = 0.0) -> SessionState:
        """Session modification after a satellite usage report.

        Charges the billing state, reruns dynamic policy (e.g. the
        15GB/128Kbps throttle), bumps the version, and re-delegates.
        """
        used_mb = (bytes_up + bytes_down) / 1e6
        billing = bundle.billing.charge(used_mb)
        qos, billing = self.core.pcf.reevaluate(bundle.qos, billing)
        updated = dataclasses.replace(bundle, qos=qos,
                                      billing=billing).bump_version()
        ue.store_replica(self._wrap(updated, ue, now))
        self.state_updates_pushed += 1
        return updated

    def handle_cell_crossing(self, ue: UserEquipment, session_id: int,
                             new_cell: CellId,
                             now: float = 0.0) -> SessionState:
        """The *rare* UE-driven mobility registration (S4.3).

        The home re-allocates the geospatial address for the new cell,
        possibly updates QoS/billing for the new location's policies,
        and re-delegates the refreshed bundle.
        """
        session = self.core.smf.reallocate_address(session_id, new_cell)
        ue.ip_address = session.address.to_ipv6()
        context = self.core.amf.update_tracking_area(ue.supi, new_cell)
        bundle = build_state_bundle(session, context,
                                    new_cell).bump_version()
        # Keep the version monotonic past any earlier updates.
        if ue.replica is not None and bundle.version <= ue.replica.version:
            bundle = dataclasses.replace(
                bundle, version=ue.replica.version + 1)
        ue.store_replica(self._wrap(bundle, ue, now))
        self.state_updates_pushed += 1
        return bundle

    # -- pass-through helpers -----------------------------------------------------------

    def provision_subscriber(self, msin: int, lat: float = 0.0,
                             lon: float = 0.0,
                             **overrides) -> UserEquipment:
        """Provision a SIM in the wrapped core and return its UE."""
        return self.core.provision_subscriber(msin, lat, lon, **overrides)

    @property
    def verify_key(self):
        return self.core.home_verify_key
