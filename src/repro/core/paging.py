"""Paging: locating an idle UE for downlink delivery.

Algorithm 1's delivery step is "Run paging and forward packet to D".
Legacy 5G pages across the *tracking area* -- every base station in
the area transmits the page.  With satellite-bound logical tracking
areas this is expensive and unstable; SpaceCore pages within the
destination's *geospatial cell*, which exactly one (or two overlapping)
satellites cover at any moment.

This module quantifies that difference and implements the paging
transaction: occasion calculation from the UE identity (DRX), the
page, and the response window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..geo.cells import GeospatialCellGrid
from ..orbits.coverage import footprint_area_km2
from ..orbits.constellation import Constellation

#: Default DRX cycle (s): idle UEs wake this often to check paging.
DEFAULT_DRX_CYCLE_S = 1.28

#: Paging occasions per DRX cycle.
OCCASIONS_PER_CYCLE = 4


@dataclass(frozen=True)
class PagingOccasion:
    """When a given UE listens for pages."""

    cycle_s: float
    offset_s: float

    def next_after(self, now_s: float) -> float:
        """The first listening instant at or after ``now_s``."""
        if now_s <= self.offset_s:
            return self.offset_s
        cycles = math.ceil((now_s - self.offset_s) / self.cycle_s)
        return self.offset_s + cycles * self.cycle_s


def occasion_for(ue_suffix: int,
                 drx_cycle_s: float = DEFAULT_DRX_CYCLE_S
                 ) -> PagingOccasion:
    """Derive a UE's paging occasion from its identity (TS 38.304).

    Deterministic hashing of the UE suffix spreads UEs across the
    cycle's occasions, exactly like the standard's UE_ID mod N rule.
    """
    if ue_suffix < 0:
        raise ValueError("UE suffix must be non-negative")
    slot = ue_suffix % OCCASIONS_PER_CYCLE
    offset = slot * (drx_cycle_s / OCCASIONS_PER_CYCLE)
    return PagingOccasion(drx_cycle_s, offset)


@dataclass(frozen=True)
class PagingCost:
    """Cells/satellites that must transmit one page."""

    strategy: str
    transmitting_satellites: float
    paged_area_km2: float


def legacy_tracking_area_cost(constellation: Constellation,
                              cells_per_tracking_area: int = 16
                              ) -> PagingCost:
    """Legacy paging: every satellite covering the tracking area pages.

    Tracking areas group many cells; with satellite-bound logical
    areas, the pages go to every satellite currently mapped into the
    area.
    """
    footprint = footprint_area_km2(constellation.altitude_km,
                                   constellation.min_elevation_deg)
    area = footprint * cells_per_tracking_area
    satellites = max(1.0, area / footprint)
    return PagingCost("legacy-tracking-area", satellites, area)


def geospatial_cell_cost(grid: GeospatialCellGrid) -> PagingCost:
    """SpaceCore paging: only the cell's covering satellite pages.

    The destination's cell is in its address; Algorithm 1 delivers the
    packet to the covering satellite, which transmits the page over
    one footprint.
    """
    constellation = grid.constellation
    footprint = footprint_area_km2(constellation.altitude_km,
                                   constellation.min_elevation_deg)
    avg_cell = (4.0 * math.pi * 6371.0**2
                * math.sin(constellation.inclination_rad)
                / grid.num_cells)
    # One satellite covers an average cell; big Iridium-class cells
    # may need the neighbouring satellite too.
    satellites = max(1.0, avg_cell / footprint)
    return PagingCost("geospatial-cell", satellites,
                      min(avg_cell, footprint * satellites))


class PagingTransaction:
    """One network-initiated reach attempt for an idle UE."""

    def __init__(self, ue_suffix: int,
                 drx_cycle_s: float = DEFAULT_DRX_CYCLE_S):
        self.occasion = occasion_for(ue_suffix, drx_cycle_s)
        self.attempts = 0
        self.answered_at: Optional[float] = None

    def page(self, now_s: float, ue_reachable: bool,
             response_delay_s: float = 0.02) -> Optional[float]:
        """Page at ``now_s``; returns the answer time or None.

        The page is transmitted at the UE's next occasion; a reachable
        UE answers one radio round trip later.
        """
        self.attempts += 1
        if not ue_reachable:
            return None
        listen_at = self.occasion.next_after(now_s)
        self.answered_at = listen_at + response_delay_s
        return self.answered_at

    @property
    def mean_paging_delay_s(self) -> float:
        """Expected wait until the occasion: half a cycle slot."""
        return self.occasion.cycle_s / 2.0
