"""SpaceCoreSystem: the assembled system of Fig. 14.

Ties together the constellation (orbits + topology + Algorithm 1
routing), the terrestrial home, the per-satellite stateless proxies,
and the UEs.  This is the top-level public API the examples use:

>>> from repro.core import SpaceCoreSystem
>>> from repro.orbits import starlink
>>> system = SpaceCoreSystem(starlink())
>>> ue = system.provision_ue(39.9, 116.4)     # Beijing, degrees
>>> system.register(ue)                       # C1 through the home
>>> session = system.establish_session(ue)    # localized C2 (Fig. 16a)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..fiveg.bus import SignalingBus
from ..fiveg.identifiers import Plmn
from ..fiveg.ue import UserEquipment
from ..geo.addressing import GeospatialAddress
from ..geo.cells import GeospatialCellGrid
from ..orbits.constellation import Constellation
from ..orbits.coverage import serving_satellite
from ..orbits.groundstations import GroundStation, default_ground_stations
from ..orbits.propagator import make_propagator
from ..topology.grid import GridTopology
from ..topology.routing import GeospatialRouter, RouteResult
from .home import SpaceCoreHome
from .mobility import GeospatialMobilityManager, MobilityDecision
from .satellite import FallbackRequired, ServedSession, SpaceCoreSatellite

CellId = Tuple[int, int]


@dataclass
class DownlinkResult:
    """Outcome of a downlink delivery (Fig. 16b's stateless relay)."""

    route: RouteResult
    paged: bool
    serving_sat: Optional[int]


class SpaceCoreSystem:
    """The deployed SpaceCore of Fig. 14."""

    def __init__(self, constellation: Constellation,
                 ground_stations: Optional[List[GroundStation]] = None,
                 propagator_kind: str = "ideal",
                 plmn: Plmn = Plmn(460, 0)):
        self.constellation = constellation
        self.propagator = make_propagator(constellation, propagator_kind)
        self.ground_stations = (ground_stations
                                if ground_stations is not None
                                else default_ground_stations())
        self.topology = GridTopology(self.propagator, self.ground_stations)
        self.router = GeospatialRouter(self.topology)
        self.grid = GeospatialCellGrid(constellation)
        self.home = SpaceCoreHome(plmn=plmn)
        self.mobility = GeospatialMobilityManager(self.grid)
        self.bus = SignalingBus()
        self._satellites: Dict[int, SpaceCoreSatellite] = {}
        # Radio-layer attachment bookkeeping: which satellite a UE is
        # camped on right now.  RAN state, not core state -- it expires
        # with the radio session and is rebuilt from coverage geometry
        # on re-attach, never migrated (S4.3).
        self._ue_serving_sat: Dict[str, int] = {}  # repro: ignore[stateful-nf] -- ephemeral RAN attachment, rebuilt from geometry
        # The *terrestrial home's* session registry (Fig. 14: the home
        # is stateful by design; only satellites are stateless).
        self._ue_session_bundle: Dict[str, int] = {}  # repro: ignore[stateful-nf] -- home-side registry; the home is terrestrial and stateful
        self._next_msin = 1

    # -- construction helpers ---------------------------------------------------------

    def satellite(self, sat_index: int) -> SpaceCoreSatellite:
        """The stateless proxy running on one satellite (lazy enroll).

        Revoked satellites that were never instantiated cannot be
        enrolled after the fact -- their credentials stay dead.
        """
        if sat_index not in self._satellites:
            sat_id = f"sat-{sat_index}"
            credentials = self.home.credentials_for(sat_id)
            if credentials is None:
                if self.home.core.is_revoked(sat_id):
                    raise FallbackRequired(
                        f"{sat_id} is revoked; pick another satellite")
                credentials = self.home.enroll_satellite(sat_id)
            self._satellites[sat_index] = SpaceCoreSatellite(
                sat_id, credentials, self.bus)
        return self._satellites[sat_index]

    def provision_ue(self, lat_deg: float, lon_deg: float
                     ) -> UserEquipment:
        """Provision a subscriber at a terrestrial location (degrees)."""
        ue = self.home.provision_subscriber(
            self._next_msin, math.radians(lat_deg), math.radians(lon_deg))
        self._next_msin += 1
        return ue

    # -- coverage -----------------------------------------------------------------------

    def serving_satellite_of(self, ue: UserEquipment,
                             t: float = 0.0) -> int:
        """Flat index of the satellite covering a UE (-1 when none)."""
        return serving_satellite(self.propagator, t, ue.lat, ue.lon)

    def live_serving_satellite_of(self, ue: UserEquipment,
                                  t: float = 0.0) -> int:
        """The closest *live* covering satellite (-1 when none).

        Unlike the purely geometric :meth:`serving_satellite_of`, dead
        satellites are skipped -- a UE under churn attaches to the best
        survivor instead of a corpse.
        """
        return self._closest_live_candidate(ue, t)

    def _closest_live_candidate(self, ue: UserEquipment,
                                t: float) -> int:
        from ..orbits.snapshot import snapshot_for
        snap = snapshot_for(self.propagator, t)
        candidates = snap.visible_satellites(ue.lat, ue.lon)
        if len(candidates) == 0:
            return -1
        angles = snap.central_angles(ue.lat, ue.lon)[candidates]
        for idx in angles.argsort(kind="stable"):
            sat = int(candidates[idx])
            if self.topology.is_up(sat):
                return sat
        return -1

    def cell_of(self, ue: UserEquipment) -> CellId:
        """The UE's geospatial cell id."""
        return self.grid.cell_of(ue.lat, ue.lon)

    # -- control-plane procedures ----------------------------------------------------------

    def register(self, ue: UserEquipment, t: float = 0.0,
                 home_cell: Optional[CellId] = None):
        """C1: authenticate with the home and receive the state replica."""
        ue_cell = self.cell_of(ue)
        session = self.home.register(ue, home_cell or ue_cell, ue_cell, t)
        self._ue_session_bundle[str(ue.supi)] = session.session_id
        return session

    def establish_session(self, ue: UserEquipment, t: float = 0.0,
                          allow_fallback: bool = False) -> ServedSession:
        """Localized C2 (Fig. 16a) on the current serving satellite.

        With ``allow_fallback`` the S4.2 roll-back runs when the local
        path fails (unauthorized satellite, stale replica, ...): the
        home re-registers the UE and refreshes its replica over the
        legacy path, then the local establishment retries -- slower,
        but service continues.  Without it, the failure surfaces as
        :class:`FallbackRequired` for the caller to handle.
        """
        sat_index = self.live_serving_satellite_of(ue, t)
        if sat_index < 0:
            raise FallbackRequired("no live satellite covers this UE")
        satellite = self.satellite(sat_index)
        try:
            served = satellite.establish_session_locally(
                ue, t, self.home.verify_key)
        except FallbackRequired:
            if not allow_fallback:
                raise
            served = self._legacy_fallback(ue, satellite, t)
        self._ue_serving_sat[str(ue.supi)] = sat_index
        return served

    def _legacy_fallback(self, ue: UserEquipment,
                         satellite: SpaceCoreSatellite,
                         t: float) -> ServedSession:
        """The S4.2 roll-back: contact the home over the ISL path.

        The home re-runs registration + delegation (a fresh replica
        under the current epoch policy, fixing stale/garbled copies),
        after which the local establishment succeeds -- unless the
        satellite itself is revoked, in which case the failure is
        final for this satellite.
        """
        self.register(ue, t)
        return satellite.establish_session_locally(
            ue, t, self.home.verify_key)

    def handover(self, ue: UserEquipment, t: float) -> Optional[int]:
        """Inter-satellite handover when coverage moves (S4.3).

        Returns the new serving satellite index, or None when the
        serving satellite is unchanged.
        """
        supi = str(ue.supi)
        current = self._ue_serving_sat.get(supi)
        new_sat = self.live_serving_satellite_of(ue, t)
        if new_sat < 0 or new_sat == current:
            return None
        if current is None or not ue.connected:
            return None
        target = self.satellite(new_sat)
        target.handover_in(ue, self.satellite(current), t)
        self._ue_serving_sat[supi] = new_sat
        return new_sat

    def release(self, ue: UserEquipment) -> None:
        """RRC inactivity release: ephemeral satellite state evaporates."""
        supi = str(ue.supi)
        sat = self._ue_serving_sat.pop(supi, None)
        if sat is not None:
            self.satellite(sat).release_session(supi)
        ue.connected = False

    # -- data plane -----------------------------------------------------------------------

    def send_uplink(self, ue: UserEquipment, size_bytes: int,
                    t: float = 0.0) -> bool:
        """Forward one uplink packet through the serving satellite."""
        supi = str(ue.supi)
        sat = self._ue_serving_sat.get(supi)
        if sat is None:
            return False
        return self.satellite(sat).forward_uplink(supi, size_bytes, t)

    def deliver_downlink(self, ingress_sat: int, dest: UserEquipment,
                         t: float = 0.0) -> DownlinkResult:
        """Fig. 16b: stateless geospatial relay + paging + local setup.

        The ingress satellite derives the destination's location from
        the geospatial address and relays via Algorithm 1; the covering
        satellite pages the UE, which then establishes locally.
        """
        if dest.ip_address is None:
            raise ValueError("destination UE has no geospatial address")
        address = GeospatialAddress.from_ipv6(dest.ip_address)
        dest_lat, dest_lon = self.grid.cell_center(address.ue_cell)
        # Route toward the cell; exact user position refines the last hop.
        route = self.router.route(ingress_sat, dest.lat, dest.lon, t)
        if not route.delivered:
            return DownlinkResult(route, False, None)
        landing = route.path[-1]
        paged = self.satellite(landing).page(str(dest.supi))
        if paged and not dest.connected:
            try:
                self.satellite(landing).establish_session_locally(
                    dest, t, self.home.verify_key)
                self._ue_serving_sat[str(dest.supi)] = landing
            except FallbackRequired:
                paged = False
        return DownlinkResult(route, paged, landing)

    # -- failure recovery (S4.3) -----------------------------------------------------------

    def recover_from_satellite_failure(self, ue: UserEquipment,
                                       t: float) -> Optional[int]:
        """Re-attach a UE whose serving satellite just died.

        S4.3: "Upon satellite attacks/failures, the UE can quickly
        migrate to other available satellites and recover ... with its
        local state replicas."  No state migration from the dead node
        is needed -- the replica *is* the state.

        Returns the new serving satellite, or None when nothing covers
        the UE right now.
        """
        from ..orbits.snapshot import snapshot_for
        supi = str(ue.supi)
        self._ue_serving_sat.pop(supi, None)
        snap = snapshot_for(self.propagator, t)
        candidates = snap.visible_satellites(ue.lat, ue.lon)
        if len(candidates):
            angles = snap.central_angles(ue.lat, ue.lon)[candidates]
            # Nearest-first: re-attach at the highest elevation angle
            # that is still alive and willing.
            for idx in angles.argsort(kind="stable"):
                sat = int(candidates[idx])
                if not self.topology.is_up(sat):
                    continue
                try:
                    self.satellite(sat).establish_session_locally(
                        ue, t, self.home.verify_key)
                except FallbackRequired:
                    continue
                self._ue_serving_sat[supi] = sat
                return sat
        ue.connected = False
        return None

    # -- mobility events ---------------------------------------------------------------------

    def ue_moved(self, ue: UserEquipment, new_lat_deg: float,
                 new_lon_deg: float, t: float = 0.0) -> MobilityDecision:
        """Handle UE motion; runs the home registration on cell crossing."""
        new_lat = math.radians(new_lat_deg)
        new_lon = math.radians(new_lon_deg)
        decision = self.mobility.on_ue_move(ue.lat, ue.lon, new_lat,
                                            new_lon)
        ue.move_to(new_lat, new_lon)
        if decision.action.value == "home-mobility-registration":
            session_id = self._ue_session_bundle[str(ue.supi)]
            self.home.handle_cell_crossing(
                ue, session_id, self.grid.cell_of(new_lat, new_lon), t)
        return decision
