"""Geospatial mobility management (S4.3).

Classifies every mobility event and decides which signaling -- if any
-- it triggers.  The central result: *satellite* mobility over a
static UE triggers nothing (idle) or a short local handover (active),
never a mobility registration, because geospatial cells do not move.
UE mobility only matters when it crosses a cell boundary, which the
Table 3 cell sizes make rare.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from ..geo.cells import GeospatialCellGrid

CellId = Tuple[int, int]


class MobilityEvent(Enum):
    """What happened."""

    SATELLITE_PASS_IDLE = "satellite-pass-idle"
    SATELLITE_PASS_ACTIVE = "satellite-pass-active"
    BEAM_HANDOVER = "beam-handover"
    UE_MOVED_WITHIN_CELL = "ue-moved-within-cell"
    UE_CROSSED_CELL = "ue-crossed-cell"


class MobilityAction(Enum):
    """The signaling SpaceCore runs in response."""

    NONE = "none"
    LOCAL_HANDOVER = "local-handover-with-replica"
    HOME_REGISTRATION = "home-mobility-registration"


@dataclass(frozen=True)
class MobilityDecision:
    event: MobilityEvent
    action: MobilityAction
    reason: str


class GeospatialMobilityManager:
    """Event classifier for the SpaceCore mobility rules of S4.3."""

    def __init__(self, grid: GeospatialCellGrid):
        self.grid = grid

    def on_satellite_pass(self, ue_connected: bool) -> MobilityDecision:
        """A new satellite takes over coverage of a static UE."""
        if not ue_connected:
            return MobilityDecision(
                MobilityEvent.SATELLITE_PASS_IDLE,
                MobilityAction.NONE,
                "idle UE: geospatial cell unchanged, Algorithm 1 still "
                "reaches it; no state updates needed",
            )
        return MobilityDecision(
            MobilityEvent.SATELLITE_PASS_ACTIVE,
            MobilityAction.LOCAL_HANDOVER,
            "active UE: piggyback the state replica to the new "
            "satellite in the handover confirm",
        )

    def on_beam_change(self) -> MobilityDecision:
        """Antenna switch on the same satellite: physical layer only."""
        return MobilityDecision(
            MobilityEvent.BEAM_HANDOVER,
            MobilityAction.NONE,
            "beam handover happens below the core; no state operations",
        )

    def on_ue_move(self, old_lat: float, old_lon: float,
                   new_lat: float, new_lon: float) -> MobilityDecision:
        """The UE physically moved; did it leave its geospatial cell?"""
        old_cell = self.grid.cell_of(old_lat, old_lon)
        new_cell = self.grid.cell_of(new_lat, new_lon)
        if old_cell == new_cell:
            return MobilityDecision(
                MobilityEvent.UE_MOVED_WITHIN_CELL,
                MobilityAction.NONE,
                "same geospatial cell: address and states unchanged",
            )
        return MobilityDecision(
            MobilityEvent.UE_CROSSED_CELL,
            MobilityAction.HOME_REGISTRATION,
            f"cell crossing {old_cell} -> {new_cell}: the home "
            "re-authenticates, re-allocates the geospatial address and "
            "refreshes the delegated states",
        )

    # -- rate accounting for the experiments ------------------------------------------

    def registration_rate_static_user(self) -> float:
        """Mobility registrations/s a *static* UE causes: exactly zero.

        This is the headline elimination of S4.3 (Fig. 16 caption: "C4
        is eliminated by geospatial mobility management").
        """
        return 0.0

    def registration_rate_moving_user(self, speed_km_s: float) -> float:
        """Cell-crossing (hence registration) rate for a moving UE."""
        return self.grid.crossing_rate_per_user(speed_km_s)
