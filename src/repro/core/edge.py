"""Orbital edge computing on top of the stateless core (S2.2(3)).

One of the paper's value propositions: "Orbital edge needs space
networking (thus orbital core functions) for functionality", and
SpaceCore's stateless core "is also a necessary first step to simplify
the fault/attack tolerance for the orbital edge computing" (S4.3).

This extension module builds a content/compute service on the
substrate the reproduction already has:

* replicas of a service are placed on satellites currently covering
  the busiest population centres;
* requests route to the *nearest* replica with Algorithm 1 (the same
  stateless relaying that carries user traffic);
* when a replica's satellite fails, requests transparently fall over
  to the next-nearest replica -- no state to migrate, mirroring the
  SpaceCore recovery story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..geo.population import PopulationGrid
from ..orbits.coverage import footprint_radius_km, serving_satellite
from ..topology.grid import GridTopology
from ..topology.routing import GeospatialRouter, RouteResult


@dataclass(frozen=True)
class EdgeRequestResult:
    """Outcome of serving one edge request."""

    served: bool
    replica_sat: Optional[int]
    route: Optional[RouteResult]

    @property
    def latency_s(self) -> float:
        """One-way request latency (uplink leg excluded, equal for all)."""
        return self.route.delay_s if self.route else math.inf


class OrbitalEdgeService:
    """A replicated service living on satellites."""

    def __init__(self, topology: GridTopology,
                 router: Optional[GeospatialRouter] = None):
        self.topology = topology
        self.router = router or GeospatialRouter(topology)
        self._replicas: set = set()
        self.requests_served = 0
        self.failovers = 0

    # -- placement ----------------------------------------------------------------

    def place_over_population(self, t: float, replica_count: int = 6,
                              population: Optional[PopulationGrid]
                              = None) -> List[int]:
        """Place replicas on satellites over the densest ground.

        Greedy anti-collocation: each new replica must not share a
        footprint with an already chosen one, so the set spreads over
        distinct population centres.
        """
        if replica_count < 1:
            raise ValueError("need at least one replica")
        population = population or PopulationGrid()
        c = self.topology.constellation
        radius = footprint_radius_km(c.altitude_km, c.min_elevation_deg)
        subpoints = self.topology.propagator.subpoints(t)
        scored = []
        for sat in range(c.total_satellites):
            if not self.topology.is_up(sat):
                continue
            lat, lon = subpoints[sat]
            weight = population.users_in_footprint(float(lat),
                                                   float(lon), radius,
                                                   resolution=3)
            if weight > 0:
                scored.append((weight, sat))
        scored.sort(reverse=True)
        chosen: List[int] = []
        # Several footprints of separation: popularity alone would put
        # every replica over Asia; spacing forces continental spread.
        min_separation = 6.0 * radius / 6371.0
        from ..orbits.coordinates import central_angle
        for _, sat in scored:
            if len(chosen) >= replica_count:
                break
            lat, lon = subpoints[sat]
            if all(central_angle(float(lat), float(lon),
                                 float(subpoints[other][0]),
                                 float(subpoints[other][1]))
                   > min_separation for other in chosen):
                chosen.append(sat)
        self._replicas = set(chosen)
        return chosen

    def place_on(self, satellites: Sequence[int]) -> None:
        """Pin replicas to an explicit satellite set."""
        self._replicas = set(satellites)

    @property
    def replicas(self) -> List[int]:
        return sorted(self._replicas)

    # -- serving -----------------------------------------------------------------------

    def serve(self, user_lat: float, user_lon: float,
              t: float) -> EdgeRequestResult:
        """Serve one request from the nearest live replica.

        The user's serving satellite routes toward each candidate
        replica's current ground position; the shortest delivered
        route wins.  Dead-replica satellites are skipped -- that is
        the stateless failover.
        """
        src = serving_satellite(self.topology.propagator, t, user_lat,
                                user_lon)
        if src < 0:
            return EdgeRequestResult(False, None, None)
        live = [sat for sat in self._replicas
                if self.topology.is_up(sat)]
        if not live:
            return EdgeRequestResult(False, None, None)
        if len(live) < len(self._replicas):
            self.failovers += 1
        subpoints = self.topology.propagator.subpoints(t)
        best: Optional[Tuple[RouteResult, int]] = None
        for replica in live:
            lat, lon = subpoints[replica]
            route = self.router.route(src, float(lat), float(lon), t)
            if not route.delivered:
                continue
            if best is None or route.delay_s < best[0].delay_s:
                best = (route, replica)
        if best is None:
            return EdgeRequestResult(False, None, None)
        self.requests_served += 1
        return EdgeRequestResult(True, best[1], best[0])

    # -- comparison --------------------------------------------------------------------

    def ground_cdn_latency_s(self, user_lat: float, user_lon: float,
                             t: float,
                             gateway_rtt_s: float = 0.060) -> float:
        """Latency of the terrestrial-CDN alternative: the request
        must exit through a gateway and come back."""
        src = serving_satellite(self.topology.propagator, t, user_lat,
                                user_lon)
        if src < 0 or not self.topology.ground_stations:
            return math.inf
        best = math.inf
        for gs in self.topology.ground_stations:
            access = self.topology.station_access_satellite(gs, t)
            if access < 0:
                continue
            lat, lon = self.topology.propagator.subpoints(t)[access]
            route = self.router.route(src, float(lat), float(lon), t)
            if route.delivered:
                best = min(best, route.delay_s + gateway_rtt_s / 2.0)
        return best
