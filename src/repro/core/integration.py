"""Seamless space-terrestrial integration (S4.5).

SpaceCore's terrestrial home is a legacy 5G core reachable by both
satellites and terrestrial base stations, which makes it the natural
coordinator when a UE moves between the two access domains:

* **idle** UEs run standard cell re-selection between satellite and
  terrestrial coverage -- no signaling at all;
* **connected** UEs hand over through the home, using the standard
  Fig. 9c machinery (the home controls both sides);
* the UE keeps one identity (SUPI) across domains, and its geospatial
  address remains valid: terrestrial attachment anchors it at the home.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from ..fiveg.bus import SignalingBus
from ..fiveg.messages import HANDOVER_FLOW, ProcedureKind
from ..fiveg.ue import UserEquipment
from ..orbits.coordinates import central_angle
from ..constants import EARTH_RADIUS_KM
from .satellite import FallbackRequired
from .spacecore import SpaceCoreSystem


class AccessDomain(Enum):
    """AccessDomain."""
    TERRESTRIAL = "terrestrial"
    SATELLITE = "satellite"
    NONE = "none"


@dataclass(frozen=True)
class TerrestrialBaseStation:
    """A conventional gNB wired to the home core."""

    name: str
    lat_deg: float
    lon_deg: float
    radius_km: float = 5.0

    def covers(self, lat: float, lon: float) -> bool:
        """Whether a (lat, lon) point in radians is inside the cell."""
        angle = central_angle(math.radians(self.lat_deg),
                              math.radians(self.lon_deg), lat, lon)
        return angle * EARTH_RADIUS_KM <= self.radius_km


@dataclass(frozen=True)
class AccessDecision:
    """Result of a re-selection or handover evaluation."""

    domain: AccessDomain
    target: Optional[str]
    reason: str


class IntegratedAccessManager:
    """Coordinates a UE between terrestrial 5G and SpaceCore satellites.

    Terrestrial coverage is preferred when available (standard
    reselection priority: it is cheaper and faster); satellites cover
    everything else.
    """

    def __init__(self, system: SpaceCoreSystem,
                 base_stations: List[TerrestrialBaseStation]):
        self.system = system
        self.base_stations = list(base_stations)
        self.bus = SignalingBus()
        self._domain: dict = {}
        self.reselections = 0
        self.cross_domain_handovers = 0

    # -- coverage -----------------------------------------------------------------

    def terrestrial_station_for(self, ue: UserEquipment
                                ) -> Optional[TerrestrialBaseStation]:
        """The gNB covering this UE's position, if any."""
        for station in self.base_stations:
            if station.covers(ue.lat, ue.lon):
                return station
        return None

    def best_access(self, ue: UserEquipment,
                    t: float = 0.0) -> AccessDecision:
        """What the UE should camp on right now."""
        station = self.terrestrial_station_for(ue)
        if station is not None:
            return AccessDecision(
                AccessDomain.TERRESTRIAL, station.name,
                "terrestrial coverage available: higher reselection "
                "priority")
        satellite = self.system.serving_satellite_of(ue, t)
        if satellite >= 0:
            return AccessDecision(
                AccessDomain.SATELLITE, f"sat-{satellite}",
                "no terrestrial coverage: satellite access")
        return AccessDecision(AccessDomain.NONE, None,
                              "no coverage from either domain")

    def current_domain(self, ue: UserEquipment) -> AccessDomain:
        """The domain the UE last camped on or handed over to."""
        return self._domain.get(str(ue.supi), AccessDomain.NONE)

    # -- idle-mode reselection (S4.5: "standard cell re-selection") ----------------

    def reselect_idle(self, ue: UserEquipment,
                      t: float = 0.0) -> AccessDecision:
        """Idle-mode camping decision: free of core signaling."""
        if ue.connected:
            raise ValueError("reselection applies to idle UEs; use "
                             "handover() for connected ones")
        decision = self.best_access(ue, t)
        previous = self._domain.get(str(ue.supi))
        self._domain[str(ue.supi)] = decision.domain
        if previous is not None and previous != decision.domain:
            self.reselections += 1
        return decision

    # -- connected-mode handover ------------------------------------------------------

    def handover_connected(self, ue: UserEquipment,
                           t: float = 0.0) -> AccessDecision:
        """Cross-domain handover through the home (standard Fig. 9c).

        Satellite -> terrestrial (and back) uses the legacy home-
        controlled handover: the home anchors both domains, so the
        UE's session and geospatial identity survive.
        """
        if not ue.connected:
            raise ValueError("handover applies to connected UEs")
        decision = self.best_access(ue, t)
        previous = self._domain.get(str(ue.supi), AccessDomain.NONE)
        if decision.domain == previous or \
                decision.domain is AccessDomain.NONE:
            return decision
        for template in HANDOVER_FLOW:
            self.bus.send(template, ProcedureKind.HANDOVER.value)
        if decision.domain is AccessDomain.SATELLITE:
            # Entering the space domain: establish locally with the
            # replica, exactly as a satellite-to-satellite handover.
            try:
                self.system.establish_session(ue, t)
            except FallbackRequired:
                return AccessDecision(AccessDomain.NONE, None,
                                      "satellite rejected the replica; "
                                      "roll back to the home")
        else:
            # Entering the terrestrial domain: the satellite-side
            # ephemeral state evaporates.
            self.system.release(ue)
            ue.connected = True  # still connected, via the gNB
        self._domain[str(ue.supi)] = decision.domain
        self.cross_domain_handovers += 1
        return decision
