"""SpaceCore: the paper's primary contribution (S4-S5).

Stateless satellite core proxies, the terrestrial home state
authority, geospatial mobility management, and the assembled
:class:`SpaceCoreSystem`.
"""

from .edge import EdgeRequestResult, OrbitalEdgeService
from .home import SpaceCoreHome
from .integration import (
    AccessDecision,
    AccessDomain,
    IntegratedAccessManager,
    TerrestrialBaseStation,
)
from .mobility import (
    GeospatialMobilityManager,
    MobilityAction,
    MobilityDecision,
    MobilityEvent,
)
from .robustness import ProcedureOutcome, ResilientSpaceCore
from .satellite import (
    FallbackRequired,
    ServedSession,
    SpaceCoreSatellite,
)
from .spacecore import DownlinkResult, SpaceCoreSystem

__all__ = [
    "EdgeRequestResult", "OrbitalEdgeService",
    "SpaceCoreHome",
    "AccessDecision", "AccessDomain", "IntegratedAccessManager",
    "TerrestrialBaseStation",
    "GeospatialMobilityManager", "MobilityAction", "MobilityDecision",
    "MobilityEvent",
    "ProcedureOutcome", "ResilientSpaceCore",
    "FallbackRequired", "ServedSession", "SpaceCoreSatellite",
    "DownlinkResult", "SpaceCoreSystem",
]
