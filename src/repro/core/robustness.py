"""Procedure-level robustness: NAS guard timers, bounded retries (S4.3).

The raw :class:`~repro.core.spacecore.SpaceCoreSystem` procedures
raise :class:`FallbackRequired` the moment anything mid-procedure goes
wrong -- a satellite dying between coverage lookup and replica
install, an expired replica, a revoked proxy.  Real UEs do not crash;
they run guard timers (T3510/T3580/T3517 analogues from
:mod:`repro.constants`) and retry with bounded exponential backoff,
re-selecting a serving satellite each attempt.

:class:`ResilientSpaceCore` wraps a system with exactly that
discipline and records one :class:`ProcedureOutcome` per invocation
(attempts, accumulated delay, abandoned or not) -- the raw material of
the chaos-availability curves.  Wired to a
:class:`~repro.faults.chaos.ChaosController`, it turns satellite-death
events into scheduled re-attach attempts, which is how a seeded chaos
run exercises the whole recovery path event-by-event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..constants import (
    NAS_MAX_ATTEMPTS,
    NAS_RETRY_BACKOFF_BASE_S,
    NAS_RETRY_BACKOFF_CAP_S,
    NAS_T3510_S,
    NAS_T3517_S,
    NAS_T3580_S,
    RLF_DETECTION_S,
)
from ..fiveg.procedures import ProcedureError
from ..fiveg.ue import UserEquipment
from ..obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry
from ..obs.tracing import Tracer
from .satellite import FallbackRequired
from .spacecore import SpaceCoreSystem


@dataclass
class ProcedureOutcome:
    """The fate of one timed procedure run (possibly after retries)."""

    procedure: str          # register | establish | handover | recovery
    supi: str
    started_at: float
    attempts: int
    total_delay_s: float    # timer expiries + backoff until completion
    completed: bool
    abandoned: bool         # retry counter exhausted, session dropped
    detail: str = ""

    def key(self) -> Tuple:
        """Serialisable identity for bit-reproducibility comparisons."""
        return (self.procedure, self.supi, round(self.started_at, 9),
                self.attempts, round(self.total_delay_s, 9),
                self.completed, self.abandoned)


class ResilientSpaceCore:
    """Timer-and-retry front end over a :class:`SpaceCoreSystem`."""

    def __init__(self, system: SpaceCoreSystem,
                 max_attempts: int = NAS_MAX_ATTEMPTS,
                 backoff_base_s: float = NAS_RETRY_BACKOFF_BASE_S,
                 backoff_cap_s: float = NAS_RETRY_BACKOFF_CAP_S,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.system = system
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        #: Optional observability: per-procedure attempt/latency series
        #: and one trace span per timed procedure, all on simulated
        #: time (``started_at`` .. ``started_at + total_delay_s``).
        self.metrics = metrics
        self.tracer = tracer
        self.outcomes: List[ProcedureOutcome] = []
        self.lost_sessions: List[str] = []
        self._ues: Dict[str, UserEquipment] = {}
        self._sim = None

    # -- bookkeeping ------------------------------------------------------------

    def track(self, ue: UserEquipment) -> None:
        """Make the wrapper responsible for this UE's recovery."""
        self._ues[str(ue.supi)] = ue

    def tracked_ues(self) -> List[UserEquipment]:
        """Every UE this wrapper will recover after a fault."""
        return list(self._ues.values())

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_base_s * (2.0 ** attempt),
                   self.backoff_cap_s)

    # -- the retry loop -----------------------------------------------------------

    def _run_with_retries(self, procedure: str, supi: str, t: float,
                          guard_timer_s: float,
                          attempt_fn: Callable[[float], object]
                          ) -> Tuple[Optional[object], ProcedureOutcome]:
        """Run ``attempt_fn(t + elapsed)`` under the NAS discipline.

        A failed attempt costs one guard-timer expiry plus the bounded
        exponential backoff before the next try; the procedure is
        abandoned once the retry counter is exhausted.
        """
        elapsed = 0.0
        detail = ""
        for attempt in range(self.max_attempts):
            try:
                result = attempt_fn(t + elapsed)
            except (FallbackRequired, ProcedureError) as exc:
                detail = str(exc)
                elapsed += guard_timer_s + self._backoff(attempt)
                continue
            outcome = ProcedureOutcome(
                procedure, supi, t, attempt + 1, elapsed,
                completed=True, abandoned=False, detail=detail)
            self._record_outcome(outcome)
            return result, outcome
        outcome = ProcedureOutcome(
            procedure, supi, t, self.max_attempts, elapsed,
            completed=False, abandoned=True, detail=detail)
        self._record_outcome(outcome)
        return None, outcome

    def _record_outcome(self, outcome: ProcedureOutcome) -> None:
        """Append to the log and feed the optional observability sinks."""
        self.outcomes.append(outcome)
        if self.metrics is not None:
            labels = {"procedure": outcome.procedure}
            self.metrics.counter("procedure.runs", **labels).inc()
            self.metrics.counter("procedure.attempts",
                                 **labels).inc(outcome.attempts)
            self.metrics.histogram(
                "procedure.attempts_per_run",
                buckets=DEFAULT_COUNT_BUCKETS,
                **labels).observe(outcome.attempts)
            self.metrics.histogram("procedure.delay_s",
                                   **labels).observe(outcome.total_delay_s)
            fate = "abandoned" if outcome.abandoned else "completed"
            self.metrics.counter(f"procedure.{fate}", **labels).inc()
        if self.tracer is not None:
            self.tracer.record(
                f"procedure.{outcome.procedure}",
                outcome.started_at,
                outcome.started_at + outcome.total_delay_s,
                supi=outcome.supi, attempts=outcome.attempts,
                completed=outcome.completed,
                abandoned=outcome.abandoned)

    # -- timed procedures ----------------------------------------------------------

    def register(self, ue: UserEquipment,
                 t: float = 0.0) -> ProcedureOutcome:
        """C1 with T3510 retries; tracks the UE for chaos recovery."""
        self.track(ue)
        _, outcome = self._run_with_retries(
            "register", str(ue.supi), t, NAS_T3510_S,
            lambda now: self.system.register(ue, now))
        return outcome

    def establish_session(self, ue: UserEquipment,
                          t: float = 0.0) -> ProcedureOutcome:
        """Localized C2 with T3580 retries.

        Every attempt re-selects the best *live* serving satellite, so
        a satellite death between attempts costs one timer expiry, not
        the session.
        """
        self.track(ue)
        _, outcome = self._run_with_retries(
            "establish", str(ue.supi), t, NAS_T3580_S,
            lambda now: self.system.establish_session(
                ue, now, allow_fallback=True))
        return outcome

    def handover(self, ue: UserEquipment, t: float) -> ProcedureOutcome:
        """S4.3 handover with T3517 retries.

        A mid-handover target death surfaces as ``FallbackRequired``
        from the replica install; the next attempt re-selects whatever
        satellite is then the best live server.
        """
        self.track(ue)
        _, outcome = self._run_with_retries(
            "handover", str(ue.supi), t, NAS_T3517_S,
            lambda now: self.system.handover(ue, now))
        return outcome

    def recover(self, ue: UserEquipment, t: float) -> ProcedureOutcome:
        """Re-attach after a serving-satellite death, with retries.

        ``recover_from_satellite_failure`` returning None (nothing
        live covers the UE right now) is a retriable condition -- the
        constellation moves, so a later attempt may see coverage.
        Abandonment after ``max_attempts`` is a lost session.
        """
        self.track(ue)

        def attempt(now: float):
            sat = self.system.recover_from_satellite_failure(ue, now)
            if sat is None:
                raise FallbackRequired("no live coverage for re-attach")
            return sat

        _, outcome = self._run_with_retries(
            "recovery", str(ue.supi), t, NAS_T3517_S, attempt)
        if outcome.abandoned:
            self.lost_sessions.append(str(ue.supi))
        return outcome

    # -- chaos wiring ----------------------------------------------------------------

    def attach_chaos(self, controller) -> None:
        """Subscribe to a ChaosController: satellite deaths trigger
        scheduled RLF detection + recovery for every UE the corpse was
        serving."""
        self._sim = controller.sim
        controller.subscribe(self._on_fault)

    def _on_fault(self, event) -> None:
        from ..faults.chaos import FaultKind
        if event.kind is not FaultKind.SAT_FAIL or self._sim is None:
            return
        dead = event.target[0]
        victims = [supi for supi, sat
                   in self.system._ue_serving_sat.items() if sat == dead]
        for supi in victims:
            ue = self._ues.get(supi)
            if ue is not None:
                self._sim.schedule(RLF_DETECTION_S, self.recover, ue,
                                   self._sim.now + RLF_DETECTION_S)

    # -- reading ---------------------------------------------------------------------

    def outcome_keys(self) -> List[Tuple]:
        """Serialisable outcome log (the reproducibility contract)."""
        return [outcome.key() for outcome in self.outcomes]

    def abandoned_count(self) -> int:
        """Procedures given up after exhausting the retry budget."""
        return sum(1 for o in self.outcomes if o.abandoned)

    def session_alive(self, ue: UserEquipment) -> bool:
        """Whether the UE currently holds a served session somewhere."""
        sat = self.system._ue_serving_sat.get(str(ue.supi))
        if sat is None:
            return False
        return self.system.topology.is_up(sat)
