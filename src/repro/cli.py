"""Command-line front end for the reproduction.

Regenerate any table/figure without pytest::

    python -m repro table4
    python -m repro fig18b --samples 24
    python -m repro emulate --ues 20 --duration 600
    python -m repro list

Each subcommand prints the same rows/series the corresponding
benchmark prints; see EXPERIMENTS.md for the paper-vs-measured notes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional


def _cmd_list(args) -> int:
    print("available experiments:")
    for name, (_, description) in sorted(_COMMANDS.items()):
        print(f"  {name:10s} {description}")
    return 0


def _cmd_table1(args) -> int:
    from .orbits import TABLE1, mean_dwell_time_s
    print("Table 1 -- constellations:")
    for name, factory in TABLE1.items():
        c = factory()
        print(f"  {name:9s} n={c.sats_per_plane:3d} m={c.num_planes:3d} "
              f"total={c.total_satellites:5d} H={c.altitude_km:6.0f} km "
              f"i={c.inclination_deg:5.1f} v={c.speed_km_s:.2f} km/s "
              f"dwell={mean_dwell_time_s(c):.0f}s")
    return 0


def _cmd_table2(args) -> int:
    from .workload import table2_summary
    print("Table 2 -- dataset overview:")
    for source, counts, total in table2_summary():
        mix = " ".join(f"{k}={v}" for k, v in counts.items())
        print(f"  {source:22s} total={total:>9d}  {mix}")
    return 0


def _cmd_table3(args) -> int:
    from .geo import GeospatialCellGrid
    from .orbits import kuiper, oneweb, starlink
    print("Table 3 -- geospatial cell sizes:")
    for factory in (starlink, kuiper, oneweb):
        c = factory()
        stats = GeospatialCellGrid(c).cell_size_statistics(
            samples=args.samples)
        print(f"  {c.name:9s} cells={stats.num_cells:5d} "
              f"min={stats.min_km2:>10.0f} max={stats.max_km2:>10.0f} "
              f"avg={stats.avg_km2:>10.0f} km^2")
    return 0


def _cmd_table4(args) -> int:
    from .experiments import reduction_factors
    from .orbits import TABLE1, default_ground_stations
    print("Table 4 -- SpaceCore signaling reduction (capacity 30K):")
    for name, factory in TABLE1.items():
        c = factory()
        stations = default_ground_stations(
            min(max(6, c.total_satellites // 60), 26))
        factors = reduction_factors(c, stations=stations)
        cells = "  ".join(f"{k}={v:5.1f}x"
                          for k, v in sorted(factors.items()))
        print(f"  {name:9s} {cells}")
    return 0


def _cmd_fig10(args) -> int:
    from .baselines import ALL_OPTIONS
    from .experiments.signaling import sweep
    from .orbits import by_name, default_ground_stations
    c = by_name(args.constellation)
    stations = default_ground_stations(
        min(max(6, c.total_satellites // 60), 26))
    print(f"Fig. 10 -- {c.name}, capacity {args.capacity}:")
    for load in sweep(ALL_OPTIONS, [c], [args.capacity], stations,
                      workers=args.workers):
        sess, mob = load.satellite_rows()
        print(f"  {load.solution:30s} SAT sess={sess:9.0f}/s "
              f"mob={mob:9.0f}/s GS={load.ground_station_per_s:10.0f}/s")
    return 0


def _cmd_fig17(args) -> int:
    from .experiments import fig17_sweep
    points = fig17_sweep(rates=(100, 300, 500))
    print("Fig. 17 -- prototype latency / CPU (hardware 1):")
    for p in points:
        print(f"  {p.procedure.value} {p.solution:10s} "
              f"@{p.rate_per_s:3d}/s lat={p.latency_s:7.3f}s "
              f"cpu={p.satellite_cpu_percent:5.1f}%"
              f"{' SATURATED' if p.saturated else ''}")
    return 0


def _cmd_fig18b(args) -> int:
    from .experiments import compare_ideal_vs_j4
    from .orbits import TABLE1
    print("Fig. 18b -- Beijing->New York relay (ideal vs J4):")

    def ms(value: Optional[float]) -> str:
        return "   n/a" if value is None else f"{value:6.1f}"

    for name, factory in TABLE1.items():
        row = compare_ideal_vs_j4(factory(), samples=args.samples)
        print(f"  {name:9s} ideal={ms(row.mean_delay_ideal_ms)} ms "
              f"j4={ms(row.mean_delay_j4_ms)} ms "
              f"delivery={row.delivery_rate_j4 * 100:.0f}%")
    return 0


def _cmd_fig19(args) -> int:
    from .experiments import fig19_study, final_hijack_leaks
    from .orbits import starlink
    study = fig19_study(starlink(), duration_s=6000.0)
    print("Fig. 19a -- hijack leaks after 100 min:")
    for name, total in sorted(final_hijack_leaks(study).items(),
                              key=lambda kv: kv[1]):
        print(f"  {name:10s} {total:12.2e} states")
    print("Fig. 19b -- MITM leak rates (no IPsec):")
    for name, rate in sorted(study.mitm_rates.items(),
                             key=lambda kv: kv[1]):
        print(f"  {name:10s} {rate:10.1f} states/s")
    return 0


def _cmd_fig20(args) -> int:
    from .baselines import ALL_SOLUTIONS
    from .experiments.signaling import sweep
    from .orbits import by_name, default_ground_stations
    c = by_name(args.constellation)
    stations = default_ground_stations(
        min(max(6, c.total_satellites // 60), 26))
    print(f"Fig. 20 -- {c.name}, capacity {args.capacity}:")
    for load in sweep(ALL_SOLUTIONS, [c], [args.capacity], stations,
                      workers=args.workers):
        print(f"  {load.solution:10s} "
              f"SAT={load.satellite_hotspot_per_s:10.0f}/s "
              f"GS={load.ground_station_per_s:10.0f}/s")
    return 0


def _cmd_fig21(args) -> int:
    from .experiments import fig21_comparison
    print("Fig. 21 -- user-level stalls across one satellite pass:")
    for r in sorted(fig21_comparison(), key=lambda r: r.tcp_stall_s):
        fate = "RESET" if r.connection_reset else "survives"
        print(f"  {r.solution:10s} tcp={r.tcp_stall_s:5.2f}s "
              f"ping={r.ping_stall_s:5.2f}s {fate}")
    return 0


def _cmd_emulate(args) -> int:
    from .orbits import by_name
    from .sim import CohortEmulation, NeighborhoodEmulation
    if args.cohorts:
        emulation = CohortEmulation(
            by_name(args.constellation), num_ues=args.ues,
            seed=args.seed, session_interval_s=args.interval,
            n_cohorts=args.cohorts)
        stats = emulation.run(args.duration)
        print(f"cohort-emulated {stats.duration_s:.0f}s x "
              f"{stats.ue_count} UEs ({stats.n_cohorts} cohorts) on "
              f"{args.constellation}:")
        print(f"  sessions: {stats.sessions_established} "
              f"(rate {stats.session_rate_per_ue:.4f}/UE-s, predicted "
              f"{emulation.predicted_session_rate_per_ue():.4f})")
        print(f"  handovers: {stats.handovers}  "
              f"releases: {stats.releases}  mobility regs: "
              f"{stats.mobility_registrations}")
        print(f"  signaling messages: {stats.signaling_messages}")
        return 0
    emulation = NeighborhoodEmulation(
        by_name(args.constellation), num_ues=args.ues, seed=args.seed,
        session_interval_s=args.interval)
    stats = emulation.run(args.duration)
    print(f"emulated {stats.duration_s:.0f}s x {stats.ue_count} UEs on "
          f"{args.constellation}:")
    print(f"  sessions: {stats.sessions_established}/"
          f"{stats.sessions_attempted} "
          f"(rate {stats.session_rate_per_ue:.4f}/UE-s, predicted "
          f"{emulation.predicted_session_rate_per_ue():.4f})")
    print(f"  handovers: {stats.handovers}  releases: {stats.releases}"
          f"  fallbacks: {stats.fallbacks}")
    print(f"  signaling messages: {stats.signaling_messages}")
    return 0


def _cmd_chaos(args) -> int:
    from .experiments import (
        ChaosScenario,
        run_chaos_availability,
        run_chaos_trials,
        write_chaos_report,
        write_monte_carlo_report,
    )
    scenario = ChaosScenario(seed=args.seed, n_ues=args.ues,
                             horizon_s=args.horizon)
    if args.trials > 1:
        mc = run_chaos_trials(n_trials=args.trials, base_seed=args.seed,
                              scenario=scenario, workers=args.workers)
        summary = mc.summary()
        print(f"chaos monte carlo -- {args.trials} trials x "
              f"{args.ues} UEs, seed {args.seed}:")
        print(f"  faults injected: {summary['faults_injected']}")
        print(f"  mean survival: spacecore="
              f"{summary['spacecore_mean_survival']:.3f} "
              f"baseline={summary['baseline_mean_survival']:.3f}")
        print(f"  min survival:  spacecore="
              f"{summary['spacecore_min_survival']:.3f} "
              f"baseline={summary['baseline_min_survival']:.3f}")
        print(f"  lost sessions: SpaceCore "
              f"{summary['spacecore_lost']}, baseline "
              f"{summary['baseline_lost']}")
        if args.output:
            write_monte_carlo_report(args.output, mc)
            print(f"  wrote {args.output}")
        return 0
    result = run_chaos_availability(scenario=scenario)
    print(f"chaos availability -- {args.ues} UEs, "
          f"{args.horizon:.0f}s horizon, seed {args.seed}:")
    print(f"  faults injected: {len(result.fault_log)}")
    for sample in result.samples:
        print(f"  t={sample.t:7.0f}s survival "
              f"spacecore={sample.spacecore:.3f} "
              f"baseline={sample.baseline:.3f}")
    print(f"  lost sessions: SpaceCore {result.spacecore_lost}, "
          f"baseline {result.baseline_lost}")
    if args.output:
        write_chaos_report(args.output, result)
        print(f"  wrote {args.output}")
    return 0


def _cmd_loadpoint(args) -> int:
    import time
    from .baselines import ALL_SOLUTIONS
    from .experiments import cohort_load_point
    from .orbits import by_name
    factories = {f().name: f for f in ALL_SOLUTIONS}
    if args.solution not in factories:
        print(f"unknown solution {args.solution!r}; pick one of "
              f"{sorted(factories)}")
        return 1
    start = time.perf_counter()
    stats = cohort_load_point(
        factories[args.solution], by_name(args.constellation),
        n_ues=args.ues, duration_s=args.duration, seed=args.seed,
        n_cohorts=args.cohorts)
    wall_s = time.perf_counter() - start
    print(f"cohort load point -- {args.solution} on "
          f"{args.constellation}, {args.ues} UEs x "
          f"{args.duration:.0f}s ({stats.n_cohorts} cohorts):")
    print(f"  events: {stats.events_total} "
          f"({stats.events_per_ue_s:.5f}/UE-s)")
    for name, count in sorted(stats.events_by_procedure.items()):
        print(f"    {name}: {count}")
    print(f"  sessions: {stats.sessions_established} (rate "
          f"{stats.session_rate_per_ue:.4f}/UE-s)  releases: "
          f"{stats.releases}")
    print(f"  messages: total={stats.signaling_messages} "
          f"satellite={stats.satellite_messages} "
          f"crossing={stats.crossing_messages}")
    print(f"  wall clock: {wall_s:.3f}s "
          f"({args.ues / wall_s:,.0f} UEs/s)")
    return 0


def _cmd_metrics(args) -> int:
    from .experiments import (
        ChaosScenario,
        chaos_observability,
        cohort_observability,
        write_metrics_snapshot,
    )
    if args.experiment == "cohort":
        payload = cohort_observability(
            n_ues=args.ues, duration_s=args.duration,
            base_seed=args.seed, n_cohorts=args.cohorts,
            workers=args.workers)
    else:
        scenario = ChaosScenario(seed=args.seed, n_ues=args.ues,
                                 horizon_s=args.horizon)
        payload = chaos_observability(
            n_trials=args.trials, base_seed=args.seed,
            scenario=scenario, workers=args.workers)
    snapshot = payload["snapshot"]
    print(f"metrics -- {args.experiment} experiment, seed {args.seed}:")
    print(f"  counters:   {len(snapshot['counters'])} series")
    print(f"  gauges:     {len(snapshot['gauges'])} series")
    print(f"  histograms: {len(snapshot['histograms'])} series")
    for key, value in sorted(snapshot["counters"].items()):
        print(f"    {key} = {value}")
    if args.output:
        write_metrics_snapshot(args.output, payload)
        print(f"  wrote {args.output}")
    return 0


def _cmd_trace(args) -> int:
    from .experiments import (
        ChaosScenario,
        chaos_observability,
        write_trace_jsonl,
    )
    scenario = ChaosScenario(seed=args.seed, n_ues=args.ues,
                             horizon_s=args.horizon)
    payload = chaos_observability(n_trials=args.trials,
                                  base_seed=args.seed,
                                  scenario=scenario,
                                  workers=args.workers)
    spans = payload["trace"]
    print(f"trace -- chaos experiment, seed {args.seed}: "
          f"{len(spans)} spans")
    for span in spans[:args.head]:
        window = (f"[{span['start_s']:8.1f}s]"
                  if span["end_s"] == span["start_s"] else
                  f"[{span['start_s']:8.1f}s .. {span['end_s']:8.1f}s]")
        print(f"  {window} {span['name']}")
    if len(spans) > args.head:
        print(f"  ... {len(spans) - args.head} more")
    if args.output:
        written = write_trace_jsonl(args.output, payload)
        print(f"  wrote {written} spans to {args.output}")
    return 0


def _cmd_lint(args) -> int:
    from .analysis import lint_main
    return lint_main(
        args.paths,
        format=args.format,
        output=args.output,
        baseline_path=args.baseline,
        no_baseline=args.no_baseline,
        write_baseline=args.write_baseline,
        rule_ids=(args.rules.split(",") if args.rules else None),
        list_rules=args.list_rules,
        graph_output=args.graph,
    )


def _cmd_report(args) -> int:
    from .experiments.report import generate_report, write_report
    if args.output:
        write_report(args.output, fast=not args.full)
        print(f"report written to {args.output}")
    else:
        print(generate_report(fast=not args.full))
    return 0


def _scenario_specs(args) -> Dict[str, object]:
    """The scenarios one ``repro scenario`` invocation addresses."""
    from .scenarios import CATALOG, get_scenario
    if getattr(args, "all_scenarios", False) or not args.names:
        return dict(CATALOG)
    return {name: get_scenario(name) for name in args.names}


def _print_slo_report(report) -> None:
    for check in report.checks:
        op = ">=" if check.kind == "floor" else "<="
        print(f"    [{check.verdict:8s}] {check.name:24s} "
              f"observed={check.observed:.6g} {op} "
              f"threshold={check.threshold:.6g}")


def _cmd_scenario(args) -> int:
    from .scenarios import (
        CATALOG,
        check_scenario,
        golden_path,
        run_scenario,
        write_golden,
    )
    from .scenarios.golden import diff_lines

    if args.action == "list":
        print(f"scenario catalog ({len(CATALOG)} scenarios):")
        for name in sorted(CATALOG):
            spec = CATALOG[name]
            golden = "golden" if golden_path(name).exists() else "NO GOLDEN"
            print(f"  {name:22s} trials={spec.n_trials} "
                  f"horizon={spec.horizon_s:.0f}s ues="
                  f"{spec.population.n_ues:<3d} [{golden}]")
            print(f"  {'':22s} {spec.title}")
        return 0

    specs = _scenario_specs(args)

    if args.action == "run":
        for name in sorted(specs):
            result = run_scenario(specs[name], workers=args.workers)
            report = result.slo_report()
            summary = result.summary()
            print(f"{name}: verdict={report.verdict} "
                  f"availability={summary['spacecore_mean_survival']:.3f} "
                  f"margin={summary['survival_margin']:.3f} "
                  f"p99={summary['spacecore_p99_recovery_s']:.2f}s "
                  f"faults={summary['faults_injected']}")
            _print_slo_report(report)
            if args.update:
                path = write_golden(result)
                print(f"  golden updated: {path}")
            if args.output:
                with open(args.output, "w", encoding="utf-8") as fh:
                    fh.write(result.artifact_json())
                print(f"  artifact written: {args.output}")
        return 0

    if args.action == "check":
        exit_code = 0
        for name in sorted(specs):
            outcome = check_scenario(specs[name], workers=args.workers)
            status = "ok" if outcome.ok else "FAIL"
            drift = ("missing golden" if outcome.missing_golden
                     else "drift" if outcome.drift else "golden ok")
            print(f"{name}: {status} (slo={outcome.slo_verdict}, "
                  f"{drift})")
            if outcome.result is not None and (
                    not outcome.ok or outcome.slo_verdict != "pass"):
                _print_slo_report(outcome.result.slo_report())
            for line in outcome.diff:
                print(f"  {line}")
            if not outcome.ok:
                exit_code = 1
        return exit_code

    # diff: show golden-vs-run bytes without gating
    exit_code = 0
    for name in sorted(specs):
        result = run_scenario(specs[name], workers=args.workers)
        path = golden_path(name)
        if not path.exists():
            print(f"{name}: no golden artifact at {path}")
            exit_code = 1
            continue
        expected = path.read_text(encoding="utf-8")
        actual = result.artifact_json()
        if expected == actual:
            print(f"{name}: artifacts identical "
                  f"({len(actual.encode('utf-8'))} bytes)")
            continue
        print(f"{name}: artifacts differ")
        for line in diff_lines(expected, actual, name, limit=80):
            print(f"  {line}")
        exit_code = 1
    return exit_code


_COMMANDS: Dict[str, tuple] = {
    "list": (_cmd_list, "list available experiments"),
    "report": (_cmd_report, "generate the full reproduction report"),
    "table1": (_cmd_table1, "constellation parameters"),
    "table2": (_cmd_table2, "signaling dataset overview"),
    "table3": (_cmd_table3, "geospatial cell sizes"),
    "table4": (_cmd_table4, "SpaceCore signaling reduction factors"),
    "fig10": (_cmd_fig10, "signaling per option (per constellation)"),
    "fig17": (_cmd_fig17, "prototype latency and CPU"),
    "fig18b": (_cmd_fig18b, "geospatial relay, ideal vs J4"),
    "fig19": (_cmd_fig19, "leakage under hijack / MITM"),
    "fig20": (_cmd_fig20, "signaling per solution"),
    "fig21": (_cmd_fig21, "user-level stalling"),
    "emulate": (_cmd_emulate, "run the live-stack emulation"),
    "chaos": (_cmd_chaos, "session survival under injected churn"),
    "loadpoint": (_cmd_loadpoint,
                  "population-scale load point (cohort engine)"),
    "metrics": (_cmd_metrics,
                "deterministic metrics snapshot of an experiment"),
    "trace": (_cmd_trace,
              "sim-time span trace of the chaos experiment (JSONL)"),
    "lint": (_cmd_lint,
             "statelessness/determinism invariant checks (static)"),
    "scenario": (_cmd_scenario,
                 "scenario catalog: list | run | check | diff"),
}


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpaceCore (SIGCOMM 2022) reproduction harness")
    subparsers = parser.add_subparsers(dest="command")
    for name, (func, description) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=description)
        sub.set_defaults(func=func)
        if name in ("fig10", "fig20"):
            sub.add_argument("--constellation", default="Starlink")
            sub.add_argument("--capacity", type=int, default=30_000)
            sub.add_argument("--workers", type=int, default=None,
                             help="shard design points across N worker "
                                  "processes (default: REPRO_WORKERS "
                                  "or serial)")
        if name == "table3":
            sub.add_argument("--samples", type=int, default=20_000)
        if name == "fig18b":
            sub.add_argument("--samples", type=int, default=12)
        if name == "report":
            sub.add_argument("--output", default=None)
            sub.add_argument("--full", action="store_true")
        if name == "emulate":
            sub.add_argument("--constellation", default="Starlink")
            sub.add_argument("--ues", type=int, default=15)
            sub.add_argument("--duration", type=float, default=600.0)
            sub.add_argument("--interval", type=float, default=106.9)
            sub.add_argument("--seed", type=int, default=0)
            sub.add_argument("--cohorts", type=int, default=None,
                             help="use the vectorized cohort engine "
                                  "with N cohorts (for large --ues)")
        if name == "chaos":
            sub.add_argument("--ues", type=int, default=24)
            sub.add_argument("--horizon", type=float, default=3600.0)
            sub.add_argument("--seed", type=int, default=0)
            sub.add_argument("--trials", type=int, default=1,
                             help="Monte Carlo trials with derived "
                                  "per-trial seeds")
            sub.add_argument("--workers", type=int, default=None,
                             help="shard trials across N worker "
                                  "processes (default: REPRO_WORKERS "
                                  "or serial)")
            sub.add_argument("--output", default=None)
        if name in ("metrics", "trace"):
            if name == "metrics":
                sub.add_argument("--experiment",
                                 choices=("chaos", "cohort"),
                                 default="chaos")
                sub.add_argument("--duration", type=float, default=600.0,
                                 help="cohort-sweep duration (seconds)")
                sub.add_argument("--cohorts", type=int, default=32)
            else:
                sub.add_argument("--head", type=int, default=10,
                                 help="spans to echo to stdout")
            sub.add_argument("--ues", type=int, default=24)
            sub.add_argument("--horizon", type=float, default=3600.0)
            sub.add_argument("--seed", type=int, default=0)
            sub.add_argument("--trials", type=int, default=1)
            sub.add_argument("--workers", type=int, default=None,
                             help="shard across N worker processes "
                                  "(default: REPRO_WORKERS or serial); "
                                  "the artifact is identical for any "
                                  "value")
            sub.add_argument("--output", default=None)
        if name == "lint":
            sub.add_argument("paths", nargs="*",
                             help="files/directories to analyze "
                                  "(default: the repro package)")
            sub.add_argument("--format", choices=("text", "json"),
                             default="text")
            sub.add_argument("--output", default=None,
                             help="write the report here instead of "
                                  "stdout (CI uploads this artifact)")
            sub.add_argument("--baseline", default=None,
                             help="baseline file (default: "
                                  "lint-baseline.json at the repo root)")
            sub.add_argument("--no-baseline", action="store_true",
                             help="report every finding as new")
            sub.add_argument("--write-baseline", action="store_true",
                             help="accept current findings into the "
                                  "baseline (stale entries expire)")
            sub.add_argument("--rules", default=None,
                             help="comma-separated rule ids to run")
            sub.add_argument("--list-rules", action="store_true")
            sub.add_argument("--graph", default=None, metavar="PATH",
                             help="also export the resolved call "
                                  "graph and per-function effect "
                                  "summaries as JSON (CI uploads "
                                  "this artifact)")
        if name == "scenario":
            sub.add_argument("action",
                             choices=("list", "run", "check", "diff"),
                             help="list the catalog, run scenarios, "
                                  "check against goldens + SLOs, or "
                                  "diff artifacts")
            sub.add_argument("names", nargs="*",
                             help="scenario names (default: whole "
                                  "catalog)")
            sub.add_argument("--all", action="store_true",
                             dest="all_scenarios",
                             help="address the whole catalog explicitly")
            sub.add_argument("--workers", type=int, default=None,
                             help="shard trials across N workers "
                                  "(default: REPRO_WORKERS or serial); "
                                  "artifacts are identical for any value")
            sub.add_argument("--update", action="store_true",
                             help="with run: rewrite golden artifacts")
            sub.add_argument("--output", default=None,
                             help="with run: also write the artifact "
                                  "here")
        if name == "loadpoint":
            sub.add_argument("--constellation", default="Starlink")
            sub.add_argument("--solution", default="SpaceCore")
            sub.add_argument("--ues", type=int, default=1_000_000)
            sub.add_argument("--duration", type=float, default=3600.0)
            sub.add_argument("--cohorts", type=int, default=256)
            sub.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 1
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
