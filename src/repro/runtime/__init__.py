"""Sharded parallel experiment runtime.

The reproduction's experiments are embarrassingly parallel at three
grains -- Monte Carlo trials (chaos availability), cartesian design
points (signaling sweeps, sensitivity grids), and rate points (CPU /
latency curves).  TEGRA makes the same observation for the terrestrial
core control plane: signaling scale comes from sharding independent
work units across workers.  This package is that spine:

* :mod:`.parallel` -- a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out with deterministic per-shard seed derivation and a serial
  fallback (``REPRO_WORKERS=1``) that is bit-identical to the
  pre-runtime per-loop code;
* :mod:`.memo` -- shard-local memoization of expensive pure inputs
  (mean ISL hops to a gateway, dwell times) so workers never recompute
  topology per design point;
* :mod:`.cohort` -- a vectorized UE-cohort signaling engine that makes
  a 1M-UE load point O(cohorts) instead of O(users).
"""

from .cohort import CohortStats, UECohortEngine
from .memo import (
    MEMO_DECORATOR_NAMES,
    cached_dwell_time_s,
    clear_shard_caches,
    memo_metadata,
    memoized_functions,
    shard_memoized,
)
from .parallel import (
    WORKERS_ENV_VAR,
    resolve_workers,
    run_sharded,
    seed_for,
)

__all__ = [
    "CohortStats",
    "MEMO_DECORATOR_NAMES",
    "UECohortEngine",
    "WORKERS_ENV_VAR",
    "cached_dwell_time_s",
    "clear_shard_caches",
    "memo_metadata",
    "memoized_functions",
    "resolve_workers",
    "run_sharded",
    "seed_for",
    "shard_memoized",
]
