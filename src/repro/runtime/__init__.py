"""Sharded parallel experiment runtime.

The reproduction's experiments are embarrassingly parallel at three
grains -- Monte Carlo trials (chaos availability), cartesian design
points (signaling sweeps, sensitivity grids), and rate points (CPU /
latency curves).  TEGRA makes the same observation for the terrestrial
core control plane: signaling scale comes from sharding independent
work units across workers.  This package is that spine:

* :mod:`.parallel` -- a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out with deterministic per-shard seed derivation, a warm
  cross-call worker pool, batched shard dispatch, an
  initializer-installed shared-object registry, and a serial fallback
  (``REPRO_WORKERS=1``) that is bit-identical to the pre-runtime
  per-loop code;
* :mod:`.planner` -- the cost-aware execution policy: calibrated
  dispatch overhead, per-label cost priors, batch sizing, and a
  break-even auto-fallback to serial, with every decision logged and
  mirrored into a mergeable metrics registry;
* :mod:`.memo` -- shard-local memoization of expensive pure inputs
  (mean ISL hops to a gateway, dwell times) so workers never recompute
  topology per design point;
* :mod:`.cohort` -- a vectorized UE-cohort signaling engine that makes
  a 1M-UE load point O(cohorts) instead of O(users).
"""

from .cohort import CohortStats, OfferedLoadProbe, UECohortEngine
from .memo import (
    MEMO_DECORATOR_NAMES,
    cached_dwell_time_s,
    clear_shard_caches,
    memo_metadata,
    memoized_functions,
    shard_memoized,
)
from .parallel import (
    WORKERS_ENV_VAR,
    get_shared,
    pools_created,
    resolve_workers,
    run_sharded,
    seed_for,
    shutdown_worker_pools,
    warm_pool_info,
)
from .planner import (
    PLANNER_ENV_VAR,
    ExecutionPlan,
    plan_execution,
    planner_calibration,
    planner_decisions,
    planner_metrics_snapshot,
    reset_planner,
)

__all__ = [
    "CohortStats",
    "ExecutionPlan",
    "MEMO_DECORATOR_NAMES",
    "OfferedLoadProbe",
    "PLANNER_ENV_VAR",
    "UECohortEngine",
    "WORKERS_ENV_VAR",
    "cached_dwell_time_s",
    "clear_shard_caches",
    "get_shared",
    "memo_metadata",
    "memoized_functions",
    "plan_execution",
    "planner_calibration",
    "planner_decisions",
    "planner_metrics_snapshot",
    "pools_created",
    "reset_planner",
    "resolve_workers",
    "run_sharded",
    "seed_for",
    "shard_memoized",
    "shutdown_worker_pools",
    "warm_pool_info",
]
