"""Sharded parallel runner with deterministic seed derivation.

Every experiment that fans out here decomposes into *shards*:
independent work units (a Monte Carlo trial, one design point of a
cartesian sweep, one sensitivity cell) whose results are combined by
index, never by completion order.  That gives the property the
equivalence tests pin down: for the same base seed, the output is
bit-identical whether the shards run serially in-process, on two
workers, or on sixteen -- parallelism changes wall-clock only.

Two rules make that hold:

* **Seeds are derived, not shared.**  ``seed_for(base_seed, shard_id)``
  hashes ``"{base_seed}:{shard_id}"`` with SHA-256.  Python's builtin
  ``hash()`` is salted per process (``PYTHONHASHSEED``) and would make
  worker-side derivation diverge from the parent's.
* **Results are ordered by shard index.**  ``run_sharded`` returns
  ``[fn(items[0]), fn(items[1]), ...]`` regardless of which worker
  finished first.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment knob for the default worker count; ``1`` (the default)
#: keeps every experiment on the serial in-process path.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Cap queued-but-unsubmitted shards so huge grids don't pickle the
#: whole work list into the executor at once.
_MAX_INFLIGHT_PER_WORKER = 4


def seed_for(base_seed: int, shard_id: Any) -> int:
    """Deterministic 63-bit seed for one shard of a seeded experiment.

    Stable across processes, platforms, and Python versions (unlike
    ``hash()``), and well-spread even for adjacent shard ids (unlike
    ``base_seed + shard_id``, which makes trial ``k`` of seed ``s``
    collide with trial ``k-1`` of seed ``s+1``).
    """
    digest = hashlib.sha256(f"{base_seed}:{shard_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``REPRO_WORKERS``, else serial."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        workers = int(raw) if raw else 1
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    return workers


def _serial_child() -> None:
    """Pool initializer: workers never fan out again themselves.

    A shard that internally calls another ``run_sharded`` (e.g. a
    chaos trial whose scenario sweeps a grid) must not multiply the
    worker count; inside a worker the serial fallback is the sharding.
    """
    os.environ[WORKERS_ENV_VAR] = "1"


def run_sharded(fn: Callable[[T], R], items: Iterable[T], *,
                workers: Optional[int] = None) -> List[R]:
    """Map ``fn`` over ``items``, sharded across worker processes.

    ``fn`` must be a picklable top-level callable and each item must be
    picklable.  With one worker (the default unless ``REPRO_WORKERS``
    or ``workers`` says otherwise) this is a plain in-process loop --
    no pool, no pickling -- which is the bit-identical serial fallback.
    Results always come back in item order.
    """
    workers = resolve_workers(workers)
    items = list(items)
    if workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]

    workers = min(workers, len(items))
    results: List[Any] = [None] * len(items)
    max_inflight = workers * _MAX_INFLIGHT_PER_WORKER
    with ProcessPoolExecutor(max_workers=workers,
                             initializer=_serial_child) as pool:
        inflight = {}
        for index, item in enumerate(items):
            inflight[pool.submit(fn, item)] = index
            if len(inflight) >= max_inflight:
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    results[inflight.pop(future)] = future.result()
        for future, index in inflight.items():
            results[index] = future.result()
    return results


def shard_seeds(base_seed: int, n_shards: int) -> List[int]:
    """The derived seed of every shard of an ``n_shards``-way fan-out."""
    if n_shards < 0:
        raise ValueError("shard count cannot be negative")
    return [seed_for(base_seed, shard) for shard in range(n_shards)]
