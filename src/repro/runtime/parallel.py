"""Sharded parallel runner with deterministic seed derivation.

Every experiment that fans out here decomposes into *shards*:
independent work units (a Monte Carlo trial, one design point of a
cartesian sweep, one sensitivity cell) whose results are combined by
index, never by completion order.  That gives the property the
equivalence tests pin down: for the same base seed, the output is
bit-identical whether the shards run serially in-process, on two
workers, or on sixteen -- parallelism changes wall-clock only.

Two rules make that hold:

* **Seeds are derived, not shared.**  ``seed_for(base_seed, shard_id)``
  hashes ``"{base_seed}:{shard_id}"`` with SHA-256.  Python's builtin
  ``hash()`` is salted per process (``PYTHONHASHSEED``) and would make
  worker-side derivation diverge from the parent's.
* **Results are ordered by shard index.**  ``run_sharded`` returns
  ``[fn(items[0]), fn(items[1]), ...]`` regardless of which worker
  finished first.

Since the execution-planner rework, three mechanisms keep the pool
path from losing to serial on small work units (the policy deciding
when to use them lives in :mod:`.planner`):

* **Shard batching** -- many shards ship as one pool task
  (``_run_batch``), with results unpacked back to per-shard index
  order, so per-task dispatch overhead amortizes across a
  planner-chosen chunk instead of dominating every tiny shard.
* **Warm pool reuse** -- one module-level ``ProcessPoolExecutor``
  persists across ``run_sharded`` calls (same worker count, same
  shared objects), so a sweep of sweeps pays pool startup once.
  ``shutdown_worker_pools()`` is the explicit teardown hook; an
  ``atexit`` hook covers interpreter exit.
* **Zero-copy shared shipping** -- large common inputs (constellation
  snapshots, station lists, scenarios) register once per pool via the
  worker initializer (and ride fork inheritance for free on fork
  platforms) instead of being pickled into every task; workers fetch
  them back with :func:`get_shared`.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from . import planner

T = TypeVar("T")
R = TypeVar("R")

#: Environment knob for the default worker count; ``1`` (the default)
#: keeps every experiment on the serial in-process path.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Cap queued-but-unsubmitted tasks so huge grids don't pickle the
#: whole work list into the executor at once.
_MAX_INFLIGHT_PER_WORKER = 4

#: No-op round trips used to measure per-task dispatch overhead.
_CALIBRATION_TASKS = 16


def seed_for(base_seed: int, shard_id: Any) -> int:
    """Deterministic 63-bit seed for one shard of a seeded experiment.

    Stable across processes, platforms, and Python versions (unlike
    ``hash()``), and well-spread even for adjacent shard ids (unlike
    ``base_seed + shard_id``, which makes trial ``k`` of seed ``s``
    collide with trial ``k-1`` of seed ``s+1``).
    """
    digest = hashlib.sha256(f"{base_seed}:{shard_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``REPRO_WORKERS``, else serial."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        workers = int(raw) if raw else 1
    if workers < 1:
        raise ValueError(f"need at least one worker, got {workers}")
    return workers


# ---------------------------------------------------------------------------
# Shared-object registry (zero-copy snapshot shipping)
# ---------------------------------------------------------------------------

#: Scoped parent-side registry: ``run_sharded(shared=...)`` pushes its
#: entries for the duration of the call (restoring outer entries on
#: exit, so nested serial fan-outs compose).
_PARENT_SHARED: Dict[str, Any] = {}

#: Worker-side registry, installed once per worker by the pool
#: initializer -- the only time a shared object crosses the process
#: boundary, however many tasks the worker then executes.
_WORKER_SHARED: Dict[str, Any] = {}

_MISSING = object()


def get_shared(key: str) -> Any:
    """Fetch a shared object registered via ``run_sharded(shared=...)``.

    Resolution order: the current call's scoped registry (parent and
    serial paths, plus nested fan-outs inside a worker), then the
    worker-wide registry the pool initializer installed.
    """
    if key in _PARENT_SHARED:
        return _PARENT_SHARED[key]
    try:
        return _WORKER_SHARED[key]
    except KeyError:
        raise KeyError(
            f"no shared object {key!r}; pass it via "
            f"run_sharded(shared={{...}})") from None


@contextmanager
def _shared_scope(shared: Dict[str, Any]) -> Iterator[None]:
    """Install ``shared`` for the duration of one ``run_sharded`` call."""
    saved = {key: _PARENT_SHARED.get(key, _MISSING) for key in shared}
    _PARENT_SHARED.update(shared)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is _MISSING:
                _PARENT_SHARED.pop(key, None)
            else:
                _PARENT_SHARED[key] = value


# ---------------------------------------------------------------------------
# Warm worker pool
# ---------------------------------------------------------------------------

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_SHARED: Dict[str, Any] = {}
_POOLS_CREATED = 0


def _noop() -> None:
    """Calibration/warmup payload: measures pure dispatch overhead."""
    return None


def _init_worker(shared: Dict[str, Any]) -> None:
    """Pool initializer: serial-only children plus the shared registry.

    A shard that internally calls another ``run_sharded`` (e.g. a
    chaos trial whose scenario sweeps a grid) must not multiply the
    worker count; inside a worker the serial fallback is the sharding.
    The fork-inherited parent scope is cleared so stale objects from
    pool-creation time can never shadow a later call's registry.
    """
    os.environ[WORKERS_ENV_VAR] = "1"
    _PARENT_SHARED.clear()
    _WORKER_SHARED.clear()
    _WORKER_SHARED.update(shared)


def _values_equiv(a: Any, b: Any) -> bool:
    """Identity equivalence, one container level deep.

    Callers rebuild wrapper lists per call (``list(constellations)``)
    around the same big payload objects; element-wise identity lets the
    warm pool survive that without deep-comparing snapshots.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(x is y for x, y in zip(a, b))
    if isinstance(a, dict):
        return (a.keys() == b.keys()
                and all(a[k] is b[k] for k in a))
    return False


def _shared_equiv(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    return (a.keys() == b.keys()
            and all(_values_equiv(a[k], b[k]) for k in a))


def warm_pool_info() -> Optional[Dict[str, Any]]:
    """The live warm pool's (workers, shared keys), or None."""
    if _POOL is None:
        return None
    return {"workers": _POOL_WORKERS,
            "shared_keys": sorted(_POOL_SHARED)}


def pools_created() -> int:
    """How many pools this process has created (warm hits don't count)."""
    return _POOLS_CREATED


def pool_is_warm(workers: int) -> bool:
    """Whether the warm pool already matches (workers, current shared)."""
    return (_POOL is not None and _POOL_WORKERS == workers
            and _shared_equiv(_POOL_SHARED, _PARENT_SHARED))


def shutdown_worker_pools() -> None:
    """Tear down the warm pool (tests, benchmarks, interpreter exit)."""
    global _POOL, _POOL_WORKERS, _POOL_SHARED
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
    _POOL = None
    _POOL_WORKERS = 0
    _POOL_SHARED = {}


atexit.register(shutdown_worker_pools)


def _acquire_pool(workers: int) -> ProcessPoolExecutor:
    """The warm pool if it matches, else a fresh calibrated one."""
    global _POOL, _POOL_WORKERS, _POOL_SHARED, _POOLS_CREATED
    if pool_is_warm(workers):
        assert _POOL is not None
        return _POOL
    shutdown_worker_pools()
    shared = dict(_PARENT_SHARED)
    start = time.perf_counter()  # repro: ignore[wallclock-time] -- pool startup calibration; never enters artifacts
    pool = ProcessPoolExecutor(max_workers=workers,
                               initializer=_init_worker,
                               initargs=(shared,))
    for future in [pool.submit(_noop) for _ in range(workers)]:
        future.result()
    startup_s = time.perf_counter() - start  # repro: ignore[wallclock-time] -- pool startup calibration; never enters artifacts
    _POOL = pool
    _POOL_WORKERS = workers
    _POOL_SHARED = shared
    _POOLS_CREATED += 1
    planner.record_pool_startup(startup_s)
    planner.note_pool_created()
    if not planner.is_calibrated():
        start = time.perf_counter()  # repro: ignore[wallclock-time] -- one-time dispatch-overhead calibration
        for future in [pool.submit(_noop)
                       for _ in range(_CALIBRATION_TASKS)]:
            future.result()
        elapsed = time.perf_counter() - start  # repro: ignore[wallclock-time] -- one-time dispatch-overhead calibration
        planner.record_task_overhead(elapsed / _CALIBRATION_TASKS)
    return pool


# ---------------------------------------------------------------------------
# Execution paths
# ---------------------------------------------------------------------------

def _run_batch(payload: Tuple[Callable[[Any], Any], List[Any]]
               ) -> List[Any]:
    """One pool task: a planner-chosen chunk of consecutive shards."""
    fn, batch = payload
    return [fn(item) for item in batch]


def _run_serial(fn: Callable[[T], R], items: List[T],
                results: List[Any], start: int, label: str) -> None:
    """In-process tail of a fan-out, feeding the label's cost prior."""
    count = len(items) - start
    if count <= 0:
        return
    t0 = time.perf_counter()  # repro: ignore[wallclock-time] -- planner cost prior; never enters artifacts
    for index in range(start, len(items)):
        results[index] = fn(items[index])
    elapsed = time.perf_counter() - t0  # repro: ignore[wallclock-time] -- planner cost prior; never enters artifacts
    planner.update_cost_prior(label, elapsed / count, source="serial")


def _dispatch_batches(pool: ProcessPoolExecutor, fn: Callable[[T], R],
                      items: List[T], start: int, chunk: int,
                      results: List[Any], workers: int) -> None:
    """Submit chunked tasks with a bounded in-flight window."""
    max_inflight = workers * _MAX_INFLIGHT_PER_WORKER
    inflight: Dict[Future, Tuple[int, int]] = {}
    for lo in range(start, len(items), chunk):
        batch = items[lo:lo + chunk]
        inflight[pool.submit(_run_batch, (fn, batch))] = (lo, len(batch))
        if len(inflight) >= max_inflight:
            done, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in done:
                lo_done, length = inflight.pop(future)
                results[lo_done:lo_done + length] = future.result()
    for future, (lo_done, length) in inflight.items():
        results[lo_done:lo_done + length] = future.result()


def _fan_out_label(fn: Callable, label: Optional[str]) -> str:
    if label is not None:
        return label
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", repr(fn))
    return f"{module}.{qualname}"


def run_sharded(fn: Callable[[T], R], items: Iterable[T], *,
                workers: Optional[int] = None,
                shared: Optional[Dict[str, Any]] = None,
                label: Optional[str] = None) -> List[R]:
    """Map ``fn`` over ``items``, planner-sharded across processes.

    ``fn`` must be a picklable top-level callable and each item must be
    picklable.  With one worker (the default unless ``REPRO_WORKERS``
    or ``workers`` says otherwise), a single item, or a grid the
    planner judges below break-even, this is a plain in-process loop --
    no pool, no pickling -- which is the bit-identical serial fallback.
    Results always come back in item order.

    ``shared`` registers large common inputs once per pool (fetched in
    ``fn`` via :func:`get_shared`) instead of pickling them into every
    task; ``label`` names the fan-out in the planner's decision log and
    keys its learned cost prior.
    """
    workers = resolve_workers(workers)
    items = list(items)
    n = len(items)
    fan_label = _fan_out_label(fn, label)
    with _shared_scope(dict(shared) if shared else {}):
        if n == 0:
            return []
        results: List[Any] = [None] * n
        if workers == 1 or n == 1:
            # Short-circuit before any pool work: singletons and the
            # serial contract never pay startup or pickling.
            _run_serial(fn, items, results, 0, fan_label)
            return results
        force = planner.forced_mode()
        if force == "serial":
            planner.record_decision(
                planner.trivial_plan("serial", "forced-serial", n,
                                     workers), fan_label)
            _run_serial(fn, items, results, 0, fan_label)
            return results
        est = planner.cost_prior(fan_label)
        probed = 0
        if force != "sharded" and est is None:
            # First-ever fan-out for this label: probe one item
            # in-process to seed the cost model.  The result is kept
            # (fn is pure per item), so the probe costs nothing extra.
            t0 = time.perf_counter()  # repro: ignore[wallclock-time] -- planner cost probe; never enters artifacts
            results[0] = fn(items[0])
            est = time.perf_counter() - t0  # repro: ignore[wallclock-time] -- planner cost probe; never enters artifacts
            probed = 1
            planner.note_probe(fan_label)
            planner.update_cost_prior(fan_label, est, source="probe")
        plan = planner.plan_execution(
            n_items=n, workers=workers, est_item_cost_s=est,
            remaining=n - probed, pool_is_warm=pool_is_warm(workers),
            force=force)
        planner.record_decision(plan, fan_label)
        if plan.mode == "serial":
            _run_serial(fn, items, results, probed, fan_label)
            return results
        pool = _acquire_pool(workers)
        t0 = time.perf_counter()  # repro: ignore[wallclock-time] -- planner cost prior; never enters artifacts
        try:
            _dispatch_batches(pool, fn, items, probed, plan.chunk_size,
                              results, workers)
        except BrokenProcessPool:
            # A worker died (OOM-killed, signalled).  Recycle the pool
            # once and recompute the whole sharded region -- results
            # are pure per item, so overwriting is harmless.
            warnings.warn(
                f"worker pool broke during {fan_label!r}; recycling "
                "the pool and recomputing the sharded region",
                RuntimeWarning, stacklevel=2)
            planner.note_pool_recycled(fan_label)
            shutdown_worker_pools()
            pool = _acquire_pool(workers)
            _dispatch_batches(pool, fn, items, probed, plan.chunk_size,
                              results, workers)
        wall = time.perf_counter() - t0  # repro: ignore[wallclock-time] -- planner cost prior; never enters artifacts
        effective = max(1, min(workers, plan.n_tasks,
                               planner.usable_cores()))
        planner.update_cost_prior(fan_label,
                                  wall * effective / (n - probed),
                                  source="sharded")
        return results


def shard_seeds(base_seed: int, n_shards: int) -> List[int]:
    """The derived seed of every shard of an ``n_shards``-way fan-out."""
    if n_shards < 0:
        raise ValueError("shard count cannot be negative")
    return [seed_for(base_seed, shard) for shard in range(n_shards)]
