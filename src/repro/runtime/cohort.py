"""Vectorized UE-cohort signaling engine.

The per-UE emulation (:class:`repro.sim.emulation.NeighborhoodEmulation`)
schedules one simulator event per session arrival, release, and pass
sweep -- O(users x events) work that tops out around 10^2 UEs.  The
paper's load points, though, are population-scale: a serving satellite
carries 2K-30K users and the constellation carries millions.  This
engine gets there by the standard large-population move: group the
``n_ues`` users into ``n_cohorts`` statistically identical cohorts and
sample each cohort's *event counts* directly from the arrival
processes with numpy, then apply per-message costs to whole cohorts at
once.  A 1M-UE load point is O(cohorts), not O(users).

The event processes mirror ``Solution.procedure_rates_per_user``
exactly (sessions every ~106.9 s, handovers/mobility registrations per
coverage pass, initial registrations at power-cycle scale), so the
engine's measured per-UE rates cross-validate against both the
analytic arithmetic and the per-UE emulation.  Runs are seeded and
bit-reproducible for a fixed (seed, n_cohorts) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..constants import RRC_INACTIVITY_TIMEOUT_S, SESSION_INTERARRIVAL_S
from ..fiveg.messages import ProcedureKind
from ..obs.metrics import MetricsRegistry
from .memo import cached_dwell_time_s
from .parallel import seed_for

#: Default cohort count: fine enough that Poisson sampling noise per
#: cohort stays realistic, coarse enough that 1M UEs stay trivial.
DEFAULT_COHORTS = 256


@dataclass
class CohortStats:
    """Counters of one cohort-engine run (per-UE emulation's shape)."""

    duration_s: float = 0.0
    ue_count: int = 0
    n_cohorts: int = 0
    sessions_attempted: int = 0
    sessions_established: int = 0
    releases: int = 0
    handovers: int = 0
    mobility_registrations: int = 0
    initial_registrations: int = 0
    signaling_messages: int = 0
    satellite_messages: int = 0
    crossing_messages: int = 0
    events_by_procedure: Dict[str, int] = field(default_factory=dict)

    @property
    def events_total(self) -> int:
        """Procedure events the population generated."""
        return sum(self.events_by_procedure.values())

    @property
    def session_rate_per_ue(self) -> float:
        """Measured establishments per UE-second."""
        if not self.duration_s or not self.ue_count:
            return 0.0
        return self.sessions_established / (self.duration_s
                                            * self.ue_count)

    @property
    def events_per_ue_s(self) -> float:
        if not self.duration_s or not self.ue_count:
            return 0.0
        return self.events_total / (self.duration_s * self.ue_count)


class UECohortEngine:
    """One population-scale signaling load point, O(cohorts).

    ``solution`` supplies the procedure mix and per-procedure message
    flows (default: SpaceCore); ``dwell_s`` defaults to the
    constellation's mean pass duration via the shard-local cache.
    """

    def __init__(self, constellation=None, n_ues: int = 10_000,
                 solution=None, seed: int = 0,
                 n_cohorts: int = DEFAULT_COHORTS,
                 session_interval_s: float = SESSION_INTERARRIVAL_S,
                 rrc_timeout_s: float = RRC_INACTIVITY_TIMEOUT_S,
                 dwell_s: Optional[float] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if n_ues < 1:
            raise ValueError("need at least one UE")
        if n_cohorts < 1:
            raise ValueError("need at least one cohort")
        if session_interval_s <= 0:
            raise ValueError("session interval must be positive")
        if solution is None:
            from ..baselines.solutions import spacecore
            solution = spacecore()
        if dwell_s is None:
            if constellation is None:
                raise ValueError(
                    "need a constellation or an explicit dwell_s")
            dwell_s = cached_dwell_time_s(constellation)
        self.solution = solution
        self.n_ues = n_ues
        self.n_cohorts = min(n_cohorts, n_ues)
        self.seed = seed
        self.session_interval_s = session_interval_s
        self.rrc_timeout_s = rrc_timeout_s
        self.dwell_s = dwell_s
        #: Optional observability sink mirroring :class:`CohortStats`
        #: as mergeable ``cohort.*`` series.
        self.metrics = metrics
        # Cohort sizes: n_ues split as evenly as integers allow.
        base, extra = divmod(n_ues, self.n_cohorts)
        sizes = np.full(self.n_cohorts, base, dtype=np.int64)
        sizes[:extra] += 1
        self._sizes = sizes

    # -- arrival sampling --------------------------------------------------------

    def _rates_per_user(self) -> Dict[ProcedureKind, float]:
        """The same per-UE event rates the storm arithmetic uses."""
        rates = dict(self.solution.procedure_rates_per_user(self.dwell_s))
        # The emulation's session clock is configurable; rescale the
        # session row so cohort and per-UE runs agree for any interval.
        rates[ProcedureKind.SESSION_ESTABLISHMENT] = \
            1.0 / self.session_interval_s
        return rates

    def sample_events(self, duration_s: float
                      ) -> Dict[ProcedureKind, np.ndarray]:
        """Per-cohort event counts for every procedure kind.

        One Poisson draw per (cohort, procedure): the superposition of
        each cohort member's arrival process.  Seeds derive from the
        engine seed and the procedure name, so adding a procedure kind
        never perturbs the draws of the others.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        counts: Dict[ProcedureKind, np.ndarray] = {}
        for kind, rate in sorted(self._rates_per_user().items(),
                                 key=lambda kv: kv[0].value):
            rng = np.random.default_rng(
                seed_for(self.seed, f"cohort:{kind.value}"))
            mean = self._sizes * (rate * duration_s)
            counts[kind] = rng.poisson(mean)
        return counts

    # -- batched cost application ------------------------------------------------

    def run(self, duration_s: float) -> CohortStats:
        """Sample the load point and apply message costs in batch."""
        events = self.sample_events(duration_s)
        stats = CohortStats(duration_s=duration_s, ue_count=self.n_ues,
                            n_cohorts=self.n_cohorts)
        totals: Dict[ProcedureKind, int] = {
            kind: int(per_cohort.sum())
            for kind, per_cohort in events.items()
        }
        for kind, total in totals.items():
            stats.events_by_procedure[kind.value] = total
            flow = self.solution.flow(kind)
            # Whole-cohort cost application: each of the ``total``
            # events contributes the flow's message counts -- three
            # multiplies per procedure kind, regardless of n_ues.
            stats.signaling_messages += total * len(flow)
            stats.satellite_messages += \
                total * self.solution.satellite_messages(flow)
            stats.crossing_messages += \
                total * self.solution.crossing_messages(flow)

        sessions = totals.get(ProcedureKind.SESSION_ESTABLISHMENT, 0)
        stats.sessions_attempted = sessions
        stats.sessions_established = sessions
        # Inactivity release follows every session that started early
        # enough to time out inside the horizon; thin binomially.
        live_fraction = max(0.0, 1.0 - self.rrc_timeout_s / duration_s)
        if sessions:
            rng = np.random.default_rng(seed_for(self.seed,
                                                 "cohort:releases"))
            stats.releases = int(rng.binomial(sessions, live_fraction))
        stats.handovers = totals.get(ProcedureKind.HANDOVER, 0)
        stats.mobility_registrations = \
            totals.get(ProcedureKind.MOBILITY_REGISTRATION, 0)
        stats.initial_registrations = \
            totals.get(ProcedureKind.INITIAL_REGISTRATION, 0)
        if self.metrics is not None:
            self._export_metrics(stats)
        return stats

    def _export_metrics(self, stats: CohortStats) -> None:
        """Mirror one run's counters into the registry, mergeable."""
        assert self.metrics is not None
        solution = self.solution.name
        self.metrics.counter("cohort.runs", solution=solution).inc()
        self.metrics.counter("cohort.ue_seconds", solution=solution).inc(
            stats.ue_count * stats.duration_s)
        for name, total in sorted(stats.events_by_procedure.items()):
            self.metrics.counter("cohort.events", solution=solution,
                                 procedure=name).inc(total)
        for kind, total in (
                ("signaling", stats.signaling_messages),
                ("satellite", stats.satellite_messages),
                ("crossing", stats.crossing_messages)):
            self.metrics.counter("cohort.messages", solution=solution,
                                 kind=kind).inc(total)
        self.metrics.counter("cohort.sessions_established",
                             solution=solution).inc(
                                 stats.sessions_established)
        self.metrics.counter("cohort.releases",
                             solution=solution).inc(stats.releases)

    # -- cross-validation --------------------------------------------------------

    def predicted_session_rate_per_ue(self) -> float:
        """Analytic counterpart of ``CohortStats.session_rate_per_ue``."""
        return 1.0 / self.session_interval_s

    def predicted_events_per_ue_s(self) -> float:
        """Analytic counterpart of ``CohortStats.events_per_ue_s``."""
        return sum(self._rates_per_user().values())
